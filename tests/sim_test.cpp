/// Tests for the discrete-event simulator: determinism, the latency models,
/// the bandwidth/CPU cost model, FIFO links, adversaries, and the generic
/// Byzantine strategies.

#include <gtest/gtest.h>

#include "net/message.hpp"
#include "net/protocol.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::sim {
namespace {

/// Tiny numbered message for ordering/traffic tests.
class SeqMessage final : public net::MessageBody {
 public:
  SeqMessage(std::uint32_t seq, std::size_t pad = 0) : seq_(seq), pad_(pad) {}
  std::uint32_t seq() const noexcept { return seq_; }
  std::size_t wire_size() const override {
    return uvarint_size(seq_) + pad_;
  }
  void serialize(ByteWriter& w) const override {
    w.uvarint(seq_);
    for (std::size_t i = 0; i < pad_; ++i) w.u8(0);
  }
  std::string debug() const override { return "SEQ"; }

 private:
  std::uint32_t seq_;
  std::size_t pad_;
};

/// All nodes fire `count` numbered messages at node 0; node 0 records the
/// delivery order per sender.
class Flood final : public net::Protocol {
 public:
  explicit Flood(std::uint32_t count, std::size_t pad = 0)
      : count_(count), pad_(pad) {}

  void on_start(net::Context& ctx) override {
    if (ctx.self() == 0) return;
    for (std::uint32_t s = 0; s < count_; ++s) {
      ctx.send(0, /*channel=*/0, std::make_shared<SeqMessage>(s, pad_));
    }
    done_ = true;
  }

  void on_message(net::Context&, NodeId from, std::uint32_t,
                  const net::MessageBody& body) override {
    const auto* m = dynamic_cast<const SeqMessage*>(&body);
    DELPHI_REQUIRE(m != nullptr, "flood: foreign message");
    received_[from].push_back(m->seq());
    // Node 0 deliberately never terminates: the simulator then runs to
    // quiescence, delivering every in-flight message.
  }

  bool terminated() const override { return done_; }

  const std::map<NodeId, std::vector<std::uint32_t>>& received() const {
    return received_;
  }

 private:
  std::uint32_t count_;
  std::size_t pad_;
  bool done_ = false;
  std::map<NodeId, std::vector<std::uint32_t>> received_;
};

SimConfig flood_config(std::uint64_t seed, bool fifo, SimTime adversary_delay) {
  SimConfig cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.latency = std::make_shared<UniformLatency>(100, 5'000);
  if (adversary_delay > 0) {
    cfg.adversary = std::make_shared<RandomDelayAdversary>(adversary_delay);
  }
  cfg.fifo_links = fifo;
  return cfg;
}

std::size_t count_inversions(const std::vector<std::uint32_t>& seqs) {
  std::size_t inv = 0;
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] < seqs[i - 1]) ++inv;
  }
  return inv;
}

TEST(Simulator, RunsFloodToQuiescence) {
  SimConfig cfg = flood_config(1, false, 0);
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(10));
  }
  sim.run();
  const auto& recv = sim.node_as<Flood>(0).received();
  ASSERT_EQ(recv.size(), 4u);  // four senders
  for (const auto& [from, seqs] : recv) EXPECT_EQ(seqs.size(), 10u);
}

TEST(Simulator, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    SimConfig cfg = flood_config(seed, false, 10'000);
    Simulator sim(cfg);
    for (NodeId i = 0; i < cfg.n; ++i) {
      sim.add_node(std::make_unique<Flood>(20));
    }
    sim.run();
    return std::make_pair(sim.node_as<Flood>(0).received(),
                          sim.metrics().total_bytes);
  };
  const auto a = run_once(77);
  const auto b = run_once(77);
  const auto c = run_once(78);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);  // different seed, different schedule
}

TEST(Simulator, AdversaryReordersWithoutFifo) {
  SimConfig cfg = flood_config(3, /*fifo=*/false, /*adversary=*/200'000);
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(50));
  }
  sim.run();
  std::size_t inversions = 0;
  for (const auto& [from, seqs] : sim.node_as<Flood>(0).received()) {
    inversions += count_inversions(seqs);
  }
  EXPECT_GT(inversions, 0u);  // heavy jitter must reorder something
}

TEST(Simulator, FifoLinksRestoreOrder) {
  SimConfig cfg = flood_config(3, /*fifo=*/true, /*adversary=*/200'000);
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(50));
  }
  sim.run();
  for (const auto& [from, seqs] : sim.node_as<Flood>(0).received()) {
    EXPECT_EQ(count_inversions(seqs), 0u) << "sender " << from;
    EXPECT_EQ(seqs.size(), 50u);  // nothing lost
  }
}

TEST(Simulator, BytesAccountFramesAndTags) {
  SimConfig cfg = flood_config(4, false, 0);
  cfg.auth_channels = true;
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(1));
  }
  sim.run();
  // 4 senders x 1 message; frame = 4 (len) + 1 (chan) + 1 (seq) + 32 (tag).
  EXPECT_EQ(sim.metrics().total_msgs, 4u);
  EXPECT_EQ(sim.metrics().total_bytes, 4u * (4 + 1 + 1 + 32));
}

TEST(Simulator, AuthTagsCanBeDisabled) {
  SimConfig cfg = flood_config(4, false, 0);
  cfg.auth_channels = false;
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(1));
  }
  sim.run();
  EXPECT_EQ(sim.metrics().total_bytes, 4u * (4 + 1 + 1));
}

TEST(Simulator, BandwidthSerializationDelaysDelivery) {
  auto completion = [](double bytes_per_us) {
    SimConfig cfg;
    cfg.n = 2;
    cfg.seed = 5;
    cfg.latency = std::make_shared<UniformLatency>(1000, 1000);
    cfg.cost.uplink_bytes_per_us = bytes_per_us;
    Simulator sim(cfg);
    // Node 1 floods node 0 with large frames.
    sim.add_node(std::make_unique<Flood>(0));
    sim.add_node(std::make_unique<Flood>(20, /*pad=*/10'000));
    sim.run();
    return sim.now();
  };
  const SimTime fast = completion(1e6);
  const SimTime slow = completion(10.0);  // 10 B/µs
  EXPECT_GT(slow, 2 * fast);
}

/// Protocol that charges heavy compute per delivery.
class Cruncher final : public net::Protocol {
 public:
  void on_start(net::Context& ctx) override {
    if (ctx.self() == 1) {
      for (int i = 0; i < 10; ++i) {
        ctx.send(0, 0, std::make_shared<SeqMessage>(i));
      }
    }
  }
  void on_message(net::Context& ctx, NodeId from, std::uint32_t,
                  const net::MessageBody&) override {
    ctx.charge_compute(50'000);  // 50 ms of CPU per message
    ++handled_;
    // Ack after crunching so the sender's timeline reflects our busy time.
    if (ctx.self() == 0) ctx.send(from, 1, std::make_shared<SeqMessage>(0));
  }
  // Never terminates: the run drains to quiescence.
  bool terminated() const override { return false; }
  int handled_ = 0;
};

TEST(Simulator, ComputeChargesSerializeOnTheNode) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 6;
  cfg.latency = std::make_shared<UniformLatency>(100, 100);
  Simulator sim(cfg);
  sim.add_node(std::make_unique<Cruncher>());
  sim.add_node(std::make_unique<Cruncher>());
  sim.run();
  // 10 messages x 50 ms serialized on one core >= 500 ms total.
  EXPECT_GE(sim.now(), 10 * 50'000);
  EXPECT_EQ(sim.node_as<Cruncher>(0).handled_, 10);
}

TEST(Latency, UniformBounds) {
  UniformLatency lat(100, 200);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = lat.delay(0, 1, rng);
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 200);
  }
}

TEST(Latency, AwsGeoRegionsAndScale) {
  AwsGeoLatency lat(16);
  Rng rng(2);
  EXPECT_EQ(lat.region_of(0), 0u);
  EXPECT_EQ(lat.region_of(8), 0u);   // round-robin wraps
  EXPECT_EQ(lat.region_of(7), 7u);
  // Same-region (VA-VA): ~1 ms. Cross-Pacific (VA-Singapore): ~110 ms.
  SimTime intra = 0, cross = 0;
  for (int i = 0; i < 200; ++i) {
    intra += lat.delay(0, 8, rng);   // both region 0
    cross += lat.delay(0, 6, rng);   // VA -> Singapore
  }
  EXPECT_LT(intra / 200, 2'000);
  EXPECT_GT(cross / 200, 80'000);
}

TEST(Latency, AwsGeoSymmetricInExpectation) {
  AwsGeoLatency lat(8);
  Rng rng(3);
  SimTime ab = 0, ba = 0;
  for (int i = 0; i < 500; ++i) {
    ab += lat.delay(1, 5, rng);
    ba += lat.delay(5, 1, rng);
  }
  const double ratio = static_cast<double>(ab) / static_cast<double>(ba);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Latency, CpsLanIsSubMillisecondScale) {
  CpsLanLatency lat;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = lat.delay(0, 1, rng);
    EXPECT_GE(d, 300);
    EXPECT_LE(d, 1200);
  }
}

TEST(Adversary, TargetedLagHitsOnlyVictims) {
  TargetedLagAdversary adv({2}, 99'000);
  Rng rng(5);
  EXPECT_EQ(adv.extra_delay(0, 1, 0, rng), 0);
  EXPECT_EQ(adv.extra_delay(2, 1, 0, rng), 99'000);
  EXPECT_EQ(adv.extra_delay(1, 2, 0, rng), 99'000);
}

TEST(Byzantine, GarbageSprayDoesNotCrashHonestFlood) {
  SimConfig cfg = flood_config(9, false, 0);
  Simulator sim(cfg);
  sim.add_node(std::make_unique<Flood>(5));
  for (NodeId i = 1; i + 1 < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(5));
  }
  sim.add_node(std::make_unique<GarbageSprayProtocol>());
  sim.set_byzantine({static_cast<NodeId>(cfg.n - 1)});
  sim.run();
  // Node 0 still got everything from the honest senders.
  const auto& recv = sim.node_as<Flood>(0).received();
  for (NodeId j = 1; j + 1 < cfg.n; ++j) {
    ASSERT_TRUE(recv.contains(j));
    EXPECT_EQ(recv.at(j).size(), 5u);
  }
  // And the garbage was counted as dropped, not processed.
  EXPECT_GT(sim.node_metrics(0).malformed_dropped, 0u);
}

TEST(Harness, RunNodesCollectsHonestTraffic) {
  SimConfig cfg = flood_config(10, false, 0);
  auto outcome = run_nodes(cfg, [](NodeId) {
    return std::make_unique<Flood>(3);
  });
  // Node 0 never terminates (by design), so the run drains to quiescence.
  EXPECT_FALSE(outcome.all_honest_terminated);
  EXPECT_EQ(outcome.honest_msgs, 4u * 3u);
}

TEST(Harness, LastTByzantinePlacement) {
  const auto ids = last_t_byzantine(10, 3);
  EXPECT_EQ(ids, (std::set<NodeId>{7, 8, 9}));
  EXPECT_TRUE(last_t_byzantine(4, 0).empty());
}

TEST(Simulator, InFlightOverflowRaisesTypedError) {
  // The engine's arena/heap/uplink growth paths must fail with the typed
  // ResourceExhausted (catchable as delphi::Error), never std::bad_alloc.
  SimConfig cfg = flood_config(12, false, 0);
  cfg.max_in_flight = 16;  // 4 senders x 100 frames blows through this
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(std::make_unique<Flood>(100));
  }
  try {
    sim.run();
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_NE(std::string(e.what()).find("max_in_flight"), std::string::npos);
  }
}

TEST(Simulator, InFlightCapIsValidated) {
  SimConfig cfg;
  cfg.max_in_flight = 0;
  EXPECT_THROW(Simulator{cfg}, ConfigError);
}

TEST(FifoReorderBuffer, FlatRingReleasesInOrderAndDropsDuplicates) {
  net::FifoReorderBuffer<int> buf;
  EXPECT_TRUE(buf.push(2, 102).empty());   // buffered: 0 and 1 missing
  EXPECT_TRUE(buf.push(1, 101).empty());
  EXPECT_FALSE(buf.insert(2, 999));        // in-window duplicate: first wins
  const auto ready = buf.push(0, 100);
  EXPECT_EQ(ready, (std::vector<int>{100, 101, 102}));
  EXPECT_TRUE(buf.push(1, 201).empty());   // stale: already released
  EXPECT_EQ(buf.next_expected(), 3u);
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(FifoReorderBuffer, FarFutureSequencesUseOverflowPath) {
  // A sequence number beyond the bounded flat ring lands in the overflow
  // map, survives the window sliding over it, and still releases in order.
  net::FifoReorderBuffer<int> buf;
  const std::uint64_t far =
      net::FifoReorderBuffer<int>::kMaxRingSlots + 5;
  EXPECT_TRUE(buf.insert(far, 7777));
  EXPECT_EQ(buf.pending(), 1u);
  EXPECT_FALSE(buf.insert(far, 8888));  // duplicate of a far item
  for (std::uint64_t s = 0; s < far; ++s) {
    int* item = nullptr;
    ASSERT_TRUE(buf.insert(s, static_cast<int>(s)));
    item = buf.ready();
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, static_cast<int>(s));
    buf.pop_ready();
  }
  // The far item is now due; the first-received copy survived.
  int* item = buf.ready();
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 7777);
  buf.pop_ready();
  EXPECT_EQ(buf.ready(), nullptr);
  EXPECT_EQ(buf.next_expected(), far + 1);
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(FifoReorderBuffer, DuplicateOfFarItemRejectedOnceInWindow) {
  net::FifoReorderBuffer<int> buf;
  const std::uint64_t far = net::FifoReorderBuffer<int>::kMaxRingSlots + 1;
  ASSERT_TRUE(buf.insert(far, 1));
  // Advance next_expected so `far` is inside the flat window.
  for (std::uint64_t s = 0; s < far; ++s) {
    ASSERT_TRUE(buf.insert(s, 0));
    ASSERT_NE(buf.ready(), nullptr);
    buf.pop_ready();
  }
  EXPECT_FALSE(buf.insert(far, 2));  // far copy was received first and wins
  int* item = buf.ready();
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 1);
}

}  // namespace
}  // namespace delphi::sim
