/// Unit tests for the in-process netem shim (net/netem.hpp) and its scenario
/// plumbing: the shim's schedule is a pure function of (config, from, to), so
/// every behaviour — jitter bounds, token-bucket conformance, one-way
/// partitions, burst LIFO, Gilbert–Elliott loss statistics — is pinned here
/// without opening a single socket. The scenario-layer section pins the
/// spec-text round-trip for the netem knobs and the exact substrate-support
/// rejections ("did you mean substrate=udp?").

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/netem.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"

namespace delphi::net::netem {
namespace {

using Verdict = LinkShim::Verdict;

// ----------------------------------------------------------- construction

TEST(NetemConfig, DefaultConfigIsInert) {
  EXPECT_FALSE(Config{}.active());
  Config c;
  c.jitter_max_us = 1;
  EXPECT_TRUE(c.active());
  c = Config{};
  c.loss = 0.01;
  EXPECT_TRUE(c.active());
  c = Config{};
  c.rate_bytes_per_us = 0.5;
  EXPECT_TRUE(c.active());
}

TEST(NetemShim, DefaultShimSendsEverythingNow) {
  LinkShim shim;
  EXPECT_FALSE(shim.active());
  for (int i = 0; i < 100; ++i) {
    const auto v = shim.on_send(/*now_us=*/i * 10, /*wire_bytes=*/1000);
    EXPECT_FALSE(v.drop);
    EXPECT_LE(v.release_us, i * 10);
  }
}

// ------------------------------------------------------------ determinism

TEST(NetemShim, SameSeedSameSchedule) {
  Config c;
  c.seed = 77;
  c.jitter_max_us = 8'000;
  c.loss = 0.2;
  LinkShim a(c, 1, 3);
  LinkShim b(c, 1, 3);
  for (SimTime t = 0; t < 2'000; ++t) {
    const auto va = a.on_send(t * 50, 512);
    const auto vb = b.on_send(t * 50, 512);
    ASSERT_EQ(va.drop, vb.drop) << "diverged at step " << t;
    ASSERT_EQ(va.release_us, vb.release_us) << "diverged at step " << t;
    ASSERT_EQ(va.order, vb.order) << "diverged at step " << t;
  }
}

TEST(NetemShim, DifferentSeedOrLinkDifferentSchedule) {
  Config c;
  c.seed = 77;
  c.jitter_max_us = 8'000;
  Config c2 = c;
  c2.seed = 78;
  LinkShim base(c, 1, 3);
  LinkShim reseeded(c2, 1, 3);
  LinkShim relinked(c, 2, 3);
  bool seed_diverged = false;
  bool link_diverged = false;
  LinkShim base2(c, 1, 3);
  for (SimTime t = 0; t < 200; ++t) {
    const auto v = base.on_send(0, 64);
    seed_diverged |= v.release_us != reseeded.on_send(0, 64).release_us;
    link_diverged |= v.release_us != relinked.on_send(0, 64).release_us;
  }
  EXPECT_TRUE(seed_diverged);
  EXPECT_TRUE(link_diverged);
}

// ------------------------------------------------------------------ jitter

TEST(NetemShim, JitterWithinBoundsAndNonDegenerate) {
  Config c;
  c.jitter_max_us = 5'000;
  LinkShim shim(c, 0, 1);
  bool some_delay = false;
  for (int i = 0; i < 1'000; ++i) {
    const SimTime now = i * 17;
    const auto v = shim.on_send(now, 256);
    EXPECT_FALSE(v.drop);
    ASSERT_GE(v.release_us, now);
    ASSERT_LE(v.release_us, now + 5'000);
    some_delay |= v.release_us > now;
  }
  EXPECT_TRUE(some_delay);
}

// ------------------------------------------------------------ targeted lag

TEST(NetemShim, TargetedLagHitsOnlyTargetedLinks) {
  Config c;
  c.lag_k = 1;
  c.lag_us = 30'000;
  LinkShim from_target(c, 0, 2);
  LinkShim to_target(c, 3, 0);
  LinkShim bystander(c, 2, 3);
  EXPECT_EQ(from_target.on_send(100, 64).release_us, 100 + 30'000);
  EXPECT_EQ(to_target.on_send(100, 64).release_us, 100 + 30'000);
  EXPECT_LE(bystander.on_send(100, 64).release_us, 100);
}

// -------------------------------------------------------------- partitions

TEST(NetemShim, SymmetricPartitionBlocksBothDirectionsUntilHeal) {
  Config c;
  c.partition_k = 2;
  c.heal_us = 200'000;
  LinkShim out(c, 0, 3);   // group → rest
  LinkShim in(c, 3, 1);    // rest → group
  LinkShim inside(c, 0, 1);  // within the group: unaffected
  LinkShim outside(c, 2, 3);  // within the rest: unaffected
  // Before heal: held to heal + bounded jitter.
  for (LinkShim* s : {&out, &in}) {
    const auto v = s->on_send(10, 64);
    EXPECT_GE(v.release_us, 200'000);
    EXPECT_LE(v.release_us, 200'000 + 10'000);
  }
  EXPECT_LE(inside.on_send(10, 64).release_us, 10);
  EXPECT_LE(outside.on_send(10, 64).release_us, 10);
  // After heal: flows freely.
  EXPECT_LE(out.on_send(250'000, 64).release_us, 250'000);
  EXPECT_LE(in.on_send(250'000, 64).release_us, 250'000);
}

TEST(NetemShim, OneWayPartitionBlocksExactlyOneDirection) {
  Config c;
  c.partition_k = 1;
  c.heal_us = 100'000;
  c.oneway = true;
  LinkShim blocked(c, 0, 2);    // group → rest: held
  LinkShim reverse(c, 2, 0);    // rest → group: flows
  EXPECT_GE(blocked.on_send(0, 64).release_us, 100'000);
  EXPECT_LE(reverse.on_send(0, 64).release_us, 0);
}

// ------------------------------------------------------------ burst window

TEST(NetemShim, BurstWindowReleasesLifoAtWindowEnd) {
  Config c;
  c.burst_period_us = 10'000;
  LinkShim shim(c, 0, 1);
  const auto a = shim.on_send(1'000, 64);
  const auto b = shim.on_send(2'000, 64);
  const auto d = shim.on_send(3'000, 64);
  // All held to the end of window [0, 10'000).
  EXPECT_EQ(a.release_us, 10'000);
  EXPECT_EQ(b.release_us, 10'000);
  EXPECT_EQ(d.release_us, 10'000);
  // LIFO: a later send carries a *smaller* order key, so a (release, order)
  // min-heap emits it first.
  EXPECT_GT(a.order, b.order);
  EXPECT_GT(b.order, d.order);
  // Next window is independent.
  const auto e = shim.on_send(12'000, 64);
  EXPECT_EQ(e.release_us, 20'000);
}

// ------------------------------------------------------------ token bucket

TEST(NetemShim, TokenBucketRateConformance) {
  // 1 byte/µs line rate, 20 ms burst credit. 120'000 bytes of back-to-back
  // sends at t=0 must schedule the tail at ≈ (120'000 − 20'000) / 1.0 µs.
  Config c;
  c.rate_bytes_per_us = 1.0;
  LinkShim shim(c, 0, 1);
  constexpr std::size_t kFrame = 1'000;
  SimTime last_release = 0;
  for (int i = 0; i < 120; ++i) {
    const auto v = shim.on_send(0, kFrame);
    EXPECT_FALSE(v.drop);
    EXPECT_GE(v.release_us, last_release);  // FIFO within the queue discipline
    last_release = v.release_us;
  }
  const double expected = (120.0 * kFrame - 20'000.0) / 1.0;
  EXPECT_GT(static_cast<double>(last_release), expected * 0.9);
  EXPECT_LT(static_cast<double>(last_release), expected * 1.1);
  // After the queue drains, a fresh send at a late time goes out immediately.
  EXPECT_LE(shim.on_send(1'000'000, kFrame).release_us, 1'000'000);
}

// -------------------------------------------------------------------- loss

TEST(NetemShim, IndependentLossRateMatchesConfig) {
  Config c;
  c.loss = 0.25;
  c.loss_burst_len = 1.0;
  LinkShim shim(c, 0, 1);
  int drops = 0;
  constexpr int kSends = 4'000;
  for (int i = 0; i < kSends; ++i) {
    drops += shim.on_send(i, 64).drop ? 1 : 0;
  }
  const double rate = static_cast<double>(drops) / kSends;
  EXPECT_GT(rate, 0.18);
  EXPECT_LT(rate, 0.32);
}

TEST(NetemShim, BurstLossProducesLongRunsAtSameRate) {
  Config c;
  c.loss = 0.10;
  c.loss_burst_len = 4.0;
  LinkShim shim(c, 0, 1);
  int drops = 0, runs = 0;
  bool in_run = false;
  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) {
    const bool drop = shim.on_send(i, 64).drop;
    drops += drop ? 1 : 0;
    runs += (drop && !in_run) ? 1 : 0;
    in_run = drop;
  }
  // Stationary drop rate stays ≈ loss …
  const double rate = static_cast<double>(drops) / kSends;
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.14);
  // … but grouped into runs of mean length ≈ loss_burst_len.
  const double mean_run = static_cast<double>(drops) / runs;
  EXPECT_GT(mean_run, 2.5);
  EXPECT_LT(mean_run, 6.0);
}

}  // namespace
}  // namespace delphi::net::netem

// =============================================================== scenario

namespace delphi::scenario {
namespace {

ScenarioSpec udp_spec() {
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.substrate = Substrate::kUdp;
  spec.n = 4;
  spec.seed = 5;
  return spec;
}

TEST(NetemSpec, NetemKnobsRoundTripThroughSpecText) {
  ScenarioSpec spec = udp_spec();
  spec.adversary = parse_adversary("partition:2:100000");
  spec.params["loss"] = 0.05;
  spec.params["loss-burst"] = 4;
  spec.params["rate-kbps"] = 500;
  spec.params["rto-ms"] = 10;
  const std::string text = spec.to_text();
  EXPECT_NE(text.find("substrate=udp"), std::string::npos) << text;
  EXPECT_NE(text.find("adversary=partition:2:100000"), std::string::npos)
      << text;
  const ScenarioSpec back = ScenarioSpec::from_text(text);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_text(), text);
}

TEST(NetemSpec, ValidationRejectsOutOfRangeKnobs) {
  for (const auto& [key, bad] : std::vector<std::pair<std::string, double>>{
           {"loss", 1.0}, {"loss", -0.1}, {"loss-burst", 0.5},
           {"rate-kbps", -1.0}, {"rto-ms", 0.0}}) {
    ScenarioSpec spec = udp_spec();
    spec.params[key] = bad;
    EXPECT_THROW(spec.validate(), ConfigError) << key << "=" << bad;
  }
}

TEST(NetemSpec, SimRejectsLossPointingAtUdp) {
  ScenarioSpec spec = udp_spec();
  spec.substrate = Substrate::kSim;
  spec.params["loss"] = 0.05;
  try {
    SimRuntime().run(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("substrate=udp"), std::string::npos) << msg;
  }
}

TEST(NetemSpec, TcpRejectsRtoPointingAtUdp) {
  ScenarioSpec spec = udp_spec();
  spec.substrate = Substrate::kTcp;
  spec.params["rto-ms"] = 10;
  try {
    TcpRuntime().run(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("substrate=udp"), std::string::npos)
        << e.what();
  }
}

TEST(NetemSpec, SimRejectsRateShaping) {
  ScenarioSpec spec = udp_spec();
  spec.substrate = Substrate::kSim;
  spec.params["rate-kbps"] = 500;
  EXPECT_THROW(SimRuntime().run(spec), ConfigError);
}

TEST(NetemSpec, UdpRejectsFifoPointingAtOrderedSubstrates) {
  ScenarioSpec spec = udp_spec();
  spec.params["fifo"] = 1;
  try {
    UdpRuntime().run(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("substrate=sim"), std::string::npos) << msg;
    EXPECT_NE(msg.find("substrate=tcp"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace delphi::scenario
