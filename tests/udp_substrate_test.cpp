/// Integration tests for the UDP datagram substrate (transport/udp.hpp +
/// scenario::UdpRuntime):
///   * cross-substrate parity — rbc and dolev honest outputs AND honest
///     byte/message counts match the simulator exactly (logical-send
///     accounting excludes retransmissions, acks, and datagram headers, so
///     sim ≡ udp by construction);
///   * every registered protocol terminates fault-free on udp n=4;
///   * every adversary= form from the fault plane runs on udp through the
///     netem shim;
///   * agreement under loss — every protocol still terminates with the shim
///     dropping 1% and 5% of datagrams (selective-repeat ARQ recovery);
///   * the dup filter under datagram duplication keeps delivery exactly-once
///     (loss makes the ARQ retransmit; parity of delivered message counts
///     pins that duplicates never reach the protocol).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"

namespace delphi::transport {
namespace {

using scenario::ProtocolRegistry;
using scenario::ScenarioSpec;
using scenario::SimRuntime;
using scenario::Substrate;
using scenario::UdpRuntime;

ScenarioSpec small_spec(const std::string& protocol, std::size_t n) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.testbed = scenario::TestbedKind::kAsync;
  spec.substrate = Substrate::kUdp;
  spec.n = n;
  spec.seed = 7;
  return spec;
}

// -------------------------------------------------- cross-substrate parity

TEST(UdpCrossSubstrate, RbcBytesAndOutputsMatchSim) {
  // RBC traffic is schedule-independent, so the datagram substrate must
  // report exactly the simulator's framed_size accounting: reordering,
  // per-datagram headers, acks, and any ARQ retransmissions are all
  // invisible to the logical honest_bytes/honest_msgs counters.
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.n = 5;
  spec.seed = 23;
  spec.inputs = {1.5, 2.5, 3.5, 4.5, 5.5};

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kUdp;
  const auto udp_rep = UdpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(udp_rep.ok);
  EXPECT_EQ(sim_rep.outputs, udp_rep.outputs);
  EXPECT_EQ(sim_rep.honest_bytes, udp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, udp_rep.honest_msgs);
}

TEST(UdpCrossSubstrate, DolevBytesMatchWithAndWithoutAuth) {
  // Both auth modes: the datagram accounting (frame body + 32-byte tag when
  // authenticated) must agree with the simulator's framed_size in each.
  for (const double auth : {1.0, 0.0}) {
    SCOPED_TRACE(auth);
    ScenarioSpec spec;
    spec.protocol = "dolev";
    spec.n = 6;
    spec.seed = 9;
    spec.params["rounds"] = 5;
    spec.params["auth"] = auth;
    spec.inputs = std::vector<double>(6, 17.0);

    spec.substrate = Substrate::kSim;
    const auto sim_rep = SimRuntime().run(spec);
    spec.substrate = Substrate::kUdp;
    const auto udp_rep = UdpRuntime().run(spec);

    ASSERT_TRUE(sim_rep.ok);
    ASSERT_TRUE(udp_rep.ok);
    EXPECT_EQ(sim_rep.outputs, udp_rep.outputs);
    EXPECT_EQ(sim_rep.honest_bytes, udp_rep.honest_bytes);
  }
}

TEST(UdpCrossSubstrate, DupFilterNeverInflatesDeliveries) {
  // Under 5% loss with a hair-trigger RTO the ARQ retransmits aggressively,
  // so the same datagram reaches a receiver more than once. The dup filter
  // must keep protocol deliveries at-most-once. How many messages land
  // before the cluster stops is schedule-dependent (either run can cut off
  // tail traffic when every protocol has terminated), so the invariant is
  // the schedule-independent ceiling: an rbc run multicasts at most
  // 1 SEND + n ECHO + n READY broadcasts, each delivered at most once per
  // node — a duplicate leaking through under retransmit pressure blows
  // straight past (2n+1)*n.
  constexpr std::size_t kN = 4;
  constexpr std::uint64_t kMaxDeliveries = (2 * kN + 1) * kN;
  ScenarioSpec spec = small_spec("rbc", kN);
  const auto clean = UdpRuntime().run(spec);
  spec.params["loss"] = 0.05;
  spec.params["rto-ms"] = 5;  // fast retransmit = more duplicate pressure
  const auto lossy = UdpRuntime().run(spec);
  ASSERT_TRUE(clean.ok);
  ASSERT_TRUE(lossy.ok);
  EXPECT_EQ(clean.outputs, lossy.outputs);
  std::uint64_t clean_delivered = 0, lossy_delivered = 0;
  for (const auto& nc : clean.nodes) clean_delivered += nc.msgs_delivered;
  for (const auto& nc : lossy.nodes) lossy_delivered += nc.msgs_delivered;
  EXPECT_LE(clean_delivered, kMaxDeliveries);
  EXPECT_LE(lossy_delivered, kMaxDeliveries);
  EXPECT_GT(lossy_delivered, 0u);
}

// ------------------------------------------------------------- fault-free

TEST(UdpRuntimeSuite, EveryProtocolTerminatesFaultFree) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto rep = UdpRuntime().run(small_spec(name, 4));
    EXPECT_TRUE(rep.ok) << name << ": " << rep.unfinished.size()
                        << " unfinished";
    EXPECT_TRUE(rep.unfinished.empty());
    EXPECT_FALSE(rep.outputs.empty());
  }
}

// ----------------------------------------------------------- netem plane

TEST(UdpRuntimeSuite, EveryAdversaryFormRunsThroughTheShim) {
  for (const char* adversary : {"random-delay:2000", "targeted-lag:1:5000",
                                "partition:1:20000", "burst:20000"}) {
    SCOPED_TRACE(adversary);
    ScenarioSpec spec = small_spec("rbc", 4);
    spec.adversary = scenario::parse_adversary(adversary);
    const auto rep = UdpRuntime().run(spec);
    EXPECT_TRUE(rep.ok) << rep.unfinished.size() << " unfinished";
  }
}

TEST(UdpRuntimeSuite, AgreementUnderLoss) {
  // The acceptance gate: every registered protocol terminates with the shim
  // dropping datagrams — the selective-repeat ARQ absorbs the loss. 1% is
  // the paper-realistic WAN rate; 5% forces multi-round recovery.
  for (const auto& name : ProtocolRegistry::global().names()) {
    for (const double loss : {0.01, 0.05}) {
      SCOPED_TRACE(name + " @ loss=" + std::to_string(loss));
      ScenarioSpec spec = small_spec(name, 4);
      spec.params["loss"] = loss;
      spec.params["timeout-ms"] = 60'000;
      const auto rep = UdpRuntime().run(spec);
      EXPECT_TRUE(rep.ok) << name << " @ " << loss << ": "
                          << rep.unfinished.size() << " unfinished";
      EXPECT_FALSE(rep.outputs.empty());
    }
  }
}

TEST(UdpRuntimeSuite, BurstLossAndRateShapingStillTerminate) {
  ScenarioSpec spec = small_spec("dolev", 4);
  spec.params["rounds"] = 3;
  spec.params["loss"] = 0.05;
  spec.params["loss-burst"] = 4;
  spec.params["rate-kbps"] = 4'000;
  spec.params["rto-ms"] = 10;
  spec.params["timeout-ms"] = 60'000;
  const auto rep = UdpRuntime().run(spec);
  EXPECT_TRUE(rep.ok) << rep.unfinished.size() << " unfinished";
}

}  // namespace
}  // namespace delphi::transport
