/// Stress and cross-protocol consistency tests: larger systems, boundary
/// inputs, protocol-vs-protocol output comparison on identical readings, and
/// a bigger TCP cluster exercising the real-socket path under load.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "delphi/delphi.hpp"
#include "dolev/dolev.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"
#include "tests/test_util.hpp"

namespace delphi {
namespace {

protocol::DelphiParams stress_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;
  return p;
}

std::vector<double> clustered_inputs(std::size_t n, std::uint64_t seed,
                                     double center, double spread) {
  std::vector<double> v(n);
  Rng rng(seed);
  for (auto& x : v) x = center + rng.uniform(-spread / 2, spread / 2);
  return v;
}

// -------------------------------------------------------------- large scale

TEST(Stress, DelphiFortyNodes) {
  const std::size_t n = 40;
  const auto p = stress_params();
  const auto inputs = clustered_inputs(n, 61, 500.0, 6.0);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 61;
  cfg.latency = std::make_shared<sim::UniformLatency>(100, 5'000);
  auto outcome = sim::run_nodes(cfg, [&](NodeId i) {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = p;
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  const double relax = std::max(p.rho0, *mx - *mn);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn - relax - 1e-9);
    EXPECT_LE(o, *mx + relax + 1e-9);
  }
}

TEST(Stress, DelphiFortyNodesWithMaxFaults) {
  const std::size_t n = 40;
  const std::size_t t = max_faults(n);  // 13
  const auto p = stress_params();
  const auto inputs = clustered_inputs(n, 62, 300.0, 4.0);
  const auto byz = sim::last_t_byzantine(n, t);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 62;
  cfg.latency = std::make_shared<sim::UniformLatency>(100, 5'000);
  auto outcome = sim::run_nodes(
      cfg,
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) return std::make_unique<sim::SilentProtocol>();
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = t;
        c.params = p;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_EQ(outcome.honest_outputs.size(), n - t);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
}

// ---------------------------------------------------------- boundary inputs

TEST(Stress, AllInputsAtSpaceEdges) {
  // Everyone at the lower edge; then everyone at the upper edge.
  for (const double edge : {0.0, 1000.0}) {
    const std::size_t n = 7;
    const auto p = stress_params();
    auto outcome =
        sim::run_nodes(test::async_config(n, 63), [&](NodeId) {
          protocol::DelphiProtocol::Config c;
          c.n = n;
          c.t = max_faults(n);
          c.params = p;
          return std::make_unique<protocol::DelphiProtocol>(c, edge);
        });
    ASSERT_TRUE(outcome.all_honest_terminated) << "edge " << edge;
    for (double o : outcome.honest_outputs) {
      EXPECT_NEAR(o, edge, p.rho0 + 1e-9) << "edge " << edge;
    }
  }
}

TEST(Stress, TwoClustersAtMaxRange) {
  // Honest inputs split into two clusters delta_max apart — the worst
  // admissible input spread; Delphi must still terminate and agree.
  const std::size_t n = 8;
  const auto p = stress_params();
  std::vector<double> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs[i] = (i < n / 2) ? 500.0 : 500.0 + p.delta_max;
  }
  auto outcome = sim::run_nodes(test::adversarial_config(n, 64), [&](NodeId i) {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = p;
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, 500.0 - p.delta_max - 1e-9);
    EXPECT_LE(o, 500.0 + 2 * p.delta_max + 1e-9);
  }
}

// ------------------------------------------------- cross-protocol agreement

TEST(Stress, AllProtocolsLandNearTheHonestCluster) {
  // Same readings through Delphi, Abraham, Dolev, and ACS-median: the exact
  // protocols stay inside [m, M]; Delphi inside the relaxed hull; and all
  // four land within (relaxed hull) of each other — the "any of these is a
  // sane oracle" sanity property.
  const std::size_t n = 11;
  const auto inputs = clustered_inputs(n, 65, 420.0, 10.0);
  const auto [mn_it, mx_it] = std::minmax_element(inputs.begin(), inputs.end());
  const double m = *mn_it, M = *mx_it;

  const auto p = stress_params();
  auto delphi_out = sim::run_nodes(test::async_config(n, 65), [&](NodeId i) {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = p;
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  abraham::AbrahamProtocol::Config ac;
  ac.n = n;
  ac.t = max_faults(n);
  ac.rounds = 8;
  ac.space_min = 0.0;
  ac.space_max = 1000.0;
  auto abraham_out = sim::run_nodes(test::async_config(n, 66), [&](NodeId i) {
    return std::make_unique<abraham::AbrahamProtocol>(ac, inputs[i]);
  });
  dolev::DolevProtocol::Config dc;
  dc.n = n;
  dc.t = dolev::DolevProtocol::max_faults_5t(n);
  dc.rounds = 8;
  dc.space_min = 0.0;
  dc.space_max = 1000.0;
  auto dolev_out = sim::run_nodes(test::async_config(n, 67), [&](NodeId i) {
    return std::make_unique<dolev::DolevProtocol>(dc, inputs[i]);
  });

  ASSERT_TRUE(delphi_out.all_honest_terminated);
  ASSERT_TRUE(abraham_out.all_honest_terminated);
  ASSERT_TRUE(dolev_out.all_honest_terminated);

  const double delta = M - m;
  const double relax = std::max(p.rho0, delta);
  for (double o : abraham_out.honest_outputs) {
    EXPECT_GE(o, m);
    EXPECT_LE(o, M);
  }
  for (double o : dolev_out.honest_outputs) {
    EXPECT_GE(o, m);
    EXPECT_LE(o, M);
  }
  for (double o : delphi_out.honest_outputs) {
    EXPECT_GE(o, m - relax - 1e-9);
    EXPECT_LE(o, M + relax + 1e-9);
  }
  // Pairwise: every pair of protocol outputs within the relaxed hull width.
  const double hull = (M + relax) - (m - relax);
  for (double a : delphi_out.honest_outputs) {
    for (double b : abraham_out.honest_outputs) EXPECT_LE(std::abs(a - b), hull);
    for (double b : dolev_out.honest_outputs) EXPECT_LE(std::abs(a - b), hull);
  }
}

// ------------------------------------------------------------- TCP at load

TEST(Stress, TcpClusterTenNodesDelphi) {
  const std::size_t n = 10;
  const auto p = stress_params();
  const auto inputs = clustered_inputs(n, 68, 250.0, 5.0);

  transport::TcpCluster::Options opts;
  opts.n = n;
  opts.timeout_ms = 60'000;
  transport::TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = max_faults(n);
        c.params = p;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      },
      transport::decoders::delphi());
  ASSERT_TRUE(cluster.wait());
  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& prot =
        dynamic_cast<const protocol::DelphiProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(prot.output_value().has_value());
    outputs.push_back(*prot.output_value());
    EXPECT_EQ(cluster.metrics(i).malformed_dropped, 0u);
  }
  EXPECT_LE(test::spread(outputs), p.eps);
}

}  // namespace
}  // namespace delphi
