/// Tests for the common substrate: serialization, RNG, bitset, error types.

#include <gtest/gtest.h>

#include <limits>

#include "common/bitset.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace delphi {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, DoubleRoundTrip) {
  for (double v : {0.0, -0.0, 1.5, -3.25e300, 5e-324, 40000.125}) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.f64(), v);
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  const std::uint64_t v = GetParam();
  ByteWriter w;
  w.uvarint(v);
  EXPECT_EQ(w.size(), uvarint_size(v));
  ByteReader r(w.data());
  EXPECT_EQ(r.uvarint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST_P(VarintRoundTrip, SignedBothSigns) {
  const auto m = static_cast<std::int64_t>(GetParam() / 2);
  for (std::int64_t v : {m, -m}) {
    ByteWriter w;
    w.svarint(v);
    EXPECT_EQ(w.size(), svarint_size(v));
    ByteReader r(w.data());
    EXPECT_EQ(r.svarint(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 12345,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Bytes, SvarintExtremes) {
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.svarint(), v);
  }
}

TEST(Bytes, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.str("hello \xE2\x82\xAC");
  std::vector<std::uint8_t> blob = {0, 1, 255, 3};
  w.bytes(blob);
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello \xE2\x82\xAC");
  EXPECT_EQ(r.bytes(), blob);
}

TEST(Bytes, TruncatedReadsThrow) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  EXPECT_THROW(r.u64(), SerializationError);
}

TEST(Bytes, UvarintTooLongThrows) {
  // Eleven continuation bytes: invalid for a 64-bit varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_THROW(r.uvarint(), SerializationError);
}

TEST(Bytes, UvarintOverflowThrows) {
  // 10-byte encoding with high bits set beyond 64 bits.
  std::vector<std::uint8_t> bad = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                   0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  ByteReader r(bad);
  EXPECT_THROW(r.uvarint(), SerializationError);
}

TEST(Bytes, LengthPrefixOverflowThrows) {
  // Claims a 2^40-byte string with 1 byte of input left.
  ByteWriter w;
  w.uvarint(1ULL << 40);
  w.u8('x');
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), SerializationError);
}

TEST(Bytes, ExpectExhaustedDetectsTrailing) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_exhausted(), SerializationError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng a(7);
  Rng child1 = a.fork(42);
  a.next();  // advancing the parent must not change fork derivation...
  Rng a2(7);
  Rng child2 = a2.fork(42);
  EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a(7);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next() == c2.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int c : buckets) {
    EXPECT_GT(c, 9'000);
    EXPECT_LT(c, 11'000);
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double p = rng.uniform_pos();
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Bitset, InsertContainsCount) {
  NodeBitset s(130);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(129));
  EXPECT_FALSE(s.insert(0));  // duplicate
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(Bitset, OutOfRangeThrows) {
  NodeBitset s(4);
  EXPECT_THROW(s.insert(4), InternalError);
  EXPECT_THROW((void)s.contains(100), InternalError);
}

TEST(Types, FaultBounds) {
  EXPECT_EQ(max_faults(4), 1u);
  EXPECT_EQ(max_faults(7), 2u);
  EXPECT_EQ(max_faults(10), 3u);
  EXPECT_EQ(max_faults(160), 53u);
  EXPECT_EQ(quorum_size(4, 1), 3u);
  EXPECT_EQ(quorum_size(160, 53), 107u);
}

TEST(Error, RequireThrowsProtocolViolation) {
  EXPECT_THROW(DELPHI_REQUIRE(false, "nope"), ProtocolViolation);
  EXPECT_NO_THROW(DELPHI_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace delphi
