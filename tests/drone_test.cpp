/// Tests for the drone application: the detection/GPS error models (Fig 5
/// structure), fleet observations, and end-to-end 2-D localization via two
/// Delphi instances.

#include <gtest/gtest.h>

#include <cmath>

#include "drone/detection.hpp"
#include "drone/localize.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"
#include "tests/test_util.hpp"

namespace delphi::drone {
namespace {

TEST(Detection, IoUStatisticsMatchPaper) {
  DetectionModel model{DetectionConfig{}};
  Rng rng(1);
  std::vector<double> ious(80'000);
  for (auto& v : ious) v = model.sample_iou(rng);
  const auto s = stats::summarize(ious);
  // Paper Fig 5: mean IoU 0.87, P(IoU < 0.6) ≈ 0.37 %.
  EXPECT_NEAR(s.mean, 0.87, 0.01);
  std::size_t below = 0;
  for (double v : ious) below += (v < 0.6);
  const double frac = static_cast<double>(below) / ious.size();
  EXPECT_LT(frac, 0.01);
  EXPECT_GT(frac, 0.0001);
}

TEST(Detection, IoULossIsGammaShaped) {
  // Fig 5's methodology: Gamma fits the IoU data better than Fréchet.
  DetectionModel model{DetectionConfig{}};
  Rng rng(2);
  std::vector<double> loss(20'000);
  for (auto& v : loss) v = 1.0 - model.sample_iou(rng);
  const auto fits = stats::best_fit(loss, {"Gamma", "Frechet"});
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits.front().family, "Gamma");
}

TEST(Detection, GpsErrorMatchesFaaEnvelope) {
  DetectionModel model{DetectionConfig{}};
  Rng rng(3);
  std::vector<double> mags(100'000);
  for (auto& v : mags) v = model.sample_gps_error(rng).norm();
  const auto s = stats::summarize(mags);
  // FAA: mean ~1.3 m, < 5 m essentially always.
  EXPECT_NEAR(s.mean, 1.3, 0.1);
  std::size_t above5 = 0;
  for (double v : mags) above5 += (v > 5.0);
  EXPECT_LT(static_cast<double>(above5) / mags.size(), 2e-3);
}

TEST(Detection, ObservationsClusterAroundGroundTruth) {
  DetectionModel model{DetectionConfig{}};
  Rng rng(4);
  const Vec2 gt{120.0, -45.0};
  const auto obs = fleet_observations(model, gt, 2'000, rng);
  double sum_err = 0.0, max_err = 0.0;
  for (const auto& o : obs) {
    const double e = (o - gt).norm();
    sum_err += e;
    max_err = std::max(max_err, e);
  }
  // Paper: expected per-coordinate error ~2 m, rarely above ~10.5 m.
  EXPECT_LT(sum_err / obs.size(), 4.0);
  EXPECT_LT(max_err, 15.0);
}

TEST(Localization, FleetAgreesNearGroundTruth) {
  const std::size_t n = 7;
  DetectionModel model{DetectionConfig{}};
  Rng rng(5);
  const Vec2 gt{250.0, -100.0};
  const auto obs = fleet_observations(model, gt, n, rng);

  LocalizationProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.params = protocol::DelphiParams::drone_cps();

  sim::Simulator sim(test::adversarial_config(n, 71));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<LocalizationProtocol>(cfg, obs[i]));
  }
  ASSERT_TRUE(sim.run());

  std::vector<double> xs, ys;
  for (NodeId i = 0; i < n; ++i) {
    const auto pos = sim.node_as<LocalizationProtocol>(i).position();
    ASSERT_TRUE(pos.has_value());
    xs.push_back(pos->x);
    ys.push_back(pos->y);
  }
  // eps-agreement per coordinate.
  EXPECT_LE(test::spread(xs), cfg.params.eps);
  EXPECT_LE(test::spread(ys), cfg.params.eps);
  // Validity: near the observations, hence near ground truth.
  std::vector<double> in_x, in_y;
  for (const auto& o : obs) {
    in_x.push_back(o.x);
    in_y.push_back(o.y);
  }
  const auto sx = stats::summarize(in_x);
  const auto sy = stats::summarize(in_y);
  const double relax_x = std::max(cfg.params.rho0, sx.range());
  const double relax_y = std::max(cfg.params.rho0, sy.range());
  for (double x : xs) {
    EXPECT_GE(x, sx.min - relax_x - 1e-9);
    EXPECT_LE(x, sx.max + relax_x + 1e-9);
  }
  for (double y : ys) {
    EXPECT_GE(y, sy.min - relax_y - 1e-9);
    EXPECT_LE(y, sy.max + relax_y + 1e-9);
  }
  // End-to-end: the agreed position is close to the true car location.
  const Vec2 agreed{xs[0], ys[0]};
  EXPECT_LT((agreed - gt).norm(), 10.0);
}

TEST(Localization, ToleratesCrashedDrones) {
  const std::size_t n = 7;
  DetectionModel model{DetectionConfig{}};
  Rng rng(6);
  const Vec2 gt{-30.0, 80.0};
  const auto obs = fleet_observations(model, gt, n, rng);
  const auto byz = sim::last_t_byzantine(n, max_faults(n));

  LocalizationProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.params = protocol::DelphiParams::drone_cps();

  sim::Simulator sim(test::adversarial_config(n, 72));
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      sim.add_node(std::make_unique<LocalizationProtocol>(cfg, obs[i]));
    }
  }
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) continue;
    const auto pos = sim.node_as<LocalizationProtocol>(i).position();
    ASSERT_TRUE(pos.has_value());
    EXPECT_LT((*pos - gt).norm(), 10.0);
  }
}

TEST(Localization, LyingDroneCannotHijackThePosition) {
  // A Byzantine drone reports a position 500 m away (runs honest code with a
  // poisoned observation). The fleet's agreed position must stay near the
  // honest cluster.
  const std::size_t n = 7;
  DetectionModel model{DetectionConfig{}};
  Rng rng(7);
  const Vec2 gt{0.0, 0.0};
  auto obs = fleet_observations(model, gt, n, rng);
  obs[n - 1] = Vec2{500.0, 500.0};

  LocalizationProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.params = protocol::DelphiParams::drone_cps();

  sim::Simulator sim(test::adversarial_config(n, 73));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<LocalizationProtocol>(cfg, obs[i]));
  }
  sim.set_byzantine({static_cast<NodeId>(n - 1)});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 1 < n; ++i) {
    const auto pos = sim.node_as<LocalizationProtocol>(i).position();
    ASSERT_TRUE(pos.has_value());
    EXPECT_LT((*pos - gt).norm(), 15.0);
  }
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  const Vec2 b = a + Vec2{1.0, -1.0};
  EXPECT_DOUBLE_EQ(b.x, 4.0);
  EXPECT_DOUBLE_EQ(b.y, 3.0);
  const Vec2 c = b - a;
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, -1.0);
}

}  // namespace
}  // namespace delphi::drone
