/// Active-attacker tests against a live TCP cluster: keyless sockets racing
/// the mesh bring-up with garbage hellos, forged node-id claims, and junk
/// frames. The authenticated hello (pairwise HMAC) must keep every
/// legitimate link intact and the protocol run unaffected.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "dolev/dolev.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"
#include "tests/test_util.hpp"

namespace delphi::transport {
namespace {

/// Fire-and-forget raw bytes at 127.0.0.1:port (connect failures ignored —
/// the attacker may lose the race entirely, which is also a pass).
void poke(std::uint16_t port, const std::vector<std::uint8_t>& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    (void)!::write(fd, bytes.data(), bytes.size());
    // Linger briefly so the victim actually reads the bytes.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::close(fd);
}

std::vector<std::uint8_t> forged_hello(NodeId claimed_id, bool with_tag) {
  ByteWriter w;
  w.u32(0x44504849);  // correct magic
  w.u32(claimed_id);
  if (with_tag) {
    // An attacker without the pairwise key can only guess the tag.
    for (std::size_t i = 0; i < crypto::kMacTagSize; ++i) w.u8(0x99);
  }
  return w.take();
}

TEST(TcpAttack, ClusterSurvivesHelloForgeryAndGarbage) {
  const std::size_t n = 6;
  dolev::DolevProtocol::Config cfg;
  cfg.n = n;
  cfg.t = 1;
  cfg.rounds = 6;
  std::vector<double> inputs = {10.0, 11.0, 12.0, 13.0, 14.0, 15.0};

  TcpCluster::Options opts;
  opts.n = n;
  opts.auth = true;
  opts.timeout_ms = 30'000;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<dolev::DolevProtocol>(cfg, inputs[i]);
      },
      decoders::dolev());

  // Race the bring-up: against every node, claim the highest id with a
  // forged tag, claim an out-of-range id, and send plain garbage.
  std::vector<std::thread> attackers;
  for (NodeId i = 0; i < n; ++i) {
    const std::uint16_t port = cluster.port(i);
    attackers.emplace_back([port] {
      poke(port, forged_hello(5, /*with_tag=*/true));
      poke(port, forged_hello(99, /*with_tag=*/true));
      poke(port, {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x02, 0x03});
    });
  }
  for (auto& t : attackers) t.join();

  ASSERT_TRUE(cluster.wait());
  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p =
        dynamic_cast<const dolev::DolevProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.output_value().has_value());
    outputs.push_back(*p.output_value());
  }
  // Strict convex validity despite the attack: the attacker never obtained
  // a link, so the honest run is untouched.
  for (double o : outputs) {
    EXPECT_GE(o, 10.0);
    EXPECT_LE(o, 15.0);
  }
  EXPECT_LE(test::spread(outputs), 5.0 / 64.0 + 1e-12);
}

TEST(TcpAttack, SlowLorisHelloDoesNotBlockTheMesh) {
  // An attacker that connects and sends *half* a hello, then stalls: the
  // accept loop must keep servicing genuine peers around it.
  const std::size_t kStalledConns = 4;
  dolev::DolevProtocol::Config cfg;
  cfg.n = 6;
  cfg.t = 1;
  cfg.rounds = 3;

  TcpCluster::Options opts;
  opts.n = 6;
  opts.auth = true;
  opts.timeout_ms = 30'000;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<dolev::DolevProtocol>(cfg, 100.0 + i);
      },
      decoders::dolev());

  std::vector<int> stalled;
  for (NodeId i = 0; i < kStalledConns; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cluster.port(i));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const std::uint8_t half[4] = {0x49, 0x48, 0x50, 0x44};
      (void)!::write(fd, half, sizeof(half));
      stalled.push_back(fd);  // never completed; held open
    } else {
      ::close(fd);
    }
  }

  EXPECT_TRUE(cluster.wait());
  for (int fd : stalled) ::close(fd);
}

TEST(TcpAttack, FaultedTcpRunsStillTerminate) {
  // Declarative-fault stress on the real data plane: crash-silent top ids,
  // garbage-spraying and crash-after Byzantine nodes. Honest nodes must
  // terminate (garbage frames are dropped as malformed, dead links are
  // closed, the event loops must not wedge on either).
  struct Case {
    const char* protocol;
    std::size_t n;
    std::size_t crashes;
    const char* byzantine;
  };
  // Fault budgets stay within each protocol's resilience: delphi tolerates
  // t = (n-1)/3 (n = 7 → 2 faults), dolev t = (n-1)/5, rbc t = (n-1)/3.
  const std::vector<Case> cases = {
      {"delphi", 7, 1, "garbage:48:1"},
      {"dolev", 6, 0, "crash-after:10:1"},
      {"rbc", 5, 1, "none"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.protocol);
    scenario::ScenarioSpec spec;
    spec.protocol = c.protocol;
    spec.substrate = scenario::Substrate::kTcp;
    spec.n = c.n;
    spec.seed = 13;
    spec.crashes = c.crashes;
    spec.byzantine = scenario::parse_byzantine(c.byzantine);
    if (spec.protocol == std::string("dolev")) spec.params["rounds"] = 6;
    const auto rep = scenario::TcpRuntime().run(spec);
    EXPECT_TRUE(rep.ok) << "unfinished honest nodes: " << rep.unfinished.size();
    EXPECT_TRUE(rep.unfinished.empty());
    const std::size_t faulted = c.crashes + spec.byzantine.k;
    EXPECT_EQ(rep.outputs.size(), c.n - faulted);
  }
}

}  // namespace
}  // namespace delphi::transport
