/// Tests for the oracle-network application: the synthetic price feed's
/// statistics (Fig 4 structure), node observations, and the DORA attested
/// output layer (§V): certificate validity, at-most-two-outputs, rounding
/// relaxation.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "oracle/dora.hpp"
#include "oracle/feed.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"
#include "tests/test_util.hpp"

namespace delphi::oracle {
namespace {

TEST(PriceFeed, SnapshotShapeAndRange) {
  PriceFeed feed(FeedConfig{}, Rng(1));
  const auto prices = feed.next_minute();
  ASSERT_EQ(prices.size(), 10u);
  const auto s = stats::summarize(prices);
  EXPECT_NEAR(s.range(), feed.last_range(), 1e-9);
  EXPECT_NEAR(s.mean, feed.mid(), feed.last_range());
}

TEST(PriceFeed, RangesFollowTheFittedFrechet) {
  // Two weeks of minutes; the realized delta histogram must fit
  // Fréchet(4.41, 29.3) better than Gumbel — exactly Fig 4's finding.
  const auto deltas = range_history(FeedConfig{}, 20'160, /*seed=*/7);
  const auto fits = stats::best_fit(deltas, {"Frechet", "Gumbel"});
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits.front().family, "Frechet");
  const auto* frechet = dynamic_cast<const stats::Frechet*>(fits[0].dist.get());
  ASSERT_NE(frechet, nullptr);
  EXPECT_NEAR(frechet->alpha(), 4.41, 0.5);
  EXPECT_NEAR(frechet->scale(), 29.3, 2.0);
}

TEST(PriceFeed, TailQuantilesMatchPaper) {
  // Paper: delta < 100$ for ~99.2% of minutes; delta < 300$ for ~100%.
  const auto deltas = range_history(FeedConfig{}, 20'160, /*seed=*/8);
  std::size_t below100 = 0, below300 = 0;
  for (double d : deltas) {
    below100 += (d < 100.0);
    below300 += (d < 300.0);
  }
  const double f100 = static_cast<double>(below100) / deltas.size();
  const double f300 = static_cast<double>(below300) / deltas.size();
  EXPECT_GT(f100, 0.97);
  EXPECT_LT(f100, 0.9999);
  EXPECT_GT(f300, 0.999);
}

TEST(PriceFeed, MidPriceWalks) {
  PriceFeed feed(FeedConfig{}, Rng(3));
  const double start = feed.mid();
  for (int i = 0; i < 1000; ++i) feed.next_minute();
  EXPECT_NE(feed.mid(), start);
  EXPECT_GT(feed.mid(), start * 0.5);
  EXPECT_LT(feed.mid(), start * 2.0);
}

TEST(PriceFeed, NodeObservationWithinSnapshot) {
  PriceFeed feed(FeedConfig{}, Rng(4));
  const auto prices = feed.next_minute();
  Rng rng(5);
  for (std::size_t queries : {1u, 3u, 10u}) {
    const double obs = node_observation(prices, queries, rng);
    const auto s = stats::summarize(prices);
    EXPECT_GE(obs, s.min);
    EXPECT_LE(obs, s.max);
  }
}

// -------------------------------------------------------------------- DORA --

class DoraTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 7;
  crypto::KeyStore keys_{0xD0AA, kN};
  crypto::Attestor attestor_{keys_, /*session=*/1};

  DoraProtocol::Config dora_cfg() {
    DoraProtocol::Config c;
    c.delphi.n = kN;
    c.delphi.t = max_faults(kN);
    protocol::DelphiParams p;
    p.space_min = 0.0;
    p.space_max = 100'000.0;
    p.rho0 = 2.0;
    p.eps = 2.0;
    p.delta_max = 512.0;
    c.delphi.params = p;
    c.attestor = &attestor_;
    return c;
  }
};

TEST_F(DoraTest, CertifiedOutputWithValidCertificate) {
  sim::Simulator sim(test::adversarial_config(kN, 61));
  std::vector<double> inputs = {40'000.0, 40'004.0, 40'008.0, 40'002.0,
                                40'006.0, 40'001.0, 40'007.0};
  for (NodeId i = 0; i < kN; ++i) {
    sim.add_node(std::make_unique<DoraProtocol>(dora_cfg(), inputs[i]));
  }
  ASSERT_TRUE(sim.run());

  std::set<double> outputs;
  for (NodeId i = 0; i < kN; ++i) {
    const auto& node = sim.node_as<DoraProtocol>(i);
    const auto v = node.output_value();
    ASSERT_TRUE(v.has_value());
    outputs.insert(*v);
    // Each certificate verifies with threshold t+1.
    EXPECT_TRUE(attestor_.verify(node.certificate(), max_faults(kN) + 1));
    // Certified value is a multiple of eps.
    EXPECT_DOUBLE_EQ(std::fmod(*v, 2.0), 0.0);
  }
  // Paper Table III: Delphi+DORA can certify at most two (adjacent) outputs.
  EXPECT_LE(outputs.size(), 2u);
  if (outputs.size() == 2) {
    EXPECT_NEAR(*outputs.rbegin() - *outputs.begin(), 2.0, 1e-9);
  }
  // Rounding adds at most eps to the validity relaxation.
  const auto s = stats::summarize(inputs);
  const double relax = std::max(2.0, s.range()) + 2.0;
  for (double v : outputs) {
    EXPECT_GE(v, s.min - relax);
    EXPECT_LE(v, s.max + relax);
  }
}

TEST_F(DoraTest, ToleratesCrashFaults) {
  const auto byz = sim::last_t_byzantine(kN, max_faults(kN));
  sim::Simulator sim(test::adversarial_config(kN, 62));
  for (NodeId i = 0; i < kN; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      sim.add_node(std::make_unique<DoraProtocol>(dora_cfg(),
                                                  50'000.0 + i * 1.5));
    }
  }
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < kN; ++i) {
    if (byz.contains(i)) continue;
    EXPECT_TRUE(
        attestor_.verify(sim.node_as<DoraProtocol>(i).certificate(),
                         max_faults(kN) + 1));
  }
}

TEST_F(DoraTest, ForgedSharesNeverCertify) {
  // A Byzantine node spams forged attestation shares for a bogus value; no
  // honest node may ever assemble a certificate for it.
  class Forger final : public net::Protocol {
   public:
    void on_start(net::Context& ctx) override {
      for (int rep = 0; rep < 3; ++rep) {
        ctx.broadcast(0xD0, std::make_shared<AttestMessage>(
                                777'777, crypto::Digest{}));
      }
    }
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return true; }
  };

  sim::Simulator sim(test::adversarial_config(kN, 63));
  for (NodeId i = 0; i + 1 < kN; ++i) {
    sim.add_node(std::make_unique<DoraProtocol>(dora_cfg(),
                                                60'000.0 + i * 1.0));
  }
  sim.add_node(std::make_unique<Forger>());
  sim.set_byzantine({static_cast<NodeId>(kN - 1)});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 1 < kN; ++i) {
    const auto v = sim.node_as<DoraProtocol>(i).output_value();
    ASSERT_TRUE(v.has_value());
    EXPECT_NE(*v, 777'777.0 * 2.0);
    EXPECT_NEAR(*v, 60'000.0, 600.0);
  }
}

TEST(DoraMessage, CodecRoundTrip) {
  crypto::Digest tag{};
  tag[0] = 0xAA;
  tag[31] = 0x55;
  AttestMessage msg(-12345, tag);
  ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size(), msg.wire_size());
  ByteReader r(w.data());
  auto d = AttestMessage::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(d->value_index(), -12345);
  EXPECT_EQ(d->tag(), tag);
}

}  // namespace
}  // namespace delphi::oracle
