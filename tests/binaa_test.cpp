/// Tests for BinAA (Algorithm 1): termination, binary validity, eps-agreement
/// with the exact dyadic arithmetic, behaviour under crash / equivocation /
/// garbage adversaries, the per-round range-halving property, and the
/// plain/compact codecs with the VAL delta-code reconstruction.

#include <gtest/gtest.h>

#include <cmath>

#include "binaa/core.hpp"
#include "binaa/delta_codec.hpp"
#include "binaa/message.hpp"
#include "binaa/protocol.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::binaa {
namespace {

BinAaProtocol::Config proto_cfg(std::size_t n, std::uint32_t r_max) {
  BinAaProtocol::Config c;
  c.core = BinAaCore::Config{n, max_faults(n), r_max};
  return c;
}

struct BinAaParam {
  std::size_t n;
  std::uint32_t r_max;
  std::uint64_t seed;
  int pattern;  // 0 all-zero, 1 all-one, 2 split, 3 single-one
};

class BinAaSweep : public ::testing::TestWithParam<BinAaParam> {};

TEST_P(BinAaSweep, TerminationValidityAgreement) {
  const auto [n, r_max, seed, pattern] = GetParam();
  std::vector<bool> inputs(n);
  for (NodeId i = 0; i < n; ++i) {
    switch (pattern) {
      case 0: inputs[i] = false; break;
      case 1: inputs[i] = true; break;
      case 2: inputs[i] = (i % 2 == 1); break;
      default: inputs[i] = (i == 0); break;
    }
  }
  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed), [&](NodeId i) {
        return std::make_unique<BinAaProtocol>(proto_cfg(n, r_max), inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_EQ(outcome.honest_outputs.size(), n);

  // eps-agreement with eps = 2^-r_max (exact dyadic arithmetic).
  const double eps = std::ldexp(1.0, -static_cast<int>(r_max));
  EXPECT_LE(test::spread(outcome.honest_outputs), eps);

  // Binary convex validity.
  for (double v : outcome.honest_outputs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  if (pattern == 0) {
    for (double v : outcome.honest_outputs) EXPECT_EQ(v, 0.0);
  }
  if (pattern == 1) {
    for (double v : outcome.honest_outputs) EXPECT_EQ(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinAaSweep,
    ::testing::Values(BinAaParam{4, 8, 1, 2}, BinAaParam{4, 8, 2, 3},
                      BinAaParam{4, 8, 3, 0}, BinAaParam{4, 8, 4, 1},
                      BinAaParam{7, 10, 5, 2}, BinAaParam{7, 10, 6, 3},
                      BinAaParam{7, 4, 7, 2}, BinAaParam{10, 12, 8, 2},
                      BinAaParam{13, 10, 9, 3}, BinAaParam{16, 8, 10, 2},
                      BinAaParam{7, 1, 11, 2}, BinAaParam{7, 20, 12, 2}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_r" +
             std::to_string(test_info.param.r_max) + "_s" +
             std::to_string(test_info.param.seed) + "_p" +
             std::to_string(test_info.param.pattern);
    });

TEST(BinAa, ToleratesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 7;
    const std::size_t t = max_faults(n);
    const auto byz = sim::last_t_byzantine(n, t);
    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) {
        sim.add_node(std::make_unique<sim::SilentProtocol>());
      } else {
        sim.add_node(
            std::make_unique<BinAaProtocol>(proto_cfg(n, 10), i % 2 == 0));
      }
    }
    sim.set_byzantine(byz);
    ASSERT_TRUE(sim.run()) << "seed " << seed;
    std::vector<double> outs;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      outs.push_back(*sim.node_as<BinAaProtocol>(i).output_value());
    }
    EXPECT_LE(test::spread(outs), std::ldexp(1.0, -10)) << "seed " << seed;
  }
}

TEST(BinAa, EquivocatorCannotBreakAgreementOrValidity) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 7;
    const std::uint32_t r_max = 10;
    sim::Simulator sim(test::adversarial_config(n, seed));
    std::vector<bool> inputs = {false, true, false, true, false, true};
    for (NodeId i = 0; i + 1 < n; ++i) {
      sim.add_node(std::make_unique<BinAaProtocol>(proto_cfg(n, r_max),
                                                   inputs[i]));
    }
    sim.add_node(std::make_unique<test::BinAaEquivocator>(r_max, 0));
    sim.set_byzantine({static_cast<NodeId>(n - 1)});
    ASSERT_TRUE(sim.run()) << "seed " << seed;
    std::vector<double> outs;
    for (NodeId i = 0; i + 1 < n; ++i) {
      outs.push_back(*sim.node_as<BinAaProtocol>(i).output_value());
    }
    EXPECT_LE(test::spread(outs), std::ldexp(1.0, -10)) << "seed " << seed;
    for (double v : outs) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(BinAa, GarbageValuesIgnored) {
  // Feed the core non-dyadic / out-of-range echoes directly: they must not
  // perturb state or produce actions.
  BinAaCore core(BinAaCore::Config{4, 1, 8});
  std::vector<EchoAction> out;
  core.start(true, out);
  out.clear();
  core.on_echo(1, 1, /*non-dyadic=*/3, 1, out);              // granularity 256
  core.on_echo(1, 1, -5, 1, out);                            // negative
  core.on_echo(1, 1, core.scale() + 1, 1, out);              // above scale
  core.on_echo(1, 99, 0, 1, out);                            // bad round
  core.on_echo(7, 1, 0, 1, out);                             // bad kind
  core.on_echo(1, 1, 0, 99, out);                            // bad sender
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(core.current_round(), 1u);
}

TEST(BinAa, PerSenderEchoCapLimitsByzantineMultivoting) {
  BinAaCore core(BinAaCore::Config{4, 1, 4});
  std::vector<EchoAction> out;
  core.start(false, out);
  out.clear();
  // Sender 1 votes three distinct round-1 values; only two may count, and
  // neither can be amplified with t+1 = 2 senders (only sender 1 voted).
  core.on_echo(1, 1, 0, 1, out);
  core.on_echo(1, 1, core.scale(), 1, out);
  core.on_echo(1, 1, core.scale() / 2, 1, out);  // non-dyadic for r1 anyway
  EXPECT_TRUE(out.empty());
}

TEST(BinAa, RangeHalvesEachRound) {
  // Drive two synchronized honest cohorts and check the dyadic state spread
  // after each full exchange halves: outputs after r rounds differ by at most
  // scale / 2^r. We approximate by running with increasing r_max.
  double prev_spread = 1.1;
  for (std::uint32_t r_max : {1u, 2u, 3u, 4u, 5u, 6u}) {
    auto outcome = sim::run_nodes(
        test::async_config(4, 99), [&](NodeId i) {
          return std::make_unique<BinAaProtocol>(proto_cfg(4, r_max),
                                                 i % 2 == 0);
        });
    ASSERT_TRUE(outcome.all_honest_terminated);
    const double spread = test::spread(outcome.honest_outputs);
    EXPECT_LE(spread, std::ldexp(1.0, -static_cast<int>(r_max)));
    EXPECT_LE(spread, prev_spread);
    prev_spread = spread;
  }
}

TEST(BinAa, OutputsAreDyadicWithExpectedGranularity) {
  auto outcome = sim::run_nodes(
      test::async_config(7, 5), [&](NodeId i) {
        return std::make_unique<BinAaProtocol>(proto_cfg(7, 6), i < 3);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double v : outcome.honest_outputs) {
    const double scaled = v * 64.0;  // 2^6
    EXPECT_EQ(scaled, std::floor(scaled));  // exact dyadic output
  }
}

TEST(BinAa, CompactCodecShrinksWire) {
  EchoMessage plain(1, 5, 1234, /*compact=*/false);
  EchoMessage compact(1, 5, 1234, /*compact=*/true);
  EXPECT_LT(compact.wire_size(), plain.wire_size());
}

TEST(BinAa, EchoCodecRoundTrip) {
  EchoMessage msg(2, 7, -42);
  ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size(), msg.wire_size());
  ByteReader r(w.data());
  auto d = EchoMessage::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(d->kind(), 2);
  EXPECT_EQ(d->round(), 7u);
  EXPECT_EQ(d->value(), -42);
}

TEST(BinAa, DeltaCodecReconstructsStateTrajectories) {
  // Property: for every node in a real BinAA run, the sequence of per-round
  // state values is losslessly transmissible as initial bit + 3-bit moves —
  // this justifies the compact codec's size accounting (paper §II-C).
  const std::size_t n = 7;
  const std::uint32_t r_max = 10;
  sim::Simulator sim(test::adversarial_config(n, 17));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<BinAaProtocol>(proto_cfg(n, r_max), i < 4));
  }
  ASSERT_TRUE(sim.run());
  // Reconstruct via a second, synchronized pair of encoders/decoders fed with
  // a synthetic legal trajectory derived from the final outputs: walk from
  // the initial value toward the final output with legal moves.
  for (NodeId i = 0; i < n; ++i) {
    const auto& core = sim.node_as<BinAaProtocol>(i).core();
    const ScaledValue scale = core.scale();
    DeltaEncoder enc(r_max);
    DeltaDecoder dec(r_max);
    ScaledValue value = (i < 4) ? scale : 0;
    EXPECT_EQ(dec.decode_initial(enc.encode_initial(value, scale), scale),
              value);
    // Legal trajectory: at round r the state may move by {-2..2} * g(r).
    Rng rng(i + 1);
    for (std::uint32_t r = 2; r <= r_max; ++r) {
      const ScaledValue unit = scale >> (r - 1);
      ScaledValue next = value + (rng.range(-2, 2)) * unit;
      next = std::clamp<ScaledValue>(next, 0, scale);
      const auto code = enc.encode(r, next, scale);
      ASSERT_TRUE(code.has_value());
      EXPECT_EQ(dec.decode(r, *code, scale), next);
      value = next;
    }
  }
}

TEST(BinAa, DeltaCodecRejectsIllegalMoves) {
  DeltaEncoder enc(8);
  const ScaledValue scale = 256;
  enc.encode_initial(0, scale);
  EXPECT_FALSE(enc.encode(2, 3 * (scale >> 1), scale).has_value());  // 3 steps
  EXPECT_FALSE(enc.encode(1, 0, scale).has_value());   // round too low
  EXPECT_FALSE(enc.encode(9, 0, scale).has_value());   // round too high
  EXPECT_FALSE(enc.encode(2, 1, scale).has_value());   // non-multiple
}

TEST(BinAa, ConfigValidation) {
  EXPECT_THROW(BinAaCore(BinAaCore::Config{3, 1, 8}), InternalError);
  EXPECT_THROW(BinAaCore(BinAaCore::Config{4, 1, 0}), InternalError);
  EXPECT_THROW(BinAaCore(BinAaCore::Config{4, 1, 63}), InternalError);
}

TEST(BinAa, OutputBeforeTerminationThrows) {
  BinAaCore core(BinAaCore::Config{4, 1, 8});
  EXPECT_THROW((void)core.output(), InternalError);
}

}  // namespace
}  // namespace delphi::binaa
