/// Decoder robustness ("fuzz-lite") suite: every wire decoder in the repo is
/// fed (a) random bytes, (b) truncated prefixes of valid encodings, and
/// (c) bit-flipped valid encodings. The contract: decoders either return a
/// well-formed message or throw SerializationError/ProtocolViolation — never
/// crash, hang, or over-allocate. This is the property that lets honest
/// nodes treat arbitrary Byzantine bytes safely.
///
/// The UDP datagram path rides the same harness (data + ack codecs under
/// truncation/flips/garbage) plus its own properties: a tampered or
/// renumbered authenticated datagram must fail the MAC (the tag covers the
/// sequence number), and SeqFilter must deliver each seq exactly once no
/// matter how datagrams are duplicated or reordered.

#include <gtest/gtest.h>

#include <functional>

#include "aba/aba.hpp"
#include "abraham/abraham.hpp"
#include "benor/benor.hpp"
#include "binaa/message.hpp"
#include "common/rng.hpp"
#include "delphi/message.hpp"
#include "dolev/dolev.hpp"
#include "oracle/dora.hpp"
#include "oracle/dora_baseline.hpp"
#include "rbc/rbc.hpp"
#include "transport/frame.hpp"
#include "transport/udp.hpp"

namespace delphi {
namespace {

using Decoder = std::function<void(ByteReader&)>;

struct DecoderCase {
  const char* name;
  Decoder decode;
  std::vector<std::uint8_t> valid;  // one known-good encoding
};

std::vector<DecoderCase> all_decoders() {
  std::vector<DecoderCase> cases;

  {
    rbc::RbcMessage m(rbc::RbcMessage::Kind::kEcho, {1, 2, 3});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"rbc", [](ByteReader& r) { rbc::RbcMessage::decode(r); },
                     w.take()});
  }
  {
    aba::AbaMessage m(aba::AbaMessage::Kind::kAux, 3, true);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"aba", [](ByteReader& r) { aba::AbaMessage::decode(r); },
                     w.take()});
  }
  {
    binaa::EchoMessage m(1, 5, 12345);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"binaa",
                     [](ByteReader& r) { binaa::EchoMessage::decode(r); },
                     w.take()});
  }
  {
    protocol::DelphiBundle m({{0, 1, 1, 0}}, {{1, 7, 2, 3, 64}});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"delphi_bundle",
                     [](ByteReader& r) { protocol::DelphiBundle::decode(r); },
                     w.take()});
  }
  {
    abraham::WitnessMessage m(2, {0, 1, 3});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"witness",
                     [](ByteReader& r) { abraham::WitnessMessage::decode(r); },
                     w.take()});
  }
  {
    oracle::AttestMessage m(99, crypto::Digest{});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"attest",
                     [](ByteReader& r) { oracle::AttestMessage::decode(r); },
                     w.take()});
  }
  {
    oracle::SignedValueMessage m(1.5, crypto::Digest{});
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dora_signed",
         [](ByteReader& r) { oracle::SignedValueMessage::decode(r); },
         w.take()});
  }
  {
    oracle::ValueListMessage m({{0, 1.0, crypto::Digest{}}});
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dora_list",
         [](ByteReader& r) { oracle::ValueListMessage::decode(r); },
         w.take()});
  }
  {
    dolev::RoundValueMessage m(4, 2.25);
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dolev",
         [](ByteReader& r) { dolev::RoundValueMessage::decode(r); },
         w.take()});
  }
  {
    benor::BenOrMessage m(benor::BenOrMessage::Kind::kPropose, 9,
                          benor::kBottom);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"benor",
                     [](ByteReader& r) { benor::BenOrMessage::decode(r); },
                     w.take()});
  }
  {
    // The TCP frame parser as a "decoder": consume one whole stream. A
    // static key keeps the lambda capture-free like the other cases.
    static const crypto::Key key = [] {
      crypto::Key k{};
      k.fill(0x5A);
      return k;
    }();
    const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
    cases.push_back({"tcp_frame",
                     [](ByteReader& r) {
                       transport::FrameParser p(&key);
                       p.feed(r.raw(r.remaining()));
                       while (p.next().has_value()) {
                       }
                     },
                     transport::encode_frame(3, payload, &key)});
  }
  {
    // UDP data datagram (authenticated): kind | seq | frame | seq-covering
    // tag. A static key keeps the lambda capture-free.
    static const crypto::HmacKey udp_key = [] {
      crypto::Key k{};
      k.fill(0xC3);
      return crypto::HmacKey(k);
    }();
    const std::vector<std::uint8_t> payload = {4, 5, 6, 7, 8};
    const auto body = transport::encode_frame_body(2, payload, /*auth=*/true);
    const auto tag = transport::udp_frame_tag(udp_key, 11, *body);
    cases.push_back({"udp_data",
                     [](ByteReader& r) {
                       transport::decode_datagram(r.raw(r.remaining()),
                                                  &udp_key);
                     },
                     transport::encode_data_datagram(11, *body, &tag)});
  }
  {
    // UDP ack datagram (authenticated): kind | cum | sack list | tag.
    static const crypto::HmacKey udp_ack_key = [] {
      crypto::Key k{};
      k.fill(0x96);
      return crypto::HmacKey(k);
    }();
    const std::uint32_t sacks[] = {5, 7, 9};
    cases.push_back({"udp_ack",
                     [](ByteReader& r) {
                       transport::decode_datagram(r.raw(r.remaining()),
                                                  &udp_ack_key);
                     },
                     transport::encode_ack_datagram(3, sacks, &udp_ack_key)});
  }
  {
    // Plaintext UDP data datagram: structural checks only, no MAC.
    const std::vector<std::uint8_t> payload = {1, 2, 3};
    const auto body = transport::encode_frame_body(0, payload, /*auth=*/false);
    cases.push_back({"udp_data_plain",
                     [](ByteReader& r) {
                       transport::decode_datagram(r.raw(r.remaining()),
                                                  nullptr);
                     },
                     transport::encode_data_datagram(0, *body, nullptr)});
  }
  return cases;
}

/// Run a decoder over input; pass iff it returns or throws a project error.
void expect_graceful(const DecoderCase& c,
                     const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  try {
    c.decode(r);
  } catch (const Error&) {
    // SerializationError / ProtocolViolation: the defined failure mode.
  }
  // Anything else (std::bad_alloc, segfault, infinite loop) fails the test
  // by crashing or timing out.
}

TEST(FuzzDecode, RandomBytes) {
  Rng rng(0xF022);
  for (const auto& c : all_decoders()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::vector<std::uint8_t> junk(rng.below(96));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
      expect_graceful(c, junk);
    }
  }
}

TEST(FuzzDecode, TruncatedPrefixes) {
  for (const auto& c : all_decoders()) {
    for (std::size_t len = 0; len < c.valid.size(); ++len) {
      std::vector<std::uint8_t> prefix(c.valid.begin(),
                                       c.valid.begin() + len);
      expect_graceful(c, prefix);
    }
  }
}

TEST(FuzzDecode, SingleBitFlips) {
  for (const auto& c : all_decoders()) {
    for (std::size_t byte = 0; byte < c.valid.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = c.valid;
        mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
        expect_graceful(c, mutated);
      }
    }
  }
}

TEST(FuzzDecode, HugeClaimedCountsDontAllocate) {
  // Length fields claiming astronomical sizes must be rejected before any
  // allocation (each decoder validates counts against remaining bytes).
  for (const auto& c : all_decoders()) {
    ByteWriter w;
    w.uvarint((1ULL << 50));
    w.u8(0);
    expect_graceful(c, w.data());
  }
}

TEST(FuzzDecode, ValidEncodingsStillDecodeAfterSuite) {
  // Sanity: the canonical encodings do decode (the suite isn't vacuous).
  for (const auto& c : all_decoders()) {
    ByteReader r(c.valid);
    EXPECT_NO_THROW(c.decode(r)) << c.name;
  }
}

// ------------------------------------------------------ udp datagram path

TEST(UdpDatagram, RenumberedOrTamperedDatagramFailsAuthentication) {
  // The UDP tag covers the sequence number, so a replayed datagram under a
  // different seq (or any payload tamper) must fail the MAC — not decode as
  // a fresh frame.
  crypto::Key k{};
  k.fill(0x42);
  const crypto::HmacKey key(k);
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  const auto body = transport::encode_frame_body(1, payload, /*auth=*/true);
  const auto tag = transport::udp_frame_tag(key, 7, *body);
  auto valid = transport::encode_data_datagram(7, *body, &tag);
  EXPECT_NO_THROW(transport::decode_datagram(valid, &key));

  auto renumbered = valid;
  renumbered[1] ^= 0x01;  // seq byte: replay under a different number
  EXPECT_THROW(transport::decode_datagram(renumbered, &key),
               ProtocolViolation);

  auto tampered = valid;
  tampered[valid.size() - crypto::kMacTagSize - 1] ^= 0x80;  // payload byte
  EXPECT_THROW(transport::decode_datagram(tampered, &key), ProtocolViolation);
}

TEST(UdpDatagram, HugeSackCountRejectedBeforeAllocation) {
  ByteWriter w;
  w.u8(transport::kDatagramAck);
  w.u32(0);
  w.uvarint(1ULL << 40);  // astronomical claimed sack count
  const auto bytes = w.take();
  EXPECT_THROW(transport::decode_datagram(bytes, nullptr),
               SerializationError);
}

TEST(UdpSeqFilter, DupAndReorderNeverMisdeliver) {
  // Shuffle seqs 0..199 with every one duplicated three times: each must be
  // accepted exactly once, in any arrival order, and the cumulative floor
  // must reach 200 at the end.
  Rng rng(0xD06);
  std::vector<std::uint32_t> arrivals;
  for (std::uint32_t s = 0; s < 200; ++s) {
    for (int copy = 0; copy < 3; ++copy) arrivals.push_back(s);
  }
  for (std::size_t i = arrivals.size(); i > 1; --i) {
    std::swap(arrivals[i - 1], arrivals[rng.below(i)]);
  }
  transport::SeqFilter filter;
  std::vector<int> accepted(200, 0);
  for (const auto s : arrivals) {
    if (filter.accept(s)) ++accepted[s];
  }
  for (std::uint32_t s = 0; s < 200; ++s) {
    ASSERT_EQ(accepted[s], 1) << "seq " << s;
  }
  EXPECT_EQ(filter.cum(), 200u);
  EXPECT_EQ(filter.pending(), 0u);
}

}  // namespace
}  // namespace delphi
