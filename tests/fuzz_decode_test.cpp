/// Decoder robustness ("fuzz-lite") suite: every wire decoder in the repo is
/// fed (a) random bytes, (b) truncated prefixes of valid encodings, and
/// (c) bit-flipped valid encodings. The contract: decoders either return a
/// well-formed message or throw SerializationError/ProtocolViolation — never
/// crash, hang, or over-allocate. This is the property that lets honest
/// nodes treat arbitrary Byzantine bytes safely.

#include <gtest/gtest.h>

#include <functional>

#include "aba/aba.hpp"
#include "abraham/abraham.hpp"
#include "benor/benor.hpp"
#include "binaa/message.hpp"
#include "common/rng.hpp"
#include "delphi/message.hpp"
#include "dolev/dolev.hpp"
#include "oracle/dora.hpp"
#include "oracle/dora_baseline.hpp"
#include "rbc/rbc.hpp"
#include "transport/frame.hpp"

namespace delphi {
namespace {

using Decoder = std::function<void(ByteReader&)>;

struct DecoderCase {
  const char* name;
  Decoder decode;
  std::vector<std::uint8_t> valid;  // one known-good encoding
};

std::vector<DecoderCase> all_decoders() {
  std::vector<DecoderCase> cases;

  {
    rbc::RbcMessage m(rbc::RbcMessage::Kind::kEcho, {1, 2, 3});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"rbc", [](ByteReader& r) { rbc::RbcMessage::decode(r); },
                     w.take()});
  }
  {
    aba::AbaMessage m(aba::AbaMessage::Kind::kAux, 3, true);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"aba", [](ByteReader& r) { aba::AbaMessage::decode(r); },
                     w.take()});
  }
  {
    binaa::EchoMessage m(1, 5, 12345);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"binaa",
                     [](ByteReader& r) { binaa::EchoMessage::decode(r); },
                     w.take()});
  }
  {
    protocol::DelphiBundle m({{0, 1, 1, 0}}, {{1, 7, 2, 3, 64}});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"delphi_bundle",
                     [](ByteReader& r) { protocol::DelphiBundle::decode(r); },
                     w.take()});
  }
  {
    abraham::WitnessMessage m(2, {0, 1, 3});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"witness",
                     [](ByteReader& r) { abraham::WitnessMessage::decode(r); },
                     w.take()});
  }
  {
    oracle::AttestMessage m(99, crypto::Digest{});
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"attest",
                     [](ByteReader& r) { oracle::AttestMessage::decode(r); },
                     w.take()});
  }
  {
    oracle::SignedValueMessage m(1.5, crypto::Digest{});
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dora_signed",
         [](ByteReader& r) { oracle::SignedValueMessage::decode(r); },
         w.take()});
  }
  {
    oracle::ValueListMessage m({{0, 1.0, crypto::Digest{}}});
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dora_list",
         [](ByteReader& r) { oracle::ValueListMessage::decode(r); },
         w.take()});
  }
  {
    dolev::RoundValueMessage m(4, 2.25);
    ByteWriter w;
    m.serialize(w);
    cases.push_back(
        {"dolev",
         [](ByteReader& r) { dolev::RoundValueMessage::decode(r); },
         w.take()});
  }
  {
    benor::BenOrMessage m(benor::BenOrMessage::Kind::kPropose, 9,
                          benor::kBottom);
    ByteWriter w;
    m.serialize(w);
    cases.push_back({"benor",
                     [](ByteReader& r) { benor::BenOrMessage::decode(r); },
                     w.take()});
  }
  {
    // The TCP frame parser as a "decoder": consume one whole stream. A
    // static key keeps the lambda capture-free like the other cases.
    static const crypto::Key key = [] {
      crypto::Key k{};
      k.fill(0x5A);
      return k;
    }();
    const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
    cases.push_back({"tcp_frame",
                     [](ByteReader& r) {
                       transport::FrameParser p(&key);
                       p.feed(r.raw(r.remaining()));
                       while (p.next().has_value()) {
                       }
                     },
                     transport::encode_frame(3, payload, &key)});
  }
  return cases;
}

/// Run a decoder over input; pass iff it returns or throws a project error.
void expect_graceful(const DecoderCase& c,
                     const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  try {
    c.decode(r);
  } catch (const Error&) {
    // SerializationError / ProtocolViolation: the defined failure mode.
  }
  // Anything else (std::bad_alloc, segfault, infinite loop) fails the test
  // by crashing or timing out.
}

TEST(FuzzDecode, RandomBytes) {
  Rng rng(0xF022);
  for (const auto& c : all_decoders()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::vector<std::uint8_t> junk(rng.below(96));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
      expect_graceful(c, junk);
    }
  }
}

TEST(FuzzDecode, TruncatedPrefixes) {
  for (const auto& c : all_decoders()) {
    for (std::size_t len = 0; len < c.valid.size(); ++len) {
      std::vector<std::uint8_t> prefix(c.valid.begin(),
                                       c.valid.begin() + len);
      expect_graceful(c, prefix);
    }
  }
}

TEST(FuzzDecode, SingleBitFlips) {
  for (const auto& c : all_decoders()) {
    for (std::size_t byte = 0; byte < c.valid.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = c.valid;
        mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
        expect_graceful(c, mutated);
      }
    }
  }
}

TEST(FuzzDecode, HugeClaimedCountsDontAllocate) {
  // Length fields claiming astronomical sizes must be rejected before any
  // allocation (each decoder validates counts against remaining bytes).
  for (const auto& c : all_decoders()) {
    ByteWriter w;
    w.uvarint((1ULL << 50));
    w.u8(0);
    expect_graceful(c, w.data());
  }
}

TEST(FuzzDecode, ValidEncodingsStillDecodeAfterSuite) {
  // Sanity: the canonical encodings do decode (the suite isn't vacuous).
  for (const auto& c : all_decoders()) {
    ByteReader r(c.valid);
    EXPECT_NO_THROW(c.decode(r)) << c.name;
  }
}

}  // namespace
}  // namespace delphi
