/// Tests for the Delphi protocol (Algorithm 2): termination, eps-agreement,
/// relaxed validity (Theorem IV.3), the level-weight mechanics (Lemma IV.2 /
/// Theorem IV.1), bundled-communication behaviour, and Byzantine resistance
/// (crash, garbage, value poisoning, checkpoint spam).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "delphi/delphi.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::protocol {
namespace {

DelphiParams small_params(double delta_max = 64.0) {
  DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = delta_max;
  return p;
}

DelphiProtocol::Config proto_cfg(std::size_t n, const DelphiParams& p) {
  DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = p;
  return c;
}

/// Check the paper's guarantees over the honest inputs/outputs.
void expect_guarantees(const std::vector<double>& inputs,
                       const std::vector<double>& outputs,
                       const DelphiParams& p, const std::string& tag) {
  ASSERT_FALSE(outputs.empty()) << tag;
  const auto [mn_it, mx_it] = std::minmax_element(inputs.begin(), inputs.end());
  const double delta = *mx_it - *mn_it;
  const double relax = std::max(p.rho0, delta);
  // eps-agreement (Theorem IV.4).
  EXPECT_LE(test::spread(outputs), p.eps) << tag;
  // Relaxed min-max validity (Theorem IV.3).
  for (double o : outputs) {
    EXPECT_GE(o, *mn_it - relax - 1e-9) << tag;
    EXPECT_LE(o, *mx_it + relax + 1e-9) << tag;
  }
}

struct DelphiCase {
  std::size_t n;
  std::uint64_t seed;
  double center;
  double spread;  // honest inputs uniform in [center - spread/2, ...]
};

class DelphiSweep : public ::testing::TestWithParam<DelphiCase> {};

TEST_P(DelphiSweep, TerminationAgreementValidity) {
  const auto [n, seed, center, input_spread] = GetParam();
  const DelphiParams p = small_params();
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) {
    v = center + rng.uniform(-input_spread / 2, input_spread / 2);
  }
  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed), [&](NodeId i) {
        return std::make_unique<DelphiProtocol>(proto_cfg(n, p), inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_EQ(outcome.honest_outputs.size(), n);
  expect_guarantees(inputs, outcome.honest_outputs, p,
                    "n=" + std::to_string(n) + " seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DelphiSweep,
    ::testing::Values(
        DelphiCase{4, 1, 500.0, 0.5},    // tightly clustered
        DelphiCase{4, 2, 500.0, 8.0},    // spread over several checkpoints
        DelphiCase{4, 3, 500.0, 50.0},   // near Delta
        DelphiCase{7, 4, 100.0, 3.0},
        DelphiCase{7, 5, 100.0, 30.0},
        DelphiCase{7, 6, 997.0, 2.0},    // at the space edge
        DelphiCase{7, 7, 2.0, 3.0},      // at the lower edge
        DelphiCase{10, 8, 700.0, 10.0},
        DelphiCase{13, 9, 300.0, 20.0},
        DelphiCase{16, 10, 450.0, 5.0}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_s" +
             std::to_string(test_info.param.seed) + "_w" +
             std::to_string(static_cast<int>(test_info.param.spread));
    });

TEST(Delphi, IdenticalInputsStayWithinRho0) {
  const DelphiParams p = small_params();
  auto outcome = sim::run_nodes(
      test::adversarial_config(7, 33), [&](NodeId) {
        return std::make_unique<DelphiProtocol>(proto_cfg(7, p), 250.0);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outcome.honest_outputs) {
    EXPECT_NEAR(o, 250.0, p.rho0 + 1e-9);
  }
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
}

TEST(Delphi, InputOnACheckpointIsReproducedExactly) {
  // All honest on checkpoint 500 (a multiple of every rho_l): the weighted
  // average should come out at exactly 500 (weight 1 at that checkpoint).
  const DelphiParams p = small_params(/*delta_max=*/8.0);
  auto outcome = sim::run_nodes(
      test::async_config(4, 3), [&](NodeId) {
        return std::make_unique<DelphiProtocol>(proto_cfg(4, p), 500.0);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outcome.honest_outputs) EXPECT_NEAR(o, 500.0, p.rho0);
}

TEST(Delphi, LevelWeightsSumAtLeastHalf) {
  // Theorem IV.1: sum of w'_l >= 1/2 whenever delta <= Delta.
  const DelphiParams p = small_params();
  sim::Simulator sim(test::async_config(7, 44));
  Rng rng(44);
  std::vector<double> inputs(7);
  for (auto& v : inputs) v = 400.0 + rng.uniform(0.0, 20.0);
  for (NodeId i = 0; i < 7; ++i) {
    sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(7, p), inputs[i]));
  }
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < 7; ++i) {
    const auto& reports = sim.node_as<DelphiProtocol>(i).level_reports();
    double sum = 0.0;
    for (const auto& r : reports) sum += r.weight_prime;
    EXPECT_GE(sum, 0.5);
  }
}

TEST(Delphi, HighLevelsCarryNoWeightWhenInputsAreTight) {
  // Lemma IV.2: for l > ceil(log2(delta/rho0)), w'_l = 0 — the
  // differentiation trick kills coarse levels.
  const DelphiParams p = small_params();
  sim::Simulator sim(test::async_config(7, 45));
  // All inputs within delta = 2 => phi = 1; levels >= 3 must have w' ~ 0.
  std::vector<double> inputs = {600.0, 600.5, 601.0, 601.5,
                                600.2, 600.9, 601.3};
  for (NodeId i = 0; i < 7; ++i) {
    sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(7, p), inputs[i]));
  }
  ASSERT_TRUE(sim.run());
  const double eps_prime = p.eps_prime(7);
  for (NodeId i = 0; i < 7; ++i) {
    const auto& reports = sim.node_as<DelphiProtocol>(i).level_reports();
    for (std::size_t l = 3; l < reports.size(); ++l) {
      EXPECT_LE(reports[l].weight_prime, 5 * eps_prime)
          << "node " << i << " level " << l;
    }
  }
}

TEST(Delphi, ActiveInstancesStayNearHonestRange) {
  // Communication efficiency hinges on only O(delta/rho_l + const)
  // checkpoints materializing per level.
  const DelphiParams p = small_params();
  sim::Simulator sim(test::async_config(7, 46));
  std::vector<double> inputs = {500.0, 501.0, 502.0, 503.0,
                                504.0, 505.0, 506.0};
  for (NodeId i = 0; i < 7; ++i) {
    sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(7, p), inputs[i]));
  }
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < 7; ++i) {
    const auto& node = sim.node_as<DelphiProtocol>(i);
    for (std::uint32_t l = 0; l < p.num_levels(); ++l) {
      const double width = 6.0 / p.rho(l);  // delta / rho_l
      EXPECT_LE(node.active_instances(l),
                static_cast<std::size_t>(width) + 4)
          << "level " << l;
    }
  }
}

TEST(Delphi, ToleratesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 7;
    const DelphiParams p = small_params();
    const auto byz = sim::last_t_byzantine(n, max_faults(n));
    std::vector<double> inputs(n);
    Rng rng(seed + 100);
    for (auto& v : inputs) v = 300.0 + rng.uniform(0.0, 10.0);

    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) {
        sim.add_node(std::make_unique<sim::SilentProtocol>());
      } else {
        sim.add_node(
            std::make_unique<DelphiProtocol>(proto_cfg(n, p), inputs[i]));
      }
    }
    sim.set_byzantine(byz);
    ASSERT_TRUE(sim.run()) << "seed " << seed;

    std::vector<double> honest_inputs, outputs;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      honest_inputs.push_back(inputs[i]);
      outputs.push_back(*sim.node_as<DelphiProtocol>(i).output_value());
    }
    expect_guarantees(honest_inputs, outputs, p,
                      "crash seed=" + std::to_string(seed));
  }
}

TEST(Delphi, ToleratesGarbageSprayers) {
  const std::size_t n = 7;
  const DelphiParams p = small_params();
  sim::Simulator sim(test::async_config(n, 51));
  std::vector<double> inputs = {800.0, 800.4, 800.9, 801.3, 801.8};
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(n, p), inputs[i]));
  }
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  std::vector<double> outputs;
  for (NodeId i = 0; i + 2 < n; ++i) {
    outputs.push_back(*sim.node_as<DelphiProtocol>(i).output_value());
  }
  expect_guarantees(inputs, outputs, p, "garbage");
}

TEST(Delphi, ByzantineExtremeInputCannotDragOutput) {
  // Byzantine nodes run the honest code with inputs far outside the honest
  // cluster: no checkpoint near them can reach a positive weight, so the
  // relaxed-validity interval around the *honest* inputs must still hold.
  const std::size_t n = 7;
  const DelphiParams p = small_params();
  sim::Simulator sim(test::adversarial_config(n, 52));
  std::vector<double> honest_inputs = {200.0, 200.5, 201.0, 201.5, 202.0};
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(
        std::make_unique<DelphiProtocol>(proto_cfg(n, p), honest_inputs[i]));
  }
  sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(n, p), 950.0));
  sim.add_node(std::make_unique<DelphiProtocol>(proto_cfg(n, p), 5.0));
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  std::vector<double> outputs;
  for (NodeId i = 0; i + 2 < n; ++i) {
    outputs.push_back(*sim.node_as<DelphiProtocol>(i).output_value());
  }
  expect_guarantees(honest_inputs, outputs, p, "extreme-byz");
}

/// Byzantine node that spams explicit entries for hundreds of checkpoints.
class CheckpointSpammer final : public net::Protocol {
 public:
  explicit CheckpointSpammer(std::uint32_t r_max) : r_max_(r_max) {}
  void on_start(net::Context& ctx) override {
    std::vector<ExplicitEcho> ex;
    const binaa::ScaledValue scale = binaa::ScaledValue{1} << r_max_;
    for (std::int64_t k = 0; k < 500; ++k) {
      ex.push_back(ExplicitEcho{0, k * 2, 1, 1, scale});
    }
    ctx.broadcast(0, std::make_shared<DelphiBundle>(std::vector<DefaultEcho>{},
                                                    std::move(ex)));
  }
  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {}
  bool terminated() const override { return true; }

 private:
  std::uint32_t r_max_;
};

TEST(Delphi, CheckpointSpamIsBudgetBounded) {
  const std::size_t n = 7;
  const DelphiParams p = small_params();

  auto run_with = [&](bool spam) {
    sim::Simulator sim(test::async_config(n, 53));
    std::vector<double> inputs = {400.0, 400.2, 400.4, 400.6, 400.8, 401.0};
    for (NodeId i = 0; i + 1 < n; ++i) {
      sim.add_node(
          std::make_unique<DelphiProtocol>(proto_cfg(n, p), inputs[i]));
    }
    if (spam) {
      sim.add_node(std::make_unique<CheckpointSpammer>(
          DelphiProtocol(proto_cfg(n, p), 400.0).r_max()));
    } else {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    }
    sim.set_byzantine({static_cast<NodeId>(n - 1)});
    EXPECT_TRUE(sim.run());
    std::uint64_t honest_bytes = 0;
    std::vector<double> outputs;
    for (NodeId i = 0; i + 1 < n; ++i) {
      honest_bytes += sim.node_metrics(i).bytes_sent;
      outputs.push_back(*sim.node_as<DelphiProtocol>(i).output_value());
    }
    expect_guarantees(inputs, outputs, p, spam ? "spam" : "baseline");
    return honest_bytes;
  };

  const auto baseline = run_with(false);
  const auto spammed = run_with(true);
  // The mention budget caps the blowup: well under the 500 instances the
  // attacker requested (budget is ~132 at level 0 for Delta=64).
  EXPECT_LT(spammed, baseline * 40);
}

TEST(Delphi, BundleCodecRoundTrip) {
  std::vector<DefaultEcho> defs = {{0, 1, 1, 0}, {3, 2, 5, 0}};
  std::vector<ExplicitEcho> exps = {{0, 500, 1, 1, 1024},
                                    {2, -17, 2, 3, 0},
                                    {6, 15, 1, 9, 4096}};
  DelphiBundle bundle(defs, exps);
  ByteWriter w;
  bundle.serialize(w);
  EXPECT_EQ(w.size(), bundle.wire_size());
  ByteReader r(w.data());
  auto d = DelphiBundle::decode(r);
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(d->defaults().size(), 2u);
  ASSERT_EQ(d->explicits().size(), 3u);
  EXPECT_EQ(d->explicits()[1].k, -17);
  EXPECT_EQ(d->explicits()[2].value, 4096);
  EXPECT_EQ(d->defaults()[1].level, 3u);
}

TEST(Delphi, BundleDecodeRejectsOverflowCounts) {
  ByteWriter w;
  w.uvarint(1'000'000);  // claims a million defaults with no bytes
  ByteReader r(w.data());
  EXPECT_THROW(DelphiBundle::decode(r), Error);
}

TEST(Delphi, DeterministicAcrossRuns) {
  const DelphiParams p = small_params();
  auto run_once = [&]() {
    auto outcome = sim::run_nodes(
        test::adversarial_config(7, 99), [&](NodeId i) {
          return std::make_unique<DelphiProtocol>(proto_cfg(7, p),
                                                  100.0 + i * 0.75);
        });
    return std::make_pair(outcome.honest_outputs,
                          outcome.metrics.total_bytes);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Delphi, InputOutsideSpaceRejected) {
  const DelphiParams p = small_params();
  EXPECT_THROW(DelphiProtocol(proto_cfg(4, p), -5.0), ConfigError);
  EXPECT_THROW(DelphiProtocol(proto_cfg(4, p), 1e9), ConfigError);
}

TEST(Delphi, WorksWithNegativeInputSpace) {
  DelphiParams p = small_params();
  p.space_min = -1000.0;
  p.space_max = 0.0;
  auto outcome = sim::run_nodes(
      test::async_config(4, 7), [&](NodeId i) {
        return std::make_unique<DelphiProtocol>(proto_cfg(4, p),
                                                -330.0 - i * 0.5);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  std::vector<double> inputs = {-330.0, -330.5, -331.0, -331.5};
  expect_guarantees(inputs, outcome.honest_outputs, p, "negative-space");
}

TEST(Delphi, SingleLevelConfiguration) {
  DelphiParams p = small_params(/*delta_max=*/1.0);  // l_M = 0
  auto outcome = sim::run_nodes(
      test::async_config(4, 8), [&](NodeId i) {
        return std::make_unique<DelphiProtocol>(proto_cfg(4, p),
                                                500.0 + i * 0.1);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  std::vector<double> inputs = {500.0, 500.1, 500.2, 500.3};
  expect_guarantees(inputs, outcome.honest_outputs, p, "single-level");
}

}  // namespace
}  // namespace delphi::protocol
