/// Determinism regression gate for the simulator engine: the same SimConfig +
/// seed must produce bit-identical SimMetrics, per-node metrics, and honest
/// outputs across repeated runs — under every fifo_links / auth_channels
/// toggle combination and for every protocol family the benches exercise
/// (Delphi, Abraham et al., FIN-style ACS). Any engine change that perturbs
/// event ordering, RNG draw order, or cost rounding fails here loudly.

#include <gtest/gtest.h>

#include <vector>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "crypto/coin.hpp"
#include "delphi/delphi.hpp"
#include "scenario/runtime.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::sim {
namespace {

/// Everything observable from one run, collected field-by-field so that a
/// mismatch pinpoints what drifted.
struct RunTrace {
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events = 0;
  SimTime honest_completion = -1;
  bool all_honest_terminated = false;
  std::vector<std::uint64_t> node_msgs_sent;
  std::vector<std::uint64_t> node_bytes_sent;
  std::vector<std::uint64_t> node_msgs_delivered;
  std::vector<SimTime> node_terminated_at;
  std::vector<double> outputs;
};

RunTrace trace_run(const SimConfig& cfg, const ProtocolFactory& factory,
                   const std::set<NodeId>& byzantine = {}) {
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) sim.add_node(factory(i));
  sim.set_byzantine(byzantine);
  RunTrace t;
  t.all_honest_terminated = sim.run();
  t.total_msgs = sim.metrics().total_msgs;
  t.total_bytes = sim.metrics().total_bytes;
  t.events = sim.metrics().events_processed;
  t.honest_completion = sim.metrics().honest_completion;
  for (NodeId i = 0; i < cfg.n; ++i) {
    const NodeMetrics& m = sim.node_metrics(i);
    t.node_msgs_sent.push_back(m.msgs_sent);
    t.node_bytes_sent.push_back(m.bytes_sent);
    t.node_msgs_delivered.push_back(m.msgs_delivered);
    t.node_terminated_at.push_back(m.terminated_at);
    if (const auto* vo = dynamic_cast<const net::ValueOutput*>(&sim.node(i))) {
      if (auto v = vo->output_value()) t.outputs.push_back(*v);
    }
  }
  return t;
}

/// Bit-identical comparison (doubles compared with ==: the contract is exact
/// reproducibility, not approximate agreement).
void expect_identical(const RunTrace& a, const RunTrace& b,
                      const std::string& tag) {
  EXPECT_EQ(a.total_msgs, b.total_msgs) << tag;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << tag;
  EXPECT_EQ(a.events, b.events) << tag;
  EXPECT_EQ(a.honest_completion, b.honest_completion) << tag;
  EXPECT_EQ(a.all_honest_terminated, b.all_honest_terminated) << tag;
  EXPECT_EQ(a.node_msgs_sent, b.node_msgs_sent) << tag;
  EXPECT_EQ(a.node_bytes_sent, b.node_bytes_sent) << tag;
  EXPECT_EQ(a.node_msgs_delivered, b.node_msgs_delivered) << tag;
  EXPECT_EQ(a.node_terminated_at, b.node_terminated_at) << tag;
  EXPECT_EQ(a.outputs, b.outputs) << tag;
}

protocol::DelphiProtocol::Config delphi_cfg(std::size_t n) {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 64.0;
  protocol::DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = p;
  return c;
}

const std::vector<double>& delphi_inputs() {
  static const std::vector<double> inputs = {100.0, 105.5, 103.25, 101.0,
                                             99.75, 104.0,  102.5};
  return inputs;
}

SimConfig cps_config(std::size_t n, std::uint64_t seed, bool fifo, bool auth) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.latency = std::make_shared<CpsLanLatency>();
  cfg.cost = CostModel::cps();
  cfg.fifo_links = fifo;
  cfg.auth_channels = auth;
  return cfg;
}

TEST(Determinism, DelphiBitIdenticalUnderEveryToggleCombination) {
  const std::size_t n = 7;
  auto factory = [&](NodeId i) {
    return std::make_unique<protocol::DelphiProtocol>(delphi_cfg(n),
                                                      delphi_inputs()[i]);
  };
  for (bool fifo : {false, true}) {
    for (bool auth : {false, true}) {
      const std::string tag = std::string("fifo=") + (fifo ? "1" : "0") +
                              " auth=" + (auth ? "1" : "0");
      const auto a = trace_run(cps_config(n, 42, fifo, auth), factory);
      const auto b = trace_run(cps_config(n, 42, fifo, auth), factory);
      EXPECT_TRUE(a.all_honest_terminated) << tag;
      expect_identical(a, b, tag);
      // A different seed must actually change the schedule (the test is not
      // vacuously comparing constants).
      const auto c = trace_run(cps_config(n, 43, fifo, auth), factory);
      EXPECT_NE(a.honest_completion, c.honest_completion) << tag;
    }
  }
}

TEST(Determinism, AuthTogglesBytesButNotScheduleUnderFreeCpu) {
  // With CostModel::fast() the HMAC tag costs no CPU and no serialization
  // time, so disabling auth_channels may only change byte accounting — the
  // event schedule, message counts, and outputs must match exactly.
  const std::size_t n = 7;
  auto factory = [&](NodeId i) {
    return std::make_unique<protocol::DelphiProtocol>(delphi_cfg(n),
                                                      delphi_inputs()[i]);
  };
  auto cfg_auth = cps_config(n, 7, /*fifo=*/false, /*auth=*/true);
  cfg_auth.cost = CostModel::fast();
  auto cfg_plain = cfg_auth;
  cfg_plain.auth_channels = false;

  const auto a = trace_run(cfg_auth, factory);
  const auto p = trace_run(cfg_plain, factory);
  EXPECT_TRUE(a.all_honest_terminated);
  EXPECT_EQ(a.total_msgs, p.total_msgs);
  EXPECT_EQ(a.events, p.events);
  EXPECT_EQ(a.honest_completion, p.honest_completion);
  EXPECT_EQ(a.node_msgs_delivered, p.node_msgs_delivered);
  EXPECT_EQ(a.outputs, p.outputs);
  // 32 tag bytes per network frame is the only difference.
  EXPECT_EQ(a.total_bytes, p.total_bytes + 32 * a.total_msgs);
}

TEST(Determinism, AbrahamBitIdenticalWithByzantineNode) {
  const std::size_t n = 7;
  abraham::AbrahamProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.rounds = 8;
  c.space_min = -1e6;
  c.space_max = 1e6;
  auto factory = [&](NodeId i) {
    return std::make_unique<abraham::AbrahamProtocol>(c, delphi_inputs()[i]);
  };
  const auto byz = last_t_byzantine(n, 1);
  const auto a = trace_run(cps_config(n, 11, false, true), factory, byz);
  const auto b = trace_run(cps_config(n, 11, false, true), factory, byz);
  EXPECT_TRUE(a.all_honest_terminated);
  expect_identical(a, b, "abraham");
}

TEST(Determinism, FinAcsBitIdenticalAcrossRuns) {
  const std::size_t n = 4;
  static const crypto::CommonCoin coin(0xDEC0DE);
  acs::AcsProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.coin = &coin;
  c.coin_compute_us = 1000;
  c.session = 9;
  auto factory = [&](NodeId i) {
    return std::make_unique<acs::AcsProtocol>(c, delphi_inputs()[i]);
  };
  const auto a = trace_run(cps_config(n, 21, false, true), factory);
  const auto b = trace_run(cps_config(n, 21, false, true), factory);
  EXPECT_TRUE(a.all_honest_terminated);
  expect_identical(a, b, "fin-acs");
}

TEST(Determinism, DeclarativeFaultPlaneBitIdentical) {
  // The whole fault plane through the scenario layer: network adversary +
  // Byzantine behaviour + crash, declared in the spec. Same spec + seed must
  // reproduce the unified RunReport exactly — the PR-2 determinism contract
  // extends to every faulted run (adversary draws share the network RNG, and
  // Byzantine wrappers draw from the node's own stream).
  for (const char* adversary :
       {"random-delay:40000", "targeted-lag:2:60000", "partition:2:300000",
        "burst:15000"}) {
    for (const char* byzantine : {"crash-after:20:1", "garbage:32:1"}) {
      SCOPED_TRACE(std::string(adversary) + " / " + byzantine);
      scenario::ScenarioSpec spec;
      spec.protocol = "delphi";
      spec.testbed = scenario::TestbedKind::kCps;
      spec.n = 9;
      spec.seed = 17;
      spec.crashes = 1;
      spec.adversary = scenario::parse_adversary(adversary);
      spec.byzantine = scenario::parse_byzantine(byzantine);
      const auto a = scenario::SimRuntime().run(spec);
      const auto b = scenario::SimRuntime().run(spec);
      EXPECT_TRUE(a.ok);
      EXPECT_EQ(a, b);  // RunReport == is field-exact
    }
  }
}

TEST(Determinism, AdversarialScheduleBitIdentical) {
  // The adversary draws from the shared network RNG; its draws interleave
  // with latency draws, so this pins the whole per-message RNG draw order.
  const std::size_t n = 7;
  auto factory = [&](NodeId i) {
    return std::make_unique<protocol::DelphiProtocol>(delphi_cfg(n),
                                                      delphi_inputs()[i]);
  };
  auto cfg = cps_config(n, 33, /*fifo=*/true, /*auth=*/true);
  cfg.adversary = std::make_shared<RandomDelayAdversary>(50'000);
  const auto a = trace_run(cfg, factory);
  const auto b = trace_run(cfg, factory);
  EXPECT_TRUE(a.all_honest_terminated);
  expect_identical(a, b, "adversarial");
}

}  // namespace
}  // namespace delphi::sim
