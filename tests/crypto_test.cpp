/// Tests for the crypto substrate: SHA-256 against FIPS/NIST vectors,
/// HMAC-SHA256 against RFC 4231, key store symmetry, common coin, and the
/// DORA attestation certificate logic.

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/certificate.hpp"
#include "crypto/coin.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace delphi::crypto {
namespace {

// ------------------------------------------------------------------ SHA256 --

TEST(Sha256, NistEmpty) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, NistAbc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistTwoBlock) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(to_hex(h.finalize()), to_hex(sha256(msg)));
  }
}

TEST(Sha256, PaddingBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string a(len, 'x');
    Sha256 one;
    one.update(a);
    Sha256 two;
    two.update(std::string_view(a).substr(0, len / 2));
    two.update(std::string_view(a).substr(len / 2));
    EXPECT_EQ(to_hex(one.finalize()), to_hex(two.finalize())) << len;
  }
}

// -------------------------------------------------------------------- HMAC --

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  const auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()),
               data.size()));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()),
               data.size()));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualConstantTimeSemantics) {
  Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// ---------------------------------------------------------------- KeyStore --

TEST(KeyStore, PairwiseSymmetric) {
  KeyStore ks(0xFEED, 8);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      EXPECT_EQ(ks.channel_key(i, j), ks.channel_key(j, i));
    }
  }
}

TEST(KeyStore, KeysDistinct) {
  KeyStore ks(0xFEED, 6);
  EXPECT_NE(ks.channel_key(0, 1), ks.channel_key(0, 2));
  EXPECT_NE(ks.channel_key(0, 1), ks.channel_key(1, 2));
  EXPECT_NE(ks.node_key(0), ks.node_key(1));
  EXPECT_NE(ks.node_key(0), ks.channel_key(0, 0));
}

TEST(KeyStore, DeterministicByMaster) {
  KeyStore a(42, 5), b(42, 5), c(43, 5);
  EXPECT_EQ(a.channel_key(1, 3), b.channel_key(1, 3));
  EXPECT_NE(a.channel_key(1, 3), c.channel_key(1, 3));
}

// -------------------------------------------------------------------- Coin --

TEST(CommonCoin, SameSeedAgrees) {
  CommonCoin a(777), b(777);
  for (std::uint64_t inst = 0; inst < 8; ++inst) {
    for (std::uint32_t r = 1; r < 8; ++r) {
      EXPECT_EQ(a.toss(inst, r), b.toss(inst, r));
    }
  }
}

TEST(CommonCoin, RoughlyFair) {
  CommonCoin coin(2024);
  int ones = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    ones += coin.toss(static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_GT(ones, trials / 2 - 200);
  EXPECT_LT(ones, trials / 2 + 200);
}

TEST(CommonCoin, ValueBelowBound) {
  CommonCoin coin(5);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_LT(coin.value(i, 1, 7), 7u);
  }
  EXPECT_EQ(coin.value(1, 1, 0), 0u);
}

// ------------------------------------------------------------- Certificate --

class CertificateTest : public ::testing::Test {
 protected:
  KeyStore keys_{0xC0FFEE, 7};
  Attestor attestor_{keys_, /*session_id=*/9};
};

TEST_F(CertificateTest, SignVerifyRoundTrip) {
  const auto share = attestor_.sign(3, 12345);
  EXPECT_TRUE(attestor_.verify(share));
}

TEST_F(CertificateTest, TamperedValueRejected) {
  auto share = attestor_.sign(3, 12345);
  share.value_index = 12346;
  EXPECT_FALSE(attestor_.verify(share));
}

TEST_F(CertificateTest, WrongSignerRejected) {
  auto share = attestor_.sign(3, 12345);
  share.signer = 4;
  EXPECT_FALSE(attestor_.verify(share));
  share.signer = 99;  // out of range
  EXPECT_FALSE(attestor_.verify(share));
}

TEST_F(CertificateTest, SessionSeparation) {
  Attestor other(keys_, /*session_id=*/10);
  const auto share = attestor_.sign(1, 5);
  EXPECT_FALSE(other.verify(share));  // replay across sessions fails
}

TEST_F(CertificateTest, AssembleRequiresThreshold) {
  std::vector<AttestationShare> shares;
  shares.push_back(attestor_.sign(0, 100));
  shares.push_back(attestor_.sign(1, 100));
  EXPECT_FALSE(attestor_.try_assemble(shares, 3).has_value());
  shares.push_back(attestor_.sign(2, 100));
  auto cert = attestor_.try_assemble(shares, 3);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->value_index, 100);
  EXPECT_TRUE(attestor_.verify(*cert, 3));
}

TEST_F(CertificateTest, DuplicateSignersDontCount) {
  std::vector<AttestationShare> shares;
  shares.push_back(attestor_.sign(0, 100));
  shares.push_back(attestor_.sign(0, 100));
  shares.push_back(attestor_.sign(0, 100));
  EXPECT_FALSE(attestor_.try_assemble(shares, 3).has_value());
}

TEST_F(CertificateTest, ForgedSharesDontCount) {
  std::vector<AttestationShare> shares;
  shares.push_back(attestor_.sign(0, 100));
  shares.push_back(attestor_.sign(1, 100));
  AttestationShare forged{2, 100, Digest{}};  // zero tag
  shares.push_back(forged);
  EXPECT_FALSE(attestor_.try_assemble(shares, 3).has_value());
}

TEST_F(CertificateTest, MixedValuesPickTheQuorum) {
  std::vector<AttestationShare> shares;
  shares.push_back(attestor_.sign(0, 100));
  shares.push_back(attestor_.sign(1, 101));
  shares.push_back(attestor_.sign(2, 101));
  shares.push_back(attestor_.sign(3, 101));
  auto cert = attestor_.try_assemble(shares, 3);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->value_index, 101);
  EXPECT_EQ(cert->shares.size(), 3u);  // succinct: exactly threshold
}

TEST_F(CertificateTest, CertificateVerifyRejectsMixedValues) {
  Certificate cert;
  cert.value_index = 100;
  cert.shares.push_back(attestor_.sign(0, 100));
  cert.shares.push_back(attestor_.sign(1, 101));  // wrong value inside
  cert.shares.push_back(attestor_.sign(2, 100));
  EXPECT_FALSE(attestor_.verify(cert, 3));
}

}  // namespace
}  // namespace delphi::crypto
