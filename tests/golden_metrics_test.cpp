/// Golden-value regression tests for the simulator engine: tiny fixed-seed
/// Delphi / Abraham / FIN-style-ACS runs checked against the exact traffic
/// totals, event counts, per-node termination times, and decided outputs the
/// engine produced when the goldens were recorded. Any accidental behavior
/// change in the event pipeline (ordering, RNG draw order, cost rounding,
/// byte accounting) fails here with a field-level diff.
///
/// Regenerating goldens after an *intentional* behavior change:
///   ./build/golden_metrics_test --gtest_also_run_disabled_tests
///       --gtest_filter='*RegenerateGoldens*'   (one command line)
/// then paste the printed kGoldens initializer over the one below.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "crypto/coin.hpp"
#include "delphi/delphi.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::sim {
namespace {

struct Observed {
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events = 0;
  SimTime honest_completion = -1;
  std::vector<SimTime> terminated_at;  // honest nodes, node-id order
  std::vector<double> outputs;         // honest nodes, node-id order
};

struct Golden {
  const char* name;
  std::uint64_t total_msgs;
  std::uint64_t total_bytes;
  std::uint64_t events;
  SimTime honest_completion;
  std::vector<SimTime> terminated_at;
  std::vector<double> outputs;
};

Observed observe(const SimConfig& cfg, const ProtocolFactory& factory,
                 const std::set<NodeId>& byzantine = {}) {
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) sim.add_node(factory(i));
  sim.set_byzantine(byzantine);
  EXPECT_TRUE(sim.run());
  Observed o;
  o.total_msgs = sim.metrics().total_msgs;
  o.total_bytes = sim.metrics().total_bytes;
  o.events = sim.metrics().events_processed;
  o.honest_completion = sim.metrics().honest_completion;
  for (NodeId i = 0; i < cfg.n; ++i) {
    if (byzantine.contains(i)) continue;
    o.terminated_at.push_back(sim.node_metrics(i).terminated_at);
    if (const auto* vo = dynamic_cast<const net::ValueOutput*>(&sim.node(i))) {
      if (auto v = vo->output_value()) o.outputs.push_back(*v);
    }
  }
  return o;
}

// ------------------------------------------------------------- scenarios --

const std::vector<double>& inputs7() {
  static const std::vector<double> in = {100.0, 105.5, 103.25, 101.0,
                                         99.75, 104.0,  102.5};
  return in;
}

SimConfig cps_config(std::size_t n, std::uint64_t seed, bool fifo) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.latency = std::make_shared<CpsLanLatency>();
  cfg.cost = CostModel::cps();
  cfg.fifo_links = fifo;
  return cfg;
}

protocol::DelphiProtocol::Config delphi_cfg(std::size_t n) {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 64.0;
  protocol::DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = p;
  return c;
}

Observed run_scenario(const std::string& name) {
  if (name == "delphi_cps_n7") {
    return observe(cps_config(7, 42, false), [](NodeId i) {
      return std::make_unique<protocol::DelphiProtocol>(delphi_cfg(7),
                                                        inputs7()[i]);
    });
  }
  if (name == "delphi_cps_fifo_n7") {
    return observe(cps_config(7, 42, true), [](NodeId i) {
      return std::make_unique<protocol::DelphiProtocol>(delphi_cfg(7),
                                                        inputs7()[i]);
    });
  }
  if (name == "abraham_cps_n7_byz1") {
    abraham::AbrahamProtocol::Config c;
    c.n = 7;
    c.t = max_faults(7);
    c.rounds = 8;
    c.space_min = -1e6;
    c.space_max = 1e6;
    return observe(
        cps_config(7, 11, false),
        [&](NodeId i) {
          return std::make_unique<abraham::AbrahamProtocol>(c, inputs7()[i]);
        },
        last_t_byzantine(7, 1));
  }
  if (name == "fin_acs_cps_n4") {
    static const crypto::CommonCoin coin(0xDEC0DE);
    acs::AcsProtocol::Config c;
    c.n = 4;
    c.t = max_faults(4);
    c.coin = &coin;
    c.coin_compute_us = 1000;
    c.session = 9;
    return observe(cps_config(4, 21, false), [&](NodeId i) {
      return std::make_unique<acs::AcsProtocol>(c, inputs7()[i]);
    });
  }
  ADD_FAILURE() << "unknown scenario " << name;
  return {};
}

// ------------------------------------------------------------- goldens ----
// Recorded from the engine at PR-1 state (pre-optimization baseline); the
// optimized engine must reproduce every field bit-for-bit. See the file
// header for the regeneration one-liner.

const std::vector<Golden>& goldens() {
  static const std::vector<Golden> kGoldens = {
      {"delphi_cps_n7", 16002u, 851658u, 18666u, 411930,
       {411457, 410367, 410171, 411359, 411027, 411930, 411022},
       {101.99999997693162, 102.00000004036967, 102.00000001441774,
        101.9999999884658, 101.99999997404807, 102.00000002306838,
        102.00000000576709}},
      {"delphi_cps_fifo_n7", 15990u, 877794u, 18652u, 411732,
       {410799, 410547, 409973, 410801, 410463, 411732, 410924},
       {101.99999997693162, 102.00000004036967, 102.00000001441774,
        101.9999999884658, 101.99999997404807, 102.00000002306838,
        102.00000000576709}},
      {"abraham_cps_n7_byz1", 5376u, 251664u, 6269u, 137856,
       {137856, 137856, 137856, 137856, 137856, 137856},
       {102.875, 102.875, 102.875, 102.875, 102.875, 102.875}},
      {"fin_acs_cps_n4", 360u, 15156u, 418u, 21865,
       {21387, 21864, 21865, 21611},
       {103.25, 103.25, 103.25, 103.25}},
  };
  return kGoldens;
}

TEST(GoldenMetrics, EngineMatchesCheckedInGoldens) {
  for (const Golden& g : goldens()) {
    SCOPED_TRACE(g.name);
    const Observed o = run_scenario(g.name);
    EXPECT_EQ(o.total_msgs, g.total_msgs);
    EXPECT_EQ(o.total_bytes, g.total_bytes);
    EXPECT_EQ(o.events, g.events);
    EXPECT_EQ(o.honest_completion, g.honest_completion);
    EXPECT_EQ(o.terminated_at, g.terminated_at);
    ASSERT_EQ(o.outputs.size(), g.outputs.size());
    for (std::size_t i = 0; i < o.outputs.size(); ++i) {
      EXPECT_EQ(o.outputs[i], g.outputs[i]) << "output " << i;
    }
  }
}

/// Prints the kGoldens initializer for the current engine (see file header).
TEST(GoldenMetrics, DISABLED_RegenerateGoldens) {
  std::printf("  static const std::vector<Golden> kGoldens = {\n");
  for (const Golden& g : goldens()) {
    const Observed o = run_scenario(g.name);
    std::printf("      {\"%s\", %lluu, %lluu, %lluu, %lld,\n       {",
                g.name, static_cast<unsigned long long>(o.total_msgs),
                static_cast<unsigned long long>(o.total_bytes),
                static_cast<unsigned long long>(o.events),
                static_cast<long long>(o.honest_completion));
    for (std::size_t i = 0; i < o.terminated_at.size(); ++i) {
      std::printf("%s%lld", i ? ", " : "",
                  static_cast<long long>(o.terminated_at[i]));
    }
    std::printf("},\n       {");
    for (std::size_t i = 0; i < o.outputs.size(); ++i) {
      std::printf("%s%.17g", i ? ", " : "", o.outputs[i]);
    }
    std::printf("}},\n");
  }
  std::printf("  };\n");
}

}  // namespace
}  // namespace delphi::sim
