/// Tests for Ben-Or local-coin binary agreement: validity on unanimous
/// inputs (one deterministic round), agreement + probabilistic termination on
/// split inputs, resilience precondition, fault tolerance, codec round-trip,
/// and the round-count contrast against the common-coin ABA.

#include <gtest/gtest.h>

#include <algorithm>

#include "benor/benor.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::benor {
namespace {

BenOrProtocol::Config benor_cfg(std::size_t n) {
  BenOrProtocol::Config c;
  c.n = n;
  c.t = (n - 1) / 5;
  return c;
}

std::vector<double> outputs_of(const sim::RunOutcome& out) {
  return out.honest_outputs;
}

// ------------------------------------------------------------- construction

TEST(BenOr, RejectsInsufficientResilience) {
  BenOrProtocol::Config c;
  c.n = 5;
  c.t = 1;
  EXPECT_THROW(BenOrProtocol(c, false), ConfigError);
  c.n = 6;
  EXPECT_NO_THROW(BenOrProtocol(c, false));
}

TEST(BenOrCodec, RoundTripAllKinds) {
  for (const auto kind :
       {BenOrMessage::Kind::kReport, BenOrMessage::Kind::kPropose,
        BenOrMessage::Kind::kFinish}) {
    const std::uint8_t value =
        kind == BenOrMessage::Kind::kPropose ? kBottom : 1;
    BenOrMessage m(kind, 17, value);
    ByteWriter w;
    m.serialize(w);
    EXPECT_EQ(w.size(), m.wire_size());
    ByteReader r(w.data());
    auto d = BenOrMessage::decode(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(d->kind(), kind);
    EXPECT_EQ(d->round(), 17u);
    EXPECT_EQ(d->value(), value);
  }
}

TEST(BenOrCodec, RejectsBadKind) {
  ByteWriter w;
  w.u8(9);
  w.uvarint(1);
  w.u8(0);
  ByteReader r(w.data());
  EXPECT_THROW(BenOrMessage::decode(r), ProtocolViolation);
}

// -------------------------------------------------------------- honest runs

class BenOrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenOrSweep, UnanimousInputDecidesThatValueFast) {
  const std::uint64_t seed = GetParam();
  for (const bool input : {false, true}) {
    const std::size_t n = 6;
    auto outcome = sim::run_nodes(test::async_config(n, seed), [&](NodeId) {
      return std::make_unique<BenOrProtocol>(benor_cfg(n), input);
    });
    ASSERT_TRUE(outcome.all_honest_terminated);
    for (double o : outputs_of(outcome)) {
      EXPECT_DOUBLE_EQ(o, input ? 1.0 : 0.0);
    }
  }
}

TEST_P(BenOrSweep, SplitInputsAgreeOnSomeInputValue) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  auto outcome =
      sim::run_nodes(test::adversarial_config(n, seed), [&](NodeId i) {
        return std::make_unique<BenOrProtocol>(benor_cfg(n), i % 2 == 0);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  const auto outs = outputs_of(outcome);
  ASSERT_FALSE(outs.empty());
  for (double o : outs) {
    EXPECT_DOUBLE_EQ(o, outs.front());  // agreement
    EXPECT_TRUE(o == 0.0 || o == 1.0);  // an input value (both were input)
  }
}

TEST_P(BenOrSweep, ToleratesSilentFaults) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  const auto cfg = benor_cfg(n);
  const auto byz = sim::last_t_byzantine(n, cfg.t);
  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) return std::make_unique<sim::SilentProtocol>();
        return std::make_unique<BenOrProtocol>(cfg, true);  // honest unanimous
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outputs_of(outcome)) EXPECT_DOUBLE_EQ(o, 1.0);
}

TEST_P(BenOrSweep, ToleratesGarbageSprayers) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 6;
  const auto cfg = benor_cfg(n);
  const auto byz = sim::last_t_byzantine(n, cfg.t);
  auto outcome = sim::run_nodes(
      test::async_config(n, seed),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) {
          return std::make_unique<sim::GarbageSprayProtocol>(2);
        }
        return std::make_unique<BenOrProtocol>(cfg, false);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outputs_of(outcome)) EXPECT_DOUBLE_EQ(o, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenOrSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(BenOr, UnanimityTerminatesInOneRound) {
  const std::size_t n = 6;
  sim::Simulator sim(test::async_config(n, 99));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<BenOrProtocol>(benor_cfg(n), true));
  }
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < n; ++i) {
    const auto& p = sim.node_as<BenOrProtocol>(i);
    // Decision falls in round 1; rounds_used may tick to 2 while the FINISH
    // quorum assembles.
    EXPECT_LE(p.rounds_used(), 2u);
  }
}

TEST(BenOr, SplitInputsUseMoreRoundsThanUnanimous) {
  // The local-coin price: split inputs need coin-alignment luck. Aggregate
  // over seeds so the comparison is statistical, not flaky: total rounds on
  // split inputs must exceed total rounds on unanimous inputs.
  const std::size_t n = 6;
  std::uint64_t unanimous_rounds = 0, split_rounds = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool split : {false, true}) {
      sim::Simulator sim(test::async_config(n, seed));
      for (NodeId i = 0; i < n; ++i) {
        const bool input = split ? (i % 2 == 0) : true;
        sim.add_node(std::make_unique<BenOrProtocol>(benor_cfg(n), input));
      }
      ASSERT_TRUE(sim.run());
      std::uint32_t max_rounds = 0;
      for (NodeId i = 0; i < n; ++i) {
        max_rounds = std::max(max_rounds,
                              sim.node_as<BenOrProtocol>(i).rounds_used());
      }
      (split ? split_rounds : unanimous_rounds) += max_rounds;
    }
  }
  EXPECT_GT(split_rounds, unanimous_rounds);
}

}  // namespace
}  // namespace delphi::benor
