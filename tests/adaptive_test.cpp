/// Tests for the adaptive ∆ estimator: option validation, warm-up fallback,
/// tail-quantile inversion against closed forms, family selection on
/// synthetic Gumbel/Fréchet feeds, coverage of the fitted bound, rolling-
/// window adaptation to drift, and DelphiParams assembly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adaptive/range_estimator.hpp"
#include "common/rng.hpp"
#include "stats/distributions.hpp"

namespace delphi::adaptive {
namespace {

RangeEstimator::Options small_options() {
  RangeEstimator::Options o;
  o.window = 4096;
  o.min_samples = 64;
  o.lambda_bits = 20.0;
  o.fallback_delta = 100.0;
  o.safety_factor = 1.0;
  o.refit_interval = 64;
  return o;
}

// ------------------------------------------------------------------ options

TEST(AdaptiveOptions, Validation) {
  auto bad = small_options();
  bad.window = 0;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.min_samples = 4;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.lambda_bits = 0.0;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.fallback_delta = 0.0;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.safety_factor = 0.5;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.refit_interval = 0;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  bad = small_options();
  bad.max_delta = 0.0;
  EXPECT_THROW(RangeEstimator{bad}, ConfigError);
  EXPECT_NO_THROW(RangeEstimator{small_options()});
}

TEST(AdaptiveObserve, RejectsInvalidSamples) {
  RangeEstimator est(small_options());
  EXPECT_THROW(est.observe(-1.0), ConfigError);
  EXPECT_THROW(est.observe(std::numeric_limits<double>::infinity()),
               ConfigError);
  EXPECT_NO_THROW(est.observe(0.0));
}

// ------------------------------------------------------------------ warm-up

TEST(AdaptiveWarmup, FallbackBeforeMinSamples) {
  RangeEstimator est(small_options());
  EXPECT_FALSE(est.warmed_up());
  EXPECT_DOUBLE_EQ(est.delta_bound(), 100.0);
  Rng rng(1);
  for (int i = 0; i < 63; ++i) est.observe(rng.uniform(5.0, 10.0));
  EXPECT_FALSE(est.warmed_up());
  EXPECT_DOUBLE_EQ(est.delta_bound(), 100.0);
  est.observe(7.0);
  EXPECT_TRUE(est.warmed_up());
  EXPECT_NE(est.delta_bound(), 100.0);  // fitted bound replaces the fallback
}

TEST(AdaptiveWarmup, ConstantFeedKeepsConservativeBound) {
  RangeEstimator est(small_options());
  for (int i = 0; i < 200; ++i) est.observe(25.0);
  // Degenerate window: bound must still cover the observed value.
  EXPECT_GE(est.delta_bound(), 25.0);
  EXPECT_FALSE(est.fitted_family().has_value());
}

// ------------------------------------------------------------ tail quantile

TEST(AdaptiveTail, MatchesFrechetClosedForm) {
  const stats::Frechet f(4.41, 29.3);
  const double lambda = 20.0;
  const double p = 1.0 - std::exp2(-lambda);
  const double expected = f.quantile(p);
  EXPECT_NEAR(tail_quantile(f, lambda), expected, 1e-6 * expected);
}

TEST(AdaptiveTail, MatchesGumbelClosedForm) {
  const stats::Gumbel g(10.0, 3.0);
  const double lambda = 30.0;
  const double p = 1.0 - std::exp2(-lambda);
  const double expected = g.quantile(p);
  EXPECT_NEAR(tail_quantile(g, lambda), expected, 1e-6 * expected);
}

TEST(AdaptiveTail, MonotoneInLambda) {
  const stats::Frechet f(3.0, 10.0);
  double prev = 0.0;
  for (double lambda : {5.0, 10.0, 20.0, 30.0}) {
    const double q = tail_quantile(f, lambda);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

// ----------------------------------------------------------- family & bound

class AdaptiveFit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaptiveFit, FrechetFeedSelectsFrechetAndCovers) {
  Rng rng(GetParam());
  const stats::Frechet truth(4.41, 29.3);  // paper's BTC range fit
  RangeEstimator est(small_options());
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) {
    const double d = truth.sample(rng);
    samples.push_back(d);
    est.observe(d);
  }
  ASSERT_TRUE(est.fitted_family().has_value());
  EXPECT_EQ(*est.fitted_family(), "Frechet");
  EXPECT_LT(*est.fitted_ks(), 0.05);
  // Bound covers everything seen and is not absurdly loose.
  const double max_seen = *std::max_element(samples.begin(), samples.end());
  EXPECT_GE(est.delta_bound(), max_seen);
  EXPECT_LT(est.delta_bound(), 100.0 * max_seen);
}

TEST_P(AdaptiveFit, GumbelFeedSelectsGumbelAndCovers) {
  Rng rng(GetParam() + 100);
  const stats::Gumbel truth(12.0, 2.5);
  RangeEstimator est(small_options());
  double max_seen = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double d = std::max(0.0, truth.sample(rng));
    max_seen = std::max(max_seen, d);
    est.observe(d);
  }
  ASSERT_TRUE(est.fitted_family().has_value());
  EXPECT_EQ(*est.fitted_family(), "Gumbel");
  EXPECT_GE(est.delta_bound(), max_seen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveFit,
                         ::testing::Values(1u, 2u, 3u));

TEST(AdaptiveCap, MaxDeltaCapsTheBoundButCoversObservations) {
  auto opt = small_options();
  opt.max_delta = 40.0;
  RangeEstimator est(opt);
  Rng rng(17);
  const stats::Frechet heavy(1.2, 10.0);  // fat tail: uncapped bound is huge
  double max_seen = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double d = heavy.sample(rng);
    max_seen = std::max(max_seen, d);
    est.observe(d);
  }
  // Capped at max_delta unless the data itself already exceeded it.
  EXPECT_LE(est.delta_bound(), std::max(40.0, max_seen) + 1e-9);
  EXPECT_GE(est.delta_bound(), max_seen);
}

TEST(AdaptiveDrift, WindowTracksRegimeChange) {
  auto opt = small_options();
  opt.window = 512;
  opt.refit_interval = 64;
  RangeEstimator est(opt);
  Rng rng(9);
  const stats::Gumbel calm(5.0, 0.5);
  const stats::Gumbel volatile_regime(50.0, 5.0);
  for (int i = 0; i < 600; ++i) est.observe(std::max(0.0, calm.sample(rng)));
  const double calm_bound = est.delta_bound();
  for (int i = 0; i < 600; ++i) {
    est.observe(std::max(0.0, volatile_regime.sample(rng)));
  }
  const double volatile_bound = est.delta_bound();
  EXPECT_GT(volatile_bound, 3.0 * calm_bound);
  EXPECT_EQ(est.count(), opt.window);
}

// ------------------------------------------------------------------- params

TEST(AdaptiveParams, MakeParamsIsValidAndUsesBound) {
  RangeEstimator est(small_options());
  Rng rng(5);
  const stats::Gumbel truth(20.0, 2.0);
  for (int i = 0; i < 500; ++i) est.observe(std::max(0.0, truth.sample(rng)));
  const auto p = est.make_params(0.0, 100000.0, /*rho0=*/2.0, /*eps=*/2.0);
  EXPECT_DOUBLE_EQ(p.rho0, 2.0);
  EXPECT_DOUBLE_EQ(p.eps, 2.0);
  EXPECT_DOUBLE_EQ(p.delta_max, est.delta_bound());
  EXPECT_NO_THROW(p.validate());
  EXPECT_GE(p.num_levels(), 1u);
}

TEST(AdaptiveParams, DeltaClampedToRho0) {
  auto opt = small_options();
  opt.fallback_delta = 0.001;  // below rho0
  RangeEstimator est(opt);
  const auto p = est.make_params(0.0, 10.0, /*rho0=*/1.0, /*eps=*/1.0);
  EXPECT_GE(p.delta_max, 1.0);
  EXPECT_NO_THROW(p.validate());
}

TEST(AdaptiveParams, SafetyFactorScalesBound) {
  auto opt1 = small_options();
  auto opt2 = small_options();
  opt2.safety_factor = 2.0;
  RangeEstimator a(opt1), b(opt2);
  Rng r1(7), r2(7);
  const stats::Gumbel truth(30.0, 3.0);
  for (int i = 0; i < 1000; ++i) {
    const double d1 = std::max(0.0, truth.sample(r1));
    const double d2 = std::max(0.0, truth.sample(r2));
    a.observe(d1);
    b.observe(d2);
  }
  EXPECT_GT(b.delta_bound(), a.delta_bound() * 1.5);
}

}  // namespace
}  // namespace delphi::adaptive
