/// Tests for the statistics toolkit: special functions, samplers (moment
/// checks), CDFs, summaries, histograms, fitting, and KS-based model
/// selection — the machinery behind Figs 4-5 and the Delta calibration.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/distributions.hpp"
#include "stats/fit.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"

namespace delphi::stats {
namespace {

// -------------------------------------------------------- special functions --

TEST(Special, GammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(Special, GammaPBoundsAndMonotone) {
  EXPECT_EQ(gamma_p(2.0, 0.0), 0.0);
  double prev = 0.0;
  for (double x = 0.1; x < 30.0; x += 0.5) {
    const double p = gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(gamma_p(3.0, 100.0), 1.0, 1e-12);
}

TEST(Special, DigammaKnownValues) {
  EXPECT_NEAR(digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-9);
  // Recurrence psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 5.5, 20.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
  }
}

// ------------------------------------------------------------------ samplers --

struct MomentCase {
  const char* name;
  std::shared_ptr<Distribution> dist;
  double tol_mean;
};

class SamplerMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(SamplerMoments, MeanMatchesAnalytic) {
  const auto& c = GetParam();
  Rng rng(0xABCD);
  const std::size_t n = 200'000;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += c.dist->sample(rng);
  const double mean = sum / static_cast<double>(n);
  EXPECT_NEAR(mean, c.dist->mean(), c.tol_mean) << c.name;
}

TEST_P(SamplerMoments, EmpiricalCdfMatchesAnalytic) {
  const auto& c = GetParam();
  Rng rng(0x1234);
  const std::size_t n = 50'000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = c.dist->sample(rng);
  // KS between the sample and its own distribution should be tiny
  // (~1.6/sqrt(n) at 99% confidence).
  EXPECT_LT(ks_statistic(xs, *c.dist), 1.7 / std::sqrt(static_cast<double>(n)))
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, SamplerMoments,
    ::testing::Values(
        MomentCase{"normal", std::make_shared<Normal>(5.0, 2.0), 0.02},
        MomentCase{"normal_neg", std::make_shared<Normal>(-40.0, 0.5), 0.01},
        MomentCase{"lognormal", std::make_shared<LogNormal>(0.0, 0.5), 0.02},
        MomentCase{"gamma_big", std::make_shared<Gamma>(30.77, 0.18), 0.02},
        MomentCase{"gamma_small_shape", std::make_shared<Gamma>(0.5, 2.0),
                   0.03},
        MomentCase{"pareto", std::make_shared<Pareto>(4.41, 1.0), 0.02},
        MomentCase{"frechet_paper", std::make_shared<Frechet>(4.41, 29.3),
                   0.6},
        MomentCase{"gumbel", std::make_shared<Gumbel>(10.0, 3.0), 0.05},
        MomentCase{"uniform", std::make_shared<Uniform>(-2.0, 6.0), 0.02}),
    [](const auto& test_info) { return std::string(test_info.param.name); });

TEST(Samplers, DeterministicGivenSeed) {
  Normal d(0.0, 1.0);
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(a), d.sample(b));
}

TEST(Samplers, LogGammaIsHeavyTailedAndPositive) {
  LogGamma d(2.0, 0.5);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(d.sample(rng), 1.0);  // exp(Gamma >= 0) >= 1
  }
  EXPECT_NEAR(d.mean(), std::pow(0.5, -2.0), 1e-12);  // (1-θ)^-k
}

TEST(Samplers, ParetoInfiniteMeanBelowOne) {
  Pareto d(0.9, 1.0);
  EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(Samplers, FrechetQuantileInvertsCdf) {
  Frechet d(4.41, 29.3);
  for (double p : {0.01, 0.5, 0.99, 0.999999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9);
  }
}

TEST(Samplers, GumbelQuantileInvertsCdf) {
  Gumbel d(5.0, 2.0);
  for (double p : {0.01, 0.5, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-9);
  }
}

TEST(Samplers, BadParametersThrow) {
  EXPECT_THROW(Normal(0.0, 0.0), ConfigError);
  EXPECT_THROW(Gamma(-1.0, 1.0), ConfigError);
  EXPECT_THROW(Pareto(1.0, 0.0), ConfigError);
  EXPECT_THROW(Frechet(0.0, 1.0), ConfigError);
  EXPECT_THROW(Gumbel(0.0, -1.0), ConfigError);
  EXPECT_THROW(Uniform(1.0, 1.0), ConfigError);
}

// ------------------------------------------------------------------- summary --

TEST(Summary, BasicMoments) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.range(), 4.0);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Summary, Quantiles) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_left(9), 9.0);
}

TEST(Histogram, FractionBelow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(10.0), 1.0);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// ------------------------------------------------------------------- fitting --

TEST(Fit, NormalRecovery) {
  Rng rng(11);
  Normal truth(12.0, 3.0);
  std::vector<double> xs(50'000);
  for (auto& x : xs) x = truth.sample(rng);
  const Normal fit = fit_normal(xs);
  EXPECT_NEAR(fit.mean(), 12.0, 0.1);
  EXPECT_NEAR(fit.sigma(), 3.0, 0.1);
}

TEST(Fit, GumbelRecovery) {
  Rng rng(12);
  Gumbel truth(30.0, 6.0);
  std::vector<double> xs(50'000);
  for (auto& x : xs) x = truth.sample(rng);
  const Gumbel fit = fit_gumbel(xs);
  EXPECT_NEAR(fit.loc(), 30.0, 0.3);
  EXPECT_NEAR(fit.scale(), 6.0, 0.3);
}

TEST(Fit, FrechetRecoveryAtPaperParameters) {
  // The Fig 4 parameters: alpha = 4.41, scale = 29.3.
  Rng rng(13);
  Frechet truth(4.41, 29.3);
  std::vector<double> xs(50'000);
  for (auto& x : xs) x = truth.sample(rng);
  const Frechet fit = fit_frechet(xs);
  EXPECT_NEAR(fit.alpha(), 4.41, 0.25);
  EXPECT_NEAR(fit.scale(), 29.3, 1.0);
}

TEST(Fit, GammaRecoveryAtPaperParameters) {
  // The §VI-B parameters: shape = 30.77, scale = 0.18.
  Rng rng(14);
  Gamma truth(30.77, 0.18);
  std::vector<double> xs(50'000);
  for (auto& x : xs) x = truth.sample(rng);
  const Gamma fit = fit_gamma(xs);
  EXPECT_NEAR(fit.shape(), 30.77, 1.5);
  EXPECT_NEAR(fit.scale(), 0.18, 0.01);
}

TEST(Fit, KsStatisticDetectsWrongModel) {
  Rng rng(15);
  Frechet truth(4.41, 29.3);
  std::vector<double> xs(20'000);
  for (auto& x : xs) x = truth.sample(rng);
  const double ks_right = ks_statistic(xs, truth);
  const double ks_wrong = ks_statistic(xs, Normal(35.0, 10.0));
  EXPECT_LT(ks_right, 0.02);
  EXPECT_GT(ks_wrong, 5.0 * ks_right);
}

TEST(Fit, BestFitPicksFrechetForFrechetData) {
  // This is the Fig 4 methodology: Fréchet beats Gumbel on range data.
  Rng rng(16);
  Frechet truth(4.41, 29.3);
  std::vector<double> xs(20'000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fits = best_fit(xs, {"Frechet", "Gumbel", "Normal", "Gamma"});
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "Frechet");
}

TEST(Fit, BestFitPicksGammaForGammaData) {
  // The Fig 5 methodology: Gamma beats Fréchet on IoU data.
  Rng rng(17);
  Gamma truth(30.77, 0.18);
  std::vector<double> xs(20'000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fits = best_fit(xs, {"Frechet", "Gamma", "Gumbel"});
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "Gamma");
}

TEST(Fit, BestFitSkipsUnfittableFamilies) {
  // Negative data cannot be fit by Fréchet/Gamma; best_fit must not throw.
  Rng rng(18);
  Normal truth(-5.0, 1.0);
  std::vector<double> xs(5'000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fits = best_fit(xs, {"Frechet", "Gamma", "Normal"});
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "Normal");
}

}  // namespace
}  // namespace delphi::stats
