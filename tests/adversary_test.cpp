/// Tests for the network-adversary strategies (partition-until-heal and
/// burst reordering) and for protocol correctness under each of them:
/// asynchronous protocols must deliver unchanged guarantees, merely later.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "abraham/abraham.hpp"
#include "binaa/protocol.hpp"
#include "delphi/delphi.hpp"
#include "dolev/dolev.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::sim {
namespace {

protocol::DelphiParams delphi_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 64.0;
  return p;
}

// ------------------------------------------------------------ unit behavior

TEST(PartitionAdversary, Validation) {
  EXPECT_THROW(PartitionAdversary({0}, -1), ConfigError);
  EXPECT_THROW(PartitionAdversary({0}, 100, -1), ConfigError);
  EXPECT_NO_THROW(PartitionAdversary({0}, 100));
}

TEST(PartitionAdversary, DelaysOnlyCrossCutUntilHeal) {
  PartitionAdversary adv({0, 1}, /*heal_at=*/1'000'000, /*jitter=*/0);
  Rng rng(1);
  // Same side: never delayed.
  EXPECT_EQ(adv.extra_delay(0, 1, 0, rng), 0);
  EXPECT_EQ(adv.extra_delay(2, 3, 0, rng), 0);
  // Cross cut before heal: held exactly to the heal instant (jitter 0).
  EXPECT_EQ(adv.extra_delay(0, 2, 0, rng), 1'000'000);
  EXPECT_EQ(adv.extra_delay(3, 1, 400'000, rng), 600'000);
  // After heal: no interference.
  EXPECT_EQ(adv.extra_delay(0, 2, 1'000'000, rng), 0);
  EXPECT_EQ(adv.extra_delay(0, 2, 2'000'000, rng), 0);
}

TEST(BurstReorderAdversary, Validation) {
  EXPECT_THROW(BurstReorderAdversary(0), ConfigError);
  EXPECT_THROW(BurstReorderAdversary(-5), ConfigError);
  EXPECT_NO_THROW(BurstReorderAdversary(1000));
}

TEST(BurstReorderAdversary, EarlierSendsHeldLonger) {
  BurstReorderAdversary adv(10'000);
  Rng rng(1);
  // With jitter bounded by period/4, an early send's hold-back strictly
  // exceeds a late send's within the same window.
  const SimTime early = adv.extra_delay(0, 1, 100, rng);
  const SimTime late = adv.extra_delay(0, 1, 9'900, rng);
  EXPECT_GT(early, late);
  // Both still land after their window boundary.
  EXPECT_GE(100 + early, 10'000);
  EXPECT_GE(9'900 + late, 10'000);
}

// -------------------------------------------------- protocols under attack

sim::SimConfig partition_config(std::size_t n, std::uint64_t seed,
                                std::size_t minority) {
  auto cfg = test::async_config(n, seed);
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < minority; ++i) group_a.insert(i);
  cfg.adversary =
      std::make_shared<PartitionAdversary>(group_a, /*heal_at=*/2 * kSecond);
  return cfg;
}

sim::SimConfig burst_config(std::size_t n, std::uint64_t seed) {
  auto cfg = test::async_config(n, seed);
  cfg.adversary = std::make_shared<BurstReorderAdversary>(50 * kMillisecond);
  return cfg;
}

class AdversarySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversarySweep, DelphiSurvivesPartition) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  const auto p = delphi_params();
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = 400.0 + rng.uniform(0.0, 20.0);

  auto outcome = sim::run_nodes(
      partition_config(n, seed, /*minority=*/2), [&](NodeId i) {
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = max_faults(n);
        c.params = p;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  // Guarantees unchanged; completion necessarily after the heal.
  EXPECT_GE(outcome.metrics.honest_completion, 2 * kSecond);
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  const double relax = std::max(p.rho0, *mx - *mn);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn - relax - 1e-9);
    EXPECT_LE(o, *mx + relax + 1e-9);
  }
}

TEST_P(AdversarySweep, DelphiSurvivesBurstReordering) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  const auto p = delphi_params();
  std::vector<double> inputs(n);
  Rng rng(seed + 50);
  for (auto& v : inputs) v = 700.0 + rng.uniform(0.0, 8.0);

  auto outcome = sim::run_nodes(burst_config(n, seed), [&](NodeId i) {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = p;
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
}

TEST_P(AdversarySweep, DolevSurvivesPartitionWithFaults) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  dolev::DolevProtocol::Config cfg;
  cfg.n = n;
  cfg.t = dolev::DolevProtocol::max_faults_5t(n);
  cfg.rounds = 8;
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = rng.uniform(100.0, 110.0);
  const auto byz = last_t_byzantine(n, cfg.t);

  auto outcome = sim::run_nodes(
      partition_config(n, seed, /*minority=*/3),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) return std::make_unique<SilentProtocol>();
        return std::make_unique<dolev::DolevProtocol>(cfg, inputs[i]);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);
  std::vector<double> honest_inputs(inputs.begin(),
                                    inputs.begin() + (n - cfg.t));
  const auto [mn, mx] =
      std::minmax_element(honest_inputs.begin(), honest_inputs.end());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
}

TEST_P(AdversarySweep, AbrahamSurvivesPartition) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  abraham::AbrahamProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.rounds = 8;
  cfg.space_min = -1e6;
  cfg.space_max = 1e6;
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = rng.uniform(-3.0, 3.0);

  auto outcome = sim::run_nodes(
      partition_config(n, seed, /*minority=*/2), [&](NodeId i) {
        return std::make_unique<abraham::AbrahamProtocol>(cfg, inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
}

TEST_P(AdversarySweep, BinAaSurvivesBurstReordering) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  auto outcome = sim::run_nodes(burst_config(n, seed), [&](NodeId i) {
    binaa::BinAaProtocol::Config c;
    c.core.n = n;
    c.core.t = max_faults(n);
    c.core.r_max = 12;
    return std::make_unique<binaa::BinAaProtocol>(c, i % 3 == 0);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_LE(test::spread(outcome.honest_outputs), std::ldexp(1.0, -12) + 1e-12);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarySweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------------------------- determinism

TEST(AdversaryDeterminism, IdenticalSeedsIdenticalRuns) {
  const std::size_t n = 7;
  const auto p = delphi_params();
  auto run_once = [&](std::uint64_t seed) {
    std::vector<double> inputs(n);
    Rng rng(123);
    for (auto& v : inputs) v = 250.0 + rng.uniform(0.0, 10.0);
    return sim::run_nodes(partition_config(n, seed, 2), [&](NodeId i) {
      protocol::DelphiProtocol::Config c;
      c.n = n;
      c.t = max_faults(n);
      c.params = p;
      return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
    });
  };
  const auto a = run_once(9);
  const auto b = run_once(9);
  EXPECT_EQ(a.honest_outputs, b.honest_outputs);
  EXPECT_EQ(a.honest_bytes, b.honest_bytes);
  EXPECT_EQ(a.metrics.honest_completion, b.metrics.honest_completion);
  EXPECT_EQ(a.metrics.events_processed, b.metrics.events_processed);
}

}  // namespace
}  // namespace delphi::sim
