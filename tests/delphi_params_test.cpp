/// Tests for Delphi's parameter derivation (Algorithm 2 setup + §IV-D).

#include <gtest/gtest.h>

#include <cmath>

#include "delphi/params.hpp"

namespace delphi::protocol {
namespace {

DelphiParams base_params() {
  DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 64.0;
  return p;
}

TEST(DelphiParams, LevelCountFromDeltaOverRho) {
  DelphiParams p = base_params();
  EXPECT_EQ(p.max_level(), 6u);  // log2(64/1)
  EXPECT_EQ(p.num_levels(), 7u);
  p.delta_max = 100.0;
  EXPECT_EQ(p.max_level(), 7u);  // ceil(log2(100))
  p.delta_max = 1.0;
  EXPECT_EQ(p.max_level(), 0u);
  EXPECT_EQ(p.num_levels(), 1u);
}

TEST(DelphiParams, RhoDoublesPerLevel) {
  const DelphiParams p = base_params();
  for (std::uint32_t l = 0; l <= p.max_level(); ++l) {
    EXPECT_DOUBLE_EQ(p.rho(l), std::ldexp(1.0, static_cast<int>(l)));
  }
}

TEST(DelphiParams, EpsPrimeFormula) {
  const DelphiParams p = base_params();
  // eps' = eps / (4 * Delta * l_M * n).
  EXPECT_DOUBLE_EQ(p.eps_prime(16), 1.0 / (4.0 * 64.0 * 6.0 * 16.0));
  // r_max = ceil(log2(1/eps')).
  EXPECT_EQ(p.r_max(16),
            static_cast<std::uint32_t>(
                std::ceil(std::log2(4.0 * 64.0 * 6.0 * 16.0))));
}

TEST(DelphiParams, RMaxGrowsWithNAndDelta) {
  DelphiParams p = base_params();
  EXPECT_GT(p.r_max(160), p.r_max(4));
  const auto r_small_delta = p.r_max(16);
  p.delta_max = 512.0;
  EXPECT_GT(p.r_max(16), r_small_delta);
}

TEST(DelphiParams, CheckpointBounds) {
  const DelphiParams p = base_params();
  EXPECT_EQ(p.k_min(0), 0);
  EXPECT_EQ(p.k_max(0), 1000);
  EXPECT_EQ(p.k_min(6), 0);
  EXPECT_EQ(p.k_max(6), 15);  // floor(1000/64)
  EXPECT_DOUBLE_EQ(p.checkpoint(6, 3), 192.0);
}

TEST(DelphiParams, NegativeSpaceCheckpoints) {
  DelphiParams p = base_params();
  p.space_min = -500.0;
  EXPECT_EQ(p.k_min(0), -500);
  EXPECT_LT(p.checkpoint(0, p.k_min(0)), 0.0);
}

TEST(DelphiParams, ClosestCheckpointsBracketTheInput) {
  const DelphiParams p = base_params();
  for (double v : {0.0, 0.4, 17.5, 999.7, 1000.0}) {
    for (std::uint32_t l = 0; l <= p.max_level(); ++l) {
      const auto [lo, hi] = p.closest_checkpoints(l, v);
      EXPECT_LE(p.checkpoint(l, lo), v + p.rho(l));
      EXPECT_GE(p.checkpoint(l, hi), v - p.rho(l));
      EXPECT_LE(hi - lo, 1);
      // Both inside the space.
      EXPECT_GE(lo, p.k_min(l));
      EXPECT_LE(hi, p.k_max(l));
    }
  }
}

TEST(DelphiParams, ValidationCatchesBadConfigs) {
  DelphiParams p = base_params();
  p.eps = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = base_params();
  p.rho0 = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = base_params();
  p.delta_max = 0.5;  // < rho0
  EXPECT_THROW(p.validate(), ConfigError);
  p = base_params();
  p.space_max = p.space_min;
  EXPECT_THROW(p.validate(), ConfigError);
  p = base_params();
  p.delta_max = 5000.0;  // exceeds the space
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(DelphiParams, PaperConfigsValidate) {
  const auto oracle = DelphiParams::oracle_network();
  EXPECT_DOUBLE_EQ(oracle.eps, 2.0);
  EXPECT_DOUBLE_EQ(oracle.delta_max, 2000.0);
  EXPECT_EQ(oracle.max_level(), 10u);  // log2(1000)

  const auto cps = DelphiParams::drone_cps();
  EXPECT_DOUBLE_EQ(cps.eps, 0.5);
  EXPECT_DOUBLE_EQ(cps.delta_max, 50.0);
  EXPECT_EQ(cps.max_level(), 7u);  // ceil(log2(100))
}

TEST(DelphiParams, FromDistributionUsesEvtBound) {
  stats::Normal noise(100.0, 2.0);
  const auto p = DelphiParams::from_distribution(noise, 64, 30.0, 0.5, 0.0,
                                                 1000.0);
  // Thin tail: Delta should be tens of units at most, not the whole space.
  EXPECT_GT(p.delta_max, 2.0);
  EXPECT_LT(p.delta_max, 200.0);
  EXPECT_DOUBLE_EQ(p.rho0, 0.5);
  EXPECT_NO_THROW(p.validate());
}

TEST(DelphiParams, FromDistributionFatterTailGivesBiggerDelta) {
  stats::Normal thin(0.0, 1.0);
  stats::Frechet fat(2.5, 1.0);
  const auto pt = DelphiParams::from_distribution(thin, 64, 20.0, 0.5,
                                                  -10000.0, 10000.0);
  const auto pf = DelphiParams::from_distribution(fat, 64, 20.0, 0.5,
                                                  -10000.0, 10000.0);
  EXPECT_GT(pf.delta_max, pt.delta_max);
}

}  // namespace
}  // namespace delphi::protocol
