/// Property suites: end-to-end randomized sweeps tying the whole stack
/// together — inputs drawn from the noise distributions the paper assumes,
/// parameters derived through the EVT machinery (exactly the deployment
/// story of §IV-D), and the protocol guarantees checked on the result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "delphi/delphi.hpp"
#include "oracle/feed.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/evt.hpp"
#include "stats/summary.hpp"
#include "tests/test_util.hpp"

namespace delphi {
namespace {

struct DistCase {
  const char* name;
  std::shared_ptr<stats::Distribution> noise;
  double eps;
  std::uint64_t seed;
};

class DistributionDriven : public ::testing::TestWithParam<DistCase> {};

/// The full §IV-D deployment recipe: derive Delta from the noise model via
/// the EVT range bound, sample the inputs from that very model, run Delphi,
/// and check the guarantees.
TEST_P(DistributionDriven, DerivedParametersDeliverGuarantees) {
  const auto& c = GetParam();
  const std::size_t n = 10;
  const auto params = protocol::DelphiParams::from_distribution(
      *c.noise, n, /*lambda_bits=*/20.0, c.eps,
      /*space_min=*/-1e5, /*space_max=*/1e5);

  Rng rng(c.seed);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = c.noise->sample(rng);
  const auto s = stats::summarize(inputs);
  ASSERT_LE(s.range(), params.delta_max)
      << c.name << ": EVT bound violated (should be ~never at lambda=20)";

  protocol::DelphiProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.params = params;
  auto outcome = sim::run_nodes(
      test::adversarial_config(n, c.seed), [&](NodeId i) {
        return std::make_unique<protocol::DelphiProtocol>(cfg, inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated) << c.name;
  EXPECT_LE(test::spread(outcome.honest_outputs), params.eps) << c.name;
  const double relax = std::max(params.rho0, s.range());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, s.min - relax - 1e-9) << c.name;
    EXPECT_LE(o, s.max + relax + 1e-9) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoiseModels, DistributionDriven,
    ::testing::Values(
        DistCase{"normal_sensor", std::make_shared<stats::Normal>(250.0, 1.5),
                 0.5, 1},
        DistCase{"normal_wide", std::make_shared<stats::Normal>(-40.0, 8.0),
                 1.0, 2},
        DistCase{"gamma_error", std::make_shared<stats::Gamma>(30.77, 0.18),
                 0.25, 3},
        DistCase{"lognormal", std::make_shared<stats::LogNormal>(3.0, 0.1),
                 0.5, 4},
        DistCase{"gumbel_noise", std::make_shared<stats::Gumbel>(100.0, 2.0),
                 0.5, 5},
        DistCase{"uniform_noise",
                 std::make_shared<stats::Uniform>(10.0, 14.0), 0.25, 6}),
    [](const auto& test_info) { return std::string(test_info.param.name); });

/// Seed sweep: the same Delphi deployment under ten different adversarial
/// schedules must deliver the guarantees every time (and deterministically
/// per seed).
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, GuaranteesHoldUnderEverySchedule) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;

  Rng rng(seed * 17 + 3);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = 500.0 + rng.uniform(-8.0, 8.0);
  const auto s = stats::summarize(inputs);

  protocol::DelphiProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.params = p;
  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed, /*extra=*/120'000), [&](NodeId i) {
        return std::make_unique<protocol::DelphiProtocol>(cfg, inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_LE(test::spread(outcome.honest_outputs), p.eps);
  const double relax = std::max(p.rho0, s.range());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, s.min - relax - 1e-9);
    EXPECT_LE(o, s.max + relax + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

/// Mixed Byzantine battery: every generic fault strategy at once, over seeds.
class FaultBattery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultBattery, DelphiSurvivesMixedFaults) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 10;
  const std::size_t t = max_faults(n);  // 3 faults: crash + garbage + poison
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;

  protocol::DelphiProtocol::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.params = p;

  Rng rng(seed);
  std::vector<double> honest_inputs;
  sim::Simulator sim(test::adversarial_config(n, seed));
  for (NodeId i = 0; i < n - t; ++i) {
    const double v = 300.0 + rng.uniform(0.0, 6.0);
    honest_inputs.push_back(v);
    sim.add_node(std::make_unique<protocol::DelphiProtocol>(cfg, v));
  }
  sim.add_node(std::make_unique<sim::SilentProtocol>());
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.add_node(std::make_unique<protocol::DelphiProtocol>(cfg, 990.0));
  sim.set_byzantine({7, 8, 9});
  ASSERT_TRUE(sim.run()) << "seed " << seed;

  const auto s = stats::summarize(honest_inputs);
  const double relax = std::max(p.rho0, s.range());
  std::vector<double> outs;
  for (NodeId i = 0; i < n - t; ++i) {
    outs.push_back(*sim.node_as<protocol::DelphiProtocol>(i).output_value());
  }
  EXPECT_LE(test::spread(outs), p.eps) << "seed " << seed;
  for (double o : outs) {
    EXPECT_GE(o, s.min - relax - 1e-9) << "seed " << seed;
    EXPECT_LE(o, s.max + relax + 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultBattery,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace delphi
