/// Tests for scenario::SweepRunner: a parallel sweep must be bit-identical
/// to the same specs run serially (each simulation is single-threaded and
/// deterministic; the pool only distributes whole runs), results must come
/// back in spec order regardless of the job count, and errors must surface
/// after the pool drains.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "scenario/sweep.hpp"

namespace delphi::scenario {
namespace {

/// A fig6c-style multi-protocol n-sweep on the fast testbed.
std::vector<ScenarioSpec> mixed_sweep() {
  std::vector<ScenarioSpec> specs;
  for (const std::size_t n : {6, 9, 12, 15}) {
    ScenarioSpec d;
    d.protocol = "delphi";
    d.testbed = TestbedKind::kFast;
    d.n = n;
    d.seed = 1;
    specs.push_back(d);

    ScenarioSpec f = d;
    f.protocol = "fin";
    f.seed = 3;
    specs.push_back(f);

    ScenarioSpec a = d;
    a.protocol = "abraham";
    a.seed = 4;
    a.params["rounds"] = 7;
    specs.push_back(a);
  }
  return specs;
}

TEST(Sweep, ParallelBitIdenticalToSerial) {
  const auto specs = mixed_sweep();

  // Serial reference: one run at a time on this thread.
  std::vector<RunReport> serial;
  serial.reserve(specs.size());
  for (const auto& spec : specs) serial.push_back(run_scenario(spec));

  // RunReport operator== compares every field — outputs, per-node counters,
  // traffic totals, runtime — so equality here is bit-identity.
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(jobs);
    const auto parallel = SweepRunner(jobs).run(specs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(parallel[i], serial[i]);
    }
  }
}

TEST(Sweep, StableOrderAtAnyJobCount) {
  const auto specs = mixed_sweep();
  const auto reports = SweepRunner(8).run(specs);
  ASSERT_EQ(reports.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(reports[i].nodes.size(), specs[i].n) << "slot " << i;
    EXPECT_TRUE(reports[i].ok) << "slot " << i;
  }
}

TEST(Sweep, MixedSubstratesInOneBatch) {
  // TCP specs ride along in a sweep (executed serially on the caller).
  ScenarioSpec sim_spec;
  sim_spec.protocol = "dolev";
  sim_spec.testbed = TestbedKind::kFast;
  sim_spec.n = 6;
  ScenarioSpec tcp_spec = sim_spec;
  tcp_spec.substrate = Substrate::kTcp;

  const auto reports = SweepRunner(2).run({sim_spec, tcp_spec, sim_spec});
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& rep : reports) EXPECT_TRUE(rep.ok);
  // The two identical sim specs are bit-identical even with a TCP run
  // interleaved in the batch.
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(Sweep, ErrorsSurfaceAfterPoolDrains) {
  auto specs = mixed_sweep();
  specs[1].protocol = "nonesuch";
  EXPECT_THROW(SweepRunner(4).run(specs), ConfigError);
}

TEST(Sweep, EmptyBatchAndDefaultJobs) {
  EXPECT_TRUE(SweepRunner().run({}).empty());
  EXPECT_GE(SweepRunner().jobs(), 1u);
  EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

}  // namespace
}  // namespace delphi::scenario
