#pragma once
/// Shared helpers for the test suite: simulation config builders, input
/// generators, and protocol-specific Byzantine strategies used across files.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "binaa/message.hpp"
#include "net/protocol.hpp"
#include "rbc/rbc.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"

namespace delphi::test {

/// Simulation config with aggressive-but-benign asynchrony (wide latency
/// spread) — the default environment for correctness tests.
inline sim::SimConfig async_config(std::size_t n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.latency = std::make_shared<sim::UniformLatency>(100, 20'000);
  return cfg;
}

/// Same but with a random-extra-delay network adversary stacked on top.
inline sim::SimConfig adversarial_config(std::size_t n, std::uint64_t seed,
                                         SimTime extra = 50'000) {
  auto cfg = async_config(n, seed);
  cfg.adversary = std::make_shared<sim::RandomDelayAdversary>(extra);
  return cfg;
}

/// Range (max - min) of a vector.
inline double spread(const std::vector<double>& xs) {
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  return *mx - *mn;
}

/// Byzantine BinAA node that equivocates: ECHO1(0) to even nodes and
/// ECHO1(scale) to odd nodes in every round it hears about, plus conflicting
/// ECHO2s — the classic split-the-vote attack on echo protocols.
class BinAaEquivocator final : public net::Protocol {
 public:
  BinAaEquivocator(std::uint32_t r_max, std::uint32_t channel)
      : r_max_(r_max), channel_(channel) {}

  void on_start(net::Context& ctx) override { spray(ctx, 1); }

  void on_message(net::Context& ctx, NodeId, std::uint32_t,
                  const net::MessageBody& body) override {
    if (const auto* echo = dynamic_cast<const binaa::EchoMessage*>(&body)) {
      spray(ctx, echo->round());
    }
  }

  bool terminated() const override { return true; }

 private:
  void spray(net::Context& ctx, std::uint32_t round) {
    if (round > r_max_ || sprayed_round_ >= round) return;
    sprayed_round_ = round;
    const binaa::ScaledValue scale = binaa::ScaledValue{1} << r_max_;
    for (NodeId to = 0; to < ctx.n(); ++to) {
      const binaa::ScaledValue v = (to % 2 == 0) ? 0 : scale;
      ctx.send(to, channel_,
               std::make_shared<binaa::EchoMessage>(1, round, v));
      ctx.send(to, channel_,
               std::make_shared<binaa::EchoMessage>(2, round, scale - v));
    }
  }

  std::uint32_t r_max_;
  std::uint32_t channel_;
  std::uint32_t sprayed_round_ = 0;
};

/// Byzantine RBC broadcaster that sends different SEND payloads to the two
/// halves of the system (equivocation), then echoes both.
class RbcEquivocator final : public net::Protocol {
 public:
  RbcEquivocator(std::uint32_t channel, std::vector<std::uint8_t> a,
                 std::vector<std::uint8_t> b)
      : channel_(channel), a_(std::move(a)), b_(std::move(b)) {}

  void on_start(net::Context& ctx) override {
    for (NodeId to = 0; to < ctx.n(); ++to) {
      const auto& payload = (to < ctx.n() / 2) ? a_ : b_;
      ctx.send(to, channel_,
               std::make_shared<rbc::RbcMessage>(rbc::RbcMessage::Kind::kSend,
                                                 payload));
      ctx.send(to, channel_,
               std::make_shared<rbc::RbcMessage>(rbc::RbcMessage::Kind::kEcho,
                                                 payload));
    }
  }

  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {}
  bool terminated() const override { return true; }

 private:
  std::uint32_t channel_;
  std::vector<std::uint8_t> a_, b_;
};

}  // namespace delphi::test
