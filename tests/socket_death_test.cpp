/// Abrupt peer death and resource-exhaustion tests for the socket
/// substrates: clean typed errors or recovery, never hangs.
///   * Raw-socket attacks on a live recovery-mode TCP cluster — connections
///     that close mid-hello, reset with SO_LINGER(0), send garbage hellos, or
///     stay half-open must all be rejected/pruned while the legitimate mesh
///     keeps running to completion;
///   * garbage datagrams from an unknown source against a live UDP mesh are
///     dropped without disturbing agreement;
///   * a node thread that dies surfaces WHICH node failed and WHY (exception
///     text) through the cluster's failures(), instead of a bare timeout;
///   * the UDP unacked-map cap is a typed ResourceExhausted at the send
///     boundary — never a silent drop — and the failure is attributed to the
///     exhausted node.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sim/byzantine.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace delphi::transport {
namespace {

/// One-byte test message; enough to drive a ping protocol over real sockets.
class ByteMsg final : public net::MessageBody {
 public:
  std::size_t wire_size() const override { return 1; }
  void serialize(ByteWriter& w) const override { w.u8(0x5A); }
  std::string debug() const override { return "byte"; }
};

Decoder byte_decoder() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    DELPHI_REQUIRE(r.u8() == 0x5A, "bad byte message");
    return std::make_shared<ByteMsg>();
  };
}

/// Sends one byte to every peer at start; terminates on the first receipt.
class PingOnce final : public net::Protocol {
 public:
  void on_start(net::Context& ctx) override {
    for (NodeId to = 0; to < ctx.n(); ++to) {
      if (to != ctx.self()) ctx.send(to, 0, std::make_shared<ByteMsg>());
    }
  }
  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {
    got_ = true;
  }
  bool terminated() const override { return got_; }

 private:
  bool got_ = false;
};

/// Dies during startup — the thread-death attribution fixture.
class Exploder final : public net::Protocol {
 public:
  void on_start(net::Context&) override {
    throw Error("exploding on purpose (test fixture)");
  }
  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {}
  bool terminated() const override { return false; }
};

/// Fires `count` sends at node `to` during on_start, then claims done.
class Spammer final : public net::Protocol {
 public:
  Spammer(NodeId to, std::size_t count) : to_(to), count_(count) {}
  void on_start(net::Context& ctx) override {
    for (std::size_t i = 0; i < count_; ++i) {
      ctx.send(to_, 0, std::make_shared<ByteMsg>());
    }
  }
  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {}
  bool terminated() const override { return true; }

 private:
  NodeId to_;
  std::size_t count_;
};

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// --------------------------------------------------- raw-socket TCP attacks

TEST(AbruptPeerDeath, TcpSurvivesMalformedAndHalfOpenReconnects) {
  // A recovery-mode cluster whose links are delayed by the netem shim, so
  // the protocols are still in flight while we attack the listen ports.
  TcpCluster::Options opts;
  opts.n = 2;
  opts.recovery = true;
  opts.timeout_ms = 20'000;
  opts.netem.lag_k = 1;
  opts.netem.lag_us = 600'000;
  TcpCluster cluster(opts);
  cluster.start([](NodeId) { return std::make_unique<PingOnce>(); },
                byte_decoder());
  sleep_ms(150);  // mesh bring-up done; pings now held by the shim

  for (NodeId victim = 0; victim < 2; ++victim) {
    const std::uint16_t port = cluster.port(victim);
    // (a) EOF before any hello byte.
    ::close(connect_to(port));
    // (b) close mid-hello (3 bytes of a 48-byte recovery hello).
    int fd = connect_to(port);
    const std::uint8_t partial[3] = {0x01, 0x02, 0x03};
    ASSERT_EQ(::send(fd, partial, sizeof(partial), 0), 3);
    ::close(fd);
    // (c) full-size garbage hello (wrong magic, junk tag) — must be
    // rejected by the authenticated handshake.
    fd = connect_to(port);
    std::vector<std::uint8_t> garbage(48, 0xEE);
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    sleep_ms(20);
    ::close(fd);
    // (d) hard RST instead of FIN.
    fd = connect_to(port);
    ASSERT_EQ(::send(fd, partial, sizeof(partial), 0), 3);
    linger lin{1, 0};
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin)), 0);
    ::close(fd);
    // (e) half-open: connect, send nothing, hold the fd (pruned by the
    // handshake deadline; must not block completion meanwhile).
  }
  const int half_open_a = connect_to(cluster.port(0));
  const int half_open_b = connect_to(cluster.port(1));

  // The legitimate mesh must still deliver the delayed pings and finish.
  EXPECT_TRUE(cluster.wait());
  EXPECT_TRUE(cluster.failures().empty());
  ::close(half_open_a);
  ::close(half_open_b);
}

// ------------------------------------------------------ raw UDP datagrams

TEST(AbruptPeerDeath, UdpDropsDatagramsFromUnknownSources) {
  UdpMesh::Options opts;
  opts.n = 2;
  opts.timeout_ms = 20'000;
  opts.netem.lag_k = 1;
  opts.netem.lag_us = 400'000;
  UdpMesh mesh(opts);
  mesh.start([](NodeId) { return std::make_unique<PingOnce>(); },
             byte_decoder());
  sleep_ms(50);

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  for (NodeId victim = 0; victim < 2; ++victim) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(mesh.port(victim));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    // Truncated, garbage-kind, and oversized-claim datagrams — all from a
    // source port no peer owns, all dropped before they can do harm.
    const std::vector<std::vector<std::uint8_t>> attacks = {
        {}, {0x00}, {0xD7, 0x01}, std::vector<std::uint8_t>(512, 0xAB)};
    for (const auto& a : attacks) {
      ::sendto(fd, a.data(), a.size(), 0, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr));
    }
  }
  ::close(fd);

  EXPECT_TRUE(mesh.wait());
  EXPECT_TRUE(mesh.failures().empty());
}

// -------------------------------------------------- thread-death attribution

TEST(NodeFailureSurfacing, TcpNamesTheDeadNodeAndCause) {
  TcpCluster::Options opts;
  opts.n = 4;
  opts.timeout_ms = 1'000;
  TcpCluster cluster(opts);
  cluster.start(
      [](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == 3) return std::make_unique<Exploder>();
        return std::make_unique<sim::SilentProtocol>();
      },
      byte_decoder());
  EXPECT_FALSE(cluster.wait());
  ASSERT_EQ(cluster.failures().size(), 1u);
  EXPECT_EQ(cluster.failures()[0].id, 3u);
  EXPECT_NE(cluster.failures()[0].message.find("exploding on purpose"),
            std::string::npos)
      << cluster.failures()[0].message;
  // The dead node is also an unfinished straggler — failures() explains it.
  ASSERT_EQ(cluster.unfinished().size(), 1u);
  EXPECT_EQ(cluster.unfinished()[0], 3u);
}

// ----------------------------------------------------- UDP unacked-map cap

TEST(NodeFailureSurfacing, UdpUnackedCapIsTypedResourceExhausted) {
  // Node 1 is unreachable (netem partition, never healed), so node 0's
  // selective-repeat unacked map can only grow. The 17th in-flight frame
  // must be a typed ResourceExhausted at the send boundary — attributed to
  // node 0 by failures() — not a silent drop.
  UdpMesh::Options opts;
  opts.n = 2;
  opts.timeout_ms = 1'000;
  opts.max_unacked = 16;
  opts.netem.partition_k = 1;
  opts.netem.heal_us = 1'000'000'000;
  UdpMesh mesh(opts);
  mesh.start(
      [](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == 0) return std::make_unique<Spammer>(1, 64);
        return std::make_unique<sim::SilentProtocol>();
      },
      byte_decoder());
  EXPECT_FALSE(mesh.wait());
  ASSERT_EQ(mesh.failures().size(), 1u);
  EXPECT_EQ(mesh.failures()[0].id, 0u);
  EXPECT_NE(mesh.failures()[0].message.find("unacked map"), std::string::npos)
      << mesh.failures()[0].message;
  EXPECT_NE(mesh.failures()[0].message.find("cap"), std::string::npos);
}

TEST(NodeFailureSurfacing, UdpCapRoomyEnoughForHonestTraffic) {
  // The same spray with a reachable peer and the default cap sails through:
  // acks drain the map, nobody dies.
  UdpMesh::Options opts;
  opts.n = 2;
  opts.timeout_ms = 20'000;
  UdpMesh mesh(opts);
  mesh.start(
      [](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == 0) return std::make_unique<Spammer>(1, 64);
        return std::make_unique<sim::SilentProtocol>();
      },
      byte_decoder());
  EXPECT_TRUE(mesh.wait());
  EXPECT_TRUE(mesh.failures().empty());
}

}  // namespace
}  // namespace delphi::transport
