/// Tests for Bracha reliable broadcast: Validity, Agreement, Totality under
/// benign asynchrony, network adversaries, crash faults, equivocation, and
/// garbage injection; parameterized over system sizes and seeds.

#include <gtest/gtest.h>

#include "rbc/rbc.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::rbc {
namespace {

using test::RbcEquivocator;

std::vector<std::uint8_t> payload_of(std::uint8_t tag) {
  return {tag, 1, 2, 3};
}

RbcInstance::Config rbc_cfg(std::size_t n, NodeId broadcaster) {
  return RbcInstance::Config{n, max_faults(n), broadcaster, /*channel=*/0,
                             /*max_payload=*/1024};
}

struct SweepParam {
  std::size_t n;
  std::uint64_t seed;
};

class RbcSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RbcSweep, HonestBroadcasterAllDeliver) {
  const auto [n, seed] = GetParam();
  auto cfg = test::async_config(n, seed);
  const auto value = payload_of(42);
  auto outcome = sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<RbcProtocol>(rbc_cfg(n, 0),
                                         i == 0 ? value : std::vector<std::uint8_t>{});
  });
  EXPECT_TRUE(outcome.all_honest_terminated);
}

TEST_P(RbcSweep, DeliveredValueMatchesBroadcast) {
  const auto [n, seed] = GetParam();
  sim::Simulator sim(test::async_config(n, seed));
  const auto value = payload_of(7);
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<RbcProtocol>(
        rbc_cfg(n, 0), i == 0 ? value : std::vector<std::uint8_t>{}));
  }
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(sim.node_as<RbcProtocol>(i).instance().value(), value);
  }
}

TEST_P(RbcSweep, ToleratesTCrashedNodes) {
  const auto [n, seed] = GetParam();
  const std::size_t t = max_faults(n);
  const auto byz = sim::last_t_byzantine(n, t);
  sim::Simulator sim(test::adversarial_config(n, seed));
  const auto value = payload_of(9);
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      sim.add_node(std::make_unique<RbcProtocol>(
          rbc_cfg(n, 0), i == 0 ? value : std::vector<std::uint8_t>{}));
    }
  }
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) continue;
    EXPECT_EQ(sim.node_as<RbcProtocol>(i).instance().value(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RbcSweep,
    ::testing::Values(SweepParam{4, 1}, SweepParam{4, 2}, SweepParam{7, 3},
                      SweepParam{7, 4}, SweepParam{10, 5}, SweepParam{13, 6},
                      SweepParam{16, 7}, SweepParam{25, 8}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_s" +
             std::to_string(test_info.param.seed);
    });

TEST(Rbc, EquivocatingBroadcasterCannotSplitHonest) {
  // Byzantine broadcaster sends payload A to one half and B to the other.
  // Agreement: every honest node that delivers must deliver the same value.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 7;
    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i + 1 < n; ++i) {
      sim.add_node(std::make_unique<RbcProtocol>(rbc_cfg(n, n - 1)));
    }
    sim.add_node(std::make_unique<RbcEquivocator>(0, payload_of(1),
                                                  payload_of(2)));
    sim.set_byzantine({static_cast<NodeId>(n - 1)});
    sim.run();

    std::vector<std::vector<std::uint8_t>> delivered;
    for (NodeId i = 0; i + 1 < n; ++i) {
      const auto& inst = sim.node_as<RbcProtocol>(i).instance();
      if (inst.delivered()) delivered.push_back(inst.value());
    }
    for (std::size_t i = 1; i < delivered.size(); ++i) {
      EXPECT_EQ(delivered[i], delivered[0]) << "seed " << seed;
    }
  }
}

TEST(Rbc, TotalityUnderPartialEquivocation) {
  // If any honest node delivers, all honest nodes must deliver (we detect
  // this by checking "all or nothing" across many schedules).
  int runs_with_delivery = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 4;
    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i + 1 < n; ++i) {
      sim.add_node(std::make_unique<RbcProtocol>(rbc_cfg(n, n - 1)));
    }
    sim.add_node(
        std::make_unique<RbcEquivocator>(0, payload_of(1), payload_of(2)));
    sim.set_byzantine({static_cast<NodeId>(n - 1)});
    sim.run();
    std::size_t delivered = 0;
    for (NodeId i = 0; i + 1 < n; ++i) {
      delivered += sim.node_as<RbcProtocol>(i).instance().delivered();
    }
    EXPECT_TRUE(delivered == 0 || delivered == n - 1) << "seed " << seed;
    runs_with_delivery += (delivered == n - 1);
  }
  // With SEND+ECHO equivocation to clean halves, delivery usually happens.
  EXPECT_GT(runs_with_delivery, 0);
}

TEST(Rbc, GarbageSprayersDoNotBlockDelivery) {
  const std::size_t n = 7;
  sim::Simulator sim(test::async_config(n, 11));
  const auto value = payload_of(3);
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(std::make_unique<RbcProtocol>(
        rbc_cfg(n, 0), i == 0 ? value : std::vector<std::uint8_t>{}));
  }
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 2 < n; ++i) {
    EXPECT_EQ(sim.node_as<RbcProtocol>(i).instance().value(), value);
  }
}

TEST(Rbc, NonBroadcasterSendIgnored) {
  const std::size_t n = 4;
  sim::Simulator sim(test::async_config(n, 12));
  // The designated broadcaster (node 2) has crashed; Byzantine node 3 sends
  // a forged SEND in its stead. Nothing may ever be delivered.
  class ForgedSend final : public net::Protocol {
   public:
    void on_start(net::Context& ctx) override {
      ctx.broadcast(0, std::make_shared<RbcMessage>(RbcMessage::Kind::kSend,
                                                    payload_of(99)));
    }
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return true; }
  };
  sim.add_node(std::make_unique<RbcProtocol>(rbc_cfg(n, 2)));
  sim.add_node(std::make_unique<RbcProtocol>(rbc_cfg(n, 2)));
  sim.add_node(std::make_unique<sim::SilentProtocol>());  // crashed broadcaster
  sim.add_node(std::make_unique<ForgedSend>());
  sim.set_byzantine({2, 3});
  sim.run();
  for (NodeId i = 0; i < 2; ++i) {
    EXPECT_FALSE(sim.node_as<RbcProtocol>(i).instance().delivered());
  }
}

TEST(Rbc, OversizedPayloadRejected) {
  const std::size_t n = 4;
  sim::Simulator sim(test::async_config(n, 13));
  RbcInstance::Config cfg = rbc_cfg(n, 0);
  cfg.max_payload = 4;
  std::vector<std::uint8_t> huge(64, 0xFF);
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<RbcProtocol>(cfg, huge));
  }
  sim.run();
  // The oversized SEND is dropped as malformed everywhere.
  for (NodeId i = 1; i < n; ++i) {
    EXPECT_GT(sim.node_metrics(i).malformed_dropped, 0u);
    EXPECT_FALSE(sim.node_as<RbcProtocol>(i).instance().delivered());
  }
}

TEST(Rbc, MessageCodecRoundTrip) {
  RbcMessage msg(RbcMessage::Kind::kEcho, payload_of(5));
  ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size(), msg.wire_size());
  ByteReader r(w.data());
  auto decoded = RbcMessage::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(decoded->kind(), RbcMessage::Kind::kEcho);
  EXPECT_EQ(decoded->payload(), payload_of(5));
}

TEST(Rbc, DecodeRejectsBadKind) {
  ByteWriter w;
  w.u8(9);
  w.bytes(payload_of(1));
  ByteReader r(w.data());
  EXPECT_THROW(RbcMessage::decode(r), ProtocolViolation);
}

TEST(Rbc, RequiresSupermajority) {
  EXPECT_THROW(RbcInstance(RbcInstance::Config{3, 1, 0, 0, 16}),
               InternalError);
}

}  // namespace
}  // namespace delphi::rbc
