/// Tests for the Abraham et al. AAA baseline: eps-agreement with *strict*
/// convex validity, per-round range halving, witness-technique robustness,
/// and fault tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "abraham/abraham.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::abraham {
namespace {

AbrahamProtocol::Config abr_cfg(std::size_t n, std::uint32_t rounds) {
  AbrahamProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.rounds = rounds;
  c.space_min = -1e6;
  c.space_max = 1e6;
  return c;
}

struct AbrParam {
  std::size_t n;
  std::uint64_t seed;
  double spread;
};

class AbrahamSweep : public ::testing::TestWithParam<AbrParam> {};

TEST_P(AbrahamSweep, AgreementAndStrictConvexValidity) {
  const auto [n, seed, input_spread] = GetParam();
  // Range halves per round: log2(spread/eps) rounds for eps = spread/256.
  const std::uint32_t rounds = 8;
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = 50.0 + rng.uniform(0.0, input_spread);

  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed), [&](NodeId i) {
        return std::make_unique<AbrahamProtocol>(abr_cfg(n, rounds),
                                                 inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_EQ(outcome.honest_outputs.size(), n);

  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  // Strict convex validity — no relaxation at all (Table I).
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
  // eps-agreement: range shrinks at least 2x per round.
  const double eps = input_spread / std::ldexp(1.0, rounds);
  EXPECT_LE(test::spread(outcome.honest_outputs), std::max(eps, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AbrahamSweep,
    ::testing::Values(AbrParam{4, 1, 10.0}, AbrParam{4, 2, 100.0},
                      AbrParam{7, 3, 10.0}, AbrParam{7, 4, 1.0},
                      AbrParam{10, 5, 50.0}, AbrParam{13, 6, 10.0}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_s" +
             std::to_string(test_info.param.seed);
    });

TEST(Abraham, ToleratesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 7;
    const auto byz = sim::last_t_byzantine(n, max_faults(n));
    std::vector<double> inputs(n);
    Rng rng(seed);
    for (auto& v : inputs) v = rng.uniform(0.0, 20.0);

    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) {
        sim.add_node(std::make_unique<sim::SilentProtocol>());
      } else {
        sim.add_node(
            std::make_unique<AbrahamProtocol>(abr_cfg(n, 8), inputs[i]));
      }
    }
    sim.set_byzantine(byz);
    ASSERT_TRUE(sim.run()) << "seed " << seed;

    double mn = 1e300, mx = -1e300;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      mn = std::min(mn, inputs[i]);
      mx = std::max(mx, inputs[i]);
    }
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      const auto o = sim.node_as<AbrahamProtocol>(i).output_value();
      ASSERT_TRUE(o.has_value());
      EXPECT_GE(*o, mn) << "seed " << seed;
      EXPECT_LE(*o, mx) << "seed " << seed;
    }
  }
}

TEST(Abraham, ByzantineExtremeValuesGetTrimmed) {
  // Byzantine nodes run honest code with wild inputs; the t-trim must keep
  // every honest output inside the honest hull.
  const std::size_t n = 7;
  sim::Simulator sim(test::adversarial_config(n, 31));
  std::vector<double> honest_inputs = {10.0, 10.5, 11.0, 11.5, 12.0};
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(
        std::make_unique<AbrahamProtocol>(abr_cfg(n, 8), honest_inputs[i]));
  }
  sim.add_node(std::make_unique<AbrahamProtocol>(abr_cfg(n, 8), 999'999.0));
  sim.add_node(std::make_unique<AbrahamProtocol>(abr_cfg(n, 8), -999'999.0));
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 2 < n; ++i) {
    const auto o = sim.node_as<AbrahamProtocol>(i).output_value();
    ASSERT_TRUE(o.has_value());
    EXPECT_GE(*o, 10.0);
    EXPECT_LE(*o, 12.0);
  }
}

TEST(Abraham, MoreRoundsTightenAgreement) {
  double prev = 1e9;
  for (std::uint32_t rounds : {1u, 3u, 6u, 9u}) {
    auto outcome = sim::run_nodes(
        test::async_config(7, 42), [&](NodeId i) {
          return std::make_unique<AbrahamProtocol>(abr_cfg(7, rounds),
                                                   static_cast<double>(i));
        });
    ASSERT_TRUE(outcome.all_honest_terminated);
    const double s = test::spread(outcome.honest_outputs);
    EXPECT_LE(s, prev);
    EXPECT_LE(s, 6.0 / std::ldexp(1.0, rounds));  // halving per round
    prev = s;
  }
}

TEST(Abraham, WitnessCodecRoundTrip) {
  WitnessMessage msg(3, {0, 2, 5, 9});
  ByteWriter w;
  msg.serialize(w);
  EXPECT_EQ(w.size(), msg.wire_size());
  ByteReader r(w.data());
  auto d = WitnessMessage::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(d->round(), 3u);
  EXPECT_EQ(d->ids(), (std::vector<NodeId>{0, 2, 5, 9}));
}

TEST(Abraham, MalformedWitnessesIgnored) {
  // Witness lists with duplicates / out-of-range ids / too-short lists must
  // not stall or corrupt the run (they are simply never satisfied).
  const std::size_t n = 4;
  class BadWitness final : public net::Protocol {
   public:
    void on_start(net::Context& ctx) override {
      // round-0 witness channel = n (for n=4: channel 4).
      ctx.broadcast(4, std::make_shared<WitnessMessage>(
                           0, std::vector<NodeId>{0, 0, 1}));
      ctx.broadcast(4, std::make_shared<WitnessMessage>(
                           0, std::vector<NodeId>{0, 1, 99}));
    }
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return true; }
  };
  sim::Simulator sim(test::async_config(n, 8));
  for (NodeId i = 0; i + 1 < n; ++i) {
    sim.add_node(std::make_unique<AbrahamProtocol>(abr_cfg(n, 4),
                                                   1.0 + 0.1 * i));
  }
  sim.add_node(std::make_unique<BadWitness>());
  sim.set_byzantine({3});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(sim.node_as<AbrahamProtocol>(i).terminated());
  }
}

TEST(Abraham, CommunicationIsCubicScale) {
  // O(n^3) bits per round: going 4 -> 8 nodes should multiply bytes by ~8
  // (tolerantly bracketed — constants differ).
  auto bytes_for = [](std::size_t n) {
    auto outcome = sim::run_nodes(
        test::async_config(n, 12), [&](NodeId i) {
          return std::make_unique<AbrahamProtocol>(abr_cfg(n, 4),
                                                   static_cast<double>(i));
        });
    EXPECT_TRUE(outcome.all_honest_terminated);
    return outcome.honest_bytes;
  };
  const double ratio = static_cast<double>(bytes_for(8)) /
                       static_cast<double>(bytes_for(4));
  EXPECT_GT(ratio, 4.0);   // clearly super-quadratic
  EXPECT_LT(ratio, 16.0);  // and sane
}

}  // namespace
}  // namespace delphi::abraham
