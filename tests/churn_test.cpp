/// Churn & recovery plane tests (scenario::ChurnSpec + the restart machinery
/// on all three substrates):
///   * spec grammar — churn=/churn-seed= round-trip through canonical text,
///     malformed values and invalid windows are rejected with ConfigError;
///   * dolev's RestartableProtocol snapshot/restore reproduces state exactly;
///   * sim churn is bit-identical across reruns and across parallel sweeps
///     (the determinism contract extends to the fault family);
///   * the acceptance gate — every registered protocol reaches agreement
///     under churn:1 on sim, tcp, and udp at n=4;
///   * recovery accounting — a killed TCP node reconnects, catch-up traffic
///     lands in catchup_* only, and honest_bytes parity with the simulator
///     survives churn (the replay/retransmit plane is invisible to the
///     logical counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "dolev/dolev.hpp"
#include "scenario/registry.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace delphi::scenario {
namespace {

ScenarioSpec base_spec(const std::string& protocol, Substrate sub) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.testbed = TestbedKind::kAsync;
  spec.substrate = sub;
  spec.n = 4;
  spec.seed = 7;
  return spec;
}

// ------------------------------------------------------------ spec grammar

TEST(ChurnSpecText, RoundTripsThroughText) {
  ScenarioSpec spec = base_spec("rbc", Substrate::kSim);
  spec.churn.push_back({1, 10'000, 50'000});
  spec.churn.push_back({2, 60'000, 90'000});
  spec.churn_seed = 9;

  const std::string text = spec.to_text();
  EXPECT_NE(text.find("churn=1:10000:50000"), std::string::npos) << text;
  EXPECT_NE(text.find("churn=2:60000:90000"), std::string::npos) << text;
  EXPECT_NE(text.find("churn-seed=9"), std::string::npos) << text;

  const ScenarioSpec back = ScenarioSpec::from_text(text);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_text(), text);  // canonical text is a fixed point
}

TEST(ChurnSpecText, OmittedWhenInactive) {
  const ScenarioSpec spec = base_spec("rbc", Substrate::kSim);
  const std::string text = spec.to_text();
  EXPECT_EQ(text.find("churn"), std::string::npos) << text;
}

TEST(ChurnSpecText, MalformedValuesRejected) {
  for (const char* bad : {"", "1", "1:2", "1:2:3:4", "x:2:3", "1:a:3"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(parse_churn(bad), ConfigError);
  }
  const ChurnSpec c = parse_churn("2:1000:5000");
  EXPECT_EQ(c.k, 2u);
  EXPECT_EQ(c.down_us, 1000u);
  EXPECT_EQ(c.up_us, 5000u);
}

TEST(ChurnSpecValidation, RejectsInvalidWindows) {
  // Empty restart set.
  ScenarioSpec spec = base_spec("rbc", Substrate::kSim);
  spec.churn.push_back({0, 1000, 5000});
  EXPECT_THROW(spec.validate(), ConfigError);

  // Window that never rejoins (up <= down).
  spec.churn = {{1, 5000, 5000}};
  EXPECT_THROW(spec.validate(), ConfigError);

  // More restarts than honest nodes (crash/byzantine block excluded).
  spec.churn = {{4, 1000, 5000}};
  spec.crashes = 1;
  EXPECT_THROW(spec.validate(), ConfigError);
  spec.crashes = 0;

  // Overlapping windows.
  spec.churn = {{1, 1000, 9000}, {1, 5000, 20'000}};
  EXPECT_THROW(spec.validate(), ConfigError);

  // Disjoint windows are fine.
  spec.churn = {{1, 1000, 9000}, {1, 9000, 20'000}};
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------------------- snapshot/restore contract

TEST(RestartableProtocol, DolevSnapshotRestoreRoundTrip) {
  dolev::DolevProtocol::Config cfg;
  cfg.n = 6;
  cfg.t = 1;
  cfg.rounds = 4;

  // A restored instance must reproduce the snapshot exactly: same estimate,
  // same round, and a re-snapshot yields the same bytes (serialization is a
  // fixed point). Configuration comes from the factory, not the snapshot,
  // so the fresh instance starts from a different input on purpose.
  dolev::DolevProtocol original(cfg, 3.25);
  ByteWriter w1;
  original.snapshot(w1);

  dolev::DolevProtocol restored(cfg, 99.0);
  ByteReader r(w1.data());
  restored.restore(r);
  EXPECT_EQ(restored.estimate(), 3.25);
  EXPECT_EQ(restored.round(), original.round());
  EXPECT_EQ(restored.terminated(), original.terminated());

  ByteWriter w2;
  restored.snapshot(w2);
  EXPECT_EQ(w1.data(), w2.data());
}

TEST(RestartableProtocol, DolevRestoreRejectsGarbage) {
  dolev::DolevProtocol::Config cfg;
  cfg.n = 6;
  cfg.t = 1;
  cfg.rounds = 4;
  dolev::DolevProtocol p(cfg, 1.0);
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ByteReader r(garbage);
  EXPECT_THROW(p.restore(r), Error);
}

// ----------------------------------------------------------- sim determinism

TEST(SimChurn, BitIdenticalAcrossReruns) {
  ScenarioSpec spec = base_spec("delphi", Substrate::kSim);
  spec.churn = {{1, 2000, 40'000}};
  const RunReport a = SimRuntime().run(spec);
  const RunReport b = SimRuntime().run(spec);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a, b);

  // Seeded placement is deterministic too (and changes the schedule only
  // through which node goes dark).
  spec.churn_seed = 5;
  const RunReport c = SimRuntime().run(spec);
  EXPECT_EQ(c, SimRuntime().run(spec));
}

TEST(SimChurn, ParallelSweepMatchesSerial) {
  std::vector<ScenarioSpec> specs;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ScenarioSpec spec = base_spec("rbc", Substrate::kSim);
    spec.seed = seed;
    spec.churn = {{1, 2000, 30'000}};
    specs.push_back(spec);
  }
  const auto serial = SweepRunner(1).run(specs);
  const auto parallel = SweepRunner(4).run(specs);
  EXPECT_EQ(serial, parallel);
}

TEST(SimChurn, RecoveryMetricsAreFilled) {
  ScenarioSpec spec = base_spec("rbc", Substrate::kSim);
  spec.churn = {{1, 2000, 50'000}};
  const RunReport rep = SimRuntime().run(spec);
  ASSERT_TRUE(rep.ok);
  // Placement default: first honest id. One window = one rejoin, downtime =
  // the window length, and every delivery deferred past the dark window is
  // catch-up traffic.
  EXPECT_EQ(rep.nodes[0].reconnects, 1u);
  EXPECT_EQ(rep.nodes[0].downtime_ms, 48u);
  EXPECT_GT(rep.nodes[0].catchup_frames, 0u);
  EXPECT_GT(rep.nodes[0].catchup_bytes, 0u);
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_EQ(rep.nodes[i].reconnects, 0u);
    EXPECT_EQ(rep.nodes[i].downtime_ms, 0u);
  }
}

TEST(SimChurn, ChurnFreeReportUnchangedByTheChurnPlane) {
  // The churn machinery must be invisible when no windows are configured:
  // same outputs, bytes, and schedule as ever (the golden-metrics suite pins
  // absolute values; this pins the churn-free/churn boundary directly).
  ScenarioSpec spec = base_spec("delphi", Substrate::kSim);
  const RunReport plain = SimRuntime().run(spec);
  ASSERT_TRUE(plain.ok);
  for (const auto& nc : plain.nodes) {
    EXPECT_EQ(nc.reconnects, 0u);
    EXPECT_EQ(nc.catchup_frames, 0u);
    EXPECT_EQ(nc.downtime_ms, 0u);
  }
}

// -------------------------------------------------------- acceptance gate

void expect_agreement_under_churn(Substrate sub, const ChurnSpec& window) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    ScenarioSpec spec = base_spec(name, sub);
    spec.churn = {window};
    spec.params["timeout-ms"] = 60'000;
    const RunReport rep = run_scenario(spec);
    EXPECT_TRUE(rep.ok) << name << ": " << rep.unfinished.size()
                        << " unfinished";
    EXPECT_TRUE(rep.node_errors.empty())
        << name << ": node " << rep.node_errors.front().id << " died: "
        << rep.node_errors.front().message;
    EXPECT_FALSE(rep.outputs.empty());
  }
}

TEST(ChurnAgreement, EveryProtocolOnSim) {
  expect_agreement_under_churn(Substrate::kSim, {1, 2000, 40'000});
}

TEST(ChurnAgreement, EveryProtocolOnTcp) {
  expect_agreement_under_churn(Substrate::kTcp, {1, 1000, 60'000});
}

TEST(ChurnAgreement, EveryProtocolOnUdp) {
  expect_agreement_under_churn(Substrate::kUdp, {1, 1000, 60'000});
}

TEST(ChurnAgreement, DoubleRestartOfTheSameNode) {
  // Two disjoint windows restart node 0 twice on a socket substrate — the
  // reconnect/catch-up machinery must be re-enterable.
  for (const Substrate sub : {Substrate::kTcp, Substrate::kUdp}) {
    SCOPED_TRACE(static_cast<int>(sub));
    ScenarioSpec spec = base_spec("rbc", sub);
    spec.churn = {{1, 1000, 40'000}, {1, 80'000, 120'000}};
    spec.params["timeout-ms"] = 60'000;
    const RunReport rep = run_scenario(spec);
    EXPECT_TRUE(rep.ok) << rep.unfinished.size() << " unfinished";
    EXPECT_TRUE(rep.node_errors.empty());
  }
}

// ------------------------------------------------------ recovery accounting

TEST(TcpChurn, ReconnectsAndCatchupExcludedFromHonestBytes) {
  // Dolev is the parity fixture on purpose: fixed-round multicast sends
  // exactly n*rounds messages per node on EVERY schedule (rbc would not do
  // — a node that misses SEND legitimately delivers via READY amplification
  // and sends fewer messages), and it implements RestartableProtocol, so
  // the TCP restart takes the snapshot/restore path.
  ScenarioSpec spec = base_spec("dolev", Substrate::kSim);
  spec.inputs = {1.5, 2.5, 3.5, 4.5};
  spec.params["rounds"] = 4;
  const RunReport plain = SimRuntime().run(spec);

  // Dark from the very start: node 0 goes down before its round-0 frames
  // hit the wire, so completion *requires* the catch-up plane — replay logs
  // on TCP, deferred delivery under sim.
  spec.churn = {{1, 0, 150'000}};
  const RunReport sim_churned = SimRuntime().run(spec);

  spec.substrate = Substrate::kTcp;
  spec.params["timeout-ms"] = 60'000;
  const RunReport tcp = TcpRuntime().run(spec);

  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(sim_churned.ok);
  ASSERT_TRUE(tcp.ok);
  // Catch-up replay is counted in catchup_* only, so all three honest-byte
  // totals coincide exactly.
  EXPECT_EQ(plain.honest_bytes, sim_churned.honest_bytes);
  EXPECT_EQ(plain.honest_bytes, tcp.honest_bytes);
  EXPECT_EQ(plain.honest_msgs, tcp.honest_msgs);
  EXPECT_EQ(plain.outputs, tcp.outputs);

  // The killed node really went down and came back: peers re-dialed it (it
  // is id 0, the side every higher id dials), and it was dark for roughly
  // the window (wall-clock, so only a lower bound is stable).
  EXPECT_GE(tcp.nodes[0].reconnects, 1u);
  EXPECT_GE(tcp.nodes[0].downtime_ms, 100u);
  std::uint64_t catchup = 0;
  for (const auto& nc : tcp.nodes) catchup += nc.catchup_frames;
  EXPECT_GT(catchup, 0u);
}

TEST(UdpChurn, RebindKeepsParityAndCountsRetransmitsAsCatchup) {
  ScenarioSpec spec = base_spec("dolev", Substrate::kSim);
  spec.inputs = {1.5, 2.5, 3.5, 4.5};
  spec.params["rounds"] = 4;
  const RunReport sim_rep = SimRuntime().run(spec);

  spec.substrate = Substrate::kUdp;
  spec.churn = {{1, 0, 120'000}};
  spec.params["timeout-ms"] = 60'000;
  const RunReport udp = UdpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(udp.ok);
  EXPECT_EQ(sim_rep.honest_bytes, udp.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, udp.honest_msgs);
  EXPECT_EQ(sim_rep.outputs, udp.outputs);

  // One restart = one socket rebind; the dark window forces the peers' ARQ
  // to retransmit into the void and catch the node up after rebind.
  EXPECT_EQ(udp.nodes[0].reconnects, 1u);
  EXPECT_GE(udp.nodes[0].downtime_ms, 100u);
  std::uint64_t catchup = 0;
  for (const auto& nc : udp.nodes) catchup += nc.catchup_frames;
  EXPECT_GT(catchup, 0u);
}

}  // namespace
}  // namespace delphi::scenario
