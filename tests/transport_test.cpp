/// Tests for the TCP transport: frame codec (roundtrip, incremental parsing,
/// tamper/garbage rejection), cluster mesh bring-up, protocol correctness
/// over real sockets (BinAA, Dolev, Abraham, Delphi, VectorDelphi), byte-
/// accounting parity with the simulator, fault tolerance, and timeout paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "binaa/protocol.hpp"
#include "delphi/delphi.hpp"
#include "dolev/dolev.hpp"
#include "multidim/vector_delphi.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"
#include "tests/test_util.hpp"

namespace delphi::transport {
namespace {

crypto::Key test_key(std::uint8_t fill) {
  crypto::Key k{};
  k.fill(fill);
  return k;
}

// -------------------------------------------------------------- frame codec

TEST(Frame, RoundTripAuthenticated) {
  const auto key = test_key(7);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = encode_frame(42, payload, &key);
  EXPECT_EQ(frame.size(), net::framed_size(payload.size(), 42, true));

  FrameParser parser(&key);
  parser.feed(frame);
  auto f = parser.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->channel, 42u);
  EXPECT_EQ(f->payload, payload);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Frame, RoundTripUnauthenticated) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto frame = encode_frame(3, payload, nullptr);
  EXPECT_EQ(frame.size(), net::framed_size(payload.size(), 3, false));
  FrameParser parser(nullptr);
  parser.feed(frame);
  auto f = parser.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, payload);
}

TEST(Frame, IncrementalByteByByte) {
  const auto key = test_key(1);
  const std::vector<std::uint8_t> payload(100, 0xAB);
  const auto frame = encode_frame(7, payload, &key);
  FrameParser parser(&key);
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    parser.feed(std::span<const std::uint8_t>(&frame[i], 1));
    EXPECT_FALSE(parser.next().has_value());
  }
  parser.feed(std::span<const std::uint8_t>(&frame.back(), 1));
  auto f = parser.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, payload);
}

TEST(Frame, MultipleFramesOneFeed) {
  const auto key = test_key(2);
  std::vector<std::uint8_t> stream;
  for (std::uint32_t c = 0; c < 5; ++c) {
    const std::vector<std::uint8_t> payload(c + 1, static_cast<std::uint8_t>(c));
    const auto frame = encode_frame(c, payload, &key);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameParser parser(&key);
  parser.feed(stream);
  for (std::uint32_t c = 0; c < 5; ++c) {
    auto f = parser.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->channel, c);
    EXPECT_EQ(f->payload.size(), c + 1);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(Frame, TamperedPayloadRejected) {
  const auto key = test_key(3);
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  auto frame = encode_frame(1, payload, &key);
  frame[6] ^= 0x01;  // flip a payload bit
  FrameParser parser(&key);
  parser.feed(frame);
  EXPECT_THROW(parser.next(), ProtocolViolation);
}

TEST(Frame, WrongKeyRejected) {
  const auto k1 = test_key(4);
  const auto k2 = test_key(5);
  const std::vector<std::uint8_t> payload = {1};
  const auto frame = encode_frame(0, payload, &k1);
  FrameParser parser(&k2);
  parser.feed(frame);
  EXPECT_THROW(parser.next(), ProtocolViolation);
}

TEST(Frame, OversizedPrefixRejected) {
  ByteWriter w;
  w.u32(kMaxFrameBytes + 1);
  FrameParser parser(nullptr);
  parser.feed(w.data());
  EXPECT_THROW(parser.next(), SerializationError);
}

TEST(Frame, TruncatedBodyRejected) {
  // Authenticated frame whose body is shorter than a MAC tag.
  const auto key = test_key(6);
  ByteWriter w;
  w.u32(3);
  w.u8(0);  // channel
  w.u8(1);
  w.u8(2);
  FrameParser parser(&key);
  parser.feed(w.data());
  EXPECT_THROW(parser.next(), SerializationError);
}

// ----------------------------------------------------------- cluster basics

protocol::DelphiParams tcp_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;
  return p;
}

TEST(TcpCluster, PortsResolvedAndDistinct) {
  TcpCluster::Options opts;
  opts.n = 4;
  TcpCluster cluster(opts);
  cluster.start(
      [](NodeId) { return std::make_unique<sim::SilentProtocol>(); },
      decoders::delphi());
  EXPECT_TRUE(cluster.wait());
  std::set<std::uint16_t> ports;
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_GT(cluster.port(i), 0);
    ports.insert(cluster.port(i));
  }
  EXPECT_EQ(ports.size(), 4u);
}

TEST(TcpCluster, TimeoutOnNonTerminatingProtocol) {
  /// Never terminates and never sends — wait() must give up.
  class Stuck final : public net::Protocol {
   public:
    void on_start(net::Context&) override {}
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return false; }
  };
  TcpCluster::Options opts;
  opts.n = 2;
  opts.timeout_ms = 300;
  TcpCluster cluster(opts);
  cluster.start([](NodeId) { return std::make_unique<Stuck>(); },
                decoders::delphi());
  EXPECT_FALSE(cluster.wait());
}

// ----------------------------------------------------- protocols over TCP

TEST(TcpCluster, BinAaAgreementOverSockets) {
  const std::size_t n = 4;
  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        binaa::BinAaProtocol::Config c;
        c.core.n = n;
        c.core.t = max_faults(n);
        c.core.r_max = 10;
        return std::make_unique<binaa::BinAaProtocol>(c, i % 2 == 0);
      },
      decoders::binaa());
  ASSERT_TRUE(cluster.wait());
  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto* vo = dynamic_cast<const net::ValueOutput*>(&cluster.protocol(i));
    ASSERT_NE(vo, nullptr);
    ASSERT_TRUE(vo->output_value().has_value());
    outputs.push_back(*vo->output_value());
  }
  EXPECT_LE(test::spread(outputs), std::ldexp(1.0, -10) + 1e-12);
  for (double o : outputs) {
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(TcpCluster, DolevAgreementOverSockets) {
  const std::size_t n = 6;
  dolev::DolevProtocol::Config cfg;
  cfg.n = n;
  cfg.t = 1;
  cfg.rounds = 8;
  cfg.space_min = -1e6;
  cfg.space_max = 1e6;
  std::vector<double> inputs;
  Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) inputs.push_back(rng.uniform(0.0, 50.0));

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<dolev::DolevProtocol>(cfg, inputs[i]);
      },
      decoders::dolev());
  ASSERT_TRUE(cluster.wait());

  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p = dynamic_cast<const dolev::DolevProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.output_value().has_value());
    outputs.push_back(*p.output_value());
  }
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  for (double o : outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
  EXPECT_LE(test::spread(outputs), 50.0 / 256.0);
}

TEST(TcpCluster, DolevByteAccountingMatchesSimulator) {
  // Dolev's traffic is schedule-independent (each node broadcasts exactly
  // `rounds` messages), so TCP bytes must equal the simulator's accounting.
  const std::size_t n = 6;
  dolev::DolevProtocol::Config cfg;
  cfg.n = n;
  cfg.t = 1;
  cfg.rounds = 5;
  std::vector<double> inputs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  TcpCluster::Options opts;
  opts.n = n;
  opts.auth = true;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<dolev::DolevProtocol>(cfg, inputs[i]);
      },
      decoders::dolev());
  ASSERT_TRUE(cluster.wait());
  std::uint64_t tcp_bytes = 0;
  for (NodeId i = 0; i < n; ++i) tcp_bytes += cluster.metrics(i).bytes_sent;

  sim::SimConfig scfg = test::async_config(n, 5);
  scfg.auth_channels = true;
  auto outcome = sim::run_nodes(scfg, [&](NodeId i) {
    return std::make_unique<dolev::DolevProtocol>(cfg, inputs[i]);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_EQ(tcp_bytes, outcome.honest_bytes);
}

TEST(TcpCluster, DelphiAgreementOverSockets) {
  const std::size_t n = 4;
  const auto params = tcp_params();
  std::vector<double> inputs = {500.0, 501.5, 498.2, 503.0};

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = max_faults(n);
        c.params = params;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      },
      decoders::delphi());
  ASSERT_TRUE(cluster.wait());

  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p =
        dynamic_cast<const protocol::DelphiProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.output_value().has_value());
    outputs.push_back(*p.output_value());
  }
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  const double delta = *mx - *mn;
  const double relax = std::max(params.rho0, delta);
  EXPECT_LE(test::spread(outputs), params.eps);
  for (double o : outputs) {
    EXPECT_GE(o, *mn - relax - 1e-9);
    EXPECT_LE(o, *mx + relax + 1e-9);
  }
}

TEST(TcpCluster, DelphiToleratesSilentNode) {
  const std::size_t n = 4;
  const auto params = tcp_params();
  std::vector<double> inputs = {100.0, 101.0, 102.0, 0.0};

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == n - 1) return std::make_unique<sim::SilentProtocol>();
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = 1;
        c.params = params;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      },
      decoders::delphi());
  ASSERT_TRUE(cluster.wait());
  std::vector<double> outputs;
  for (NodeId i = 0; i + 1 < n; ++i) {
    const auto& p =
        dynamic_cast<const protocol::DelphiProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.output_value().has_value());
    outputs.push_back(*p.output_value());
  }
  EXPECT_LE(test::spread(outputs), params.eps);
  for (double o : outputs) {
    EXPECT_GE(o, 100.0 - 2.0 - 1e-9);
    EXPECT_LE(o, 102.0 + 2.0 + 1e-9);
  }
}

TEST(TcpCluster, VectorDelphiOverSockets) {
  const std::size_t n = 4;
  auto cfg = multidim::VectorDelphiProtocol::Config::uniform(
      n, max_faults(n), tcp_params(), 2);
  std::vector<std::vector<double>> inputs = {
      {200.0, 800.0}, {201.0, 801.5}, {199.5, 799.0}, {202.0, 802.0}};

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<multidim::VectorDelphiProtocol>(cfg,
                                                                inputs[i]);
      },
      decoders::delphi());
  ASSERT_TRUE(cluster.wait());

  std::vector<std::vector<double>> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p = dynamic_cast<const multidim::VectorDelphiProtocol&>(
        cluster.protocol(i));
    ASSERT_TRUE(p.output_vector().has_value());
    outputs.push_back(*p.output_vector());
  }
  for (std::size_t c = 0; c < 2; ++c) {
    std::vector<double> coord;
    for (const auto& v : outputs) coord.push_back(v[c]);
    EXPECT_LE(test::spread(coord), 1.0) << "coord " << c;
  }
}

TEST(TcpCluster, AbrahamOverSockets) {
  const std::size_t n = 4;
  abraham::AbrahamProtocol::Config cfg;
  cfg.n = n;
  cfg.t = max_faults(n);
  cfg.rounds = 6;
  cfg.space_min = -1e6;
  cfg.space_max = 1e6;
  std::vector<double> inputs = {10.0, 12.0, 11.0, 13.0};

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<abraham::AbrahamProtocol>(cfg, inputs[i]);
      },
      decoders::abraham(n));
  ASSERT_TRUE(cluster.wait());
  std::vector<double> outputs;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p =
        dynamic_cast<const abraham::AbrahamProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.output_value().has_value());
    outputs.push_back(*p.output_value());
  }
  for (double o : outputs) {
    EXPECT_GE(o, 10.0);
    EXPECT_LE(o, 13.0);
  }
  EXPECT_LE(test::spread(outputs), 3.0 / 64.0 + 1e-12);
}

TEST(TcpCluster, DoraEndToEndOverSockets) {
  // The full §V oracle pipeline over real sockets: Delphi agreement,
  // rounding, attestation shares, t+1 certificates at every node, at most
  // two distinct certified values (Table III).
  const std::size_t n = 4;
  const auto params = tcp_params();
  std::vector<double> inputs = {40010.0, 40012.5, 40011.2, 40013.8};
  crypto::KeyStore keys(/*master=*/99, n);
  crypto::Attestor attestor(keys, /*session_id=*/7);

  TcpCluster::Options opts;
  opts.n = n;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        oracle::DoraProtocol::Config c;
        c.delphi.n = n;
        c.delphi.t = max_faults(n);
        c.delphi.params = params;
        c.delphi.params.space_max = 100'000.0;
        c.delphi.params.delta_max = 64.0;
        c.attestor = &attestor;
        return std::make_unique<oracle::DoraProtocol>(c, inputs[i]);
      },
      decoders::dora());
  ASSERT_TRUE(cluster.wait());

  std::set<std::int64_t> certified_values;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p =
        dynamic_cast<const oracle::DoraProtocol&>(cluster.protocol(i));
    ASSERT_TRUE(p.terminated());
    const auto& cert = p.certificate();
    EXPECT_TRUE(attestor.verify(cert, max_faults(n) + 1));
    certified_values.insert(cert.value_index);
  }
  EXPECT_LE(certified_values.size(), 2u);  // Table III: at most two outputs
}

TEST(TcpCluster, UnauthenticatedModeWorks) {
  const std::size_t n = 4;
  TcpCluster::Options opts;
  opts.n = n;
  opts.auth = false;
  dolev::DolevProtocol::Config cfg;
  cfg.n = 6;
  cfg.t = 1;
  cfg.rounds = 3;
  // n = 6 protocol over 6 transport nodes.
  opts.n = 6;
  TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        return std::make_unique<dolev::DolevProtocol>(cfg, double(i));
      },
      decoders::dolev());
  ASSERT_TRUE(cluster.wait());
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(cluster.metrics(i).malformed_dropped, 0u);
  }
}

}  // namespace
}  // namespace delphi::transport
