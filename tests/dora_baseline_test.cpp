/// Tests for the DORA (Chakka et al.) baseline: agreement via the SMR
/// channel, exact convex validity of the median, signature verification
/// paths, and tolerance to crashed oracles.

#include <gtest/gtest.h>

#include <algorithm>

#include "oracle/dora_baseline.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::oracle {
namespace {

struct Deployment {
  std::size_t n;                       // oracles; process n is the SMR
  crypto::KeyStore keys;
  crypto::Attestor attestor;
  DoraBaselineConfig cfg;

  explicit Deployment(std::size_t oracles)
      : n(oracles), keys(0x5EED + oracles, oracles), attestor(keys, 1) {
    cfg.n = oracles;
    cfg.t = max_faults(oracles);
    cfg.attestor = &attestor;
  }
};

TEST(DoraBaseline, AgreementAndConvexValidity) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Deployment dep(7);
    std::vector<double> inputs(dep.n);
    Rng rng(seed);
    for (auto& v : inputs) v = 40'000.0 + rng.uniform(-20.0, 20.0);

    sim::Simulator sim(test::adversarial_config(dep.n + 1, seed));
    for (NodeId i = 0; i < dep.n; ++i) {
      sim.add_node(std::make_unique<DoraBaselineOracle>(dep.cfg, inputs[i]));
    }
    sim.add_node(std::make_unique<SmrSequencer>(dep.cfg));
    ASSERT_TRUE(sim.run()) << "seed " << seed;

    const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
    std::optional<double> first;
    for (NodeId i = 0; i < dep.n; ++i) {
      const auto v = sim.node_as<DoraBaselineOracle>(i).output_value();
      ASSERT_TRUE(v.has_value());
      if (!first) first = *v;
      EXPECT_EQ(*v, *first) << "seed " << seed;  // SMR gives exact agreement
      EXPECT_GE(*v, *mn);
      EXPECT_LE(*v, *mx);
    }
  }
}

TEST(DoraBaseline, ToleratesCrashedOracles) {
  Deployment dep(7);
  const auto byz = sim::last_t_byzantine(dep.n, dep.cfg.t);
  sim::Simulator sim(test::adversarial_config(dep.n + 1, 9));
  std::vector<double> honest_inputs;
  for (NodeId i = 0; i < dep.n; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      const double v = 100.0 + i;
      honest_inputs.push_back(v);
      sim.add_node(std::make_unique<DoraBaselineOracle>(dep.cfg, v));
    }
  }
  sim.add_node(std::make_unique<SmrSequencer>(dep.cfg));
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i < dep.n; ++i) {
    if (byz.contains(i)) continue;
    const auto v = sim.node_as<DoraBaselineOracle>(i).output_value();
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, honest_inputs.front());
    EXPECT_LE(*v, honest_inputs.back());
  }
}

TEST(DoraBaseline, ForgedSignaturesNeverCounted) {
  // A Byzantine oracle broadcasts values with zeroed tags: they are dropped
  // on verification, and the run still completes among the honest.
  class Forger final : public net::Protocol {
   public:
    explicit Forger(std::size_t n) : n_(n) {}
    void on_start(net::Context& ctx) override {
      for (NodeId to = 0; to < n_; ++to) {
        ctx.send(to, DoraBaselineConfig::kSignedChannel,
                 std::make_shared<SignedValueMessage>(1e9, crypto::Digest{}));
      }
    }
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return true; }

   private:
    std::size_t n_;
  };

  Deployment dep(7);
  sim::Simulator sim(test::adversarial_config(dep.n + 1, 12));
  for (NodeId i = 0; i + 1 < dep.n; ++i) {
    sim.add_node(
        std::make_unique<DoraBaselineOracle>(dep.cfg, 500.0 + i * 0.5));
  }
  sim.add_node(std::make_unique<Forger>(dep.n));
  sim.add_node(std::make_unique<SmrSequencer>(dep.cfg));
  sim.set_byzantine({static_cast<NodeId>(dep.n - 1)});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 1 < dep.n; ++i) {
    const auto v = sim.node_as<DoraBaselineOracle>(i).output_value();
    ASSERT_TRUE(v.has_value());
    EXPECT_LT(*v, 1e8);  // the forged 1e9 never entered any median
    EXPECT_GE(*v, 500.0);
    EXPECT_LE(*v, 503.0);
  }
}

TEST(DoraBaseline, MessageCodecsRoundTrip) {
  crypto::Digest tag{};
  tag[5] = 0x42;
  SignedValueMessage sv(40'123.5, tag);
  ByteWriter w1;
  sv.serialize(w1);
  EXPECT_EQ(w1.size(), sv.wire_size());
  ByteReader r1(w1.data());
  auto d1 = SignedValueMessage::decode(r1);
  EXPECT_TRUE(r1.exhausted());
  EXPECT_EQ(d1->value(), 40'123.5);
  EXPECT_EQ(d1->tag(), tag);

  ValueListMessage list({{0, 1.5, tag}, {3, -2.25, tag}});
  ByteWriter w2;
  list.serialize(w2);
  EXPECT_EQ(w2.size(), list.wire_size());
  ByteReader r2(w2.data());
  auto d2 = ValueListMessage::decode(r2);
  EXPECT_TRUE(r2.exhausted());
  ASSERT_EQ(d2->entries().size(), 2u);
  EXPECT_EQ(d2->entries()[1].signer, 3u);
  EXPECT_EQ(d2->entries()[1].value, -2.25);
}

TEST(DoraBaseline, CheaperThanDelphiInRoundsButSignatureBound) {
  // Sanity of the Table III trade-off: DORA terminates in ~3 one-way hops
  // (far fewer than Delphi's r_M rounds) but burns O(n) verifications per
  // node — visible as charged CPU when verification is expensive.
  Deployment dep(7);
  auto run_with_cost = [&](SimTime verify_us) {
    DoraBaselineConfig cfg = dep.cfg;
    cfg.verify_compute_us = verify_us;
    sim::SimConfig net = test::async_config(dep.n + 1, 31);
    sim::Simulator sim(net);
    for (NodeId i = 0; i < dep.n; ++i) {
      sim.add_node(std::make_unique<DoraBaselineOracle>(cfg, 10.0 + i));
    }
    sim.add_node(std::make_unique<SmrSequencer>(cfg));
    EXPECT_TRUE(sim.run());
    return sim.metrics().honest_completion;
  };
  const auto cheap = run_with_cost(0);
  const auto pricey = run_with_cost(100'000);  // 100 ms per verification
  EXPECT_GT(pricey, cheap + 5 * 100'000);      // >= n-t serialized verifies
}

}  // namespace
}  // namespace delphi::oracle
