/// Tests for multi-instance pipelining (ScenarioSpec instances= / mux-mode=):
/// spec text round-trip and validation, determinism of muxed runs under
/// faults, registry-wide instances=4 termination on the simulator, and
/// cross-substrate (sim ≡ tcp ≡ udp) output + byte equivalence of muxed
/// runs — including instance windows whose channel bases exceed 2^21, where
/// the channel uvarint is wider than in any single-instance run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "scenario/runtime.hpp"

namespace delphi::scenario {
namespace {

/// Small-n spec every built-in suite can run (see scenario_test.cpp).
ScenarioSpec small_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.testbed = TestbedKind::kAsync;
  spec.n = 6;
  spec.seed = 7;
  return spec;
}

// ------------------------------------------------------------- spec text

TEST(MultiInstanceSpec, DefaultsAreOmittedFromText) {
  // instances=1 mux-mode=concurrent is the single-instance default; its text
  // form must stay byte-identical to pre-multi-instance specs (goldens and
  // stored scenario files depend on it).
  ScenarioSpec spec = small_spec("delphi");
  const auto text = spec.to_text();
  EXPECT_EQ(text.find("instances="), std::string::npos) << text;
  EXPECT_EQ(text.find("mux-mode="), std::string::npos) << text;
  EXPECT_EQ(ScenarioSpec::from_text(text), spec);
}

TEST(MultiInstanceSpec, TextRoundTripIsExact) {
  ScenarioSpec spec = small_spec("rbc");
  spec.instances = 4;
  spec.mux_mode = MuxMode::kSequential;
  EXPECT_NE(spec.to_text().find("instances=4"), std::string::npos);
  EXPECT_NE(spec.to_text().find("mux-mode=sequential"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);

  spec.mux_mode = MuxMode::kConcurrent;  // default mode, instances > 1
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
}

TEST(MultiInstanceSpec, ParsesHandWrittenText) {
  const auto spec = ScenarioSpec::from_text(
      "protocol=rbc n=5 seed=3 instances=8 mux-mode=sequential");
  EXPECT_EQ(spec.instances, 8u);
  EXPECT_EQ(spec.mux_mode, MuxMode::kSequential);
}

TEST(MultiInstanceSpec, RejectsInvalidValues) {
  EXPECT_THROW(ScenarioSpec::from_text("n=4 instances=0").validate(),
               ConfigError);
  // Each instance owns a 2^16-channel window of the 32-bit channel space.
  EXPECT_THROW(ScenarioSpec::from_text("n=4 instances=65537").validate(),
               ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("n=4 mux-mode=parallel"), ConfigError);
}

// ----------------------------------------------------------- determinism

TEST(MultiInstance, DeterministicUnderFaultsInBothModes) {
  // Same spec + seed ⇒ bit-identical RunReport, muxed runs included — with
  // the full fault plane active.
  for (const MuxMode mode : {MuxMode::kConcurrent, MuxMode::kSequential}) {
    SCOPED_TRACE(mode == MuxMode::kSequential ? "sequential" : "concurrent");
    ScenarioSpec spec = small_spec("delphi");
    spec.n = 7;
    spec.crashes = 1;
    spec.byzantine = parse_byzantine("garbage:48:1");
    spec.adversary = parse_adversary("random-delay:2000");
    spec.instances = 3;
    spec.mux_mode = mode;

    const auto first = SimRuntime().run(spec);
    const auto second = SimRuntime().run(spec);
    EXPECT_TRUE(first.ok);
    EXPECT_EQ(first, second);
    // All three instances of every honest node report: 3x the single-run
    // output count.
    spec.instances = 1;
    const auto single = SimRuntime().run(spec);
    EXPECT_EQ(first.outputs.size(), 3 * single.outputs.size());
  }
}

// ------------------------------------------------------------- registry

TEST(MultiInstance, EveryRegistryProtocolTerminatesAtFourInstances) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    for (const MuxMode mode : {MuxMode::kConcurrent, MuxMode::kSequential}) {
      SCOPED_TRACE(name + (mode == MuxMode::kSequential ? "/sequential"
                                                        : "/concurrent"));
      ScenarioSpec spec = small_spec(name);
      const auto single = SimRuntime().run(spec);
      spec.instances = 4;
      spec.mux_mode = mode;
      const auto rep = SimRuntime().run(spec);
      EXPECT_TRUE(rep.ok);
      EXPECT_TRUE(rep.unfinished.empty());
      // Every instance's outputs are harvested, in instance order.
      EXPECT_EQ(rep.outputs.size(), 4 * single.outputs.size());
      // The pipeline costs real traffic: strictly more than one instance.
      EXPECT_GT(rep.honest_msgs, single.honest_msgs);
    }
  }
}

// ------------------------------------------- cross-substrate equivalence

TEST(MultiInstance, CrossSubstrateRbcOutputsAndBytesMatch) {
  // RBC's traffic is schedule-independent and its output exact, so all three
  // substrates must agree bit-for-bit on outputs AND bytes. Byte parity is
  // only meaningful because framed_size accounts the actual channel uvarint
  // width — muxed instances live in shifted windows (sid * 2^16) where the
  // channel costs 3 bytes, not 1.
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.n = 5;
  spec.seed = 11;
  spec.inputs = {40012.5, 40013.0, 40011.0, 40014.5, 40012.0};
  spec.instances = 4;

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);
  spec.substrate = Substrate::kUdp;
  const auto udp_rep = UdpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  ASSERT_TRUE(udp_rep.ok);
  ASSERT_EQ(sim_rep.outputs.size(), 4u * 5u);
  for (const double v : sim_rep.outputs) EXPECT_EQ(v, 40012.5);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  EXPECT_EQ(sim_rep.outputs, udp_rep.outputs);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_bytes, udp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, tcp_rep.honest_msgs);
  EXPECT_EQ(sim_rep.honest_msgs, udp_rep.honest_msgs);
}

TEST(MultiInstance, CrossSubstrateSequentialDolevMatches) {
  // Sequential chaining changes *when* sessions open, never what they send:
  // totals must still match across substrates.
  ScenarioSpec spec;
  spec.protocol = "dolev";
  spec.n = 6;
  spec.seed = 5;
  spec.params["rounds"] = 5;
  spec.inputs = std::vector<double>(6, 42.0);
  spec.instances = 3;
  spec.mux_mode = MuxMode::kSequential;

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);
  spec.substrate = Substrate::kUdp;
  const auto udp_rep = UdpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  ASSERT_TRUE(udp_rep.ok);
  ASSERT_EQ(sim_rep.outputs.size(), 3u * 6u);
  for (const double v : sim_rep.outputs) EXPECT_EQ(v, 42.0);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  EXPECT_EQ(sim_rep.outputs, udp_rep.outputs);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_bytes, udp_rep.honest_bytes);
}

TEST(MultiInstance, HighWindowChannelsKeepByteParity) {
  // 40 instances push the top window's channel base to 39 * 2^16 ≈ 2.56M >
  // 2^21 — the 4-byte-uvarint regime. Sim accounting and real TCP framing
  // must still agree byte-for-byte.
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.n = 4;
  spec.seed = 23;
  spec.inputs = {7.0, 8.0, 9.0, 10.0};
  spec.instances = 40;

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  ASSERT_EQ(sim_rep.outputs.size(), 40u * 4u);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, tcp_rep.honest_msgs);
}

// ---------------------------------------------------------------- faults

TEST(MultiInstance, CrashedNodeIsSilentAcrossAllInstances) {
  ScenarioSpec spec = small_spec("delphi");
  spec.n = 7;
  spec.crashes = 1;
  spec.instances = 3;
  const auto rep = SimRuntime().run(spec);
  EXPECT_TRUE(rep.ok);
  // The crashed node (top id) sent nothing in any instance; honest nodes
  // report all three instances.
  EXPECT_EQ(rep.nodes.back().msgs_sent, 0u);
  EXPECT_EQ(rep.outputs.size(), 3u * (spec.n - 1));
}

}  // namespace
}  // namespace delphi::scenario
