/// Tests for the PR-5 TCP data-plane overhaul: crypto::HmacKey midstate
/// equivalence with one-shot HMAC, the one-serialization broadcast framing
/// invariant (shared body + per-link tag == legacy whole-frame encoding,
/// byte for byte), FrameParser buffer reuse across the lazy-compaction
/// boundary and under many-small-frames bursts, authenticated-link tamper
/// rejection, and cross-substrate equivalence (TCP honest bytes and outputs
/// against the simulator's framed_size accounting) for rbc / dolev / delphi.

#include <gtest/gtest.h>

#include <poll.h>

#include <chrono>
#include <string>

#include "net/message.hpp"
#include "net/wakeup.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"
#include "tests/test_util.hpp"
#include "transport/frame.hpp"
#include "transport/tcp.hpp"

namespace delphi::transport {
namespace {

using scenario::ScenarioSpec;
using scenario::SimRuntime;
using scenario::Substrate;
using scenario::TcpRuntime;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ------------------------------------------------------- HmacKey midstates

TEST(HmacKey, TagMatchesOneShotHmacAcrossKeyAndDataSizes) {
  // The midstate path must be indistinguishable from RFC 2104 HMAC for
  // every key length (including > block size, which hashes the key first)
  // and every data length straddling block boundaries.
  for (const std::size_t key_len : {0u, 1u, 32u, 63u, 64u, 65u, 131u}) {
    const std::vector<std::uint8_t> key(key_len, 0xA7);
    const crypto::HmacKey hk{std::span<const std::uint8_t>(key)};
    for (const std::size_t data_len : {0u, 1u, 31u, 55u, 64u, 65u, 1000u}) {
      std::vector<std::uint8_t> data(data_len);
      for (std::size_t i = 0; i < data_len; ++i) {
        data[i] = static_cast<std::uint8_t>(i * 7 + key_len);
      }
      const auto expected = crypto::hmac_sha256(key, data);
      EXPECT_EQ(crypto::to_hex(hk.tag(data)), crypto::to_hex(expected))
          << "key_len=" << key_len << " data_len=" << data_len;
    }
  }
}

TEST(HmacKey, TwoSpanTagEqualsConcatenatedTag) {
  crypto::Key key{};
  key.fill(0x3C);
  const crypto::HmacKey hk(key);
  const auto a = bytes_of("channel-uvarint");
  const auto b = bytes_of("payload bytes of some protocol message");
  auto concat = a;
  concat.insert(concat.end(), b.begin(), b.end());
  EXPECT_EQ(crypto::to_hex(hk.tag(a, b)), crypto::to_hex(hk.tag(concat)));
}

TEST(HmacKey, ReusableAcrossTags) {
  // One key schedule, many tags: later tags must not be polluted by
  // earlier ones (the midstates are copied, never consumed).
  crypto::Key key{};
  key.fill(0x11);
  const crypto::HmacKey hk(key);
  const auto d1 = bytes_of("first");
  const auto d2 = bytes_of("second");
  const auto t1 = hk.tag(d1);
  const auto t2 = hk.tag(d2);
  EXPECT_EQ(crypto::to_hex(hk.tag(d1)), crypto::to_hex(t1));
  EXPECT_EQ(crypto::to_hex(hk.tag(d2)), crypto::to_hex(t2));
  EXPECT_NE(crypto::to_hex(t1), crypto::to_hex(t2));
}

// ------------------------------------- one-serialization broadcast framing

TEST(SharedFrameBody, BodyPlusTagEqualsLegacyFrame) {
  // The broadcast invariant: shared body + per-link tag must be byte-for-
  // byte what the legacy per-destination encoder produced, for every link.
  const auto payload = bytes_of("delphi bundle bytes");
  const auto body = encode_frame_body(42, payload, /*authenticated=*/true);
  crypto::KeyStore keys(/*master=*/5, /*n=*/4);
  for (NodeId j = 1; j < 4; ++j) {
    const crypto::HmacKey link(keys.channel_key(0, j));
    auto wire = *body;
    const auto tag = frame_tag(link, *body);
    wire.insert(wire.end(), tag.begin(), tag.end());
    EXPECT_EQ(wire, encode_frame(42, payload, &keys.channel_key(0, j)))
        << "link 0-" << j;
    EXPECT_EQ(wire.size(), net::framed_size(payload.size(), 42, true));
    EXPECT_EQ(frame_wire_size(*body, true), wire.size());
  }
}

TEST(SharedFrameBody, UnauthenticatedBodyIsTheWholeFrame) {
  const auto payload = bytes_of("xyz");
  const auto body = encode_frame_body(7, payload, /*authenticated=*/false);
  EXPECT_EQ(*body, encode_frame(7, payload, nullptr));
  EXPECT_EQ(body->size(), net::framed_size(payload.size(), 7, false));
  EXPECT_EQ(frame_wire_size(*body, false), body->size());
}

TEST(SharedFrameBody, MessageSerializingOverloadMatchesSpanOverload) {
  /// Minimal message body writing a fixed byte pattern.
  class Blob final : public net::MessageBody {
   public:
    std::size_t wire_size() const override { return 5; }
    void serialize(ByteWriter& w) const override {
      for (std::uint8_t b : {1, 2, 3, 4, 5}) w.u8(b);
    }
    std::string debug() const override { return "blob"; }
  };
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(*encode_frame_body(9, Blob(), true),
            *encode_frame_body(9, payload, true));
}

// ------------------------------------------------- parser buffer mechanics

TEST(FrameParser, LazyCompactionBoundaryExactHalf) {
  // Arrange pos_ == buf_.size()/2 exactly when the next feed arrives: frame
  // A consumed (pos_ == |A|) with |B|/2 unread bytes buffered such that
  // |A| == (|A| + |B|/2) / 2. With |A| == 100 and |B| == 400: feed A plus
  // 100 bytes of B (buf 200, pos 100 after A pops) — the second feed
  // triggers compaction at the exact boundary and B must still parse.
  const auto key_a = crypto::Key{};  // zero key
  const crypto::HmacKey hk(key_a);

  // |A| = 4 + 1 + 63 + 32 = 100 bytes; |B| = 4 + 1 + 363 + 32 = 400 bytes.
  const std::vector<std::uint8_t> pa(63, 0xAA);
  const std::vector<std::uint8_t> pb(363, 0xBB);
  const auto fa = encode_frame(1, pa, &hk);
  const auto fb = encode_frame(2, pb, &hk);
  ASSERT_EQ(fa.size(), 100u);
  ASSERT_EQ(fb.size(), 400u);

  FrameParser parser(&hk);
  std::vector<std::uint8_t> first(fa);
  first.insert(first.end(), fb.begin(), fb.begin() + 100);
  parser.feed(first);
  auto a = parser.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, pa);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered(), 100u);

  // pos_ == 100 == buf_.size()/2: this feed compacts, then appends.
  parser.feed(std::span<const std::uint8_t>(fb.data() + 100, 300));
  auto b = parser.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->channel, 2u);
  EXPECT_EQ(b->payload, pb);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, ManySmallFramesInOneRead) {
  // A burst of small frames arriving in a single read() must all parse,
  // reusing one buffer (no quadratic compaction, no lost boundaries).
  const crypto::Key key{};
  const crypto::HmacKey hk(key);
  constexpr std::size_t kFrames = 500;
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const std::vector<std::uint8_t> payload(
        1 + i % 17, static_cast<std::uint8_t>(i));
    const auto f = encode_frame(static_cast<std::uint32_t>(i % 5), payload,
                                &hk);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser(&hk);
  parser.feed(stream);
  for (std::size_t i = 0; i < kFrames; ++i) {
    auto v = parser.next_view();
    ASSERT_TRUE(v.has_value()) << "frame " << i;
    EXPECT_EQ(v->channel, i % 5);
    ASSERT_EQ(v->payload.size(), 1 + i % 17);
    EXPECT_EQ(v->payload[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_FALSE(parser.next_view().has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, ViewAndCopyAgree) {
  const crypto::Key key{};
  const crypto::HmacKey hk(key);
  const auto payload = bytes_of("view-vs-copy");
  const auto frame = encode_frame(3, payload, &hk);

  FrameParser by_view(&hk);
  by_view.feed(frame);
  const auto v = by_view.next_view();
  ASSERT_TRUE(v.has_value());

  FrameParser by_copy(&hk);
  by_copy.feed(frame);
  const auto c = by_copy.next();
  ASSERT_TRUE(c.has_value());

  EXPECT_EQ(v->channel, c->channel);
  EXPECT_EQ(std::vector<std::uint8_t>(v->payload.begin(), v->payload.end()),
            c->payload);
}

// ------------------------------------------------------- tamper rejection

TEST(Tamper, FlippedPayloadByteRaisesProtocolViolation) {
  const crypto::Key key{};
  const crypto::HmacKey hk(key);
  const std::vector<std::uint8_t> payload(40, 0x55);
  auto frame = encode_frame(1, payload, &hk);
  frame[10] ^= 0x01;  // payload region
  FrameParser parser(&hk);
  parser.feed(frame);
  EXPECT_THROW(parser.next_view(), ProtocolViolation);
}

TEST(Tamper, FlippedTagByteRaisesProtocolViolation) {
  const crypto::Key key{};
  const crypto::HmacKey hk(key);
  const std::vector<std::uint8_t> payload(40, 0x55);
  auto frame = encode_frame(1, payload, &hk);
  frame[frame.size() - 1] ^= 0x80;  // inside the MAC tag
  FrameParser parser(&hk);
  parser.feed(frame);
  EXPECT_THROW(parser.next_view(), ProtocolViolation);
}

// -------------------------------------------------- cross-substrate parity

TEST(CrossSubstrate, RbcBytesAndOutputsUnchangedByOverhaul) {
  // RBC traffic is schedule-independent, so the overhauled TCP data plane
  // must report exactly the simulator's framed_size accounting — any drift
  // in the broadcast framing contract shows up here as a byte delta.
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.n = 5;
  spec.seed = 23;
  spec.inputs = {1.5, 2.5, 3.5, 4.5, 5.5};

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, tcp_rep.honest_msgs);
}

TEST(CrossSubstrate, DolevBytesMatchWithAndWithoutAuth) {
  // Both auth modes: the length-prefix/tag accounting of the shared-body
  // encoding must agree with framed_size in each.
  for (const double auth : {1.0, 0.0}) {
    SCOPED_TRACE(auth);
    ScenarioSpec spec;
    spec.protocol = "dolev";
    spec.n = 6;
    spec.seed = 9;
    spec.params["rounds"] = 5;
    spec.params["auth"] = auth;
    spec.inputs = std::vector<double>(6, 17.0);

    spec.substrate = Substrate::kSim;
    const auto sim_rep = SimRuntime().run(spec);
    spec.substrate = Substrate::kTcp;
    const auto tcp_rep = TcpRuntime().run(spec);

    ASSERT_TRUE(sim_rep.ok);
    ASSERT_TRUE(tcp_rep.ok);
    EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
    EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  }
}

TEST(CrossSubstrate, DelphiOverTcpStillAgrees) {
  // Delphi's traffic is schedule-dependent (no exact byte parity), but the
  // overhauled data plane must still carry it to eps-agreement.
  ScenarioSpec spec;
  spec.protocol = "delphi";
  spec.substrate = Substrate::kTcp;
  spec.n = 5;
  spec.seed = 3;
  spec.center = 500.0;
  spec.delta = 4.0;
  spec.params["rho0"] = 1.0;
  spec.params["eps"] = 1.0;
  spec.params["delta-max"] = 32.0;
  spec.params["space-min"] = 0.0;
  spec.params["space-max"] = 1000.0;

  const auto rep = TcpRuntime().run(spec);
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.outputs.size(), 5u);
  EXPECT_LE(test::spread(rep.outputs), 1.0 + 1e-9);
  EXPECT_GT(rep.honest_bytes, 0u);
  EXPECT_GT(rep.honest_msgs, 0u);
}

TEST(CrossSubstrate, NodelayKnobAcceptedOnTcp) {
  // `nodelay` is a universal substrate param: spec text round-trips and the
  // TCP runtime honours it without a validation error.
  ScenarioSpec spec;
  spec.protocol = "dolev";
  spec.substrate = Substrate::kTcp;
  spec.n = 4;
  spec.params["rounds"] = 3;
  spec.params["nodelay"] = 0.0;
  const auto round_trip = ScenarioSpec::from_text(spec.to_text());
  EXPECT_EQ(round_trip, spec);
  const auto rep = TcpRuntime().run(spec);
  EXPECT_TRUE(rep.ok);
}

// ------------------------------------------------------------- fail-fast

TEST(TcpCluster2, DeadNodeThreadsFailFastInsteadOfSleepingOutDeadline) {
  // Every protocol throws in on_start, so every node thread dies without
  // terminating. wait() must notice the exited threads and return false
  // well before the 30 s deadline — no timer tick, just the done wakeup.
  class Throws final : public net::Protocol {
   public:
    void on_start(net::Context&) override { throw Error("boom"); }
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return false; }
  };
  TcpCluster::Options opts;
  opts.n = 3;
  opts.timeout_ms = 30'000;
  TcpCluster cluster(opts);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.start([](NodeId) { return std::make_unique<Throws>(); },
                [](std::uint32_t, ByteReader&) -> net::MessagePtr {
                  throw SerializationError("unused");
                });
  EXPECT_FALSE(cluster.wait());
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(wall.count(), 5'000);
  EXPECT_EQ(cluster.unfinished().size(), 3u);
}

// ------------------------------------------------------- wakeup primitive

TEST(WakeupFd, SignalMakesFdReadableAndDrainResets) {
  net::WakeupFd w;
  // Coalesced signals: readable once signaled, clean after drain.
  w.signal();
  w.signal();
  pollfd pfd{w.fd(), POLLIN, 0};
  ASSERT_EQ(::poll(&pfd, 1, 0), 1);
  EXPECT_TRUE(pfd.revents & POLLIN);
  w.drain();
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 0), 0);
}

}  // namespace
}  // namespace delphi::transport
