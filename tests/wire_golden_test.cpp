/// Golden wire-format tests: every message type's encoding is pinned to a
/// fixed byte string. These fail loudly on any accidental format change —
/// nodes running different builds must stay interoperable, and the byte
/// accounting in EXPERIMENTS.md depends on these exact layouts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aba/aba.hpp"
#include "abraham/abraham.hpp"
#include "benor/benor.hpp"
#include "binaa/message.hpp"
#include "delphi/message.hpp"
#include "dolev/dolev.hpp"
#include "rbc/rbc.hpp"
#include "transport/frame.hpp"

namespace delphi {
namespace {

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

template <typename M>
std::string encoded(const M& m) {
  ByteWriter w;
  m.serialize(w);
  EXPECT_EQ(w.size(), m.wire_size());
  return hex(w.data());
}

TEST(WireGolden, RbcEcho) {
  EXPECT_EQ(encoded(rbc::RbcMessage(rbc::RbcMessage::Kind::kEcho,
                                    {0xDE, 0xAD, 0xBE, 0xEF})),
            "0104deadbeef");
}

TEST(WireGolden, AbaAux) {
  EXPECT_EQ(encoded(aba::AbaMessage(aba::AbaMessage::Kind::kAux, 3, true)),
            "010301");
}

TEST(WireGolden, BenOrPropose) {
  // round 300 exercises the multi-byte uvarint (0xac 0x02).
  EXPECT_EQ(encoded(benor::BenOrMessage(benor::BenOrMessage::Kind::kPropose,
                                        300, benor::kBottom)),
            "01ac0202");
}

TEST(WireGolden, BinAaEcho2) {
  // value -7 exercises the zigzag svarint (0x0d).
  EXPECT_EQ(encoded(binaa::EchoMessage(2, 5, -7)), "02050d");
}

TEST(WireGolden, DolevRoundValue) {
  // 1.5 == 0x3ff8000000000000, little-endian.
  EXPECT_EQ(encoded(dolev::RoundValueMessage(2, 1.5)),
            "02000000000000f83f");
}

TEST(WireGolden, AbrahamWitness) {
  EXPECT_EQ(encoded(abraham::WitnessMessage(1, {0, 2, 300})), "01030002ac02");
}

TEST(WireGolden, DelphiBundle) {
  EXPECT_EQ(encoded(protocol::DelphiBundle(
                {protocol::DefaultEcho{1, 2, 4, 9}},
                {protocol::ExplicitEcho{0, -3, 1, 2, 129}})),
            "010102041201000501028202");
}

TEST(WireGolden, AuthenticatedFrame) {
  crypto::Key key{};
  key.fill(0x42);
  const auto frame =
      transport::encode_frame(7, std::vector<std::uint8_t>{1, 2, 3}, &key);
  EXPECT_EQ(hex(frame),
            "2400000007010203cda73bcb2aa9ab36ad045c9f738f8cc9e4218e299c2e46c5"
            "c3d1b56a91187b4c");
}

TEST(WireGolden, HighChannelFrameMatchesFramedSize) {
  // Multi-instance sessions shift channels into high windows (sid * 2^16),
  // where the channel uvarint takes 3-5 bytes instead of 1. The simulator's
  // byte accounting (net::framed_size) must equal the actual encoded frame
  // size at every window base or sim != tcp != udp byte parity breaks.
  crypto::Key key{};
  key.fill(0x42);
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const std::uint32_t channels[] = {
      0,           127,         128,
      1u << 16,              // instance window 1 (3-byte uvarint)
      (1u << 21) + 5,        // beyond 2^21 (4-byte uvarint)
      3u << 16,              // a mid-pipeline window base
      0xFFFFFFFFu,           // top of the channel space (5-byte uvarint)
  };
  for (std::uint32_t ch : channels) {
    const auto auth_frame = transport::encode_frame(ch, payload, &key);
    EXPECT_EQ(auth_frame.size(),
              net::framed_size(payload.size(), ch, /*authenticated=*/true))
        << "channel " << ch;
    const auto plain_frame = transport::encode_frame(ch, payload, nullptr);
    EXPECT_EQ(plain_frame.size(),
              net::framed_size(payload.size(), ch, /*authenticated=*/false))
        << "channel " << ch;
  }
}

TEST(WireGolden, HighChannelFrameRoundTrips) {
  // FrameParser must hand back the exact channel and payload for frames in
  // high instance windows (both auth modes).
  crypto::Key key{};
  key.fill(0x42);
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF};
  for (std::uint32_t ch :
       {1u << 16, (1u << 21) + 5, 7u << 16, 0xFFFFFFFFu}) {
    {
      transport::FrameParser parser(&key);
      parser.feed(transport::encode_frame(ch, payload, &key));
      auto f = parser.next();
      ASSERT_TRUE(f.has_value()) << "channel " << ch;
      EXPECT_EQ(f->channel, ch);
      EXPECT_EQ(f->payload, payload);
      EXPECT_EQ(parser.buffered(), 0u);
    }
    {
      transport::FrameParser parser;
      parser.feed(transport::encode_frame(ch, payload, nullptr));
      auto f = parser.next();
      ASSERT_TRUE(f.has_value()) << "channel " << ch;
      EXPECT_EQ(f->channel, ch);
      EXPECT_EQ(f->payload, payload);
    }
  }
}

TEST(WireGolden, GoldenBytesDecodeBack) {
  // The pinned encodings stay decodable (golden test's other direction).
  {
    ByteWriter w;
    dolev::RoundValueMessage(2, 1.5).serialize(w);
    ByteReader r(w.data());
    auto m = dolev::RoundValueMessage::decode(r);
    EXPECT_EQ(m->round(), 2u);
    EXPECT_DOUBLE_EQ(m->value(), 1.5);
  }
  {
    ByteWriter w;
    protocol::DelphiBundle({protocol::DefaultEcho{1, 2, 4, 9}},
                           {protocol::ExplicitEcho{0, -3, 1, 2, 129}})
        .serialize(w);
    ByteReader r(w.data());
    auto b = protocol::DelphiBundle::decode(r);
    ASSERT_EQ(b->defaults().size(), 1u);
    ASSERT_EQ(b->explicits().size(), 1u);
    EXPECT_EQ(b->defaults()[0].round, 4u);
    EXPECT_EQ(b->explicits()[0].k, -3);
    EXPECT_EQ(b->explicits()[0].value, 129);
  }
}

}  // namespace
}  // namespace delphi
