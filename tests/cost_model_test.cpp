/// Exact-value tests for sim::CostModel application: fractional-µs rounding
/// (per charge, half away from zero), the zero-cost fast() path, and uplink
/// serialization — including back-to-back frame queuing on one uplink, the
/// busy-until clock carrying across handler invocations, and loopback
/// bypassing the network entirely. Every expectation is computed by hand from
/// the documented model, so a change to rounding or queuing order fails with
/// an exact diff.

#include <gtest/gtest.h>

#include <vector>

#include "net/message.hpp"
#include "net/protocol.hpp"
#include "sim/harness.hpp"

namespace delphi::sim {
namespace {

/// Payload of exactly 1 + pad bytes (uvarint(0) + pad zeros).
class PadMessage final : public net::MessageBody {
 public:
  explicit PadMessage(std::size_t pad) : pad_(pad) {}
  std::size_t wire_size() const override { return 1 + pad_; }
  void serialize(ByteWriter& w) const override {
    w.uvarint(0);
    for (std::size_t i = 0; i < pad_; ++i) w.u8(0);
  }
  std::string debug() const override { return "PAD"; }

 private:
  std::size_t pad_;
};

/// Node 1 sends the scripted pads (to node 0 unless `to_self`) on start;
/// node 0 records each delivery's handler start time (ctx.now()).
class Scripted final : public net::Protocol {
 public:
  Scripted(std::vector<std::size_t> pads, bool receiver_terminates,
           bool second_to_self = false)
      : pads_(std::move(pads)),
        receiver_terminates_(receiver_terminates),
        second_to_self_(second_to_self) {}

  void on_start(net::Context& ctx) override {
    if (ctx.self() != 1) return;
    for (std::size_t i = 0; i < pads_.size(); ++i) {
      const NodeId to = (second_to_self_ && i == 1) ? 1 : 0;
      ctx.send(to, /*channel=*/0, std::make_shared<PadMessage>(pads_[i]));
    }
    sent_ = true;
  }

  void on_message(net::Context& ctx, NodeId, std::uint32_t,
                  const net::MessageBody&) override {
    delivery_times_.push_back(ctx.now());
  }

  bool terminated() const override {
    return sent_ || (receiver_terminates_ && !delivery_times_.empty());
  }

  const std::vector<SimTime>& delivery_times() const {
    return delivery_times_;
  }

 private:
  std::vector<std::size_t> pads_;
  bool receiver_terminates_;
  bool second_to_self_;
  bool sent_ = false;
  std::vector<SimTime> delivery_times_;
};

/// Two-node run with constant 1000 µs latency and no auth tags; returns the
/// simulator after draining (receiver never terminates) or after the first
/// delivery (receiver_terminates).
struct RunResult {
  SimTime now;
  SimTime receiver_terminated_at;
  std::vector<SimTime> deliveries;
  std::uint64_t total_msgs;
  std::uint64_t total_bytes;
  std::uint64_t receiver_delivered;
};

RunResult run_scripted(const CostModel& cost, std::vector<std::size_t> pads,
                       bool receiver_terminates = false,
                       bool second_to_self = false) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 1;
  cfg.latency = std::make_shared<UniformLatency>(1000, 1000);
  cfg.cost = cost;
  cfg.auth_channels = false;
  Simulator sim(cfg);
  sim.add_node(
      std::make_unique<Scripted>(pads, receiver_terminates, second_to_self));
  sim.add_node(
      std::make_unique<Scripted>(pads, receiver_terminates, second_to_self));
  sim.run();
  RunResult r;
  r.now = sim.now();
  r.receiver_terminated_at = sim.node_metrics(0).terminated_at;
  r.deliveries = sim.node_as<Scripted>(0).delivery_times();
  r.total_msgs = sim.metrics().total_msgs;
  r.total_bytes = sim.metrics().total_bytes;
  r.receiver_delivered = sim.node_metrics(0).msgs_delivered;
  return r;
}

// Frame layout with auth off, channel 0, pad p:
//   4 (length) + 1 (channel uvarint) + (1 + p) payload  =  6 + p bytes.
constexpr std::size_t frame_bytes(std::size_t pad) { return 6 + pad; }

TEST(CostModel, FastPathIsExactlyZeroCost) {
  // fast(): no CPU costs, uplink so fast that serialization rounds to 0 µs —
  // a 10 kB frame still arrives after exactly the 1000 µs base latency.
  const auto r = run_scripted(CostModel::fast(), {10'000});
  EXPECT_EQ(r.deliveries, (std::vector<SimTime>{1000}));
  EXPECT_EQ(r.now, 1000);
  EXPECT_EQ(r.total_bytes, frame_bytes(10'000));
}

TEST(CostModel, PerSendFractionRoundsPerMessageNotAccumulated) {
  // 0.6 µs per send rounds to 1 µs on *each* application: three sends push
  // the CPU clock by 3 µs total. Accumulate-then-round (llround(1.8) = 2)
  // would arrive one µs earlier and fail.
  CostModel cost = CostModel::fast();
  cost.per_msg_send_us = 0.6;
  const auto r = run_scripted(cost, {0, 0, 0});
  EXPECT_EQ(r.deliveries, (std::vector<SimTime>{1001, 1002, 1003}));
  EXPECT_EQ(r.now, 1003);
}

TEST(CostModel, HalfMicrosecondRoundsAwayFromZero) {
  // llround semantics: 0.5 µs -> 1 µs (not banker's rounding to 0).
  CostModel cost = CostModel::fast();
  cost.per_msg_send_us = 0.5;
  const auto r = run_scripted(cost, {0});
  EXPECT_EQ(r.deliveries, (std::vector<SimTime>{1001}));
}

TEST(CostModel, RecvCostAccumulatesFractionsBeforeRounding) {
  // Receive cost = per_msg_recv_us + wire * per_byte_cpu_us, accumulated in
  // double and rounded once: 0.3 + 2 * 0.1 = 0.5 -> 1 µs; with a 1-byte
  // payload 0.3 + 0.1 = 0.4 -> 0 µs. The send side charges per-byte CPU on
  // the whole 6- or 7-byte frame (llround(0.6) = llround(0.7) = 1 µs), so
  // both messages arrive at 1001 and only the receive-side rounding differs.
  // Observed via the receiver's terminated_at (= arrival + receive cost).
  CostModel cost = CostModel::fast();
  cost.per_msg_recv_us = 0.3;
  cost.per_byte_cpu_us = 0.1;
  const auto one_byte = run_scripted(cost, {0}, /*receiver_terminates=*/true);
  EXPECT_EQ(one_byte.receiver_terminated_at, 1001);
  const auto two_bytes = run_scripted(cost, {1}, /*receiver_terminates=*/true);
  EXPECT_EQ(two_bytes.receiver_terminated_at, 1002);
}

TEST(CostModel, BackToBackFramesQueueOnOneUplink) {
  // At 1 B/µs, two frames sent from the same handler serialize strictly one
  // after the other: frame 1 (100 B) departs at 100, frame 2 (200 B) at 300.
  CostModel cost = CostModel::fast();
  cost.uplink_bytes_per_us = 1.0;
  const auto r = run_scripted(cost, {94, 194});
  ASSERT_EQ(frame_bytes(94), 100u);
  ASSERT_EQ(frame_bytes(194), 200u);
  EXPECT_EQ(r.deliveries, (std::vector<SimTime>{1100, 1300}));
}

TEST(CostModel, UplinkBusyPersistsAcrossHandlers) {
  // Handler 1 (on_start) queues a 1000-byte frame to node 0 and a loopback
  // message to self; the loopback handler fires at CPU time 0 but its
  // network send must still wait for the uplink to drain the first frame.
  CostModel cost = CostModel::fast();
  cost.uplink_bytes_per_us = 1.0;

  class TwoPhase final : public net::Protocol {
   public:
    void on_start(net::Context& ctx) override {
      if (ctx.self() != 1) return;
      ctx.send(0, 0, std::make_shared<PadMessage>(994));  // 1000 B frame
      ctx.send(1, 0, std::make_shared<PadMessage>(0));    // loopback trigger
    }
    void on_message(net::Context& ctx, NodeId, std::uint32_t,
                    const net::MessageBody&) override {
      if (ctx.self() == 1) {
        ctx.send(0, 0, std::make_shared<PadMessage>(94));  // 100 B frame
      } else {
        deliveries_.push_back(ctx.now());
      }
    }
    bool terminated() const override { return false; }
    std::vector<SimTime> deliveries_;
  };

  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 1;
  cfg.latency = std::make_shared<UniformLatency>(1000, 1000);
  cfg.cost = cost;
  cfg.auth_channels = false;
  Simulator sim(cfg);
  sim.add_node(std::make_unique<TwoPhase>());
  sim.add_node(std::make_unique<TwoPhase>());
  sim.run();
  // Frame 1 departs at 1000 -> arrives 2000. The loopback handler runs at
  // t = 0, but its 100 B frame only starts serializing once the uplink frees
  // at 1000, departing 1100 -> arriving 2100.
  EXPECT_EQ(sim.node_as<TwoPhase>(0).deliveries_,
            (std::vector<SimTime>{2000, 2100}));
}

TEST(CostModel, LoopbackCostsNoNetworkResources) {
  // A self-send is delivered through the local queue: it counts as a
  // delivery on the receiver but contributes no frames, bytes, or uplink
  // time. Only the node 1 -> node 0 message touches the network.
  const auto r = run_scripted(CostModel::fast(), {0, 0},
                              /*receiver_terminates=*/false,
                              /*second_to_self=*/true);
  EXPECT_EQ(r.total_msgs, 1u);
  EXPECT_EQ(r.total_bytes, frame_bytes(0));
  EXPECT_EQ(r.deliveries, (std::vector<SimTime>{1000}));
}

}  // namespace
}  // namespace delphi::sim
