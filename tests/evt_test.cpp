/// Tests for the extreme-value machinery deriving Delphi's Delta parameter
/// (paper §IV-D): analytic range bounds must cover empirically sampled
/// ranges, scale as the paper claims, and the closed forms must track the
/// generic numeric bound.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/evt.hpp"
#include "stats/summary.hpp"

namespace delphi::stats {
namespace {

TEST(Evt, SampleRangeIsNonNegativeAndGrowsWithN) {
  Rng rng(21);
  Normal d(0.0, 1.0);
  double small = 0.0, large = 0.0;
  for (int i = 0; i < 200; ++i) {
    small += sample_range(d, 4, rng);
    large += sample_range(d, 160, rng);
  }
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);  // wider cohorts have wider ranges
}

TEST(Evt, RangeBoundCoversEmpiricalRangesNormal) {
  Rng rng(22);
  Normal d(100.0, 5.0);
  const double bound = range_bound(d, 64, /*lambda_bits=*/20.0);
  // 2000 cohorts of 64: none should exceed a 2^-20 bound.
  for (int trial = 0; trial < 2000; ++trial) {
    EXPECT_LE(sample_range(d, 64, rng), bound);
  }
}

TEST(Evt, RangeBoundCoversEmpiricalRangesGamma) {
  Rng rng(23);
  Gamma d(30.77, 0.18);  // the paper's CPS error distribution
  const double bound = range_bound(d, 169, 20.0);
  for (int trial = 0; trial < 2000; ++trial) {
    EXPECT_LE(sample_range(d, 169, rng), bound);
  }
}

TEST(Evt, RangeBoundCoversEmpiricalRangesFrechet) {
  Rng rng(24);
  Frechet d(4.41, 29.3);  // the paper's oracle range distribution
  const double bound = range_bound(d, 160, 20.0);
  for (int trial = 0; trial < 2000; ++trial) {
    EXPECT_LE(sample_range(d, 160, rng), bound);
  }
}

TEST(Evt, BoundMonotoneInLambda) {
  Normal d(0.0, 1.0);
  double prev = 0.0;
  for (double lambda : {5.0, 10.0, 20.0, 30.0, 40.0}) {
    const double b = range_bound(d, 64, lambda);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Evt, BoundMonotoneInN) {
  Normal d(0.0, 1.0);
  double prev = 0.0;
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    const double b = range_bound(d, n, 20.0);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Evt, ThinTailBoundGrowsLogarithmicallyInN) {
  // Paper: Delta = O(lambda log n) for Normal/Gamma. Doubling n should add
  // roughly a constant, not multiply — check the growth ratio shrinks.
  Normal d(0.0, 1.0);
  const double b1 = range_bound(d, 16, 30.0);
  const double b2 = range_bound(d, 256, 30.0);
  const double b3 = range_bound(d, 4096, 30.0);
  EXPECT_LT(b3 - b2, 2.0 * (b2 - b1) + 1e-9);  // sub-linear increments
  EXPECT_LT(b3, 2.0 * b1);                     // far from multiplicative
}

TEST(Evt, FatTailBoundGrowsPolynomiallyInN) {
  // Paper: Delta = O(n^{1/alpha}) for Fréchet-domain tails.
  Frechet d(2.0, 1.0);
  const double b1 = range_bound(d, 16, 20.0);
  const double b2 = range_bound(d, 16 * 16, 20.0);
  // n^(1/2): multiplying n by 16 should multiply the bound by ~4.
  EXPECT_GT(b2 / b1, 2.0);
  EXPECT_LT(b2 / b1, 8.0);
}

TEST(Evt, ClosedFormNormalTracksGenericBound) {
  Normal d(0.0, 2.0);
  for (std::size_t n : {16u, 64u, 160u}) {
    const double generic = range_bound(d, n, 30.0);
    const double closed = range_bound_normal(2.0, n, 30.0);
    // Same order of magnitude (the closed form is an asymptotic envelope).
    EXPECT_GT(closed, 0.4 * generic);
    EXPECT_LT(closed, 4.0 * generic);
  }
}

TEST(Evt, ClosedFormFrechetTracksGenericBound) {
  Frechet d(4.41, 29.3);
  for (std::size_t n : {16u, 160u}) {
    const double generic = range_bound(d, n, 20.0);
    const double closed = range_bound_frechet(4.41, 29.3, n, 20.0);
    EXPECT_GT(closed, 0.2 * generic);
    EXPECT_LT(closed, 5.0 * generic);
  }
}

TEST(Evt, PaperOracleCalibration) {
  // §VI-A: the paper fits Fréchet(4.41, 29.3) to the *range* delta itself
  // and derives Delta ≈ 2000$ at lambda ≈ 30 bits. Inverting that Fréchet
  // tail (n = 1: the distribution already models the range, no maximum
  // renormalization) must land in the same ballpark.
  const double bound = range_bound_frechet(4.41, 29.3, 1, 30.0);
  EXPECT_GT(bound, 1000.0);
  EXPECT_LT(bound, 6000.0);
}

TEST(Evt, EmpiricalQuantileMatchesAnalyticTail) {
  Rng rng(25);
  Normal d(0.0, 1.0);
  // The 99% empirical range quantile must sit below a 2^-10 analytic bound
  // (which covers all but ~0.1%).
  const double q99 = empirical_range_quantile(d, 64, 0.99, 3000, rng);
  const double bound = range_bound(d, 64, 10.0);
  EXPECT_LT(q99, bound);
  // ...but the bound should not be absurdly loose either (< 3x the quantile).
  EXPECT_LT(bound, 3.0 * q99);
}

}  // namespace
}  // namespace delphi::stats
