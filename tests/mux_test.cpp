/// Tests for SessionMux: channel windowing, lazy session opening, sequential
/// chaining, concurrent sessions, per-session guarantee preservation (every
/// session's Delphi run keeps eps-agreement and relaxed validity), and a
/// multi-session pipeline over the real TCP transport.

#include <gtest/gtest.h>

#include <algorithm>

#include "delphi/delphi.hpp"
#include "net/mux.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"
#include "tests/test_util.hpp"

namespace delphi::net {
namespace {

protocol::DelphiParams mux_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;
  return p;
}

/// Factory for node i: session sid agrees on readings[sid][i].
SessionMux::SessionFactory delphi_factory(
    std::size_t n, NodeId i,
    const std::vector<std::vector<double>>& readings) {
  return [n, i, &readings](std::uint32_t sid) -> std::unique_ptr<Protocol> {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = mux_params();
    return std::make_unique<protocol::DelphiProtocol>(c, readings[sid][i]);
  };
}

/// Per-session honest inputs: session sid clusters around 100*(sid+1).
std::vector<std::vector<double>> make_readings(std::size_t sessions,
                                               std::size_t n,
                                               std::uint64_t seed) {
  std::vector<std::vector<double>> r(sessions, std::vector<double>(n));
  Rng rng(seed);
  for (std::size_t s = 0; s < sessions; ++s) {
    for (auto& v : r[s]) {
      v = 100.0 * (static_cast<double>(s) + 1.0) + rng.uniform(0.0, 5.0);
    }
  }
  return r;
}

/// Context that swallows all traffic — for driving a mux by hand.
class NullCtx final : public Context {
 public:
  NodeId self() const override { return 0; }
  std::size_t n() const override { return 4; }
  SimTime now() const override { return 0; }
  void send(NodeId, std::uint32_t, MessagePtr) override {}
  void broadcast(std::uint32_t, MessagePtr) override {}
  void charge_compute(SimTime) override {}
  Rng& rng() override { return rng_; }

 private:
  Rng rng_{1};
};

/// Terminates on the first delivery; never sends. Lets a test drive session
/// termination order one channel at a time.
class FinishOnMessage final : public Protocol {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, NodeId, std::uint32_t, const MessageBody&) override {
    done_ = true;
  }
  bool terminated() const override { return done_; }

 private:
  bool done_ = false;
};

/// Terminated from birth — a degenerate protocol whose whole run happens
/// inside on_start.
class InstantDone final : public Protocol {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, NodeId, std::uint32_t, const MessageBody&) override {
  }
  bool terminated() const override { return true; }
};

void expect_session_guarantees(
    sim::Simulator& sim, std::size_t sessions,
    const std::vector<std::vector<double>>& readings) {
  const std::size_t n = sim.config().n;
  for (std::uint32_t sid = 0; sid < sessions; ++sid) {
    std::vector<double> outputs;
    for (NodeId i = 0; i < n; ++i) {
      const auto& mux = sim.node_as<SessionMux>(i);
      const auto* s = mux.session(sid);
      ASSERT_NE(s, nullptr) << "session " << sid << " node " << i;
      const auto* vo = dynamic_cast<const ValueOutput*>(s);
      ASSERT_NE(vo, nullptr);
      ASSERT_TRUE(vo->output_value().has_value());
      outputs.push_back(*vo->output_value());
    }
    const auto [mn, mx] =
        std::minmax_element(readings[sid].begin(), readings[sid].end());
    const double relax = std::max(1.0, *mx - *mn);
    EXPECT_LE(test::spread(outputs), 1.0) << "session " << sid;
    for (double o : outputs) {
      EXPECT_GE(o, *mn - relax - 1e-9) << "session " << sid;
      EXPECT_LE(o, *mx + relax + 1e-9) << "session " << sid;
    }
  }
}

// ------------------------------------------------------------- construction

TEST(SessionMux, ConfigValidation) {
  SessionMux::Config c;
  c.expected = 0;
  auto factory = [](std::uint32_t) -> std::unique_ptr<Protocol> {
    return std::make_unique<sim::SilentProtocol>();
  };
  EXPECT_THROW(SessionMux(c, factory), ConfigError);
  c.expected = 1;
  c.stride = 0;
  EXPECT_THROW(SessionMux(c, factory), ConfigError);
  c.stride = 16;
  EXPECT_THROW(SessionMux(c, nullptr), ConfigError);
  EXPECT_NO_THROW(SessionMux(c, factory));
  c.expected = 1u << 17;
  c.stride = 1u << 16;  // 2^33 channels: overflows the u32 channel space
  EXPECT_THROW(SessionMux(c, factory), ConfigError);
}

TEST(SessionMux, RejectsChannelBeyondSessions) {
  SessionMux::Config c;
  c.expected = 2;
  c.stride = 100;
  SessionMux mux(c, [](std::uint32_t) -> std::unique_ptr<Protocol> {
    return std::make_unique<sim::SilentProtocol>();
  });
  NullCtx ctx;
  sim::GarbageMessage g(4);
  EXPECT_THROW(mux.on_message(ctx, 1, /*channel=*/250, g), ProtocolViolation);
}

// ------------------------------------------------------------------- modes

class MuxModes : public ::testing::TestWithParam<SessionMux::Mode> {};

TEST_P(MuxModes, ThreeDelphiSessionsOverOneMesh) {
  const std::size_t n = 4;
  const std::size_t sessions = 3;
  const auto readings = make_readings(sessions, n, 71);

  sim::Simulator sim(test::adversarial_config(n, 71));
  for (NodeId i = 0; i < n; ++i) {
    SessionMux::Config c;
    c.expected = sessions;
    c.mode = GetParam();
    sim.add_node(
        std::make_unique<SessionMux>(c, delphi_factory(n, i, readings)));
  }
  ASSERT_TRUE(sim.run());
  expect_session_guarantees(sim, sessions, readings);
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(sim.node_as<SessionMux>(i).open_count(), sessions);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MuxModes,
                         ::testing::Values(SessionMux::Mode::kSequential,
                                           SessionMux::Mode::kConcurrent));

TEST(SessionMux, SequentialChainsInOrderLocally) {
  // In sequential mode a node only opens sid+1 once sid terminated locally
  // (or a peer's sid+1 traffic arrives first — lazy open). Either way all
  // sessions finish; spot-check the mux accounting.
  const std::size_t n = 7;
  const std::size_t sessions = 4;
  const auto readings = make_readings(sessions, n, 73);
  sim::Simulator sim(test::async_config(n, 73));
  for (NodeId i = 0; i < n; ++i) {
    SessionMux::Config c;
    c.expected = sessions;
    c.mode = SessionMux::Mode::kSequential;
    sim.add_node(
        std::make_unique<SessionMux>(c, delphi_factory(n, i, readings)));
  }
  ASSERT_TRUE(sim.run());
  expect_session_guarantees(sim, sessions, readings);
}

TEST(SessionMux, ToleratesSilentFaultsAcrossSessions) {
  const std::size_t n = 7;
  const std::size_t t = max_faults(n);
  const std::size_t sessions = 3;
  const auto readings = make_readings(sessions, n, 77);
  const auto byz = sim::last_t_byzantine(n, t);

  sim::Simulator sim(test::adversarial_config(n, 77));
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
      continue;
    }
    SessionMux::Config c;
    c.expected = sessions;
    c.mode = SessionMux::Mode::kSequential;
    sim.add_node(
        std::make_unique<SessionMux>(c, delphi_factory(n, i, readings)));
  }
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());
  for (std::uint32_t sid = 0; sid < sessions; ++sid) {
    std::vector<double> outputs;
    for (NodeId i = 0; i < n - t; ++i) {
      const auto* s = sim.node_as<SessionMux>(i).session(sid);
      ASSERT_NE(s, nullptr);
      outputs.push_back(
          *dynamic_cast<const ValueOutput*>(s)->output_value());
    }
    EXPECT_LE(test::spread(outputs), 1.0) << "session " << sid;
  }
}

TEST(SessionMux, SequentialChainSurvivesOutOfOrderTermination) {
  // Regression: a lazily-opened successor (a fast peer ran ahead) terminates
  // BEFORE its predecessor. The chain frontier must (a) not run past the
  // lowest unfinished session when an out-of-order successor finishes, and
  // (b) skip already-finished sessions when the predecessor finally finishes
  // — stopping at the first finished successor would strand everything
  // beyond it and stall the chain forever.
  SessionMux::Config c;
  c.expected = 4;
  c.stride = 100;
  c.mode = SessionMux::Mode::kSequential;
  std::vector<std::uint32_t> opened;
  SessionMux mux(c, [&opened](std::uint32_t sid) -> std::unique_ptr<Protocol> {
    opened.push_back(sid);
    return std::make_unique<FinishOnMessage>();
  });
  NullCtx ctx;
  sim::GarbageMessage g(4);

  mux.on_start(ctx);
  EXPECT_EQ(opened, (std::vector<std::uint32_t>{0}));

  // Session 2 opens lazily off a peer's message and finishes immediately,
  // while sessions 0 and 1 are still running. The frontier is still 0, so
  // nothing new may open — in particular not session 3.
  mux.on_message(ctx, 1, /*channel=*/250, g);
  EXPECT_EQ(opened, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(mux.session(3), nullptr);
  EXPECT_FALSE(mux.terminated());

  // Session 0 finishes: the frontier advances to 1 and opens it. Session 3
  // still waits (the frontier is 1, not yet past the finished 2).
  mux.on_message(ctx, 1, /*channel=*/50, g);
  EXPECT_EQ(opened, (std::vector<std::uint32_t>{0, 2, 1}));
  EXPECT_EQ(mux.session(3), nullptr);

  // Session 1 finishes: the frontier must skip the already-finished 2 and
  // open 3 (the stall in the old chain logic).
  mux.on_message(ctx, 1, /*channel=*/150, g);
  EXPECT_EQ(opened, (std::vector<std::uint32_t>{0, 2, 1, 3}));

  mux.on_message(ctx, 1, /*channel=*/350, g);
  EXPECT_TRUE(mux.terminated());
  EXPECT_EQ(mux.open_count(), 4u);
}

TEST(SessionMux, SequentialChainSettlesInstantlyTerminatedSessions) {
  // Degenerate sessions that are terminated from birth: the whole chain must
  // settle inside on_start without any message traffic.
  SessionMux::Config c;
  c.expected = 5;
  c.stride = 100;
  c.mode = SessionMux::Mode::kSequential;
  SessionMux mux(c, [](std::uint32_t) -> std::unique_ptr<Protocol> {
    return std::make_unique<InstantDone>();
  });
  NullCtx ctx;
  mux.on_start(ctx);
  EXPECT_TRUE(mux.terminated());
  EXPECT_EQ(mux.open_count(), 5u);
}

// ---------------------------------------------------------------- over TCP

TEST(SessionMux, MinutePipelineOverTcp) {
  // The §VI-A deployment shape: one mesh, one agreement per "minute".
  const std::size_t n = 4;
  const std::size_t sessions = 3;
  static std::vector<std::vector<double>> readings;  // outlives the cluster
  readings = make_readings(sessions, n, 79);

  transport::TcpCluster::Options opts;
  opts.n = n;
  opts.timeout_ms = 60'000;
  transport::TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        SessionMux::Config c;
        c.expected = sessions;
        c.mode = SessionMux::Mode::kSequential;
        return std::make_unique<SessionMux>(c, delphi_factory(n, i, readings));
      },
      transport::decoders::delphi());
  ASSERT_TRUE(cluster.wait());

  for (std::uint32_t sid = 0; sid < sessions; ++sid) {
    std::vector<double> outputs;
    for (NodeId i = 0; i < n; ++i) {
      const auto& mux = dynamic_cast<const SessionMux&>(cluster.protocol(i));
      const auto* s = mux.session(sid);
      ASSERT_NE(s, nullptr);
      outputs.push_back(
          *dynamic_cast<const ValueOutput*>(s)->output_value());
    }
    EXPECT_LE(test::spread(outputs), 1.0) << "session " << sid;
  }
}

}  // namespace
}  // namespace delphi::net
