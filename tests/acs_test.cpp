/// Tests for the FIN-style ACS convex-BA baseline: agreement on the output,
/// exact convex validity (median in the honest hull — Table I), subset
/// agreement, and fault tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "acs/acs.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::acs {
namespace {

AcsProtocol::Config acs_cfg(std::size_t n, const crypto::CommonCoin* coin,
                            std::uint64_t session = 1) {
  AcsProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.coin = coin;
  c.session = session;
  return c;
}

struct AcsParam {
  std::size_t n;
  std::uint64_t seed;
};

class AcsSweep : public ::testing::TestWithParam<AcsParam> {};

TEST_P(AcsSweep, AgreementAndConvexValidity) {
  const auto [n, seed] = GetParam();
  crypto::CommonCoin coin(seed + 1000);
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = 100.0 + rng.uniform(-5.0, 5.0);

  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed),
      [&](NodeId i) {
        return std::make_unique<AcsProtocol>(acs_cfg(n, &coin), inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_EQ(outcome.honest_outputs.size(), n);

  // Exact agreement (ACS decides one set; the median is a pure function).
  for (double v : outcome.honest_outputs) {
    EXPECT_EQ(v, outcome.honest_outputs[0]);
  }
  // Exact convex validity: output within [min, max] of honest inputs.
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  EXPECT_GE(outcome.honest_outputs[0], *mn);
  EXPECT_LE(outcome.honest_outputs[0], *mx);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AcsSweep,
    ::testing::Values(AcsParam{4, 1}, AcsParam{4, 2}, AcsParam{7, 3},
                      AcsParam{7, 4}, AcsParam{10, 5}, AcsParam{13, 6},
                      AcsParam{16, 7}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_s" +
             std::to_string(test_info.param.seed);
    });

TEST(Acs, SubsetAgreesAcrossNodes) {
  const std::size_t n = 7;
  crypto::CommonCoin coin(55);
  sim::Simulator sim(test::adversarial_config(n, 77));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(
        std::make_unique<AcsProtocol>(acs_cfg(n, &coin), 10.0 + i));
  }
  ASSERT_TRUE(sim.run());
  const auto& s0 = sim.node_as<AcsProtocol>(0).agreed_subset();
  EXPECT_GE(s0.size(), n - max_faults(n));
  for (NodeId i = 1; i < n; ++i) {
    EXPECT_EQ(sim.node_as<AcsProtocol>(i).agreed_subset(), s0);
  }
}

TEST(Acs, ToleratesCrashFaultsAndExcludesNothingHonest) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 7;
    const std::size_t t = max_faults(n);
    crypto::CommonCoin coin(seed * 13);
    const auto byz = sim::last_t_byzantine(n, t);
    std::vector<double> inputs(n);
    Rng rng(seed);
    for (auto& v : inputs) v = 50.0 + rng.uniform(0.0, 1.0);

    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) {
        sim.add_node(std::make_unique<sim::SilentProtocol>());
      } else {
        sim.add_node(
            std::make_unique<AcsProtocol>(acs_cfg(n, &coin), inputs[i]));
      }
    }
    sim.set_byzantine(byz);
    ASSERT_TRUE(sim.run()) << "seed " << seed;

    double mn = 1e300, mx = -1e300;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      mn = std::min(mn, inputs[i]);
      mx = std::max(mx, inputs[i]);
    }
    std::optional<double> first;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      const auto v = sim.node_as<AcsProtocol>(i).output_value();
      ASSERT_TRUE(v.has_value());
      if (!first) first = *v;
      EXPECT_EQ(*v, *first);
      EXPECT_GE(*v, mn);
      EXPECT_LE(*v, mx);
    }
  }
}

TEST(Acs, ByzantineValueCannotDragOutputOutsideHonestHull) {
  // A Byzantine node broadcasts an extreme value through its RBC slot; the
  // t-trimmed median must stay inside the honest hull.
  const std::size_t n = 7;
  crypto::CommonCoin coin(3);
  sim::Simulator sim(test::adversarial_config(n, 41));
  std::vector<double> honest_inputs;
  for (NodeId i = 0; i + 1 < n; ++i) {
    const double v = 100.0 + static_cast<double>(i) * 0.25;
    honest_inputs.push_back(v);
    sim.add_node(std::make_unique<AcsProtocol>(acs_cfg(n, &coin), v));
  }
  // The attacker runs the honest code with an absurd input — the strongest
  // value-poisoning it can do without forging messages.
  sim.add_node(std::make_unique<AcsProtocol>(acs_cfg(n, &coin), 1e9));
  sim.set_byzantine({static_cast<NodeId>(n - 1)});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 1 < n; ++i) {
    const auto v = sim.node_as<AcsProtocol>(i).output_value();
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, honest_inputs.front());
    EXPECT_LE(*v, honest_inputs.back());
  }
}

TEST(Acs, ValueCodecRejectsGarbage) {
  EXPECT_THROW(decode_value({1, 2, 3}), ProtocolViolation);
  const double nan = std::nan("");
  EXPECT_THROW(decode_value(encode_value(nan)), ProtocolViolation);
  EXPECT_DOUBLE_EQ(decode_value(encode_value(42.5)), 42.5);
}

}  // namespace
}  // namespace delphi::acs
