/// Tests for multi-dimensional Delphi (VectorDelphiProtocol): per-coordinate
/// composition of termination, eps-agreement (in the infinity norm), and
/// relaxed box validity; channel routing; heterogeneous per-coordinate
/// parameters; Byzantine resistance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "multidim/vector_delphi.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::multidim {
namespace {

protocol::DelphiParams coord_params(double space_max = 1000.0,
                                    double delta_max = 64.0) {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = space_max;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = delta_max;
  return p;
}

/// Harvest vector outputs of honest nodes from a finished simulator run.
std::vector<std::vector<double>> vector_outputs(sim::Simulator& sim) {
  std::vector<std::vector<double>> out;
  for (NodeId i = 0; i < sim.config().n; ++i) {
    if (sim.is_byzantine(i)) continue;
    const auto* vo = dynamic_cast<const VectorOutput*>(&sim.node(i));
    if (vo == nullptr) continue;
    auto v = vo->output_vector();
    EXPECT_TRUE(v.has_value()) << "node " << i << " has no vector output";
    if (v) out.push_back(std::move(*v));
  }
  return out;
}

/// Run n VectorDelphi nodes on `inputs` and return honest outputs.
std::vector<std::vector<double>> run_vector(
    const sim::SimConfig& scfg, const VectorDelphiProtocol::Config& cfg,
    const std::vector<std::vector<double>>& inputs,
    const std::set<NodeId>& byz = {}) {
  sim::Simulator sim(scfg);
  for (NodeId i = 0; i < scfg.n; ++i) {
    if (byz.contains(i)) {
      sim.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      sim.add_node(std::make_unique<VectorDelphiProtocol>(cfg, inputs[i]));
    }
  }
  sim.set_byzantine(byz);
  EXPECT_TRUE(sim.run());
  return vector_outputs(sim);
}

/// Assert the composed guarantees coordinate by coordinate.
void expect_box_guarantees(const std::vector<std::vector<double>>& inputs,
                           const std::vector<std::vector<double>>& outputs,
                           const VectorDelphiProtocol::Config& cfg) {
  ASSERT_FALSE(outputs.empty());
  const std::size_t d = cfg.params.size();
  for (std::size_t c = 0; c < d; ++c) {
    std::vector<double> in_c, out_c;
    for (const auto& v : inputs) in_c.push_back(v[c]);
    for (const auto& v : outputs) {
      ASSERT_EQ(v.size(), d);
      out_c.push_back(v[c]);
    }
    const auto [mn, mx] = std::minmax_element(in_c.begin(), in_c.end());
    const double relax = std::max(cfg.params[c].rho0, *mx - *mn);
    EXPECT_LE(test::spread(out_c), cfg.params[c].eps) << "coord " << c;
    for (double o : out_c) {
      EXPECT_GE(o, *mn - relax - 1e-9) << "coord " << c;
      EXPECT_LE(o, *mx + relax + 1e-9) << "coord " << c;
    }
  }
}

// ------------------------------------------------------------- construction

TEST(VectorDelphi, RejectsZeroDimensions) {
  VectorDelphiProtocol::Config c;
  c.n = 4;
  c.t = 1;
  EXPECT_THROW(VectorDelphiProtocol(c, {}), ConfigError);
}

TEST(VectorDelphi, RejectsDimensionMismatch) {
  auto c = VectorDelphiProtocol::Config::uniform(4, 1, coord_params(), 2);
  EXPECT_THROW(VectorDelphiProtocol(c, {1.0}), ConfigError);
  EXPECT_THROW(VectorDelphiProtocol(c, {1.0, 2.0, 3.0}), ConfigError);
}

TEST(VectorDelphi, UniformConfigBuilder) {
  auto c = VectorDelphiProtocol::Config::uniform(7, 2, coord_params(), 3);
  EXPECT_EQ(c.n, 7u);
  EXPECT_EQ(c.t, 2u);
  ASSERT_EQ(c.params.size(), 3u);
  VectorDelphiProtocol p(c, {10.0, 20.0, 30.0});
  EXPECT_EQ(p.dims(), 3u);
  EXPECT_FALSE(p.terminated());
  EXPECT_FALSE(p.output_vector().has_value());
}

TEST(VectorDelphi, ChannelRoutingRejectsForeignChannel) {
  auto c = VectorDelphiProtocol::Config::uniform(4, 1, coord_params(), 2);
  VectorDelphiProtocol p(c, {1.0, 2.0});
  class NullCtx final : public net::Context {
   public:
    NodeId self() const override { return 0; }
    std::size_t n() const override { return 4; }
    SimTime now() const override { return 0; }
    void send(NodeId, std::uint32_t, net::MessagePtr) override {}
    void broadcast(std::uint32_t, net::MessagePtr) override {}
    void charge_compute(SimTime) override {}
    Rng& rng() override { return rng_; }

   private:
    Rng rng_{1};
  } ctx;
  sim::GarbageMessage g(4);
  EXPECT_THROW(p.on_message(ctx, 1, /*channel=*/2, g), ProtocolViolation);
}

// -------------------------------------------------------------- honest runs

struct VecCase {
  std::size_t n;
  std::size_t dims;
  std::uint64_t seed;
  double spread;
};

class VectorDelphiSweep : public ::testing::TestWithParam<VecCase> {};

TEST_P(VectorDelphiSweep, BoxValidityAndAgreement) {
  const auto [n, dims, seed, spread] = GetParam();
  auto cfg = VectorDelphiProtocol::Config::uniform(n, max_faults(n),
                                                   coord_params(), dims);
  std::vector<std::vector<double>> inputs(n, std::vector<double>(dims));
  Rng rng(seed);
  for (auto& v : inputs) {
    for (auto& x : v) x = 500.0 + rng.uniform(-spread / 2, spread / 2);
  }
  auto outputs =
      run_vector(test::adversarial_config(n, seed), cfg, inputs);
  ASSERT_EQ(outputs.size(), n);
  expect_box_guarantees(inputs, outputs, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VectorDelphiSweep,
    ::testing::Values(VecCase{4, 2, 21, 0.5}, VecCase{4, 2, 22, 20.0},
                      VecCase{4, 3, 23, 5.0}, VecCase{7, 2, 24, 50.0},
                      VecCase{7, 4, 25, 2.0}, VecCase{10, 2, 26, 10.0}));

TEST(VectorDelphi, HeterogeneousCoordinateParams) {
  // x: coarse dollars-scale space; y: fine meters-scale space.
  const std::size_t n = 4;
  VectorDelphiProtocol::Config cfg;
  cfg.n = n;
  cfg.t = 1;
  cfg.params = {coord_params(/*space_max=*/100000.0, /*delta_max=*/2000.0),
                coord_params(/*space_max=*/100.0, /*delta_max=*/16.0)};
  cfg.params[0].rho0 = cfg.params[0].eps = 2.0;
  cfg.params[1].rho0 = cfg.params[1].eps = 0.5;

  std::vector<std::vector<double>> inputs;
  Rng rng(31);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back({40000.0 + rng.uniform(-10.0, 10.0),
                      50.0 + rng.uniform(-1.0, 1.0)});
  }
  auto outputs = run_vector(test::async_config(n, 31), cfg, inputs);
  ASSERT_EQ(outputs.size(), n);
  expect_box_guarantees(inputs, outputs, cfg);
}

TEST(VectorDelphi, ToleratesSilentFaults) {
  const std::size_t n = 7;
  const std::size_t t = max_faults(n);
  auto cfg = VectorDelphiProtocol::Config::uniform(n, t, coord_params(), 2);
  std::vector<std::vector<double>> inputs(n, std::vector<double>(2));
  Rng rng(41);
  for (auto& v : inputs) {
    v[0] = 300.0 + rng.uniform(0.0, 4.0);
    v[1] = 700.0 + rng.uniform(0.0, 4.0);
  }
  const auto byz = sim::last_t_byzantine(n, t);
  auto outputs =
      run_vector(test::adversarial_config(n, 41), cfg, inputs, byz);
  ASSERT_EQ(outputs.size(), n - t);
  std::vector<std::vector<double>> honest_inputs(inputs.begin(),
                                                 inputs.begin() + (n - t));
  expect_box_guarantees(honest_inputs, outputs, cfg);
}

TEST(VectorDelphi, CoordinateDiagnosticsExposed) {
  const std::size_t n = 4;
  auto cfg = VectorDelphiProtocol::Config::uniform(n, 1, coord_params(), 2);
  sim::Simulator sim(test::async_config(n, 51));
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<VectorDelphiProtocol>(
        cfg, std::vector<double>{100.0 + i, 200.0 + i}));
  }
  ASSERT_TRUE(sim.run());
  const auto& p = sim.node_as<VectorDelphiProtocol>(0);
  EXPECT_EQ(p.dims(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& coord = p.coordinate(c);
    EXPECT_TRUE(coord.terminated());
    EXPECT_FALSE(coord.level_reports().empty());
  }
}

}  // namespace
}  // namespace delphi::multidim
