/// Round-trip edge cases for the VAL move-code codec (delta_codec.hpp):
/// zero-length streams (initial bit only), single-entry streams, maximum
/// legal deltas at every round, and exhausted granularity. The trajectory
/// property test in binaa_test.cpp replays random legal walks; this suite
/// pins the boundary behaviour deterministically.

#include <gtest/gtest.h>

#include "binaa/delta_codec.hpp"
#include "common/error.hpp"

namespace delphi::binaa {
namespace {

constexpr std::uint32_t kRMax = 10;
constexpr ScaledValue kScale = ScaledValue{1} << kRMax;

TEST(DeltaCodec, ZeroLengthStreamRoundTripsInitialBitOnly) {
  // A node that crashes after round 1 transmits only the initial bit; the
  // decoder must reproduce the exact endpoint value with no move codes.
  for (ScaledValue v : {ScaledValue{0}, kScale}) {
    DeltaEncoder enc(kRMax);
    DeltaDecoder dec(kRMax);
    const std::uint8_t bit = enc.encode_initial(v, kScale);
    EXPECT_EQ(bit, v == kScale ? 1 : 0);
    EXPECT_EQ(dec.decode_initial(bit, kScale), v);
  }
}

TEST(DeltaCodec, SingleEntryStreamRoundTrips) {
  // Exactly one move after the initial bit, for each of the five codes.
  const ScaledValue unit2 = kScale >> 1;  // granularity at round 2
  for (int steps = -2; steps <= 2; ++steps) {
    DeltaEncoder enc(kRMax);
    DeltaDecoder dec(kRMax);
    const ScaledValue start = kScale;  // start at the top so -2 stays legal
    dec.decode_initial(enc.encode_initial(start, kScale), kScale);
    const ScaledValue next = start + steps * unit2;
    const auto code = enc.encode(2, next, kScale);
    ASSERT_TRUE(code.has_value()) << "steps=" << steps;
    EXPECT_EQ(static_cast<int>(*code), steps + 2);
    EXPECT_EQ(dec.decode(2, *code, kScale), next);
  }
}

TEST(DeltaCodec, MaxDeltaAtEveryRoundRoundTrips) {
  // Alternate the extreme moves (+2 then -2) across all rounds: the widest
  // legal trajectory must stay lossless from round 2 through r_max.
  DeltaEncoder enc(kRMax);
  DeltaDecoder dec(kRMax);
  ScaledValue value = 0;
  dec.decode_initial(enc.encode_initial(value, kScale), kScale);
  for (std::uint32_t r = 2; r <= kRMax; ++r) {
    const ScaledValue unit = kScale >> (r - 1);
    const int steps = (r % 2 == 0) ? 2 : -2;
    value += steps * unit;
    const auto code = enc.encode(r, value, kScale);
    ASSERT_TRUE(code.has_value()) << "round=" << r;
    EXPECT_EQ(*code, steps > 0 ? MoveCode::k2R : MoveCode::k2L);
    EXPECT_EQ(dec.decode(r, *code, kScale), value);
  }
}

TEST(DeltaCodec, ZeroMoveRoundTripsAtEveryRound) {
  // The "stayed" code must be legal and lossless at every round, including
  // the last one where the granularity unit is exactly 1.
  DeltaEncoder enc(kRMax);
  DeltaDecoder dec(kRMax);
  const ScaledValue value = kScale;
  dec.decode_initial(enc.encode_initial(value, kScale), kScale);
  for (std::uint32_t r = 2; r <= kRMax; ++r) {
    const auto code = enc.encode(r, value, kScale);
    ASSERT_TRUE(code.has_value()) << "round=" << r;
    EXPECT_EQ(*code, MoveCode::kC);
    EXPECT_EQ(dec.decode(r, *code, kScale), value);
  }
}

TEST(DeltaCodec, ExhaustedGranularityIsRejected) {
  // Past r_max the unit would underflow to 0; the encoder must refuse
  // rather than divide by zero, and the decoder must refuse the round.
  DeltaEncoder enc(kRMax);
  enc.encode_initial(0, kScale);
  EXPECT_FALSE(enc.encode(kRMax + 1, 0, kScale).has_value());

  // A scale too small for the round count exhausts the unit mid-stream.
  DeltaEncoder small(kRMax);
  const ScaledValue tiny_scale = 2;  // unit hits 0 at round 3
  small.encode_initial(0, tiny_scale);
  EXPECT_FALSE(small.encode(3, 0, tiny_scale).has_value());

  DeltaDecoder dec(kRMax);
  dec.decode_initial(0, kScale);
  EXPECT_THROW(dec.decode(kRMax + 1, MoveCode::kC, kScale), Error);

  // Mirror of the encoder case: a stream whose scale exhausts mid-run must
  // be refused by the decoder too, not decoded to a stale value.
  DeltaDecoder small_dec(kRMax);
  small_dec.decode_initial(0, tiny_scale);
  EXPECT_THROW(small_dec.decode(3, MoveCode::kC, tiny_scale), Error);
}

}  // namespace
}  // namespace delphi::binaa
