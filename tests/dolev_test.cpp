/// Tests for the Dolev et al. (JACM '86) AAA baseline: eps-agreement with
/// strict convex validity at n >= 5t + 1, per-round contraction, resilience
/// precondition, and behaviour under crash / equivocation / garbage faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "dolev/dolev.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::dolev {
namespace {

DolevProtocol::Config dolev_cfg(std::size_t n, std::uint32_t rounds) {
  DolevProtocol::Config c;
  c.n = n;
  c.t = DolevProtocol::max_faults_5t(n);
  c.rounds = rounds;
  c.space_min = -1e6;
  c.space_max = 1e6;
  return c;
}

/// Byzantine node that multicasts a different extreme value to even and odd
/// receivers in every round it observes — the equivocation the 5t+1 bound
/// exists to absorb.
class DolevEquivocator final : public net::Protocol {
 public:
  void on_start(net::Context& ctx) override { split(ctx, 0); }
  void on_message(net::Context& ctx, NodeId /*from*/, std::uint32_t,
                  const net::MessageBody& body) override {
    if (const auto* m = dynamic_cast<const RoundValueMessage*>(&body)) {
      if (m->round() >= next_round_) {
        split(ctx, m->round());
        next_round_ = m->round() + 1;
      }
    }
  }
  bool terminated() const override { return true; }

 private:
  void split(net::Context& ctx, std::uint32_t round) {
    for (NodeId j = 0; j < ctx.n(); ++j) {
      const double v = (j % 2 == 0) ? -9e5 : 9e5;
      ctx.send(j, 0, std::make_shared<RoundValueMessage>(round, v));
    }
  }
  std::uint32_t next_round_ = 0;
};

// ------------------------------------------------------------- construction

TEST(Dolev, RejectsInsufficientResilience) {
  DolevProtocol::Config c;
  c.n = 5;
  c.t = 1;  // needs n >= 6
  EXPECT_THROW(DolevProtocol(c, 0.0), ConfigError);
  c.n = 6;
  EXPECT_NO_THROW(DolevProtocol(c, 0.0));
}

TEST(Dolev, RejectsZeroRounds) {
  auto c = dolev_cfg(6, 1);
  c.rounds = 0;
  EXPECT_THROW(DolevProtocol(c, 0.0), ConfigError);
}

TEST(Dolev, RejectsOutOfSpaceInput) {
  EXPECT_THROW(DolevProtocol(dolev_cfg(6, 1), 2e6), ConfigError);
  EXPECT_THROW(DolevProtocol(dolev_cfg(6, 1),
                             std::numeric_limits<double>::quiet_NaN()),
               ConfigError);
}

TEST(Dolev, RoundsForBudget) {
  EXPECT_EQ(DolevProtocol::rounds_for(100.0, 100.0), 1u);
  EXPECT_EQ(DolevProtocol::rounds_for(100.0, 200.0), 1u);
  EXPECT_EQ(DolevProtocol::rounds_for(256.0, 1.0), 8u);
  EXPECT_EQ(DolevProtocol::rounds_for(300.0, 1.0), 9u);
}

TEST(Dolev, MaxFaults5t) {
  EXPECT_EQ(DolevProtocol::max_faults_5t(6), 1u);
  EXPECT_EQ(DolevProtocol::max_faults_5t(10), 1u);
  EXPECT_EQ(DolevProtocol::max_faults_5t(11), 2u);
  EXPECT_EQ(DolevProtocol::max_faults_5t(16), 3u);
}

// -------------------------------------------------------------- honest runs

TEST(Dolev, IdenticalInputsStayPut) {
  const std::size_t n = 6;
  auto outcome = sim::run_nodes(test::async_config(n, 7), [&](NodeId) {
    return std::make_unique<DolevProtocol>(dolev_cfg(n, 4), 42.5);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outcome.honest_outputs) EXPECT_DOUBLE_EQ(o, 42.5);
}

TEST(Dolev, SingleRoundHalvesRange) {
  const std::size_t n = 11;
  std::vector<double> inputs(n, 0.0);
  inputs[0] = 64.0;  // range 64
  auto outcome = sim::run_nodes(test::async_config(n, 3), [&](NodeId i) {
    return std::make_unique<DolevProtocol>(dolev_cfg(n, 1), inputs[i]);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  EXPECT_LE(test::spread(outcome.honest_outputs), 32.0);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 64.0);
  }
}

struct DolevParam {
  std::size_t n;
  std::uint64_t seed;
  double spread;
};

class DolevSweep : public ::testing::TestWithParam<DolevParam> {};

TEST_P(DolevSweep, AgreementAndStrictConvexValidity) {
  const auto [n, seed, input_spread] = GetParam();
  const std::uint32_t rounds = 10;
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = -25.0 + rng.uniform(0.0, input_spread);

  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed), [&](NodeId i) {
        return std::make_unique<DolevProtocol>(dolev_cfg(n, rounds),
                                               inputs[i]);
      });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_EQ(outcome.honest_outputs.size(), n);

  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
  const double eps = input_spread / std::ldexp(1.0, rounds);
  EXPECT_LE(test::spread(outcome.honest_outputs), std::max(eps, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DolevSweep,
    ::testing::Values(DolevParam{6, 11, 10.0}, DolevParam{6, 12, 500.0},
                      DolevParam{11, 13, 80.0}, DolevParam{16, 14, 1.0},
                      DolevParam{16, 15, 1000.0}, DolevParam{21, 16, 250.0}));

// ------------------------------------------------------------------- faults

class DolevFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DolevFaults, ToleratesSilentFaults) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  const auto cfg = dolev_cfg(n, 8);
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = rng.uniform(10.0, 20.0);
  const auto byz = sim::last_t_byzantine(n, cfg.t);

  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) return std::make_unique<sim::SilentProtocol>();
        return std::make_unique<DolevProtocol>(cfg, inputs[i]);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);

  std::vector<double> honest_inputs(inputs.begin(),
                                    inputs.begin() + (n - cfg.t));
  const auto [mn, mx] =
      std::minmax_element(honest_inputs.begin(), honest_inputs.end());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
  EXPECT_LE(test::spread(outcome.honest_outputs), 10.0 / 256.0 + 1e-9);
}

TEST_P(DolevFaults, ToleratesEquivocators) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  const auto cfg = dolev_cfg(n, 8);
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = rng.uniform(-5.0, 5.0);
  const auto byz = sim::last_t_byzantine(n, cfg.t);

  auto outcome = sim::run_nodes(
      test::adversarial_config(n, seed),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) return std::make_unique<DolevEquivocator>();
        return std::make_unique<DolevProtocol>(cfg, inputs[i]);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);

  std::vector<double> honest_inputs(inputs.begin(),
                                    inputs.begin() + (n - cfg.t));
  const auto [mn, mx] =
      std::minmax_element(honest_inputs.begin(), honest_inputs.end());
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, *mn);
    EXPECT_LE(o, *mx);
  }
  EXPECT_LE(test::spread(outcome.honest_outputs), 10.0 / 256.0 + 1e-9);
}

TEST_P(DolevFaults, ToleratesGarbageSprayers) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 6;
  const auto cfg = dolev_cfg(n, 6);
  const auto byz = sim::last_t_byzantine(n, cfg.t);

  auto outcome = sim::run_nodes(
      test::async_config(n, seed),
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (byz.contains(i)) {
          return std::make_unique<sim::GarbageSprayProtocol>(3);
        }
        return std::make_unique<DolevProtocol>(cfg, 100.0 + i);
      },
      byz);
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outcome.honest_outputs) {
    EXPECT_GE(o, 100.0);
    EXPECT_LE(o, 100.0 + n - cfg.t - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DolevFaults, ::testing::Range<std::uint64_t>(1, 6));

// ----------------------------------------------------------- message codec

TEST(DolevCodec, RoundTrip) {
  RoundValueMessage m(42, 3.14159);
  ByteWriter w;
  m.serialize(w);
  EXPECT_EQ(w.size(), m.wire_size());
  ByteReader r(w.data());
  auto d = RoundValueMessage::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(d->round(), 42u);
  EXPECT_DOUBLE_EQ(d->value(), 3.14159);
}

TEST(DolevCodec, RejectsOutOfRangeRoundAtProtocol) {
  // Protocol-level schema check: round beyond rounds budget is a violation.
  DolevProtocol p(dolev_cfg(6, 3), 1.0);
  RoundValueMessage bad(99, 1.0);
  class NullCtx final : public net::Context {
   public:
    NodeId self() const override { return 0; }
    std::size_t n() const override { return 6; }
    SimTime now() const override { return 0; }
    void send(NodeId, std::uint32_t, net::MessagePtr) override {}
    void broadcast(std::uint32_t, net::MessagePtr) override {}
    void charge_compute(SimTime) override {}
    Rng& rng() override { return rng_; }

   private:
    Rng rng_{1};
  } ctx;
  EXPECT_THROW(p.on_message(ctx, 1, 0, bad), ProtocolViolation);
}

}  // namespace
}  // namespace delphi::dolev
