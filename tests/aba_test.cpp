/// Tests for the MMR-style asynchronous binary agreement: Validity,
/// Agreement, Termination across sizes/seeds/input patterns, under crash and
/// garbage adversaries, plus the compute-charge hook used to model threshold
/// coins.

#include <gtest/gtest.h>

#include "aba/aba.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "tests/test_util.hpp"

namespace delphi::aba {
namespace {

AbaInstance::Config aba_cfg(std::size_t n, const crypto::CommonCoin* coin,
                            std::uint64_t instance = 1) {
  AbaInstance::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.instance_id = instance;
  c.coin = coin;
  return c;
}

struct AbaParam {
  std::size_t n;
  std::uint64_t seed;
  int pattern;  // 0: all zero, 1: all one, 2: split by parity, 3: one dissent
};

class AbaSweep : public ::testing::TestWithParam<AbaParam> {};

TEST_P(AbaSweep, AgreementValidityTermination) {
  const auto [n, seed, pattern] = GetParam();
  crypto::CommonCoin coin(seed * 31 + 7);
  sim::Simulator sim(test::adversarial_config(n, seed));
  std::vector<bool> inputs(n);
  for (NodeId i = 0; i < n; ++i) {
    switch (pattern) {
      case 0: inputs[i] = false; break;
      case 1: inputs[i] = true; break;
      case 2: inputs[i] = (i % 2 == 1); break;
      default: inputs[i] = (i == 0); break;
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<AbaProtocol>(aba_cfg(n, &coin), inputs[i]));
  }
  ASSERT_TRUE(sim.run()) << "ABA did not terminate";

  // Agreement: all honest decisions equal.
  const bool d0 = sim.node_as<AbaProtocol>(0).instance().decision();
  bool some_input_matches = false;
  for (NodeId i = 0; i < n; ++i) {
    const auto& inst = sim.node_as<AbaProtocol>(i).instance();
    ASSERT_TRUE(inst.decided());
    EXPECT_EQ(inst.decision(), d0);
    some_input_matches |= (inputs[i] == d0);
  }
  // Validity: the decision was somebody's input.
  EXPECT_TRUE(some_input_matches);
  // Strong unanimity check: unanimous input forces that decision.
  if (pattern == 0) {
    EXPECT_FALSE(d0);
  }
  if (pattern == 1) {
    EXPECT_TRUE(d0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AbaSweep,
    ::testing::Values(AbaParam{4, 1, 0}, AbaParam{4, 2, 1}, AbaParam{4, 3, 2},
                      AbaParam{4, 4, 3}, AbaParam{7, 5, 2}, AbaParam{7, 6, 3},
                      AbaParam{7, 7, 0}, AbaParam{10, 8, 2},
                      AbaParam{13, 9, 2}, AbaParam{13, 10, 3},
                      AbaParam{16, 11, 2}),
    [](const auto& test_info) {
      return "n" + std::to_string(test_info.param.n) + "_s" +
             std::to_string(test_info.param.seed) + "_p" +
             std::to_string(test_info.param.pattern);
    });

TEST(Aba, ToleratesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 7;
    const std::size_t t = max_faults(n);
    crypto::CommonCoin coin(seed);
    const auto byz = sim::last_t_byzantine(n, t);
    sim::Simulator sim(test::adversarial_config(n, seed));
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) {
        sim.add_node(std::make_unique<sim::SilentProtocol>());
      } else {
        sim.add_node(std::make_unique<AbaProtocol>(aba_cfg(n, &coin),
                                                   i % 2 == 0));
      }
    }
    sim.set_byzantine(byz);
    ASSERT_TRUE(sim.run()) << "seed " << seed;
    std::optional<bool> first;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      const auto& inst = sim.node_as<AbaProtocol>(i).instance();
      ASSERT_TRUE(inst.decided());
      if (!first) first = inst.decision();
      EXPECT_EQ(inst.decision(), *first) << "seed " << seed;
    }
  }
}

TEST(Aba, ToleratesGarbageSprayers) {
  const std::size_t n = 7;
  crypto::CommonCoin coin(5);
  sim::Simulator sim(test::async_config(n, 21));
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(std::make_unique<AbaProtocol>(aba_cfg(n, &coin), true));
  }
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  for (NodeId i = 0; i + 2 < n; ++i) {
    EXPECT_TRUE(sim.node_as<AbaProtocol>(i).instance().decision());
  }
}

TEST(Aba, CoinComputeChargedToRuntime) {
  // With an expensive coin the run must take at least one coin's time.
  auto run_with_cost = [](SimTime coin_us) {
    const std::size_t n = 4;
    crypto::CommonCoin coin(9);
    sim::SimConfig cfg = test::async_config(n, 31);
    sim::Simulator sim(cfg);
    for (NodeId i = 0; i < n; ++i) {
      auto c = aba_cfg(n, &coin);
      c.coin_compute_us = coin_us;
      sim.add_node(std::make_unique<AbaProtocol>(c, i % 2 == 0));
    }
    sim.run();
    return sim.now();
  };
  const SimTime cheap = run_with_cost(0);
  const SimTime pricey = run_with_cost(500'000);
  EXPECT_GT(pricey, cheap + 400'000);
}

TEST(Aba, DistinctInstancesUseDistinctCoins) {
  crypto::CommonCoin coin(77);
  bool all_same = true;
  for (std::uint64_t inst = 1; inst < 30; ++inst) {
    if (coin.toss(inst, 1) != coin.toss(0, 1)) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(Aba, MessageCodecRoundTrip) {
  for (auto kind : {AbaMessage::Kind::kBval, AbaMessage::Kind::kAux,
                    AbaMessage::Kind::kFinish}) {
    AbaMessage msg(kind, 3, true);
    ByteWriter w;
    msg.serialize(w);
    EXPECT_EQ(w.size(), msg.wire_size());
    ByteReader r(w.data());
    auto decoded = AbaMessage::decode(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(decoded->kind(), kind);
    EXPECT_EQ(decoded->round(), 3u);
    EXPECT_TRUE(decoded->value());
  }
}

TEST(Aba, DecodeRejectsNonBinaryValue) {
  ByteWriter w;
  w.u8(0);
  w.uvarint(1);
  w.u8(7);
  ByteReader r(w.data());
  EXPECT_THROW(AbaMessage::decode(r), ProtocolViolation);
}

TEST(Aba, ConfigRequiresCoinAndSupermajority) {
  crypto::CommonCoin coin(1);
  EXPECT_THROW(AbaInstance(AbaInstance::Config{6, 2, 0, 0, &coin, 0, 64}),
               InternalError);
  EXPECT_THROW(AbaInstance(AbaInstance::Config{4, 1, 0, 0, nullptr, 0, 64}),
               InternalError);
}

}  // namespace
}  // namespace delphi::aba
