/// Cross-module integration tests: all three convex-agreement protocols on
/// the same workloads, comparing their guarantees and cost profiles — the
/// qualitative content of the paper's Table I, validated in miniature.

#include <gtest/gtest.h>

#include <algorithm>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "delphi/delphi.hpp"
#include "oracle/feed.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/summary.hpp"
#include "tests/test_util.hpp"

namespace delphi {
namespace {

struct ProtocolRun {
  sim::RunOutcome outcome;
  std::vector<double> inputs;
};

std::vector<double> oracle_inputs(std::size_t n, std::uint64_t seed) {
  oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(seed));
  const auto snapshot = feed.next_minute();
  Rng rng(seed + 1);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = oracle::node_observation(snapshot, 3, rng);
  return inputs;
}

protocol::DelphiParams oracle_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 2.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  return p;
}

ProtocolRun run_delphi(std::size_t n, std::uint64_t seed,
                       const std::vector<double>& inputs) {
  protocol::DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = oracle_params();
  ProtocolRun r;
  r.inputs = inputs;
  r.outcome = sim::run_nodes(test::async_config(n, seed), [&](NodeId i) {
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  return r;
}

ProtocolRun run_acs(std::size_t n, std::uint64_t seed,
                    const std::vector<double>& inputs,
                    const crypto::CommonCoin& coin) {
  acs::AcsProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.coin = &coin;
  ProtocolRun r;
  r.inputs = inputs;
  r.outcome = sim::run_nodes(test::async_config(n, seed), [&](NodeId i) {
    return std::make_unique<acs::AcsProtocol>(c, inputs[i]);
  });
  return r;
}

ProtocolRun run_abraham(std::size_t n, std::uint64_t seed,
                        const std::vector<double>& inputs) {
  abraham::AbrahamProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.rounds = 10;
  c.space_min = 0.0;
  c.space_max = 200'000.0;
  ProtocolRun r;
  r.inputs = inputs;
  r.outcome = sim::run_nodes(test::async_config(n, seed), [&](NodeId i) {
    return std::make_unique<abraham::AbrahamProtocol>(c, inputs[i]);
  });
  return r;
}

TEST(Integration, AllThreeProtocolsAgreeOnOracleWorkload) {
  const std::size_t n = 7;
  const auto inputs = oracle_inputs(n, 5);
  const auto s = stats::summarize(inputs);
  crypto::CommonCoin coin(123);

  const auto delphi = run_delphi(n, 1, inputs);
  const auto acs = run_acs(n, 2, inputs, coin);
  const auto abr = run_abraham(n, 3, inputs);

  for (const auto* run : {&delphi, &acs, &abr}) {
    ASSERT_TRUE(run->outcome.all_honest_terminated);
    ASSERT_EQ(run->outcome.honest_outputs.size(), n);
  }
  // Exact protocols stay inside [m, M]; Delphi inside the relaxed interval.
  for (double v : acs.outcome.honest_outputs) {
    EXPECT_GE(v, s.min);
    EXPECT_LE(v, s.max);
  }
  for (double v : abr.outcome.honest_outputs) {
    EXPECT_GE(v, s.min);
    EXPECT_LE(v, s.max);
  }
  const double relax = std::max(2.0, s.range());
  for (double v : delphi.outcome.honest_outputs) {
    EXPECT_GE(v, s.min - relax - 1e-9);
    EXPECT_LE(v, s.max + relax + 1e-9);
  }
  // All three land near the same market price (sanity of the whole stack).
  EXPECT_NEAR(delphi.outcome.honest_outputs[0], acs.outcome.honest_outputs[0],
              relax + 2.0);
  EXPECT_NEAR(abr.outcome.honest_outputs[0], acs.outcome.honest_outputs[0],
              s.range() + 1e-9);
}

TEST(Integration, DelphiBaselineByteGapWidensWithN) {
  // Table I in miniature: Delphi's honest traffic grows ~n² (times log-factor
  // rounds) while Abraham's grows ~n³, so the byte ratio baseline/Delphi must
  // grow steadily with n. The absolute crossover happens around n ≈ 40-64
  // with the paper's oracle parameters and is demonstrated by
  // bench/table1_complexity and bench/fig6b_bandwidth.
  double prev_ratio_abr = 0.0;
  for (std::size_t n : {4u, 8u, 16u, 25u}) {
    const auto inputs = oracle_inputs(n, 11);
    const auto delphi = run_delphi(n, 21, inputs);
    const auto abr = run_abraham(n, 22, inputs);
    ASSERT_TRUE(delphi.outcome.all_honest_terminated);
    ASSERT_TRUE(abr.outcome.all_honest_terminated);
    const double ratio = static_cast<double>(abr.outcome.honest_bytes) /
                         static_cast<double>(delphi.outcome.honest_bytes);
    EXPECT_GT(ratio, prev_ratio_abr);  // the gap widens with n
    prev_ratio_abr = ratio;
  }
}

TEST(Integration, AdversarialSchedulingDoesNotBreakAnyProtocol) {
  const std::size_t n = 7;
  const auto inputs = oracle_inputs(n, 31);
  crypto::CommonCoin coin(31);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto cfg = test::adversarial_config(n, seed, /*extra=*/150'000);

    protocol::DelphiProtocol::Config dc;
    dc.n = n;
    dc.t = max_faults(n);
    dc.params = oracle_params();
    auto delphi = sim::run_nodes(cfg, [&](NodeId i) {
      return std::make_unique<protocol::DelphiProtocol>(dc, inputs[i]);
    });
    EXPECT_TRUE(delphi.all_honest_terminated);
    EXPECT_LE(test::spread(delphi.honest_outputs), dc.params.eps);

    acs::AcsProtocol::Config ac;
    ac.n = n;
    ac.t = max_faults(n);
    ac.coin = &coin;
    ac.session = seed;
    auto acs_run = sim::run_nodes(cfg, [&](NodeId i) {
      return std::make_unique<acs::AcsProtocol>(ac, inputs[i]);
    });
    EXPECT_TRUE(acs_run.all_honest_terminated);
    EXPECT_EQ(test::spread(acs_run.honest_outputs), 0.0);
  }
}

TEST(Integration, MixedFaultsAcrossTheStack) {
  // One crash + one garbage sprayer (t = 2 for n = 7) against Delphi on a
  // live oracle workload with targeted network lag on an honest victim.
  const std::size_t n = 7;
  const auto inputs = oracle_inputs(n, 41);
  auto cfg = test::async_config(n, 41);
  cfg.adversary =
      std::make_shared<sim::TargetedLagAdversary>(std::set<NodeId>{0},
                                                  200'000);
  protocol::DelphiProtocol::Config dc;
  dc.n = n;
  dc.t = max_faults(n);
  dc.params = oracle_params();

  sim::Simulator sim(cfg);
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(std::make_unique<protocol::DelphiProtocol>(dc, inputs[i]));
  }
  sim.add_node(std::make_unique<sim::SilentProtocol>());
  sim.add_node(std::make_unique<sim::GarbageSprayProtocol>());
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());

  std::vector<double> honest_inputs(inputs.begin(), inputs.begin() + 5);
  const auto s = stats::summarize(honest_inputs);
  const double relax = std::max(dc.params.rho0, s.range());
  for (NodeId i = 0; i + 2 < n; ++i) {
    const auto v = sim.node_as<protocol::DelphiProtocol>(i).output_value();
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, s.min - relax - 1e-9);
    EXPECT_LE(*v, s.max + relax + 1e-9);
  }
}

TEST(Integration, CrashMidBroadcastDoesNotSplitDelphi) {
  // CrashAfterProtocol wraps honest Delphi and dies mid-broadcast — the
  // remaining honest nodes must still agree.
  const std::size_t n = 7;
  const auto inputs = oracle_inputs(n, 51);
  protocol::DelphiProtocol::Config dc;
  dc.n = n;
  dc.t = max_faults(n);
  dc.params = oracle_params();

  sim::Simulator sim(test::async_config(n, 51));
  for (NodeId i = 0; i + 2 < n; ++i) {
    sim.add_node(std::make_unique<protocol::DelphiProtocol>(dc, inputs[i]));
  }
  for (NodeId i = static_cast<NodeId>(n) - 2; i < n; ++i) {
    sim.add_node(std::make_unique<sim::CrashAfterProtocol>(
        std::make_unique<protocol::DelphiProtocol>(dc, inputs[i]),
        /*crash_after_sends=*/i * 10));
  }
  sim.set_byzantine({5, 6});
  ASSERT_TRUE(sim.run());
  std::vector<double> outputs;
  for (NodeId i = 0; i + 2 < n; ++i) {
    outputs.push_back(*sim.node_as<protocol::DelphiProtocol>(i).output_value());
  }
  EXPECT_LE(test::spread(outputs), dc.params.eps);
}

}  // namespace
}  // namespace delphi
