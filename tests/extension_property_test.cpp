/// Property suites for the extension modules: statistical coverage of the
/// adaptive ∆ estimator, Dolev's per-round contraction rate, vector Delphi
/// under mid-run crashes, and Ben-Or under burst reordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adaptive/range_estimator.hpp"
#include "benor/benor.hpp"
#include "dolev/dolev.hpp"
#include "multidim/vector_delphi.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/distributions.hpp"
#include "tests/test_util.hpp"

namespace delphi {
namespace {

// ------------------------------------------------ adaptive: tail coverage

class AdaptiveCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaptiveCoverage, FittedBoundCoversFutureSamples) {
  // Fit on 1500 Gumbel range samples at lambda = 10, then check the bound
  // against 20000 *future* samples: the exceedance rate must be at most
  // 2^-10 plus generous fit slack (we assert < 1%), and the bound must not
  // be vacuous (some probability mass within 3x of it).
  Rng rng(GetParam());
  const stats::Gumbel truth(40.0, 6.0);
  adaptive::RangeEstimator::Options opt;
  opt.window = 2048;
  opt.min_samples = 64;
  opt.lambda_bits = 10.0;
  opt.fallback_delta = 100.0;
  opt.safety_factor = 1.0;
  opt.refit_interval = 128;
  adaptive::RangeEstimator est(opt);
  for (int i = 0; i < 1500; ++i) {
    est.observe(std::max(0.0, truth.sample(rng)));
  }
  const double bound = est.delta_bound();

  std::size_t exceed = 0;
  const std::size_t trials = 20'000;
  for (std::size_t i = 0; i < trials; ++i) {
    if (truth.sample(rng) > bound) ++exceed;
  }
  EXPECT_LT(static_cast<double>(exceed) / trials, 0.01) << "bound " << bound;
  EXPECT_LT(bound, truth.quantile(0.999999999) * 3.0);  // not vacuous
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveCoverage,
                         ::testing::Values(11u, 12u, 13u, 14u));

// -------------------------------------------------- dolev: contraction rate

struct ContractionCase {
  std::uint32_t rounds;
  std::uint64_t seed;
};

class DolevContraction : public ::testing::TestWithParam<ContractionCase> {};

TEST_P(DolevContraction, RangeHalvesPerRound) {
  const auto [rounds, seed] = GetParam();
  const std::size_t n = 11;
  const double spread0 = 128.0;
  std::vector<double> inputs(n);
  Rng rng(seed);
  for (auto& v : inputs) v = rng.uniform(0.0, spread0);
  // Pin the extremes so the initial range is exactly spread0.
  inputs[0] = 0.0;
  inputs[1] = spread0;

  dolev::DolevProtocol::Config cfg;
  cfg.n = n;
  cfg.t = dolev::DolevProtocol::max_faults_5t(n);
  cfg.rounds = rounds;
  cfg.space_min = -1e6;
  cfg.space_max = 1e6;
  auto outcome = sim::run_nodes(test::adversarial_config(n, seed),
                                [&](NodeId i) {
                                  return std::make_unique<dolev::DolevProtocol>(
                                      cfg, inputs[i]);
                                });
  ASSERT_TRUE(outcome.all_honest_terminated);
  // Contraction factor >= 2 per round (Dolev et al. Lemma 3 adapted).
  EXPECT_LE(test::spread(outcome.honest_outputs),
            spread0 / std::ldexp(1.0, rounds) + 1e-9)
      << "rounds " << rounds;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DolevContraction,
    ::testing::Values(ContractionCase{1, 1}, ContractionCase{2, 2},
                      ContractionCase{4, 3}, ContractionCase{6, 4},
                      ContractionCase{8, 5}, ContractionCase{10, 6}));

// --------------------------------------- multidim: mid-run crash tolerance

class VectorCrash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VectorCrash, VectorDelphiSurvivesMidRunCrashes) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 7;
  const std::size_t t = max_faults(n);
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 1000.0;
  p.rho0 = 1.0;
  p.eps = 1.0;
  p.delta_max = 32.0;
  auto cfg = multidim::VectorDelphiProtocol::Config::uniform(n, t, p, 2);

  std::vector<std::vector<double>> inputs(n, std::vector<double>(2));
  Rng rng(seed);
  for (auto& v : inputs) {
    v[0] = 200.0 + rng.uniform(0.0, 4.0);
    v[1] = 600.0 + rng.uniform(0.0, 4.0);
  }
  const auto byz = sim::last_t_byzantine(n, t);

  sim::Simulator sim(test::adversarial_config(n, seed));
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) {
      // Participate honestly for a while, then vanish mid-protocol.
      sim.add_node(std::make_unique<sim::CrashAfterProtocol>(
          std::make_unique<multidim::VectorDelphiProtocol>(cfg, inputs[i]),
          /*crash_after_sends=*/30 + 10 * seed));
    } else {
      sim.add_node(
          std::make_unique<multidim::VectorDelphiProtocol>(cfg, inputs[i]));
    }
  }
  sim.set_byzantine(byz);
  ASSERT_TRUE(sim.run());

  for (std::size_t c = 0; c < 2; ++c) {
    std::vector<double> coord;
    for (NodeId i = 0; i < n; ++i) {
      if (sim.is_byzantine(i)) continue;
      const auto out = sim.node_as<multidim::VectorDelphiProtocol>(i)
                           .output_vector();
      ASSERT_TRUE(out.has_value());
      coord.push_back((*out)[c]);
    }
    EXPECT_LE(test::spread(coord), p.eps) << "coord " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorCrash,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------------- benor: hostile schedules

class BenOrSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenOrSchedules, AgreementUnderBurstReordering) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  auto cfg = test::async_config(n, seed);
  cfg.adversary = std::make_shared<sim::BurstReorderAdversary>(30 * kMillisecond);

  benor::BenOrProtocol::Config bc;
  bc.n = n;
  bc.t = (n - 1) / 5;
  auto outcome = sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<benor::BenOrProtocol>(bc, i < n / 2);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  ASSERT_FALSE(outcome.honest_outputs.empty());
  for (double o : outcome.honest_outputs) {
    EXPECT_DOUBLE_EQ(o, outcome.honest_outputs.front());
  }
}

TEST_P(BenOrSchedules, AgreementUnderPartition) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 11;
  auto cfg = test::async_config(n, seed);
  cfg.adversary = std::make_shared<sim::PartitionAdversary>(
      std::set<NodeId>{0, 1}, /*heal_at=*/kSecond);

  benor::BenOrProtocol::Config bc;
  bc.n = n;
  bc.t = (n - 1) / 5;
  auto outcome = sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<benor::BenOrProtocol>(bc, i % 2 == 0);
  });
  ASSERT_TRUE(outcome.all_honest_terminated);
  for (double o : outcome.honest_outputs) {
    EXPECT_DOUBLE_EQ(o, outcome.honest_outputs.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenOrSchedules,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace delphi
