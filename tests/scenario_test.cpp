/// Tests for the scenario API: registry completeness (every registered
/// protocol builds and runs at small n on the simulator), ScenarioSpec text
/// round-trip, cross-substrate equivalence (same spec on SimRuntime and
/// TcpRuntime → same honest outputs and honest byte counts, both sides
/// accounting via net::framed_size), custom registration, crash-fault
/// wiring, and unfinished-node reporting on TCP timeout.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "scenario/runtime.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "transport/decoders.hpp"

namespace delphi::scenario {
namespace {

/// Small-n spec every built-in suite can run: n = 6 satisfies the 5t+1
/// protocols at t = 1 and the 3t+1 protocols at t = 1 (auto).
ScenarioSpec small_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.testbed = TestbedKind::kAsync;
  spec.n = 6;
  spec.seed = 7;
  return spec;
}

// ------------------------------------------------------------- registry

TEST(Registry, CoversEveryProtocolSuite) {
  const auto names = ProtocolRegistry::global().names();
  for (const char* expected :
       {"aba", "abraham", "acs", "benor", "binaa", "delphi", "dolev", "dora",
        "fin", "multidim", "rbc"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "missing registry entry: " << expected;
  }
}

TEST(Registry, EveryEntryBuildsAndRunsAtSmallN) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto rep = SimRuntime().run(small_spec(name));
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.unfinished.empty());
    EXPECT_FALSE(rep.outputs.empty());
    EXPECT_EQ(rep.nodes.size(), 6u);
    EXPECT_GT(rep.honest_msgs, 0u);
    EXPECT_GT(rep.honest_bytes, 0u);
  }
}

TEST(Registry, UnknownProtocolThrowsWithKnownNames) {
  try {
    SimRuntime().run(small_spec("nonesuch"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("delphi"), std::string::npos);
  }
}

TEST(Registry, RejectsDuplicateAndIncompleteEntries) {
  ProtocolRegistry reg;
  ProtocolInfo incomplete;
  EXPECT_THROW(reg.add("x", incomplete), ConfigError);

  ProtocolInfo ok;
  ok.make_factory = [](const ScenarioSpec&, std::vector<double>) {
    return [](NodeId) { return std::unique_ptr<net::Protocol>(); };
  };
  ok.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::delphi();
  };
  reg.add("x", ok);
  EXPECT_THROW(reg.add("x", ok), ConfigError);
  EXPECT_NE(reg.find("x"), nullptr);
  EXPECT_EQ(reg.find("y"), nullptr);
}

// ------------------------------------------------------------- spec text

TEST(Spec, TextRoundTripIsExact) {
  ScenarioSpec spec;
  spec.protocol = "dolev";
  spec.substrate = Substrate::kTcp;
  spec.testbed = TestbedKind::kCps;
  spec.n = 11;
  spec.t = 2;
  spec.crashes = 1;
  spec.seed = 42;
  spec.center = 1000.25;
  spec.delta = 5.125;
  spec.params["rounds"] = 8;
  spec.params["space-min"] = -1e6;
  spec.params["space-max"] = 0.1;  // not exactly representable — %.17g path
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);

  // Explicit inputs (including a value needing full precision).
  spec.inputs = {1.0, 2.5, 0.1 + 0.2, -7.75, 1e-300, 40000.0, 3.0, 4.0, 5.0,
                 6.0, 7.0};
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);

  // auto fault bound round-trips too.
  spec.t = kAutoFaults;
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
}

TEST(Spec, ParsesHandWrittenText) {
  const auto spec = ScenarioSpec::from_text(
      "protocol=abraham substrate=tcp testbed=cps n=8 seed=3 rounds=6 "
      "space-max=500");
  EXPECT_EQ(spec.protocol, "abraham");
  EXPECT_EQ(spec.substrate, Substrate::kTcp);
  EXPECT_EQ(spec.testbed, TestbedKind::kCps);
  EXPECT_EQ(spec.n, 8u);
  EXPECT_EQ(spec.t, kAutoFaults);
  EXPECT_EQ(spec.seed, 3u);
  EXPECT_EQ(spec.param("rounds", 0.0), 6.0);
  EXPECT_EQ(spec.param("space-max", 0.0), 500.0);
  EXPECT_EQ(spec.param("absent", -1.0), -1.0);
}

TEST(Spec, RejectsMalformedText) {
  EXPECT_THROW(ScenarioSpec::from_text("n"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("n=four"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("substrate=carrier-pigeon"),
               ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("testbed=gcp"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("rho0=abc"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("=3"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("n=0"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("inputs=1,2 n=3"), ConfigError);
}

TEST(Spec, MakeInputsGeneratorAndExplicit) {
  ScenarioSpec spec;
  spec.n = 8;
  spec.center = 100.0;
  spec.delta = 10.0;
  const auto gen = spec.make_inputs();
  ASSERT_EQ(gen.size(), 8u);
  const auto [mn, mx] = std::minmax_element(gen.begin(), gen.end());
  EXPECT_DOUBLE_EQ(*mx - *mn, 10.0);  // realized range exactly delta

  spec.inputs = {1, 2, 3};  // wrong size
  EXPECT_THROW(spec.make_inputs(), ConfigError);
}

// ------------------------------------------- cross-substrate equivalence

TEST(CrossSubstrate, RbcOutputsAndBytesMatch) {
  // RBC's traffic is schedule-independent (every node sends exactly one
  // ECHO and one READY, the broadcaster one SEND per peer) and its output
  // is exact, so the two substrates must agree bit-for-bit on both. Byte
  // parity holds because the simulator accounts net::framed_size for
  // exactly the frames TCP really sends.
  ScenarioSpec spec;
  spec.protocol = "rbc";
  spec.n = 5;
  spec.seed = 11;
  spec.inputs = {40012.5, 40013.0, 40011.0, 40014.5, 40012.0};

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  ASSERT_EQ(sim_rep.outputs.size(), 5u);
  for (const double v : sim_rep.outputs) EXPECT_EQ(v, 40012.5);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
  EXPECT_EQ(sim_rep.honest_msgs, tcp_rep.honest_msgs);
}

TEST(CrossSubstrate, DolevUnanimousOutputsAndBytesMatch) {
  // Dolev broadcasts exactly `rounds` messages per node regardless of
  // schedule, and unanimous honest inputs pin the outputs.
  ScenarioSpec spec;
  spec.protocol = "dolev";
  spec.n = 6;
  spec.seed = 5;
  spec.params["rounds"] = 5;
  spec.inputs = std::vector<double>(6, 42.0);

  spec.substrate = Substrate::kSim;
  const auto sim_rep = SimRuntime().run(spec);
  spec.substrate = Substrate::kTcp;
  const auto tcp_rep = TcpRuntime().run(spec);

  ASSERT_TRUE(sim_rep.ok);
  ASSERT_TRUE(tcp_rep.ok);
  EXPECT_EQ(sim_rep.outputs, tcp_rep.outputs);
  ASSERT_EQ(sim_rep.outputs.size(), 6u);
  for (const double v : sim_rep.outputs) EXPECT_EQ(v, 42.0);
  EXPECT_EQ(sim_rep.honest_bytes, tcp_rep.honest_bytes);
}

// --------------------------------------------------- faults & timeouts

TEST(Runtime, CrashFaultsWorkForAnyProtocol) {
  for (const char* name : {"delphi", "dolev"}) {
    SCOPED_TRACE(name);
    auto spec = small_spec(name);
    spec.n = name == std::string("dolev") ? 11u : 7u;
    spec.crashes = 1;
    const auto rep = SimRuntime().run(spec);
    EXPECT_TRUE(rep.ok);
    // The crashed node (top id) is excluded from honest outputs.
    EXPECT_EQ(rep.outputs.size(), spec.n - 1);
    // It sent nothing.
    EXPECT_EQ(rep.nodes.back().msgs_sent, 0u);
  }
}

TEST(Runtime, TcpTimeoutReportsUnfinishedNodeIds) {
  /// Terminates on node 0 only; 1 and 2 hang forever.
  class Stuck final : public net::Protocol {
   public:
    void on_start(net::Context&) override {}
    void on_message(net::Context&, NodeId, std::uint32_t,
                    const net::MessageBody&) override {}
    bool terminated() const override { return false; }
  };

  // A private registry keeps the never-terminating suite out of
  // ProtocolRegistry::global() (the completeness sweep iterates it).
  ProtocolRegistry reg;
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec&, std::vector<double>) {
    return [](NodeId i) -> std::unique_ptr<net::Protocol> {
      if (i == 0) return std::make_unique<sim::SilentProtocol>();
      return std::make_unique<Stuck>();
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::delphi();
  };
  reg.add("test-stuck", info);

  ScenarioSpec spec;
  spec.protocol = "test-stuck";
  spec.substrate = Substrate::kTcp;
  spec.n = 3;
  spec.params["timeout-ms"] = 300;
  const auto rep = TcpRuntime(&reg).run(spec);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.unfinished, (std::vector<NodeId>{1, 2}));
}

TEST(Runtime, RbcRejectsOutOfRangeBroadcaster) {
  auto spec = small_spec("rbc");
  spec.params["broadcaster"] = 9;  // n = 6
  EXPECT_THROW(SimRuntime().run(spec), ConfigError);
  spec.params["broadcaster"] = -1;
  EXPECT_THROW(SimRuntime().run(spec), ConfigError);
}

// ------------------------------------------------------- report parity

TEST(Runtime, SimReportMatchesLegacyHarness) {
  // The unified RunReport must agree with the historical sim::RunOutcome
  // numbers for the same deployment (the bench figures depend on it).
  ScenarioSpec spec = small_spec("delphi");
  const auto rep = SimRuntime().run(spec);

  const auto& info = ProtocolRegistry::global().require("delphi");
  ScenarioSpec resolved = spec;
  resolved.t = max_faults(spec.n);
  auto cfg = testbed_config(spec.testbed, spec.n, spec.seed);
  const auto outcome = sim::run_nodes(
      cfg, info.make_factory(resolved, resolved.make_inputs()));

  EXPECT_EQ(rep.ok, outcome.all_honest_terminated);
  EXPECT_EQ(rep.honest_bytes, outcome.honest_bytes);
  EXPECT_EQ(rep.honest_msgs, outcome.honest_msgs);
  EXPECT_EQ(rep.outputs, outcome.honest_outputs);
  EXPECT_DOUBLE_EQ(
      rep.runtime_ms,
      static_cast<double>(outcome.metrics.honest_completion) / 1000.0);
}

}  // namespace
}  // namespace delphi::scenario
