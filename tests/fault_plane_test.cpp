/// Tests for the declarative fault plane (adversary= / byzantine= as
/// first-class ScenarioSpec fields) and the spec-parser hardening that
/// shipped with it:
///   * exact text round-trip of every fault grammar form;
///   * every registered protocol terminates under a network adversary and
///     under Byzantine node behaviours, on the simulator;
///   * a partitioned run completes only after the heal (and the completion
///     time reflects it);
///   * faulted sim runs keep the determinism contract (same spec + seed ⇒
///     bit-identical RunReport);
///   * TcpRuntime executes the protocol-wrapping faults, runs every
///     adversary= form through the netem shim, and rejects the loss knobs
///     with a substrate=udp redirect;
///   * parse_u64/parse_double reject negative, overflowing, and nan input,
///     and unknown/typo'd parameter keys fail with a "did you mean" message
///     instead of silently changing nothing.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "scenario/runtime.hpp"

namespace delphi::scenario {
namespace {

ScenarioSpec small_spec(const std::string& protocol, std::size_t n) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.testbed = TestbedKind::kAsync;
  spec.n = n;
  spec.seed = 7;
  return spec;
}

// --------------------------------------------------------- text round-trip

TEST(FaultSpec, TextRoundTripIsExactForEveryFaultForm) {
  for (const char* adversary :
       {"none", "random-delay:50000", "targeted-lag:2:100000",
        "partition:3:500000", "burst:20000"}) {
    for (const char* byzantine :
         {"none", "crash-after:50:2", "garbage:64:1"}) {
      SCOPED_TRACE(std::string(adversary) + " / " + byzantine);
      ScenarioSpec spec = small_spec("delphi", 9);
      spec.adversary = parse_adversary(adversary);
      spec.byzantine = parse_byzantine(byzantine);
      spec.crashes = 1;
      EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
    }
  }
}

TEST(FaultSpec, CanonicalTextNamesTheFaults) {
  ScenarioSpec spec = small_spec("delphi", 9);
  spec.adversary = parse_adversary("partition:3:500000");
  spec.byzantine = parse_byzantine("garbage:64:2");
  const auto text = spec.to_text();
  EXPECT_NE(text.find("adversary=partition:3:500000"), std::string::npos);
  EXPECT_NE(text.find("byzantine=garbage:64:2"), std::string::npos);
  // Fault-free specs keep the historical text byte-for-byte: no fault keys.
  EXPECT_EQ(small_spec("delphi", 9).to_text().find("adversary"),
            std::string::npos);
  EXPECT_EQ(small_spec("delphi", 9).to_text().find("byzantine"),
            std::string::npos);
}

TEST(FaultSpec, RejectsMalformedFaultValues) {
  EXPECT_THROW(parse_adversary("warp-speed:3"), ConfigError);
  EXPECT_THROW(parse_adversary("random-delay"), ConfigError);
  EXPECT_THROW(parse_adversary("random-delay:1:2"), ConfigError);
  EXPECT_THROW(parse_adversary("targeted-lag:2"), ConfigError);
  EXPECT_THROW(parse_adversary("partition:-1:100"), ConfigError);
  EXPECT_THROW(parse_adversary("none:1"), ConfigError);
  EXPECT_THROW(parse_byzantine("equivocate:1:1"), ConfigError);
  EXPECT_THROW(parse_byzantine("crash-after:50"), ConfigError);
  EXPECT_THROW(parse_byzantine("garbage:64:-2"), ConfigError);
  // Structural checks at validate() time.
  ScenarioSpec spec = small_spec("delphi", 6);
  spec.adversary = parse_adversary("partition:6:1000");  // k must be < n
  EXPECT_THROW(spec.validate(), ConfigError);
  spec = small_spec("delphi", 6);
  spec.byzantine = parse_byzantine("garbage:0:1");  // size must be >= 1
  EXPECT_THROW(spec.validate(), ConfigError);
  spec = small_spec("delphi", 6);
  spec.crashes = 3;
  spec.byzantine = parse_byzantine("crash-after:5:3");  // 3 + 3 >= n
  EXPECT_THROW(spec.validate(), ConfigError);
  // A near-2^64 k must not wrap crashes + k below n and pass the bound.
  spec = small_spec("delphi", 8);
  spec.crashes = 3;
  spec.byzantine = parse_byzantine("garbage:64:18446744073709551614");
  EXPECT_THROW(spec.validate(), ConfigError);
  EXPECT_THROW(
      ScenarioSpec::from_text(
          "protocol=delphi n=8 crashes=3 byzantine=garbage:64:18446744073709551614"),
      ConfigError);
}

// ------------------------------------------------------- parser hardening

TEST(SpecParser, RejectsNegativeIntegers) {
  EXPECT_THROW(ScenarioSpec::from_text("n=-3"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("seed=-1"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("crashes=-2"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("t=-4"), ConfigError);
}

TEST(SpecParser, RejectsIntegerOverflow) {
  // 21 digits: strtoull saturates with ERANGE, which used to be swallowed.
  EXPECT_THROW(ScenarioSpec::from_text("seed=999999999999999999999"),
               ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("n=18446744073709551616"),  // 2^64
               ConfigError);
  // Max u64 still parses.
  const auto spec = ScenarioSpec::from_text("seed=18446744073709551615");
  EXPECT_EQ(spec.seed, 18446744073709551615ull);
}

TEST(SpecParser, RejectsNanAndDoubleOverflow) {
  EXPECT_THROW(ScenarioSpec::from_text("center=nan"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("delta=nan"), ConfigError);
  EXPECT_THROW(ScenarioSpec::from_text("center=1e999"), ConfigError);
  // Tiny-but-normal values still parse (ERANGE underflow is not an error).
  EXPECT_EQ(ScenarioSpec::from_text("center=1e-300").center, 1e-300);
}

TEST(SpecParser, RejectsUnknownKeysWithSuggestion) {
  try {
    ScenarioSpec::from_text("protocol=delphi n=8 crashs=2");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("crashs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'crashes'"), std::string::npos) << msg;
  }
  try {
    ScenarioSpec::from_text("protocol=delphi n=8 sede=7");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'seed'"),
              std::string::npos)
        << e.what();
  }
  // Unknown keys for the *protocol* are rejected too (rounds is abraham's).
  EXPECT_THROW(ScenarioSpec::from_text("protocol=delphi n=8 rounds=6"),
               ConfigError);
  // ... but real keys of the named protocol and universal knobs still pass.
  EXPECT_NO_THROW(ScenarioSpec::from_text("protocol=abraham n=8 rounds=6"));
  EXPECT_NO_THROW(ScenarioSpec::from_text("protocol=delphi n=8 auth=0"));
}

TEST(SpecParser, RuntimeValidatesProgrammaticSpecsToo) {
  ScenarioSpec spec = small_spec("delphi", 6);
  spec.params["rho"] = 1.0;  // typo for rho0
  try {
    SimRuntime().run(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'rho0'"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ sim runtime

TEST(FaultRuntime, EveryProtocolTerminatesUnderEveryAdversary) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    for (const char* adversary :
         {"random-delay:20000", "targeted-lag:1:50000", "partition:1:100000",
          "burst:10000"}) {
      SCOPED_TRACE(name + " / " + adversary);
      ScenarioSpec spec = small_spec(name, 6);
      spec.adversary = parse_adversary(adversary);
      const auto rep = SimRuntime().run(spec);
      EXPECT_TRUE(rep.ok);
      EXPECT_TRUE(rep.unfinished.empty());
      EXPECT_FALSE(rep.outputs.empty());
    }
  }
}

TEST(FaultRuntime, EveryProtocolTerminatesUnderByzantineBehaviours) {
  for (const auto& name : ProtocolRegistry::global().names()) {
    for (const char* byzantine : {"crash-after:5:1", "garbage:64:1"}) {
      SCOPED_TRACE(name + " / " + byzantine);
      // n = 7 gives t >= 1 for both the 3t+1 and 5t+1 suites.
      ScenarioSpec spec = small_spec(name, 7);
      spec.byzantine = parse_byzantine(byzantine);
      const auto rep = SimRuntime().run(spec);
      EXPECT_TRUE(rep.ok);
      EXPECT_TRUE(rep.unfinished.empty());
      // The faulted node (top id) contributes no output; honest ones do.
      EXPECT_FALSE(rep.outputs.empty());
    }
  }
}

TEST(FaultRuntime, ByzantinePlacementSitsBelowTheCrashBlock) {
  ScenarioSpec spec = small_spec("delphi", 9);
  spec.crashes = 1;
  spec.byzantine = parse_byzantine("garbage:64:1");
  const auto rep = SimRuntime().run(spec);
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.nodes.size(), 9u);
  // Node 8 crashed silently; node 7 sprayed garbage (it sends, peers drop).
  EXPECT_EQ(rep.nodes[8].msgs_sent, 0u);
  EXPECT_GT(rep.nodes[7].msgs_sent, 0u);
  // Both are excluded from honest outputs: 9 - 2 = 7 honest contributors.
  EXPECT_EQ(rep.outputs.size(), 7u);
  // Garbage got counted as malformed drops by at least one honest node.
  std::uint64_t drops = 0;
  for (const auto& nm : rep.nodes) drops += nm.malformed_dropped;
  EXPECT_GT(drops, 0u);
}

TEST(FaultRuntime, PartitionRunCompletesOnlyAfterHeal) {
  // Cut the t-node minority until heal_us: no quorum spans the cut, so no
  // honest node can finish before the heal.
  constexpr std::uint64_t heal_us = 400'000;
  ScenarioSpec spec = small_spec("delphi", 7);
  spec.adversary = parse_adversary("partition:2:" + std::to_string(heal_us));
  const auto rep = SimRuntime().run(spec);
  ASSERT_TRUE(rep.ok);
  EXPECT_GE(rep.runtime_ms, static_cast<double>(heal_us) / 1000.0);

  // The same spec without the partition finishes well before heal_us.
  const auto free_rep = SimRuntime().run(small_spec("delphi", 7));
  ASSERT_TRUE(free_rep.ok);
  EXPECT_LT(free_rep.runtime_ms, rep.runtime_ms);
}

TEST(FaultRuntime, FaultedRunsAreBitIdenticalAcrossReruns) {
  for (const auto& protocol : {"delphi", "fin", "abraham"}) {
    SCOPED_TRACE(protocol);
    ScenarioSpec spec = small_spec(protocol, 9);
    spec.crashes = 1;
    spec.adversary = parse_adversary("random-delay:30000");
    spec.byzantine = parse_byzantine("garbage:64:1");
    const auto a = SimRuntime().run(spec);
    const auto b = SimRuntime().run(spec);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(a, b);  // RunReport == is field-exact, including doubles
    // A different seed must actually perturb the schedule.
    spec.seed = 8;
    const auto c = SimRuntime().run(spec);
    EXPECT_NE(a.runtime_ms, c.runtime_ms);
  }
}

TEST(FaultRuntime, AcsTerminatesWhenFinishQuorumPrecedesLateRbc) {
  // Regression for the ACS accounting bug the fault plane exposed: a
  // partition-lagged node whose RBC delivery arrives after the ABA FINISH
  // quorum decided the slot *inside* AbaInstance::start() — the transition
  // must be counted or decided_count_ sticks below n and the node hangs.
  ScenarioSpec spec;
  spec.protocol = "fin";
  spec.testbed = TestbedKind::kAws;
  spec.n = 16;
  spec.seed = 1;
  spec.adversary = parse_adversary("partition:5:500000");
  const auto rep = SimRuntime().run(spec);
  EXPECT_TRUE(rep.ok) << "unfinished nodes: " << rep.unfinished.size();
  EXPECT_TRUE(rep.unfinished.empty());
}

// ------------------------------------------------------------ tcp runtime

TEST(FaultRuntime, TcpExecutesProtocolWrappingFaults) {
  ScenarioSpec spec;
  spec.protocol = "delphi";
  spec.substrate = Substrate::kTcp;
  spec.n = 5;
  spec.byzantine = parse_byzantine("crash-after:20:1");
  const auto rep = TcpRuntime().run(spec);
  EXPECT_TRUE(rep.ok);
  // The crash-after node (id 4) sent something before vanishing, but is
  // excluded from honest outputs.
  EXPECT_GT(rep.nodes[4].msgs_sent, 0u);
  EXPECT_EQ(rep.outputs.size(), 4u);
}

TEST(FaultRuntime, TcpShimsEveryAdversaryForm) {
  // Since the netem shim landed, adversary= is no longer sim-only: every
  // form runs on real TCP via send-boundary holdback (delay-only).
  for (const char* form : {"random-delay:2000", "targeted-lag:1:5000",
                           "partition:1:20000", "burst:20000"}) {
    SCOPED_TRACE(form);
    ScenarioSpec spec;
    spec.protocol = "rbc";
    spec.substrate = Substrate::kTcp;
    spec.n = 4;
    spec.adversary = parse_adversary(form);
    const auto rep = TcpRuntime().run(spec);
    EXPECT_TRUE(rep.ok) << "unfinished nodes: " << rep.unfinished.size();
  }
}

TEST(FaultRuntime, TcpRejectsLossKnobsWithUdpSuggestion) {
  // TCP has no frame-level retransmission, so a shim-dropped frame would be
  // gone forever: the loss knobs stay rejected with a precise redirect.
  // (This replaces the pre-shim test that expected *every* adversary= to be
  // rejected on tcp.)
  ScenarioSpec spec;
  spec.protocol = "delphi";
  spec.substrate = Substrate::kTcp;
  spec.n = 4;
  spec.params["loss"] = 0.05;
  try {
    TcpRuntime().run(spec);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("substrate=udp"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace delphi::scenario
