#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DELPHI_SHA256_X86 1
#include <immintrin.h>
#endif

namespace delphi::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return std::rotr(x, n);
}

/// Compress `nblocks` consecutive 64-byte blocks into `state`.
using CompressFn = void (*)(std::array<std::uint32_t, 8>& state,
                            const std::uint8_t* blocks,
                            std::size_t nblocks) noexcept;

void compress_scalar(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* blocks,
                     std::size_t nblocks) noexcept {
  for (; nblocks > 0; --nblocks, blocks += 64) {
    const std::uint8_t* block = blocks;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    auto [a, b, c, d, e, f, g, h] = state;
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef DELPHI_SHA256_X86

/// SHA-NI kernel (the standard two-lane ABEF/CDGH flow; see FIPS 180-4 and
/// the Intel SHA extensions reference). Bit-identical to compress_scalar.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* blocks,
    std::size_t nblocks) noexcept {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack a,b,...,h into the ABEF / CDGH lane order the instructions use.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  const auto k4 = [](int i) {
    return _mm_set_epi32(static_cast<int>(kK[i + 3]),
                         static_cast<int>(kK[i + 2]),
                         static_cast<int>(kK[i + 1]),
                         static_cast<int>(kK[i]));
  };

  for (; nblocks > 0; --nblocks, blocks += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3.
    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0));
    msg0 = _mm_shuffle_epi8(msg0, kShuffle);
    msg = _mm_add_epi32(msg0, k4(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(msg1, k4(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(msg2, k4(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(msg3, k4(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: the schedule pipeline in steady state, msg0..msg3
    // rotating through the four roles every four rounds.
    for (int i = 16; i < 52; i += 16) {
      msg = _mm_add_epi32(msg0, k4(i));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
      msg1 = _mm_add_epi32(msg1, msgtmp);
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      if (i + 4 >= 52) break;
      msg = _mm_add_epi32(msg1, k4(i + 4));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
      msg2 = _mm_add_epi32(msg2, msgtmp);
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, k4(i + 8));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
      msg3 = _mm_add_epi32(msg3, msgtmp);
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      msg = _mm_add_epi32(msg3, k4(i + 12));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
      msg0 = _mm_add_epi32(msg0, msgtmp);
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    }

    // Rounds 52-55 (schedule for w[56..63] still completing).
    msg = _mm_add_epi32(msg1, k4(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg2, k4(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, k4(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Repack ABEF / CDGH back to a,b,...,h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // DELPHI_SHA256_X86

CompressFn select_compress() noexcept {
#ifdef DELPHI_SHA256_X86
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
      __builtin_cpu_supports("ssse3")) {
    return compress_shani;
  }
#endif
  return compress_scalar;
}

CompressFn compress_fn() noexcept {
  static const CompressFn fn = select_compress();
  return fn;
}

}  // namespace

bool sha256_hw_accelerated() noexcept {
  return compress_fn() != compress_scalar;
}

Sha256::Sha256() noexcept
    : h_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
         0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      buf_{} {}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  const CompressFn compress = compress_fn();
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == 64) {
      compress(h_, buf_.data(), 1);
      buf_len_ = 0;
    }
  }
  const std::size_t full = (data.size() - off) / 64;
  if (full > 0) {
    compress(h_, data.data() + off, full);
    off += full * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 8-byte big-endian bit length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // `update` above may have adjusted total_len_, but padding math is done.
  total_len_ -= pad_len;  // keep the recorded length equal to the true input
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Digest sha256(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest sha256(std::string_view s) noexcept {
  Sha256 h;
  h.update(s);
  return h.finalize();
}

std::string to_hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (auto b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace delphi::crypto
