#pragma once
/// \file sha256.hpp
/// From-scratch SHA-256 (FIPS 180-4). No external crypto dependency is
/// available offline, and the paper's implementation uses SHA-256-based HMACs
/// for its authenticated channels, so we carry our own.
///
/// The compression function is selected once at runtime: on x86-64 CPUs with
/// the SHA extensions the SHA-NI kernel runs (~10x the scalar code, the
/// dominant cost of every authenticated TCP frame); everywhere else the
/// portable scalar kernel is used. Both produce identical digests.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace delphi::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(bytes);
///   Digest d = h.finalize();
/// `finalize` may be called once; the object is then exhausted.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorb more input.
  void update(std::span<const std::uint8_t> data) noexcept;

  /// Convenience overload for string literals / std::string.
  void update(std::string_view s) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Pad, finish, and return the digest.
  Digest finalize() noexcept;

 private:
  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// True when the runtime-selected compression kernel uses CPU SHA extensions
/// (benchmarks and logs report which path perf numbers were taken on).
bool sha256_hw_accelerated() noexcept;

/// One-shot hash of a byte span.
Digest sha256(std::span<const std::uint8_t> data) noexcept;

/// One-shot hash of a string.
Digest sha256(std::string_view s) noexcept;

/// Hex encoding of a digest (for tests and logs).
std::string to_hex(const Digest& d);

}  // namespace delphi::crypto
