#include "crypto/coin.hpp"

#include "common/bytes.hpp"

namespace delphi::crypto {

std::uint64_t CommonCoin::prf(std::uint64_t instance,
                              std::uint32_t round) const noexcept {
  ByteWriter key;
  key.u64(seed_);
  ByteWriter msg;
  msg.u64(instance);
  msg.u32(round);
  const Digest d = hmac_sha256(std::span<const std::uint8_t>(key.data()),
                               std::span<const std::uint8_t>(msg.data()));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return v;
}

bool CommonCoin::toss(std::uint64_t instance,
                      std::uint32_t round) const noexcept {
  return (prf(instance, round) & 1) != 0;
}

std::uint64_t CommonCoin::value(std::uint64_t instance, std::uint32_t round,
                                std::uint64_t bound) const noexcept {
  if (bound == 0) return 0;
  return prf(instance, round) % bound;
}

}  // namespace delphi::crypto
