#pragma once
/// \file certificate.hpp
/// Threshold attestation certificates for DORA-style oracle output.
///
/// The paper's DORA extension has each node sign its rounded Delphi output
/// and aggregate t+1 signatures into a succinct certificate (BLS in the
/// paper). Per DESIGN.md we substitute per-node HMAC tags: a certificate is a
/// value plus t+1 distinct valid node tags. Unforgeability against our
/// simulated adversary and the t+1 threshold logic — the properties DORA
/// actually relies on — are identical; signature compute/size costs are
/// charged through the simulator's cost model instead.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "crypto/hmac.hpp"

namespace delphi::crypto {

/// A single node's endorsement of an attested value.
struct AttestationShare {
  NodeId signer = kInvalidNode;
  /// The attested value, already rounded to a multiple of epsilon and
  /// re-scaled to an integer grid index (exact comparison, no float fuzz).
  std::int64_t value_index = 0;
  Digest tag{};

  bool operator==(const AttestationShare&) const = default;
};

/// A quorum certificate: one value plus >= threshold distinct valid shares.
struct Certificate {
  std::int64_t value_index = 0;
  std::vector<AttestationShare> shares;
};

/// Creates and verifies attestation shares/certificates against a KeyStore.
class Attestor {
 public:
  /// \param keys       key material for all n nodes.
  /// \param session_id domain separator so tags from different protocol runs
  ///                   cannot be replayed across sessions.
  Attestor(const KeyStore& keys, std::uint64_t session_id) noexcept
      : keys_(&keys), session_(session_id) {}

  /// Produce node `signer`'s share for `value_index`.
  AttestationShare sign(NodeId signer, std::int64_t value_index) const;

  /// Check a single share's tag.
  bool verify(const AttestationShare& share) const;

  /// Assemble a certificate from shares once `threshold` distinct valid
  /// signers endorse the same value; returns std::nullopt until then.
  /// Invalid or duplicate shares are ignored (adversarial input).
  std::optional<Certificate> try_assemble(
      const std::vector<AttestationShare>& shares, std::size_t threshold) const;

  /// Full certificate check: >= threshold distinct signers, all tags valid,
  /// all on the certificate's value.
  bool verify(const Certificate& cert, std::size_t threshold) const;

 private:
  Digest tag_for(NodeId signer, std::int64_t value_index) const;

  const KeyStore* keys_;
  std::uint64_t session_;
};

}  // namespace delphi::crypto
