#pragma once
/// \file coin.hpp
/// Common coin, simulated with a PRF.
///
/// FIN's ABA instances consume threshold-cryptographic common coins (the
/// paper: "the most efficient implementation of a common coin requires O(n)
/// bilinear pairing computations per coin"). Building pairing-based threshold
/// crypto is out of scope offline; per DESIGN.md we substitute a keyed PRF
/// that every node evaluates identically:
///
///     coin(instance, round) = HMAC(seed, instance || round) mod 2
///
/// Agreement-relevant properties are preserved — the coin is *common* (all
/// nodes compute the same bit) and *unpredictable to our simulated adversary*
/// (adversary strategies never evaluate the PRF). The real coin's dominant
/// cost — CPU time — is modeled explicitly: callers charge
/// `CoinCostModel::cost_us` to the node's busy-time when tossing a coin, so
/// benchmark shapes (FIN's compute-heaviness on weak devices) survive the
/// substitution.

#include <cstdint>
#include <string>

#include "crypto/hmac.hpp"

namespace delphi::crypto {

/// Deterministic common-coin source shared by all nodes of a deployment.
class CommonCoin {
 public:
  /// \param seed  deployment-wide coin seed (output of the "DKG" we do not
  ///              run; all honest nodes hold it).
  explicit CommonCoin(std::uint64_t seed) noexcept : seed_(seed) {}

  /// The common bit for (instance, round). Every node computes the same
  /// value.
  bool toss(std::uint64_t instance, std::uint32_t round) const noexcept;

  /// A common uniform value in [0, bound) — used for FIN-style proposal
  /// election.
  std::uint64_t value(std::uint64_t instance, std::uint32_t round,
                      std::uint64_t bound) const noexcept;

 private:
  std::uint64_t prf(std::uint64_t instance, std::uint32_t round) const noexcept;

  std::uint64_t seed_;
};

}  // namespace delphi::crypto
