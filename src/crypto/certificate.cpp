#include "crypto/certificate.hpp"

#include <map>
#include <set>

#include "common/bytes.hpp"

namespace delphi::crypto {

Digest Attestor::tag_for(NodeId signer, std::int64_t value_index) const {
  ByteWriter msg;
  msg.u64(session_);
  msg.u32(signer);
  msg.svarint(value_index);
  return hmac_sha256(keys_->node_key(signer),
                     std::span<const std::uint8_t>(msg.data()));
}

AttestationShare Attestor::sign(NodeId signer, std::int64_t value_index) const {
  return AttestationShare{signer, value_index, tag_for(signer, value_index)};
}

bool Attestor::verify(const AttestationShare& share) const {
  if (share.signer >= keys_->size()) return false;
  return digest_equal(share.tag, tag_for(share.signer, share.value_index));
}

std::optional<Certificate> Attestor::try_assemble(
    const std::vector<AttestationShare>& shares, std::size_t threshold) const {
  // Group valid shares by value, de-duplicating signers.
  std::map<std::int64_t, std::map<NodeId, AttestationShare>> by_value;
  for (const auto& s : shares) {
    if (verify(s)) by_value[s.value_index].emplace(s.signer, s);
  }
  for (const auto& [value, signers] : by_value) {
    if (signers.size() >= threshold) {
      Certificate cert;
      cert.value_index = value;
      for (const auto& [id, share] : signers) {
        cert.shares.push_back(share);
        if (cert.shares.size() == threshold) break;  // succinct certificate
      }
      return cert;
    }
  }
  return std::nullopt;
}

bool Attestor::verify(const Certificate& cert, std::size_t threshold) const {
  std::set<NodeId> signers;
  for (const auto& s : cert.shares) {
    if (s.value_index != cert.value_index) return false;
    if (!verify(s)) return false;
    signers.insert(s.signer);
  }
  return signers.size() >= threshold;
}

}  // namespace delphi::crypto
