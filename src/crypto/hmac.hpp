#pragma once
/// \file hmac.hpp
/// HMAC-SHA256 (RFC 2104) plus the project's authenticated-channel helpers.
///
/// The paper implements pairwise authenticated channels with HMAC-SHA256 over
/// shared symmetric keys; we do the same. A KeyStore derives the pairwise key
/// for (i, j) from a master secret so that tests and the TCP transport agree
/// on keys without a key-exchange phase (the paper likewise assumes keys are
/// pre-shared).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace delphi::crypto {

/// A symmetric key. 32 bytes everywhere in this project.
using Key = std::array<std::uint8_t, 32>;

/// HMAC-SHA256 of `data` under `key` (key may be any length).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data) noexcept;

/// Overload taking the project Key type.
Digest hmac_sha256(const Key& key, std::span<const std::uint8_t> data) noexcept;

/// Constant-time digest comparison (Core Guidelines-style: no early exit on
/// secret-dependent data).
bool digest_equal(const Digest& a, const Digest& b) noexcept;

/// Size in bytes of the authentication tag appended to every wire message.
inline constexpr std::size_t kMacTagSize = 32;

/// Precomputed HMAC-SHA256 state for one key: the ipad/opad SHA-256
/// midstates are derived once at construction, so each tag() costs two
/// compression-function finishes instead of a full key schedule plus two
/// pad absorptions per MAC. This is the per-link authentication state the
/// TCP data plane keeps per connection (one HMAC key schedule per link
/// lifetime, not per frame). Produces tags identical to hmac_sha256().
class HmacKey {
 public:
  explicit HmacKey(const Key& key);
  explicit HmacKey(std::span<const std::uint8_t> key);

  /// HMAC-SHA256 tag over `data`.
  Digest tag(std::span<const std::uint8_t> data) const noexcept;

  /// Tag over the concatenation a || b without materializing it — for
  /// callers whose MAC input lives in two discontiguous buffers. (The frame
  /// codec itself MACs one contiguous span: channel + payload are adjacent
  /// in the encoded body.)
  Digest tag(std::span<const std::uint8_t> a,
             std::span<const std::uint8_t> b) const noexcept;

 private:
  Sha256 inner_;  ///< midstate after absorbing key ^ ipad
  Sha256 outer_;  ///< midstate after absorbing key ^ opad
};

/// Derives and caches pairwise channel keys and per-node signing keys from a
/// master secret. Symmetric: key(i, j) == key(j, i).
class KeyStore {
 public:
  /// \param master  master secret shared by the deployment (simulation-only;
  ///                a real deployment would provision pairwise keys).
  /// \param n       number of nodes.
  KeyStore(std::uint64_t master, std::size_t n);

  /// Pairwise channel key for the unordered pair {i, j}.
  const Key& channel_key(NodeId i, NodeId j) const;

  /// Per-node key used for DORA attestation tags (known to the verifier set;
  /// stands in for a BLS signing key — see DESIGN.md substitutions).
  const Key& node_key(NodeId i) const;

  /// Number of nodes the store was built for.
  std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<Key> pair_keys_;   // triangular matrix, row-major
  std::vector<Key> node_keys_;

  std::size_t pair_index(NodeId i, NodeId j) const;
};

}  // namespace delphi::crypto
