#include "crypto/hmac.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace delphi::crypto {

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, 64> pad{};
  for (std::size_t i = 0; i < 64; ++i) {
    pad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
  }
  inner_.update(pad);
  for (std::size_t i = 0; i < 64; ++i) {
    pad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }
  outer_.update(pad);
}

HmacKey::HmacKey(const Key& key)
    : HmacKey(std::span<const std::uint8_t>(key.data(), key.size())) {}

Digest HmacKey::tag(std::span<const std::uint8_t> data) const noexcept {
  Sha256 inner = inner_;  // copy the midstate, not the key schedule
  inner.update(data);
  const Digest inner_digest = inner.finalize();
  Sha256 outer = outer_;
  outer.update(inner_digest);
  return outer.finalize();
}

Digest HmacKey::tag(std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b) const noexcept {
  Sha256 inner = inner_;
  inner.update(a);
  inner.update(b);
  const Digest inner_digest = inner.finalize();
  Sha256 outer = outer_;
  outer.update(inner_digest);
  return outer.finalize();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data) noexcept {
  return HmacKey(key).tag(data);
}

Digest hmac_sha256(const Key& key, std::span<const std::uint8_t> data) noexcept {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     data);
}

bool digest_equal(const Digest& a, const Digest& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

KeyStore::KeyStore(std::uint64_t master, std::size_t n) : n_(n) {
  DELPHI_ASSERT(n >= 1, "KeyStore needs at least one node");
  pair_keys_.resize(n * (n + 1) / 2);
  node_keys_.resize(n);

  const auto derive = [master](std::string_view label, std::uint64_t a,
                               std::uint64_t b) {
    ByteWriter w;
    w.u64(master);
    w.str(label);
    w.u64(a);
    w.u64(b);
    const Digest d = sha256(std::span<const std::uint8_t>(w.data()));
    Key k;
    std::copy(d.begin(), d.end(), k.begin());
    return k;
  };

  for (NodeId i = 0; i < n; ++i) {
    node_keys_[i] = derive("node", i, 0);
    for (NodeId j = i; j < n; ++j) {
      pair_keys_[pair_index(i, j)] = derive("pair", i, j);
    }
  }
}

std::size_t KeyStore::pair_index(NodeId i, NodeId j) const {
  if (i > j) std::swap(i, j);
  DELPHI_ASSERT(j < n_, "node id out of range");
  // Triangular index for i <= j.
  return static_cast<std::size_t>(i) * n_ -
         static_cast<std::size_t>(i) * (i + 1) / 2 + j;
}

const Key& KeyStore::channel_key(NodeId i, NodeId j) const {
  return pair_keys_[pair_index(i, j)];
}

const Key& KeyStore::node_key(NodeId i) const {
  DELPHI_ASSERT(i < n_, "node id out of range");
  return node_keys_[i];
}

}  // namespace delphi::crypto
