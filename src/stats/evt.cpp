#include "stats/evt.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace delphi::stats {

namespace {

/// Median via bisection on the CDF (robust for every family in the kit).
double median_of(const Distribution& dist) {
  double lo = -1.0, hi = 1.0;
  // Expand until the CDF brackets 0.5.
  for (int i = 0; i < 200 && dist.cdf(lo) > 0.5; ++i) lo *= 2.0;
  for (int i = 0; i < 200 && dist.cdf(hi) < 0.5; ++i) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (dist.cdf(mid) < 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double range_bound(const Distribution& dist, std::size_t n,
                   double lambda_bits) {
  DELPHI_ASSERT(n >= 1, "range_bound: n >= 1");
  const double target = std::exp2(-lambda_bits);
  const double m = median_of(dist);
  const auto nn = static_cast<double>(n);

  const auto tail_prob = [&](double delta) {
    const double upper = nn * (1.0 - dist.cdf(m + 0.5 * delta));
    const double lower = nn * dist.cdf(m - 0.5 * delta);
    return upper + lower;
  };

  double hi = 1.0;
  int guard = 0;
  while (tail_prob(hi) > target) {
    hi *= 2.0;
    if (++guard > 2000) {
      throw ConfigError("range_bound: tail too fat for requested lambda");
    }
  }
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (tail_prob(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double range_bound_normal(double sigma, std::size_t n, double lambda_bits) {
  DELPHI_ASSERT(sigma > 0.0 && n >= 2, "range_bound_normal domain");
  const double ln_n = std::log(static_cast<double>(n));
  const double sq = std::sqrt(2.0 * ln_n);
  // Classical normalizing constants for the normal maximum.
  const double b_n =
      sigma * (sq - (std::log(ln_n) + std::log(4.0 * M_PI)) / (2.0 * sq));
  const double a_n = sigma / sq;
  const double lambda_nats = lambda_bits * std::numbers::ln2;
  // Gumbel quantile at 1 - 2^-λ is ≈ λ ln 2 for large λ; the range doubles
  // the one-sided excursion.
  return 2.0 * (std::max(b_n, 0.0) + a_n * lambda_nats);
}

double range_bound_frechet(double alpha, double scale, std::size_t n,
                           double lambda_bits) {
  DELPHI_ASSERT(alpha > 0.0 && scale > 0.0 && n >= 1,
                "range_bound_frechet domain");
  // max of n Fréchet(alpha, s) is Fréchet(alpha, s * n^{1/alpha}); invert its
  // CDF at p = 1 - 2^-λ: x = s n^{1/α} (-ln p)^{-1/α}, and -ln p ≈ 2^-λ.
  const double p_tail = std::exp2(-lambda_bits);
  const double scale_n =
      scale * std::pow(static_cast<double>(n), 1.0 / alpha);
  // -ln(1 - p_tail) ≈ p_tail for small tails; guard against p_tail ~ 1.
  const double neg_log_p = -std::log1p(-std::min(p_tail, 0.999999));
  return scale_n * std::pow(neg_log_p, -1.0 / alpha);
}

double sample_range(const Distribution& dist, std::size_t n, Rng& rng) {
  DELPHI_ASSERT(n >= 1, "sample_range: n >= 1");
  double mn = dist.sample(rng);
  double mx = mn;
  for (std::size_t i = 1; i < n; ++i) {
    const double x = dist.sample(rng);
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  return mx - mn;
}

double empirical_range_quantile(const Distribution& dist, std::size_t n,
                                double q, std::size_t trials, Rng& rng) {
  DELPHI_ASSERT(trials >= 1, "empirical_range_quantile: trials >= 1");
  std::vector<double> ranges;
  ranges.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    ranges.push_back(sample_range(dist, n, rng));
  }
  return quantile(std::move(ranges), q);
}

}  // namespace delphi::stats
