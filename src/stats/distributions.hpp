#pragma once
/// \file distributions.hpp
/// Probability distributions used throughout the paper's analysis (§IV-D,
/// §VI): thin-tailed families (Normal, LogNormal, Gamma, Gumbel) and
/// fat-tailed families (Pareto, Fréchet, LogGamma).
///
/// Each distribution provides deterministic sampling on our Rng (never
/// std::*_distribution — see rng.hpp), a CDF (for Kolmogorov–Smirnov fitting
/// and EVT tail bounds), and its mean. All samplers are pure functions of the
/// RNG stream, so simulations replay bit-identically.

#include <memory>
#include <string>

#include "common/rng.hpp"

namespace delphi::stats {

/// Abstract distribution interface.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one sample.
  virtual double sample(Rng& rng) const = 0;

  /// Cumulative distribution function P(X <= x).
  virtual double cdf(double x) const = 0;

  /// Expected value (+inf if undefined for the parameters).
  virtual double mean() const = 0;

  /// Human-readable family name ("Normal", "Frechet", ...).
  virtual std::string name() const = 0;
};

/// Normal(mu, sigma). Sampling: polar Box–Muller on our Rng.
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override { return mu_; }
  std::string name() const override { return "Normal"; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
};

/// LogNormal: exp(Normal(mu, sigma)).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override;
  std::string name() const override { return "LogNormal"; }

 private:
  Normal base_;
  double mu_, sigma_;
};

/// Gamma(shape k, scale theta). Sampling: Marsaglia–Tsang squeeze method
/// (with the k < 1 boosting trick). CDF via regularized incomplete gamma.
class Gamma final : public Distribution {
 public:
  Gamma(double shape, double scale);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override { return shape_ * scale_; }
  std::string name() const override { return "Gamma"; }
  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

 private:
  double shape_, scale_;
};

/// Pareto(alpha, x_m): P(X > x) = (x_m / x)^alpha for x >= x_m.
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double xm);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override;
  std::string name() const override { return "Pareto"; }
  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_, xm_;
};

/// Fréchet(alpha, scale s, location m): CDF exp(-((x-m)/s)^-alpha).
/// This is the family the paper fits to the Bitcoin range data
/// (alpha = 4.41, s = 29.3, Fig 4).
class Frechet final : public Distribution {
 public:
  Frechet(double alpha, double scale, double loc = 0.0);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override;
  std::string name() const override { return "Frechet"; }
  double alpha() const noexcept { return alpha_; }
  double scale() const noexcept { return scale_; }
  double loc() const noexcept { return loc_; }
  /// Quantile (inverse CDF) — used for EVT tail bounds.
  double quantile(double p) const;

 private:
  double alpha_, scale_, loc_;
};

/// Gumbel(location mu, scale beta): CDF exp(-exp(-(x-mu)/beta)). The EVT
/// limit of maxima/ranges of thin-tailed samples (paper §IV-D).
class Gumbel final : public Distribution {
 public:
  Gumbel(double loc, double scale);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override;
  std::string name() const override { return "Gumbel"; }
  double loc() const noexcept { return loc_; }
  double scale() const noexcept { return scale_; }
  /// Quantile (inverse CDF).
  double quantile(double p) const;

 private:
  double loc_, scale_;
};

/// LogGamma: exp(Gamma(shape, scale)) — a fat-tailed family; the paper cites
/// it for cryptocurrency prices (tail index alpha = 1/scale).
class LogGamma final : public Distribution {
 public:
  LogGamma(double shape, double scale);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override;
  std::string name() const override { return "LogGamma"; }

 private:
  Gamma base_;
  double shape_, scale_;
};

/// Uniform(a, b) — handy for tests and adversarial workloads.
class Uniform final : public Distribution {
 public:
  Uniform(double a, double b);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double mean() const override { return 0.5 * (a_ + b_); }
  std::string name() const override { return "Uniform"; }

 private:
  double a_, b_;
};

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

}  // namespace delphi::stats
