#pragma once
/// \file evt.hpp
/// Extreme-value machinery for deriving Delphi's max-range parameter ∆.
///
/// The paper (§IV-D) assumes honest inputs are n iid samples from a known-ish
/// family and picks ∆ = f(n, λ) such that the realized range
/// δ = max - min exceeds ∆ only with probability ≤ 2^-λ:
///   * thin tails (Normal/Gamma): range → Gumbel, ∆ = O(λ log n)
///   * fat tails (Pareto/LogGamma, tail index α): range → Fréchet,
///     ∆ = O(e^λ n^{1/α})
/// We provide (a) a distribution-generic numeric bound via a union-bound
/// inversion of the CDF, (b) the Gumbel/Fréchet closed forms used in the
/// complexity table, and (c) a Monte-Carlo estimator for validation.

#include <cstddef>

#include "common/rng.hpp"
#include "stats/distributions.hpp"

namespace delphi::stats {

/// Generic tail bound: smallest ∆ such that
///   n * (1 - F(m + ∆/2)) + n * F(m - ∆/2) <= 2^-lambda_bits,
/// where m is the distribution's median. By the union bound over the n
/// samples' deviations from the median this implies P(range > ∆) <= 2^-λ.
/// Found by bisection on the CDF; works for every Distribution in the kit.
double range_bound(const Distribution& dist, std::size_t n, double lambda_bits);

/// Closed-form thin-tail bound for Normal(mu, sigma): the classical EVT
/// normalizing sequences give max_n ≈ Gumbel(b_n, a_n) with
/// b_n = sigma*sqrt(2 ln n) (minus the log-log correction) and
/// a_n = sigma / sqrt(2 ln n); the range bound at security λ is
/// 2*(b_n + a_n * λ ln 2). Grows as O(λ + log n) * O(sigma) — the paper's
/// ∆ = O(λ log n) envelope.
double range_bound_normal(double sigma, std::size_t n, double lambda_bits);

/// Closed-form fat-tail bound for tail index alpha (Pareto/Fréchet/LogGamma):
/// max_n ≈ Fréchet with scale ~ scale * n^{1/alpha}; inverting the Fréchet
/// CDF at 1 - 2^-λ gives ∆ ≈ scale * n^{1/alpha} * (λ ln 2)^{1/alpha} —
/// the paper's ∆ = O(e^λ n^{1/alpha}) envelope (their bound is looser).
double range_bound_frechet(double alpha, double scale, std::size_t n,
                           double lambda_bits);

/// Monte-Carlo estimate of the q-quantile of range(n) under `dist` using
/// `trials` simulated cohorts — used by tests to validate the analytic
/// bounds actually cover the realized ranges.
double empirical_range_quantile(const Distribution& dist, std::size_t n,
                                double q, std::size_t trials, Rng& rng);

/// Draw one cohort of n samples and return its range (max - min).
double sample_range(const Distribution& dist, std::size_t n, Rng& rng);

}  // namespace delphi::stats
