#pragma once
/// \file special.hpp
/// Special functions needed by the statistics toolkit: regularized incomplete
/// gamma (for the Gamma CDF used in Fig 5's fit) and digamma (for Gamma MLE).
/// Implementations follow the classic series / continued-fraction split.

namespace delphi::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
/// Accurate to ~1e-12 over the ranges used here.
double gamma_p(double a, double x);

/// Digamma function ψ(x) for x > 0 (recurrence + asymptotic expansion).
double digamma(double x);

/// Euler–Mascheroni constant.
inline constexpr double kEulerGamma = 0.5772156649015328606;

}  // namespace delphi::stats
