#include "stats/distributions.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace delphi::stats {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// ---------------------------------------------------------------- Normal --

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw ConfigError("Normal: sigma must be > 0");
}

double Normal::sample(Rng& rng) const {
  // Polar Box–Muller; we deliberately discard the second variate to keep the
  // sampler stateless (bit-exact replay does not depend on call pairing).
  for (;;) {
    const double u = 2.0 * rng.uniform() - 1.0;
    const double v = 2.0 * rng.uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mu_ + sigma_ * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Normal::cdf(double x) const { return normal_cdf((x - mu_) / sigma_); }

// ------------------------------------------------------------- LogNormal --

LogNormal::LogNormal(double mu, double sigma)
    : base_(mu, sigma), mu_(mu), sigma_(sigma) {}

double LogNormal::sample(Rng& rng) const { return std::exp(base_.sample(rng)); }

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return base_.cdf(std::log(x));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

// ----------------------------------------------------------------- Gamma --

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw ConfigError("Gamma: shape and scale must be > 0");
  }
}

double Gamma::sample(Rng& rng) const {
  // Marsaglia–Tsang. For k < 1 sample Gamma(k + 1) and boost by U^(1/k).
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.uniform_pos(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  Normal std_normal(0.0, 1.0);
  for (;;) {
    const double x = std_normal.sample(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform_pos();
    if (u < 1.0 - 0.0331 * x * x * x * x ||
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return gamma_p(shape_, x / scale_);
}

// ---------------------------------------------------------------- Pareto --

Pareto::Pareto(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  if (!(alpha > 0.0) || !(xm > 0.0)) {
    throw ConfigError("Pareto: alpha and xm must be > 0");
  }
}

double Pareto::sample(Rng& rng) const {
  return xm_ / std::pow(rng.uniform_pos(), 1.0 / alpha_);
}

double Pareto::cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

// --------------------------------------------------------------- Frechet --

Frechet::Frechet(double alpha, double scale, double loc)
    : alpha_(alpha), scale_(scale), loc_(loc) {
  if (!(alpha > 0.0) || !(scale > 0.0)) {
    throw ConfigError("Frechet: alpha and scale must be > 0");
  }
}

double Frechet::sample(Rng& rng) const {
  // Inverse CDF: x = m + s * (-ln U)^(-1/alpha).
  return loc_ + scale_ * std::pow(-std::log(rng.uniform_pos()), -1.0 / alpha_);
}

double Frechet::cdf(double x) const {
  if (x <= loc_) return 0.0;
  return std::exp(-std::pow((x - loc_) / scale_, -alpha_));
}

double Frechet::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return loc_ + scale_ * std::tgamma(1.0 - 1.0 / alpha_);
}

double Frechet::quantile(double p) const {
  DELPHI_ASSERT(p > 0.0 && p < 1.0, "Frechet quantile domain");
  return loc_ + scale_ * std::pow(-std::log(p), -1.0 / alpha_);
}

// ---------------------------------------------------------------- Gumbel --

Gumbel::Gumbel(double loc, double scale) : loc_(loc), scale_(scale) {
  if (!(scale > 0.0)) throw ConfigError("Gumbel: scale must be > 0");
}

double Gumbel::sample(Rng& rng) const {
  return loc_ - scale_ * std::log(-std::log(rng.uniform_pos()));
}

double Gumbel::cdf(double x) const {
  return std::exp(-std::exp(-(x - loc_) / scale_));
}

double Gumbel::mean() const { return loc_ + scale_ * kEulerGamma; }

double Gumbel::quantile(double p) const {
  DELPHI_ASSERT(p > 0.0 && p < 1.0, "Gumbel quantile domain");
  return loc_ - scale_ * std::log(-std::log(p));
}

// -------------------------------------------------------------- LogGamma --

LogGamma::LogGamma(double shape, double scale)
    : base_(shape, scale), shape_(shape), scale_(scale) {}

double LogGamma::sample(Rng& rng) const { return std::exp(base_.sample(rng)); }

double LogGamma::cdf(double x) const {
  if (x <= 1.0) return 0.0;  // exp(Gamma) >= exp(0) = 1
  return base_.cdf(std::log(x));
}

double LogGamma::mean() const {
  // E[exp(G)] = (1 - scale)^(-shape) for scale < 1 (Gamma MGF at t = 1).
  if (scale_ >= 1.0) return std::numeric_limits<double>::infinity();
  return std::pow(1.0 - scale_, -shape_);
}

// --------------------------------------------------------------- Uniform --

Uniform::Uniform(double a, double b) : a_(a), b_(b) {
  if (!(b > a)) throw ConfigError("Uniform: need b > a");
}

double Uniform::sample(Rng& rng) const { return rng.uniform(a_, b_); }

double Uniform::cdf(double x) const {
  if (x <= a_) return 0.0;
  if (x >= b_) return 1.0;
  return (x - a_) / (b_ - a_);
}

}  // namespace delphi::stats
