#pragma once
/// \file fit.hpp
/// Distribution fitting and goodness-of-fit, reproducing the paper's data
/// analysis: Fig 4 fits Fréchet/Gumbel to Bitcoin range data (Fréchet wins,
/// alpha = 4.41, scale = 29.3); Fig 5 fits Gamma/Fréchet to IoU data (Gamma
/// wins). We provide method-of-moments / MLE fitters for those families and
/// the Kolmogorov–Smirnov statistic to rank candidate fits.

#include <memory>
#include <string>
#include <vector>

#include "stats/distributions.hpp"

namespace delphi::stats {

/// Fit Normal by sample moments.
Normal fit_normal(const std::vector<double>& xs);

/// Fit Gumbel by method of moments: beta = s*sqrt(6)/pi, mu = mean - gamma*beta.
Gumbel fit_gumbel(const std::vector<double>& xs);

/// Fit Fréchet (location fixed at 0) via the log transform: if X ~
/// Fréchet(alpha, s) then ln X ~ Gumbel(ln s, 1/alpha). Requires positive
/// data; non-positive entries are dropped.
Frechet fit_frechet(const std::vector<double>& xs);

/// Fit Gamma: moment start (k = mean^2/var) refined by Newton iterations on
/// the MLE equation ln k - psi(k) = ln(mean) - mean(ln x).
Gamma fit_gamma(const std::vector<double>& xs);

/// Kolmogorov–Smirnov statistic sup_x |F_n(x) - F(x)| of `xs` against `dist`.
double ks_statistic(std::vector<double> xs, const Distribution& dist);

/// One fitted candidate with its KS score.
struct FitResult {
  std::string family;
  std::shared_ptr<Distribution> dist;
  double ks = 1.0;
};

/// Fit every family in `families` (subset of "Normal", "Gumbel", "Frechet",
/// "Gamma") to the data, score each by KS, and return results sorted
/// best-first. This is exactly the paper's "we fit various probability
/// distributions and observe X to be the best fit" methodology.
std::vector<FitResult> best_fit(const std::vector<double>& xs,
                                const std::vector<std::string>& families);

}  // namespace delphi::stats
