#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/error.hpp"

namespace delphi::stats {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(xs.size() - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

double quantile(std::vector<double> xs, double q) {
  DELPHI_ASSERT(!xs.empty(), "quantile of empty sample");
  DELPHI_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= xs.size()) return xs.back();
  return xs[idx] * (1.0 - frac) + xs[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw ConfigError("Histogram: bad range/bins");
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / bin_width_));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram::bin_left(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::fraction_below(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_left(b) + bin_width_ <= x) {
      below += counts_[b];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "[" << bin_left(b) << ", " << (bin_left(b) + bin_width_) << ")";
    os << "\t" << counts_[b] << "\t" << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace delphi::stats
