#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"

namespace delphi::stats {

Normal fit_normal(const std::vector<double>& xs) {
  const Summary s = summarize(xs);
  DELPHI_ASSERT(s.count >= 2, "fit_normal needs >= 2 samples");
  return Normal(s.mean, std::max(s.stddev, 1e-12));
}

Gumbel fit_gumbel(const std::vector<double>& xs) {
  const Summary s = summarize(xs);
  DELPHI_ASSERT(s.count >= 2, "fit_gumbel needs >= 2 samples");
  const double beta = std::max(s.stddev * std::numbers::sqrt2 * std::sqrt(3.0) /
                                   std::numbers::pi,
                               1e-12);
  const double mu = s.mean - kEulerGamma * beta;
  return Gumbel(mu, beta);
}

Frechet fit_frechet(const std::vector<double>& xs) {
  std::vector<double> logs;
  logs.reserve(xs.size());
  for (double x : xs) {
    if (x > 0.0) logs.push_back(std::log(x));
  }
  DELPHI_ASSERT(logs.size() >= 2, "fit_frechet needs >= 2 positive samples");
  const Gumbel g = fit_gumbel(logs);
  const double alpha = 1.0 / g.scale();
  const double scale = std::exp(g.loc());
  return Frechet(alpha, scale);
}

Gamma fit_gamma(const std::vector<double>& xs) {
  const Summary s = summarize(xs);
  DELPHI_ASSERT(s.count >= 2, "fit_gamma needs >= 2 samples");
  DELPHI_ASSERT(s.mean > 0.0, "fit_gamma needs positive data");

  // Method-of-moments start.
  double k = s.variance > 0.0 ? s.mean * s.mean / s.variance : 1.0;
  k = std::clamp(k, 1e-3, 1e6);

  // MLE refinement: solve ln k - psi(k) = c where c = ln(mean) - mean(ln x).
  double mean_log = 0.0;
  std::size_t pos = 0;
  for (double x : xs) {
    if (x > 0.0) {
      mean_log += std::log(x);
      ++pos;
    }
  }
  if (pos == xs.size() && pos > 0) {
    mean_log /= static_cast<double>(pos);
    const double c = std::log(s.mean) - mean_log;
    if (c > 1e-12) {
      for (int it = 0; it < 50; ++it) {
        const double f = std::log(k) - digamma(k) - c;
        // d/dk (ln k - psi(k)) = 1/k - psi'(k); approximate psi' numerically.
        const double h = std::max(1e-6 * k, 1e-9);
        const double dpsi = (digamma(k + h) - digamma(k - h)) / (2.0 * h);
        const double fp = 1.0 / k - dpsi;
        if (std::fabs(fp) < 1e-18) break;
        const double next = k - f / fp;
        if (!(next > 0.0) || std::fabs(next - k) < 1e-12 * k) {
          if (next > 0.0) k = next;
          break;
        }
        k = next;
      }
    }
  }
  const double theta = s.mean / k;
  return Gamma(k, std::max(theta, 1e-12));
}

double ks_statistic(std::vector<double> xs, const Distribution& dist) {
  DELPHI_ASSERT(!xs.empty(), "ks_statistic on empty sample");
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = dist.cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return d;
}

std::vector<FitResult> best_fit(const std::vector<double>& xs,
                                const std::vector<std::string>& families) {
  std::vector<FitResult> results;
  for (const auto& fam : families) {
    FitResult r;
    r.family = fam;
    try {
      if (fam == "Normal") {
        r.dist = std::make_shared<Normal>(fit_normal(xs));
      } else if (fam == "Gumbel") {
        r.dist = std::make_shared<Gumbel>(fit_gumbel(xs));
      } else if (fam == "Frechet") {
        r.dist = std::make_shared<Frechet>(fit_frechet(xs));
      } else if (fam == "Gamma") {
        r.dist = std::make_shared<Gamma>(fit_gamma(xs));
      } else {
        throw ConfigError("best_fit: unknown family " + fam);
      }
      r.ks = ks_statistic(xs, *r.dist);
    } catch (const Error&) {
      continue;  // family not fittable on this data (e.g. negative values)
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) { return a.ks < b.ks; });
  return results;
}

}  // namespace delphi::stats
