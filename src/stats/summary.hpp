#pragma once
/// \file summary.hpp
/// Descriptive statistics and histograms.

#include <cstddef>
#include <string>
#include <vector>

namespace delphi::stats {

/// Basic moments / extremes of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Range max - min (the paper's δ when applied to honest inputs).
  double range() const noexcept { return max - min; }
};

/// Compute Summary of a sample (empty input yields a zeroed Summary).
Summary summarize(const std::vector<double>& xs);

/// Empirical quantile with linear interpolation; q in [0, 1].
/// Sorts a copy; fine for the data sizes used here.
double quantile(std::vector<double> xs, double q);

/// Fixed-width histogram over [lo, hi) with anything outside clamped into the
/// first/last bin — mirrors how the paper buckets its Fig 4 / Fig 5 data.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one observation.
  void add(double x);

  /// Add many observations.
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }

  /// Center value of a bin.
  double bin_center(std::size_t bin) const;

  /// Left edge of a bin.
  double bin_left(std::size_t bin) const;

  /// Fraction of observations strictly below x (piecewise from bins).
  double fraction_below(double x) const;

  /// Render as an ASCII bar chart (used by the figure benches to print the
  /// same picture the paper plots).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace delphi::stats
