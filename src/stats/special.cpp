#include "stats/special.hpp"

#include <cmath>

#include "common/error.hpp"

namespace delphi::stats {

namespace {

/// Series expansion of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x); converges for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  DELPHI_ASSERT(a > 0.0 && x >= 0.0, "gamma_p domain");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double digamma(double x) {
  DELPHI_ASSERT(x > 0.0, "digamma domain");
  double result = 0.0;
  // Recurrence ψ(x) = ψ(x + 1) - 1/x until x is large enough for the
  // asymptotic series.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // ψ(x) ≈ ln x - 1/(2x) - 1/(12x²) + 1/(120x⁴) - 1/(252x⁶)
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

}  // namespace delphi::stats
