#pragma once
/// \file adversary.hpp
/// Network-level adversary: the asynchronous model lets the adversary delay
/// and reorder (but not drop) every message between honest nodes. These
/// strategies perturb delivery on top of the base latency model; protocol
/// correctness tests run under each of them.

#include <cstdint>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delphi::sim {

/// Extra-delay policy applied to every message (0 = deliver on schedule).
class NetworkAdversary {
 public:
  virtual ~NetworkAdversary() = default;

  /// Additional delay in µs for a message from -> to sent at `at`.
  /// Must be finite (the model forbids message drops).
  virtual SimTime extra_delay(NodeId from, NodeId to, SimTime at,
                              Rng& rng) = 0;
};

/// Benign network: no interference.
class NoAdversary final : public NetworkAdversary {
 public:
  SimTime extra_delay(NodeId, NodeId, SimTime, Rng&) override { return 0; }
};

/// Adds uniform random delay in [0, max_extra] to every message — a cheap,
/// aggressive reordering adversary (later messages routinely overtake earlier
/// ones once max_extra exceeds the base latency spread).
class RandomDelayAdversary final : public NetworkAdversary {
 public:
  explicit RandomDelayAdversary(SimTime max_extra);
  SimTime extra_delay(NodeId from, NodeId to, SimTime at, Rng& rng) override;

 private:
  SimTime max_extra_;
};

/// Delays every message *from or to* a victim set by a fixed amount —
/// simulates the adversary isolating a subset of honest nodes for a while.
/// Victims are slow but not partitioned (asynchrony, not crash).
class TargetedLagAdversary final : public NetworkAdversary {
 public:
  TargetedLagAdversary(std::set<NodeId> victims, SimTime lag);
  SimTime extra_delay(NodeId from, NodeId to, SimTime at, Rng& rng) override;

 private:
  std::set<NodeId> victims_;
  SimTime lag_;
};

/// Temporary partition: until `heal_at`, all traffic crossing the cut between
/// `group_a` and its complement is held back so it arrives only after the
/// partition heals (plus jitter, so arrivals don't collapse to one instant).
/// Asynchronous protocols must ride this out — no quorum spans the cut until
/// the heal.
class PartitionAdversary final : public NetworkAdversary {
 public:
  PartitionAdversary(std::set<NodeId> group_a, SimTime heal_at,
                     SimTime jitter = 10'000);
  SimTime extra_delay(NodeId from, NodeId to, SimTime at, Rng& rng) override;

 private:
  std::set<NodeId> group_a_;
  SimTime heal_at_;
  SimTime jitter_;
};

/// Release messages in bursts: every message is held to the end of its
/// `period`-sized window, and messages sent *early* in a window are held
/// longer, so within a burst later sends overtake earlier ones (worst-case
/// reordering pressure for FIFO-free protocol logic).
class BurstReorderAdversary final : public NetworkAdversary {
 public:
  explicit BurstReorderAdversary(SimTime period);
  SimTime extra_delay(NodeId from, NodeId to, SimTime at, Rng& rng) override;

 private:
  SimTime period_;
};

}  // namespace delphi::sim
