#include "sim/adversary.hpp"

#include "common/error.hpp"

namespace delphi::sim {

RandomDelayAdversary::RandomDelayAdversary(SimTime max_extra)
    : max_extra_(max_extra) {
  if (max_extra < 0) throw ConfigError("RandomDelayAdversary: negative delay");
}

SimTime RandomDelayAdversary::extra_delay(NodeId, NodeId, SimTime, Rng& rng) {
  return rng.range(0, max_extra_);
}

TargetedLagAdversary::TargetedLagAdversary(std::set<NodeId> victims,
                                           SimTime lag)
    : victims_(std::move(victims)), lag_(lag) {
  if (lag < 0) throw ConfigError("TargetedLagAdversary: negative lag");
}

SimTime TargetedLagAdversary::extra_delay(NodeId from, NodeId to, SimTime,
                                          Rng&) {
  if (victims_.contains(from) || victims_.contains(to)) return lag_;
  return 0;
}

PartitionAdversary::PartitionAdversary(std::set<NodeId> group_a,
                                       SimTime heal_at, SimTime jitter)
    : group_a_(std::move(group_a)), heal_at_(heal_at), jitter_(jitter) {
  if (heal_at < 0) throw ConfigError("PartitionAdversary: negative heal time");
  if (jitter < 0) throw ConfigError("PartitionAdversary: negative jitter");
}

SimTime PartitionAdversary::extra_delay(NodeId from, NodeId to, SimTime at,
                                        Rng& rng) {
  if (at >= heal_at_) return 0;
  const bool from_a = group_a_.contains(from);
  const bool to_a = group_a_.contains(to);
  if (from_a == to_a) return 0;  // same side of the cut
  return (heal_at_ - at) + rng.range(0, jitter_);
}

BurstReorderAdversary::BurstReorderAdversary(SimTime period)
    : period_(period) {
  if (period <= 0) throw ConfigError("BurstReorderAdversary: period must be > 0");
}

SimTime BurstReorderAdversary::extra_delay(NodeId, NodeId, SimTime at,
                                           Rng& rng) {
  const SimTime into_window = at % period_;
  const SimTime to_boundary = period_ - into_window;
  // Earlier sends get held longer past the boundary → LIFO-ish bursts.
  return to_boundary + (period_ - into_window) / 2 + rng.range(0, period_ / 4);
}

}  // namespace delphi::sim
