#include "sim/latency.hpp"

#include <array>

#include "common/error.hpp"

namespace delphi::sim {

UniformLatency::UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
  if (lo < 0 || hi < lo) throw ConfigError("UniformLatency: bad bounds");
}

SimTime UniformLatency::delay(NodeId, NodeId, Rng& rng) const {
  return rng.range(lo_, hi_);
}

namespace {
/// One-way delays in milliseconds between the 8 evaluation regions, shaped
/// after public inter-region RTT measurements (half-RTT). Order:
/// 0 us-east-1 (N. Virginia), 1 us-east-2 (Ohio), 2 us-west-1 (N. California),
/// 3 us-west-2 (Oregon), 4 ca-central-1 (Canada), 5 eu-west-1 (Ireland),
/// 6 ap-southeast-1 (Singapore), 7 ap-northeast-1 (Tokyo).
constexpr std::array<std::array<double, 8>, 8> kOneWayMs = {{
    //  VA     OH     CA     OR    CAN    IRE    SGP    TYO
    {{1.0,   6.0,  32.0,  38.0,   8.0,  38.0, 110.0,  75.0}},  // VA
    {{6.0,   1.0,  25.0,  35.0,  13.0,  43.0, 105.0,  80.0}},  // OH
    {{32.0, 25.0,   1.0,  11.0,  40.0,  70.0,  85.0,  55.0}},  // CA
    {{38.0, 35.0,  11.0,   1.0,  30.0,  62.0,  82.0,  48.0}},  // OR
    {{8.0,  13.0,  40.0,  30.0,   1.0,  35.0, 110.0,  75.0}},  // CAN
    {{38.0, 43.0,  70.0,  62.0,  35.0,   1.0,  90.0, 105.0}},  // IRE
    {{110.0,105.0, 85.0,  82.0, 110.0,  90.0,   1.0,  35.0}},  // SGP
    {{75.0, 80.0,  55.0,  48.0,  75.0, 105.0,  35.0,   1.0}},  // TYO
}};
}  // namespace

AwsGeoLatency::AwsGeoLatency(std::size_t n) : n_(n) {
  DELPHI_ASSERT(n >= 1, "AwsGeoLatency: n >= 1");
  region_.resize(n_);
  for (std::size_t node = 0; node < n_; ++node) {
    // The paper distributes nodes equally across the 8 regions.
    region_[node] = static_cast<std::uint8_t>(node % kRegions);
  }
}

std::size_t AwsGeoLatency::region_of(NodeId node) const {
  DELPHI_ASSERT(node < n_, "AwsGeoLatency: node out of range");
  return region_[node];
}

SimTime AwsGeoLatency::delay(NodeId from, NodeId to, Rng& rng) const {
  DELPHI_ASSERT(from < n_ && to < n_, "AwsGeoLatency: node out of range");
  const double base_ms = kOneWayMs[region_[from]][region_[to]];
  // ±20 % multiplicative jitter models routing/queueing variability.
  const double jitter = rng.uniform(0.8, 1.2);
  return static_cast<SimTime>(base_ms * jitter * 1000.0);
}

SimTime CpsLanLatency::delay(NodeId, NodeId, Rng& rng) const {
  return rng.range(300, 1200);
}

}  // namespace delphi::sim
