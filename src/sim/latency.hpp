#pragma once
/// \file latency.hpp
/// Network latency models for the two testbeds the paper evaluates on.
///
/// * AwsGeoLatency — 8 AWS regions (N. Virginia, Ohio, N. California, Oregon,
///   Canada, Ireland, Singapore, Tokyo; §VI-C), nodes assigned round-robin,
///   one-way delays from a public-RTT-shaped matrix plus multiplicative
///   jitter. WAN latency dominates here, which is why Delphi's higher round
///   count hurts it at small n (Fig 6a).
/// * CpsLanLatency — Raspberry-Pi devices behind one switch: sub-millisecond
///   base delay with jitter. Latency is negligible; bandwidth and CPU
///   dominate (Fig 6c / Fig 7 right panel).
/// * UniformLatency — plain asynchronous-network model for unit tests.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delphi::sim {

/// One-way message delay source. Implementations must return values >= 0;
/// they may be random but must draw only from the supplied Rng (determinism).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delay in microseconds for a message from -> to injected now.
  virtual SimTime delay(NodeId from, NodeId to, Rng& rng) const = 0;
};

/// Uniform delay in [lo, hi] µs between every pair.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi);
  SimTime delay(NodeId from, NodeId to, Rng& rng) const override;

 private:
  SimTime lo_, hi_;
};

/// Geo-distributed AWS model: 8 regions, round-robin placement, matrix of
/// one-way delays, ±20 % multiplicative jitter.
///
/// The constructor precomputes each node's region, so the per-message hot
/// path is two byte loads into the L1-resident 8×8 base matrix plus the
/// jitter draw — same doubles as the modulo-based lookup, so the delay
/// stream is bit-identical.
class AwsGeoLatency final : public LatencyModel {
 public:
  /// \param n  number of nodes (for region assignment).
  explicit AwsGeoLatency(std::size_t n);

  SimTime delay(NodeId from, NodeId to, Rng& rng) const override;

  /// Region index (0..7) a node lives in.
  std::size_t region_of(NodeId node) const;

  /// Number of regions in the model.
  static constexpr std::size_t kRegions = 8;

 private:
  std::size_t n_;
  std::vector<std::uint8_t> region_;  ///< precomputed region per node
};

/// Single-switch LAN: uniform base in [300, 1200] µs.
class CpsLanLatency final : public LatencyModel {
 public:
  CpsLanLatency() = default;
  SimTime delay(NodeId from, NodeId to, Rng& rng) const override;
};

}  // namespace delphi::sim
