#pragma once
/// \file simulator.hpp
/// Deterministic discrete-event simulator of an asynchronous message-passing
/// system — the stand-in for the paper's AWS and Raspberry-Pi testbeds (see
/// DESIGN.md substitutions).
///
/// The model captures the three resources that drive the paper's results:
///   1. *Latency*  — per-pair one-way delay from a LatencyModel, plus a
///      NetworkAdversary that may add arbitrary finite delay (asynchrony).
///   2. *Bandwidth* — each node has one uplink; outgoing frames serialize at
///      `uplink_bytes_per_us` (per-round volume matters on CPS, Fig 7).
///   3. *CPU* — nodes process messages serially; receive/send/crypto costs
///      extend a busy-until clock (FIN's coins are expensive here).
///
/// Same SimConfig + same protocols ⇒ bit-identical run (all randomness flows
/// from one seed; the event queue breaks time ties by sequence number).
///
/// Engine internals (the hot path the CPS benches live in):
///   * Events are split into a 24-byte heap key (time, seq, arena slot) and a
///     payload *frame* (sender, channel, message pointer) that lives in a
///     slab arena with a free list. The scheduler is a hand-rolled indexed
///     4-ary min-heap over the keys — sift operations move small POD keys
///     instead of 56-byte events carrying shared_ptrs, and frames are written
///     once and read once regardless of heap depth.
///   * The pop order equals the old std::priority_queue's exactly: (time,
///     seq) pairs are unique, so any correct heap yields the same total
///     order. tests/golden_metrics_test.cpp pins this bit-for-bit.
///   * Frames queued behind a busy uplink never enter the heap: each sender
///     keeps its uplink backlog in a flat FIFO (departure order is monotone)
///     and only the head frame is represented in the heap, as a *departure
///     marker* carrying the frame's own (time, seq) with time = departure <=
///     arrival. When the marker pops, the real arrival event is inserted.
///     Because the marker reuses the frame's sequence number and departure <=
///     arrival, every other event keeps its exact relative pop position —
///     the heap shrinks from "every queued frame" to "frames in the air",
///     orders of magnitude on bandwidth-bound (CPS) workloads. Latency and
///     adversary delays are still drawn at send time, in send order, so the
///     RNG stream is untouched.
///   * Arena and heap growth beyond SimConfig::max_in_flight raises
///     common ResourceExhausted (a typed delphi::Error) instead of
///     std::bad_alloc, so pathological adversary schedules fail loudly.
///   * Aggregate SimMetrics totals are folded from per-node counters when
///     run() returns (batched); the per-delivery path touches only node-local
///     counters.

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fifo.hpp"
#include "net/message.hpp"
#include "net/protocol.hpp"
#include "sim/adversary.hpp"
#include "sim/latency.hpp"

namespace delphi::sim {

/// CPU and bandwidth cost model. All costs in µs (fractions accumulate in
/// double and round when applied).
struct CostModel {
  /// Uplink throughput in bytes per µs (12.5 B/µs == 100 Mbit/s).
  double uplink_bytes_per_us = 1e9;
  /// Fixed CPU cost to send one message (syscall + MAC).
  double per_msg_send_us = 0.0;
  /// Fixed CPU cost to receive one message (syscall + MAC verify).
  double per_msg_recv_us = 0.0;
  /// CPU cost per payload byte (hashing / copying), applied on send and recv.
  double per_byte_cpu_us = 0.0;

  /// Essentially-free model for unit tests (pure asynchrony semantics).
  static CostModel fast();
  /// Shaped after t2.micro instances on a WAN (latency-dominated).
  static CostModel aws();
  /// Shaped after Raspberry Pi 4 processes sharing a switch (bandwidth- and
  /// CPU-dominated).
  static CostModel cps();
};

/// Simulation deployment parameters.
struct SimConfig {
  std::size_t n = 4;
  std::uint64_t seed = 1;
  std::shared_ptr<LatencyModel> latency;        ///< default Uniform[100µs,10ms]
  std::shared_ptr<NetworkAdversary> adversary;  ///< default NoAdversary
  CostModel cost = CostModel::fast();
  /// Add 32-byte HMAC tags to every frame (the paper's authenticated
  /// channels). Affects bytes and CPU, not protocol logic.
  bool auth_channels = true;
  /// Deliver per-link messages in send order (sequence numbers + reorder
  /// buffer). Costs a few bytes per frame. Required by BinAA's compact codec.
  bool fifo_links = false;
  /// One deterministic restart: deliveries (including the start event and
  /// self-deliveries) destined to node `id` during [down_us, up_us) are
  /// deferred to up_us — the pure-delay restart model of the scenario churn
  /// plane (sound under asynchrony: a restart is indistinguishable from the
  /// network delaying everything addressed to the node). Windows for one
  /// node must be disjoint. Empty schedule = the exact pre-churn event
  /// order, bit for bit.
  struct ChurnWindow {
    NodeId id = 0;
    SimTime down_us = 0;
    SimTime up_us = 0;
  };
  std::vector<ChurnWindow> churn;
  /// Safety valve: abort the run after this many deliveries.
  std::size_t max_events = 400'000'000;
  /// Cap on *simultaneously in-flight* events (event arena + heap size).
  /// Exceeding it — e.g. an adversary schedule that withholds everything —
  /// raises ResourceExhausted instead of exhausting memory / std::bad_alloc.
  std::size_t max_in_flight = 50'000'000;
};

/// Per-node traffic/termination metrics.
struct NodeMetrics {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t malformed_dropped = 0;
  /// Churn plane: network frames addressed to this node while it was dark,
  /// deferred to its restart time (the simulator's catch-up traffic; zero
  /// without a churn schedule). Bytes are framed wire bytes — already part
  /// of the sender's bytes_sent, so never added to honest totals.
  std::uint64_t deferred_frames = 0;
  std::uint64_t deferred_bytes = 0;
  /// Time the node's protocol first reported terminated(); -1 if never.
  SimTime terminated_at = -1;
};

/// Whole-run metrics. total_msgs / total_bytes are folded from the per-node
/// counters when run() returns (batched accounting — the delivery hot path
/// never touches these).
struct SimMetrics {
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events_processed = 0;
  /// Max termination time over honest nodes; -1 if some honest node never
  /// terminated.
  SimTime honest_completion = -1;
  bool all_honest_terminated = false;
};

/// Traffic totals split honest/Byzantine, aggregated in one post-run pass —
/// the batched path harnesses and benches use instead of per-node loops.
struct TrafficTotals {
  std::uint64_t honest_msgs = 0;
  std::uint64_t honest_bytes = 0;
  std::uint64_t byzantine_msgs = 0;
  std::uint64_t byzantine_bytes = 0;
};

/// The simulator. Usage:
///   Simulator sim(cfg);
///   for (i in 0..n) sim.add_node(make_protocol(i));
///   sim.set_byzantine({...});           // optional
///   sim.run();
///   auto& m = sim.metrics();
class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  /// Install node i's protocol (call exactly n times, in node order).
  void add_node(std::unique_ptr<net::Protocol> protocol);

  /// Declare which node ids are Byzantine (their termination is not awaited
  /// and their traffic is reported separately by honest/total split).
  void set_byzantine(std::set<NodeId> ids);

  /// Execute until every honest node terminates, the event queue drains, or
  /// max_events fires. Returns true iff all honest nodes terminated. Raises
  /// ResourceExhausted if more than cfg.max_in_flight events are ever in
  /// flight at once (the run is unusable afterwards).
  bool run();

  /// Access a node's protocol (e.g. to read outputs after run()).
  net::Protocol& node(NodeId id);
  const net::Protocol& node(NodeId id) const;

  /// Typed access helper.
  template <typename T>
  T& node_as(NodeId id) {
    auto* p = dynamic_cast<T*>(&node(id));
    DELPHI_ASSERT(p != nullptr, "node_as: wrong protocol type");
    return *p;
  }

  const NodeMetrics& node_metrics(NodeId id) const;
  const SimMetrics& metrics() const noexcept { return metrics_; }
  /// Batched honest/Byzantine traffic split (valid after run()).
  TrafficTotals traffic_totals() const;
  const SimConfig& config() const noexcept { return cfg_; }
  const std::set<NodeId>& byzantine() const noexcept { return byzantine_; }
  bool is_byzantine(NodeId id) const { return byzantine_.contains(id); }

  /// Current simulated time (max event time processed so far).
  SimTime now() const noexcept { return now_; }

 private:
  /// Payload of one scheduled event, stored in the slab arena. msg == nullptr
  /// marks a node's start event. Exactly one (aligned) half cache line; the
  /// channel rides in the heap entry instead, which has the padding to spare.
  struct alignas(32) Frame {
    net::MessagePtr msg;
    std::uint64_t fifo_seq = 0;
    NodeId to = 0;
    NodeId from = 0;
  };

  /// Indexed-heap key: ordering fields plus the arena slot of the payload
  /// and the frame's channel (packed into what would otherwise be padding).
  /// In the marker heap the "slot" field holds the sender's node id instead
  /// (see file header).
  struct HeapEntry {
    SimTime at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among equal times
    std::uint32_t slot = 0;
    std::uint32_t channel = 0;
  };
  /// Upper bound on arena slots (and therefore max_in_flight).
  static constexpr std::uint32_t kMaxSlots = 0x8000'0000u;

  /// One frame waiting on a sender's uplink; arrival/seq/delays were fixed
  /// at send time (so the RNG draw order matches eager scheduling exactly).
  /// The message payload rides *in the ring* — an arena slot is only
  /// allocated when the frame actually departs, which keeps the arena at
  /// "frames in the air" size (cache-hot) no matter how deep uplink backlogs
  /// grow, and turns backlog memory traffic sequential.
  struct PendingDeparture {
    SimTime departure = 0;
    SimTime arrival = 0;
    std::uint64_t seq = 0;
    net::MessagePtr msg;
    std::uint64_t fifo_seq = 0;
    NodeId to = 0;
    std::uint32_t channel = 0;
  };

  /// Flat power-of-two ring of a sender's queued departures (push_back /
  /// pop_front only; departure times are monotone by construction).
  class UplinkFifo {
   public:
    bool empty() const noexcept { return count_ == 0; }
    PendingDeparture& front() noexcept { return buf_[head_]; }
    const PendingDeparture& front() const noexcept { return buf_[head_]; }
    void pop_front() noexcept {
      head_ = (head_ + 1) & (buf_.size() - 1);
      --count_;
    }
    void push_back(PendingDeparture&& d) {
      if (count_ == buf_.size()) grow();
      buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(d);
      ++count_;
    }

   private:
    void grow() {
      std::vector<PendingDeparture> grown(buf_.empty() ? 16 : 2 * buf_.size());
      for (std::size_t i = 0; i < count_; ++i) {
        grown[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
      }
      buf_ = std::move(grown);
      head_ = 0;
    }
    std::vector<PendingDeparture> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct Outgoing {
    NodeId to;
    std::uint32_t channel;
    net::MessagePtr msg;
  };

  class NodeContext;  // implements net::Context

  struct NodeState {
    std::unique_ptr<net::Protocol> protocol;
    Rng rng{0};
    /// CPU is busy (receiving/sending/crypto) until this time.
    SimTime busy_until = 0;
    /// Uplink is serializing earlier frames until this time.
    SimTime uplink_free = 0;
    NodeMetrics metrics;
    bool terminated_recorded = false;
    /// Frames serializing on (or queued behind) this node's uplink, in
    /// departure order; only the head is in the event heap.
    UplinkFifo uplink_queue;
    /// Pending self-deliveries (loopbacks run at the node's CPU clock, which
    /// can be far ahead of simulated now on CPU-saturated workloads). Their
    /// per-node delivery times are monotone, so only the earliest is kept in
    /// the heap; the rest wait here. loopback_armed tracks whether a
    /// loopback event for this node is currently in the heap.
    UplinkFifo loopback_queue;
    bool loopback_armed = false;
    /// Sender-side FIFO sequence numbers (when fifo_links).
    std::vector<std::uint64_t> fifo_next_seq;
    /// Receiver-side reorder buffers of (channel << 32 | arena slot),
    /// indexed by sender (when fifo_links).
    std::vector<net::FifoReorderBuffer<std::uint64_t>> fifo_in;
  };

  static bool heap_before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  std::uint32_t alloc_frame(NodeId to, NodeId from, net::MessagePtr msg,
                            std::uint64_t fifo_seq);
  void release_frame(std::uint32_t slot);
  /// Account one newly created in-flight event against max_in_flight.
  void note_in_flight();
  static void push_heap_vec(std::vector<HeapEntry>& heap, HeapEntry e);
  static void pop_heap_vec(std::vector<HeapEntry>& heap);
  void heap_push(HeapEntry e) { push_heap_vec(heap_, e); }
  void schedule(SimTime at, std::uint32_t slot, std::uint32_t channel);
  void heap_pop() { pop_heap_vec(heap_); }

  /// Pop the sender's uplink head into the heap as a real arrival event and
  /// re-arm the marker for the next queued frame, if any.
  void fire_departure(NodeId sender_id);
  void deliver(std::uint32_t slot, std::uint32_t channel);
  void dispatch(std::uint32_t slot, std::uint32_t channel);
  void flush_outbox(NodeState& node, NodeId from, SimTime cpu_ready);

  SimConfig cfg_;
  std::vector<NodeState> nodes_;
  std::set<NodeId> byzantine_;

  /// Event scheduler: 4-ary min-heap of keys over the frame arena.
  std::vector<HeapEntry> heap_;
  /// Departure markers, one per sender at most (n entries), in their own
  /// tiny heap so uplink pacing never inflates the main heap's depth. The
  /// run loop pops the global (time, seq) minimum across both heaps.
  std::vector<HeapEntry> marker_heap_;
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> free_slots_;

  /// Per-dispatch outbox, reused across every delivery (zero steady-state
  /// allocations). Safe because dispatches never nest.
  std::vector<Outgoing> outbox_scratch_;

  std::uint64_t next_seq_ = 0;
  /// Events alive anywhere (arena, heap, uplink rings); capped by
  /// cfg_.max_in_flight.
  std::size_t in_flight_ = 0;
  SimTime now_ = 0;
  Rng net_rng_{0};
  SimMetrics metrics_;
  std::size_t honest_terminated_ = 0;
  bool started_ = false;
};

}  // namespace delphi::sim
