#pragma once
/// \file simulator.hpp
/// Deterministic discrete-event simulator of an asynchronous message-passing
/// system — the stand-in for the paper's AWS and Raspberry-Pi testbeds (see
/// DESIGN.md substitutions).
///
/// The model captures the three resources that drive the paper's results:
///   1. *Latency*  — per-pair one-way delay from a LatencyModel, plus a
///      NetworkAdversary that may add arbitrary finite delay (asynchrony).
///   2. *Bandwidth* — each node has one uplink; outgoing frames serialize at
///      `uplink_bytes_per_us` (per-round volume matters on CPS, Fig 7).
///   3. *CPU* — nodes process messages serially; receive/send/crypto costs
///      extend a busy-until clock (FIN's coins are expensive here).
///
/// Same SimConfig + same protocols ⇒ bit-identical run (all randomness flows
/// from one seed; the event queue breaks time ties by sequence number).

#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/fifo.hpp"
#include "net/message.hpp"
#include "net/protocol.hpp"
#include "sim/adversary.hpp"
#include "sim/latency.hpp"

namespace delphi::sim {

/// CPU and bandwidth cost model. All costs in µs (fractions accumulate in
/// double and round when applied).
struct CostModel {
  /// Uplink throughput in bytes per µs (12.5 B/µs == 100 Mbit/s).
  double uplink_bytes_per_us = 1e9;
  /// Fixed CPU cost to send one message (syscall + MAC).
  double per_msg_send_us = 0.0;
  /// Fixed CPU cost to receive one message (syscall + MAC verify).
  double per_msg_recv_us = 0.0;
  /// CPU cost per payload byte (hashing / copying), applied on send and recv.
  double per_byte_cpu_us = 0.0;

  /// Essentially-free model for unit tests (pure asynchrony semantics).
  static CostModel fast();
  /// Shaped after t2.micro instances on a WAN (latency-dominated).
  static CostModel aws();
  /// Shaped after Raspberry Pi 4 processes sharing a switch (bandwidth- and
  /// CPU-dominated).
  static CostModel cps();
};

/// Simulation deployment parameters.
struct SimConfig {
  std::size_t n = 4;
  std::uint64_t seed = 1;
  std::shared_ptr<LatencyModel> latency;        ///< default Uniform[100µs,10ms]
  std::shared_ptr<NetworkAdversary> adversary;  ///< default NoAdversary
  CostModel cost = CostModel::fast();
  /// Add 32-byte HMAC tags to every frame (the paper's authenticated
  /// channels). Affects bytes and CPU, not protocol logic.
  bool auth_channels = true;
  /// Deliver per-link messages in send order (sequence numbers + reorder
  /// buffer). Costs a few bytes per frame. Required by BinAA's compact codec.
  bool fifo_links = false;
  /// Safety valve: abort the run after this many deliveries.
  std::size_t max_events = 400'000'000;
};

/// Per-node traffic/termination metrics.
struct NodeMetrics {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t malformed_dropped = 0;
  /// Time the node's protocol first reported terminated(); -1 if never.
  SimTime terminated_at = -1;
};

/// Whole-run metrics.
struct SimMetrics {
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events_processed = 0;
  /// Max termination time over honest nodes; -1 if some honest node never
  /// terminated.
  SimTime honest_completion = -1;
  bool all_honest_terminated = false;
};

/// The simulator. Usage:
///   Simulator sim(cfg);
///   for (i in 0..n) sim.add_node(make_protocol(i));
///   sim.set_byzantine({...});           // optional
///   sim.run();
///   auto& m = sim.metrics();
class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  /// Install node i's protocol (call exactly n times, in node order).
  void add_node(std::unique_ptr<net::Protocol> protocol);

  /// Declare which node ids are Byzantine (their termination is not awaited
  /// and their traffic is reported separately by honest/total split).
  void set_byzantine(std::set<NodeId> ids);

  /// Execute until every honest node terminates, the event queue drains, or
  /// max_events fires. Returns true iff all honest nodes terminated.
  bool run();

  /// Access a node's protocol (e.g. to read outputs after run()).
  net::Protocol& node(NodeId id);
  const net::Protocol& node(NodeId id) const;

  /// Typed access helper.
  template <typename T>
  T& node_as(NodeId id) {
    auto* p = dynamic_cast<T*>(&node(id));
    DELPHI_ASSERT(p != nullptr, "node_as: wrong protocol type");
    return *p;
  }

  const NodeMetrics& node_metrics(NodeId id) const;
  const SimMetrics& metrics() const noexcept { return metrics_; }
  const SimConfig& config() const noexcept { return cfg_; }
  const std::set<NodeId>& byzantine() const noexcept { return byzantine_; }
  bool is_byzantine(NodeId id) const { return byzantine_.contains(id); }

  /// Current simulated time (max event time processed so far).
  SimTime now() const noexcept { return now_; }

 private:
  struct Event {
    SimTime at = 0;
    std::uint64_t seq = 0;    // tie-break: FIFO among equal times
    NodeId to = 0;
    NodeId from = 0;
    std::uint32_t channel = 0;
    net::MessagePtr msg;      // nullptr => start event
    std::uint64_t fifo_seq = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Outgoing {
    NodeId to;
    std::uint32_t channel;
    net::MessagePtr msg;
  };

  class NodeContext;  // implements net::Context

  struct NodeState {
    std::unique_ptr<net::Protocol> protocol;
    Rng rng{0};
    /// CPU is busy (receiving/sending/crypto) until this time.
    SimTime busy_until = 0;
    /// Uplink is serializing earlier frames until this time.
    SimTime uplink_free = 0;
    NodeMetrics metrics;
    bool terminated_recorded = false;
    /// Sender-side FIFO sequence numbers (when fifo_links).
    std::vector<std::uint64_t> fifo_next_seq;
    /// Receiver-side reorder buffers indexed by sender (when fifo_links).
    std::vector<net::FifoReorderBuffer<Event>> fifo_in;
  };

  void deliver(const Event& ev);
  void dispatch(const Event& ev);
  void flush_outbox(NodeState& node, NodeId from, SimTime cpu_ready,
                    std::vector<Outgoing>&& outbox);
  bool honest_all_done() const;

  SimConfig cfg_;
  std::vector<NodeState> nodes_;
  std::set<NodeId> byzantine_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  Rng net_rng_{0};
  SimMetrics metrics_;
  std::size_t honest_terminated_ = 0;
  bool started_ = false;
};

}  // namespace delphi::sim
