#include "sim/simulator.hpp"

#include <cmath>

#include "common/log.hpp"

namespace delphi::sim {

CostModel CostModel::fast() {
  return CostModel{/*uplink_bytes_per_us=*/1e12, /*per_msg_send_us=*/0.0,
                   /*per_msg_recv_us=*/0.0, /*per_byte_cpu_us=*/0.0};
}

CostModel CostModel::aws() {
  // t2.micro (1 vCPU) on a WAN: ~100 Mbit/s effective uplink. Per-message
  // CPU reflects measured small-message costs of a tokio/TCP/HMAC stack on
  // burstable single-core instances (tens of µs each) — this is what makes
  // O(n³)-message protocols CPU-bound at n = 160 while latency dominates
  // for O(n²)-message Delphi (EXPERIMENTS.md, calibration).
  return CostModel{/*uplink_bytes_per_us=*/12.5, /*per_msg_send_us=*/15.0,
                   /*per_msg_recv_us=*/25.0, /*per_byte_cpu_us=*/0.008};
}

CostModel CostModel::cps() {
  // Raspberry Pi 4 processes sharing a switch (several emulated nodes per
  // device): ~20 Mbit/s effective per process, slow cores — per-message and
  // per-byte CPU an order of magnitude above AWS.
  return CostModel{/*uplink_bytes_per_us=*/2.5, /*per_msg_send_us=*/60.0,
                   /*per_msg_recv_us=*/100.0, /*per_byte_cpu_us=*/0.05};
}

namespace {
SimTime us_round(double v) { return static_cast<SimTime>(std::llround(v)); }
}  // namespace

// ----------------------------------------------------------- NodeContext --

class Simulator::NodeContext final : public net::Context {
 public:
  NodeContext(Simulator& sim, NodeId self, SimTime start)
      : sim_(sim), self_(self), start_(start) {}

  NodeId self() const override { return self_; }
  std::size_t n() const override { return sim_.cfg_.n; }
  SimTime now() const override { return start_ + compute_; }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < sim_.cfg_.n, "send: destination out of range");
    DELPHI_ASSERT(msg != nullptr, "send: null message");
    outbox_.push_back(Outgoing{to, channel, std::move(msg)});
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(msg != nullptr, "broadcast: null message");
    for (NodeId to = 0; to < sim_.cfg_.n; ++to) {
      outbox_.push_back(Outgoing{to, channel, msg});
    }
  }

  void charge_compute(SimTime us) override {
    DELPHI_ASSERT(us >= 0, "charge_compute: negative time");
    compute_ += us;
  }

  Rng& rng() override { return sim_.nodes_[self_].rng; }

  SimTime compute_charged() const noexcept { return compute_; }
  std::vector<Outgoing> take_outbox() noexcept { return std::move(outbox_); }

 private:
  Simulator& sim_;
  NodeId self_;
  SimTime start_;
  SimTime compute_ = 0;
  std::vector<Outgoing> outbox_;
};

// ------------------------------------------------------------- Simulator --

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.n == 0) throw ConfigError("Simulator: n must be >= 1");
  if (!cfg_.latency) {
    cfg_.latency = std::make_shared<UniformLatency>(100, 10'000);
  }
  if (!cfg_.adversary) cfg_.adversary = std::make_shared<NoAdversary>();
  Rng master(cfg_.seed);
  net_rng_ = master.fork(0x4E455457 /*"NETW"*/);
  nodes_.reserve(cfg_.n);
}

void Simulator::add_node(std::unique_ptr<net::Protocol> protocol) {
  DELPHI_ASSERT(protocol != nullptr, "add_node: null protocol");
  if (nodes_.size() >= cfg_.n) throw ConfigError("add_node: too many nodes");
  NodeState state;
  state.protocol = std::move(protocol);
  Rng master(cfg_.seed);
  state.rng = master.fork(0x4E4F4445 /*"NODE"*/ + nodes_.size());
  if (cfg_.fifo_links) {
    state.fifo_next_seq.assign(cfg_.n, 0);
    state.fifo_in.resize(cfg_.n);
  }
  nodes_.push_back(std::move(state));
}

void Simulator::set_byzantine(std::set<NodeId> ids) {
  for (NodeId id : ids) {
    DELPHI_ASSERT(id < cfg_.n, "set_byzantine: id out of range");
  }
  byzantine_ = std::move(ids);
}

net::Protocol& Simulator::node(NodeId id) {
  DELPHI_ASSERT(id < nodes_.size(), "node: id out of range");
  return *nodes_[id].protocol;
}

const net::Protocol& Simulator::node(NodeId id) const {
  DELPHI_ASSERT(id < nodes_.size(), "node: id out of range");
  return *nodes_[id].protocol;
}

const NodeMetrics& Simulator::node_metrics(NodeId id) const {
  DELPHI_ASSERT(id < nodes_.size(), "node_metrics: id out of range");
  return nodes_[id].metrics;
}

bool Simulator::run() {
  DELPHI_ASSERT(nodes_.size() == cfg_.n, "run: add_node not called n times");
  if (!started_) {
    started_ = true;
    for (NodeId i = 0; i < cfg_.n; ++i) {
      queue_.push(Event{/*at=*/0, next_seq_++, /*to=*/i, /*from=*/i,
                        /*channel=*/0, /*msg=*/nullptr, /*fifo_seq=*/0});
    }
  }
  const std::size_t honest_count = cfg_.n - byzantine_.size();
  while (!queue_.empty()) {
    if (metrics_.events_processed >= cfg_.max_events) {
      DLOG(kWarn) << "simulator: max_events reached at t=" << now_;
      break;
    }
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++metrics_.events_processed;
    deliver(ev);
    if (honest_terminated_ == honest_count) break;
  }
  metrics_.all_honest_terminated = (honest_terminated_ == honest_count);
  if (metrics_.all_honest_terminated) {
    SimTime worst = 0;
    for (NodeId i = 0; i < cfg_.n; ++i) {
      if (byzantine_.contains(i)) continue;
      worst = std::max(worst, nodes_[i].metrics.terminated_at);
    }
    metrics_.honest_completion = worst;
  }
  return metrics_.all_honest_terminated;
}

void Simulator::deliver(const Event& ev) {
  NodeState& node = nodes_[ev.to];
  if (cfg_.fifo_links && ev.msg != nullptr && ev.from != ev.to) {
    // Release in sender order; predecessors may still be in flight.
    for (Event& ready : node.fifo_in[ev.from].push(ev.fifo_seq, Event(ev))) {
      dispatch(ready);
    }
    return;
  }
  dispatch(ev);
}

void Simulator::dispatch(const Event& ev) {
  NodeState& node = nodes_[ev.to];
  // CPU model: the handler starts when both the message has arrived (now_)
  // and the node finished earlier work.
  const SimTime start = std::max(now_, node.busy_until);
  NodeContext ctx(*this, ev.to, start);

  std::size_t wire = 0;
  try {
    if (ev.msg == nullptr) {
      node.protocol->on_start(ctx);
    } else {
      ++node.metrics.msgs_delivered;
      wire = ev.msg->wire_size();
      node.protocol->on_message(ctx, ev.from, ev.channel, *ev.msg);
    }
  } catch (const ProtocolViolation&) {
    ++node.metrics.malformed_dropped;
  } catch (const SerializationError&) {
    ++node.metrics.malformed_dropped;
  }

  const SimTime recv_cost =
      ev.msg == nullptr
          ? 0
          : us_round(cfg_.cost.per_msg_recv_us +
                     static_cast<double>(wire) * cfg_.cost.per_byte_cpu_us);
  const SimTime finish = start + recv_cost + ctx.compute_charged();
  node.busy_until = finish;

  flush_outbox(node, ev.to, finish, ctx.take_outbox());

  if (!node.terminated_recorded && node.protocol->terminated()) {
    node.terminated_recorded = true;
    node.metrics.terminated_at = finish;
    if (!byzantine_.contains(ev.to)) ++honest_terminated_;
  }
}

void Simulator::flush_outbox(NodeState& node, NodeId from, SimTime cpu_ready,
                             std::vector<Outgoing>&& outbox) {
  SimTime cpu = cpu_ready;
  for (Outgoing& out : outbox) {
    const std::size_t payload = out.msg->wire_size();

    if (out.to == from) {
      // Loopback: delivered through the local queue, no network resources.
      queue_.push(Event{cpu, next_seq_++, out.to, from, out.channel,
                        std::move(out.msg), 0});
      continue;
    }

    std::uint64_t fifo_seq = 0;
    std::size_t seq_bytes = 0;
    if (cfg_.fifo_links) {
      fifo_seq = node.fifo_next_seq[out.to]++;
      seq_bytes = uvarint_size(fifo_seq);
    }
    const std::size_t frame =
        net::framed_size(payload + seq_bytes, out.channel, cfg_.auth_channels);

    // Sending costs CPU (framing + MAC), then occupies the uplink.
    cpu += us_round(cfg_.cost.per_msg_send_us +
                    static_cast<double>(frame) * cfg_.cost.per_byte_cpu_us);
    const SimTime serialize =
        us_round(static_cast<double>(frame) / cfg_.cost.uplink_bytes_per_us);
    const SimTime departure = std::max(node.uplink_free, cpu) + serialize;
    node.uplink_free = departure;

    const SimTime arrival = departure +
                            cfg_.latency->delay(from, out.to, net_rng_) +
                            cfg_.adversary->extra_delay(from, out.to, departure,
                                                        net_rng_);
    queue_.push(Event{arrival, next_seq_++, out.to, from, out.channel,
                      std::move(out.msg), fifo_seq});

    ++node.metrics.msgs_sent;
    node.metrics.bytes_sent += frame;
    ++metrics_.total_msgs;
    metrics_.total_bytes += frame;
  }
  node.busy_until = cpu;
}

bool Simulator::honest_all_done() const {
  return honest_terminated_ == cfg_.n - byzantine_.size();
}

}  // namespace delphi::sim
