#include "sim/simulator.hpp"

#include <cmath>
#include <new>

#include "common/log.hpp"

namespace delphi::sim {

CostModel CostModel::fast() {
  return CostModel{/*uplink_bytes_per_us=*/1e12, /*per_msg_send_us=*/0.0,
                   /*per_msg_recv_us=*/0.0, /*per_byte_cpu_us=*/0.0};
}

CostModel CostModel::aws() {
  // t2.micro (1 vCPU) on a WAN: ~100 Mbit/s effective uplink. Per-message
  // CPU reflects measured small-message costs of a tokio/TCP/HMAC stack on
  // burstable single-core instances (tens of µs each) — this is what makes
  // O(n³)-message protocols CPU-bound at n = 160 while latency dominates
  // for O(n²)-message Delphi (EXPERIMENTS.md, calibration).
  return CostModel{/*uplink_bytes_per_us=*/12.5, /*per_msg_send_us=*/15.0,
                   /*per_msg_recv_us=*/25.0, /*per_byte_cpu_us=*/0.008};
}

CostModel CostModel::cps() {
  // Raspberry Pi 4 processes sharing a switch (several emulated nodes per
  // device): ~20 Mbit/s effective per process, slow cores — per-message and
  // per-byte CPU an order of magnitude above AWS.
  return CostModel{/*uplink_bytes_per_us=*/2.5, /*per_msg_send_us=*/60.0,
                   /*per_msg_recv_us=*/100.0, /*per_byte_cpu_us=*/0.05};
}

namespace {
SimTime us_round(double v) { return static_cast<SimTime>(std::llround(v)); }
}  // namespace

// ----------------------------------------------------------- NodeContext --

class Simulator::NodeContext final : public net::Context {
 public:
  NodeContext(Simulator& sim, NodeId self, SimTime start)
      : sim_(sim), self_(self), start_(start) {}

  NodeId self() const override { return self_; }
  std::size_t n() const override { return sim_.cfg_.n; }
  SimTime now() const override { return start_ + compute_; }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < sim_.cfg_.n, "send: destination out of range");
    DELPHI_ASSERT(msg != nullptr, "send: null message");
    sim_.outbox_scratch_.push_back(Outgoing{to, channel, std::move(msg)});
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(msg != nullptr, "broadcast: null message");
    for (NodeId to = 0; to < sim_.cfg_.n; ++to) {
      sim_.outbox_scratch_.push_back(Outgoing{to, channel, msg});
    }
  }

  void charge_compute(SimTime us) override {
    DELPHI_ASSERT(us >= 0, "charge_compute: negative time");
    compute_ += us;
  }

  Rng& rng() override { return sim_.nodes_[self_].rng; }

  SimTime compute_charged() const noexcept { return compute_; }

 private:
  Simulator& sim_;
  NodeId self_;
  SimTime start_;
  SimTime compute_ = 0;
};

// ------------------------------------------------------------- Simulator --

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.n == 0) throw ConfigError("Simulator: n must be >= 1");
  if (cfg_.max_in_flight == 0 || cfg_.max_in_flight >= kMaxSlots) {
    throw ConfigError("Simulator: max_in_flight out of range");
  }
  if (!cfg_.latency) {
    cfg_.latency = std::make_shared<UniformLatency>(100, 10'000);
  }
  if (!cfg_.adversary) cfg_.adversary = std::make_shared<NoAdversary>();
  Rng master(cfg_.seed);
  net_rng_ = master.fork(0x4E455457 /*"NETW"*/);
  nodes_.reserve(cfg_.n);
}

void Simulator::add_node(std::unique_ptr<net::Protocol> protocol) {
  DELPHI_ASSERT(protocol != nullptr, "add_node: null protocol");
  if (nodes_.size() >= cfg_.n) throw ConfigError("add_node: too many nodes");
  NodeState state;
  state.protocol = std::move(protocol);
  Rng master(cfg_.seed);
  state.rng = master.fork(0x4E4F4445 /*"NODE"*/ + nodes_.size());
  if (cfg_.fifo_links) {
    state.fifo_next_seq.assign(cfg_.n, 0);
    state.fifo_in.resize(cfg_.n);
  }
  nodes_.push_back(std::move(state));
}

void Simulator::set_byzantine(std::set<NodeId> ids) {
  for (NodeId id : ids) {
    DELPHI_ASSERT(id < cfg_.n, "set_byzantine: id out of range");
  }
  byzantine_ = std::move(ids);
}

net::Protocol& Simulator::node(NodeId id) {
  DELPHI_ASSERT(id < nodes_.size(), "node: id out of range");
  return *nodes_[id].protocol;
}

const net::Protocol& Simulator::node(NodeId id) const {
  DELPHI_ASSERT(id < nodes_.size(), "node: id out of range");
  return *nodes_[id].protocol;
}

const NodeMetrics& Simulator::node_metrics(NodeId id) const {
  DELPHI_ASSERT(id < nodes_.size(), "node_metrics: id out of range");
  return nodes_[id].metrics;
}

TrafficTotals Simulator::traffic_totals() const {
  TrafficTotals t;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const NodeMetrics& m = nodes_[i].metrics;
    if (byzantine_.contains(i)) {
      t.byzantine_msgs += m.msgs_sent;
      t.byzantine_bytes += m.bytes_sent;
    } else {
      t.honest_msgs += m.msgs_sent;
      t.honest_bytes += m.bytes_sent;
    }
  }
  return t;
}

// ------------------------------------------------- event arena + 4-ary heap

std::uint32_t Simulator::alloc_frame(NodeId to, NodeId from,
                                     net::MessagePtr msg,
                                     std::uint64_t fifo_seq) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    Frame& f = frames_[slot];
    f.msg = std::move(msg);
    f.fifo_seq = fifo_seq;
    f.to = to;
    f.from = from;
    return slot;
  }
  try {
    frames_.push_back(Frame{std::move(msg), fifo_seq, to, from});
  } catch (const std::bad_alloc&) {
    throw ResourceExhausted("simulator: event arena allocation failed with " +
                            std::to_string(frames_.size()) +
                            " events in flight");
  }
  return static_cast<std::uint32_t>(frames_.size() - 1);
}

void Simulator::release_frame(std::uint32_t slot) {
  frames_[slot].msg.reset();  // drop the body promptly (peak memory)
  free_slots_.push_back(slot);
  --in_flight_;
}

void Simulator::note_in_flight() {
  if (++in_flight_ > cfg_.max_in_flight) {
    throw ResourceExhausted(
        "simulator: in-flight events exceeded max_in_flight = " +
        std::to_string(cfg_.max_in_flight) + " at t=" + std::to_string(now_));
  }
}

void Simulator::schedule(SimTime at, std::uint32_t slot,
                         std::uint32_t channel) {
  heap_push(HeapEntry{at, next_seq_++, slot, channel});
}

void Simulator::push_heap_vec(std::vector<HeapEntry>& heap, HeapEntry e) {
  try {
    heap.push_back(e);
  } catch (const std::bad_alloc&) {
    throw ResourceExhausted("simulator: event heap allocation failed with " +
                            std::to_string(heap.size()) + " events in flight");
  }
  // Sift up (hole-shift: each level is one copy, not a swap).
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!heap_before(e, heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}

void Simulator::pop_heap_vec(std::vector<HeapEntry>& heap) {
  const HeapEntry last = heap.back();
  heap.pop_back();
  const std::size_t size = heap.size();
  if (size == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= size) break;
    const std::size_t end = std::min(first_child + 4, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (heap_before(heap[c], heap[best])) best = c;
    }
    if (!heap_before(heap[best], last)) break;
    heap[i] = heap[best];
    i = best;
  }
  heap[i] = last;
}

// ---------------------------------------------------------------- run loop

bool Simulator::run() {
  DELPHI_ASSERT(nodes_.size() == cfg_.n, "run: add_node not called n times");
  if (!started_) {
    started_ = true;
    for (NodeId i = 0; i < cfg_.n; ++i) {
      note_in_flight();
      schedule(/*at=*/0,
               alloc_frame(/*to=*/i, /*from=*/i, /*msg=*/nullptr,
                           /*fifo_seq=*/0),
               /*channel=*/0);
    }
  }
  const std::size_t honest_count = cfg_.n - byzantine_.size();
  while (!heap_.empty() || !marker_heap_.empty()) {
    if (metrics_.events_processed >= cfg_.max_events) {
      DLOG(kWarn) << "simulator: max_events reached at t=" << now_;
      break;
    }
    // Pop the global (time, seq) minimum across the event and marker heaps.
    if (!marker_heap_.empty() &&
        (heap_.empty() || heap_before(marker_heap_.front(), heap_.front()))) {
      // Uplink departure: promote the head frame to a real arrival event.
      // Not a delivery — events_processed intentionally unchanged.
      const HeapEntry marker = marker_heap_.front();
      pop_heap_vec(marker_heap_);
      now_ = marker.at;
      fire_departure(static_cast<NodeId>(marker.slot));
      continue;
    }
    const HeapEntry top = heap_.front();
    heap_pop();
    now_ = top.at;
    ++metrics_.events_processed;
    deliver(top.slot, top.channel);
    if (honest_terminated_ == honest_count) break;
  }
  metrics_.all_honest_terminated = (honest_terminated_ == honest_count);
  if (metrics_.all_honest_terminated) {
    SimTime worst = 0;
    for (NodeId i = 0; i < cfg_.n; ++i) {
      if (byzantine_.contains(i)) continue;
      worst = std::max(worst, nodes_[i].metrics.terminated_at);
    }
    metrics_.honest_completion = worst;
  }
  // Batched accounting: fold aggregate traffic totals from the per-node
  // counters once, instead of bumping globals on every send in the hot loop.
  const TrafficTotals totals = traffic_totals();
  metrics_.total_msgs = totals.honest_msgs + totals.byzantine_msgs;
  metrics_.total_bytes = totals.honest_bytes + totals.byzantine_bytes;
  return metrics_.all_honest_terminated;
}

void Simulator::fire_departure(NodeId sender_id) {
  NodeState& sender = nodes_[sender_id];
  DELPHI_ASSERT(!sender.uplink_queue.empty(),
                "fire_departure: marker without queued frame");
  {
    PendingDeparture& head = sender.uplink_queue.front();
    const std::uint32_t slot = alloc_frame(head.to, sender_id,
                                           std::move(head.msg), head.fifo_seq);
    heap_push(HeapEntry{head.arrival, head.seq, slot, head.channel});
    sender.uplink_queue.pop_front();
  }
  // Drain any follow-up departures that would pop before the current global
  // minimum anyway: promoting them now is order-equivalent to cycling their
  // markers through the heap, at a third of the heap traffic.
  while (!sender.uplink_queue.empty()) {
    PendingDeparture& next = sender.uplink_queue.front();
    const HeapEntry key{next.departure, next.seq, 0, 0};
    const bool before_events = heap_.empty() || heap_before(key, heap_.front());
    const bool before_markers =
        marker_heap_.empty() || heap_before(key, marker_heap_.front());
    if (!before_events || !before_markers) {
      push_heap_vec(marker_heap_,
                    HeapEntry{next.departure, next.seq, sender_id, 0});
      break;
    }
    const std::uint32_t slot = alloc_frame(next.to, sender_id,
                                           std::move(next.msg), next.fifo_seq);
    heap_push(HeapEntry{next.arrival, next.seq, slot, next.channel});
    sender.uplink_queue.pop_front();
  }
}

void Simulator::deliver(std::uint32_t slot, std::uint32_t channel) {
  Frame& f = frames_[slot];
  if (!cfg_.churn.empty()) {
    // Churn plane: a dark node processes nothing — re-schedule the event at
    // its restart time. Deferrals happen in pop order with fresh sequence
    // numbers, so the relative order of everything a node missed is
    // preserved and the run stays bit-identical across reruns.
    for (const auto& w : cfg_.churn) {
      if (w.id == f.to && now_ >= w.down_us && now_ < w.up_us) {
        if (f.msg != nullptr && f.from != f.to) {
          NodeMetrics& m = nodes_[f.to].metrics;
          ++m.deferred_frames;
          const std::size_t seq_bytes =
              cfg_.fifo_links ? uvarint_size(f.fifo_seq) : 0;
          m.deferred_bytes += net::framed_size(
              f.msg->wire_size_cached() + seq_bytes, channel,
              cfg_.auth_channels);
        }
        schedule(w.up_us, slot, channel);
        return;
      }
    }
  }
  if (cfg_.fifo_links && f.msg != nullptr && f.from != f.to) {
    // Release in sender order; predecessors may still be in flight.
    auto& buf = nodes_[f.to].fifo_in[f.from];
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(channel) << 32) | slot;
    if (!buf.insert(f.fifo_seq, packed)) {
      release_frame(slot);  // stale duplicate: dropped unprocessed
      return;
    }
    while (const std::uint64_t* ready = buf.ready()) {
      const auto ready_slot = static_cast<std::uint32_t>(*ready);
      const auto ready_channel = static_cast<std::uint32_t>(*ready >> 32);
      buf.pop_ready();
      dispatch(ready_slot, ready_channel);
      release_frame(ready_slot);
    }
    return;
  }
  const bool was_loopback = (f.msg != nullptr && f.from == f.to);
  const NodeId to = f.to;  // dispatch may grow the arena; f dangles after
  dispatch(slot, channel);
  release_frame(slot);
  if (was_loopback) {
    // This node's earliest pending self-delivery (if any) takes the heap
    // slot we just vacated; its time is >= this event's (monotone per node).
    NodeState& nd = nodes_[to];
    if (!nd.loopback_queue.empty()) {
      PendingDeparture& head = nd.loopback_queue.front();
      const std::uint32_t next_slot =
          alloc_frame(head.to, head.to, std::move(head.msg), /*fifo_seq=*/0);
      // max() is a no-op without churn (per-node loopback times are
      // monotone); with churn the head may predate a deferred delivery that
      // just fired at the restart time, and simulated time never rewinds.
      heap_push(HeapEntry{std::max(head.arrival, now_), head.seq, next_slot,
                          head.channel});
      nd.loopback_queue.pop_front();
    } else {
      nd.loopback_armed = false;
    }
  }
}

void Simulator::dispatch(std::uint32_t slot, std::uint32_t channel) {
  // Copy the frame fields out: flush_outbox below may grow the arena and
  // invalidate references into frames_.
  const NodeId to = frames_[slot].to;
  const NodeId from = frames_[slot].from;
  const net::MessageBody* msg = frames_[slot].msg.get();

  NodeState& node = nodes_[to];
  // CPU model: the handler starts when both the message has arrived (now_)
  // and the node finished earlier work.
  const SimTime start = std::max(now_, node.busy_until);
  NodeContext ctx(*this, to, start);

  std::size_t wire = 0;
  try {
    if (msg == nullptr) {
      node.protocol->on_start(ctx);
    } else {
      ++node.metrics.msgs_delivered;
      wire = msg->wire_size_cached();
      node.protocol->on_message(ctx, from, channel, *msg);
    }
  } catch (const ProtocolViolation&) {
    ++node.metrics.malformed_dropped;
  } catch (const SerializationError&) {
    ++node.metrics.malformed_dropped;
  }

  const SimTime recv_cost =
      msg == nullptr
          ? 0
          : us_round(cfg_.cost.per_msg_recv_us +
                     static_cast<double>(wire) * cfg_.cost.per_byte_cpu_us);
  const SimTime finish = start + recv_cost + ctx.compute_charged();
  node.busy_until = finish;

  flush_outbox(node, to, finish);

  if (!node.terminated_recorded && node.protocol->terminated()) {
    node.terminated_recorded = true;
    node.metrics.terminated_at = finish;
    if (!byzantine_.contains(to)) ++honest_terminated_;
  }
}

void Simulator::flush_outbox(NodeState& node, NodeId from, SimTime cpu_ready) {
  SimTime cpu = cpu_ready;
  const CostModel& cost = cfg_.cost;
  LatencyModel* const latency = cfg_.latency.get();
  NetworkAdversary* const adversary = cfg_.adversary.get();
  for (Outgoing& out : outbox_scratch_) {
    const std::size_t payload = out.msg->wire_size_cached();

    if (out.to == from) {
      // Loopback: delivered through the local queue, no network resources.
      // Only the node's earliest self-delivery lives in the heap.
      note_in_flight();
      const std::uint64_t seq = next_seq_++;
      if (!node.loopback_armed) {
        node.loopback_armed = true;
        heap_push(HeapEntry{
            cpu, seq,
            alloc_frame(out.to, from, std::move(out.msg), /*fifo_seq=*/0),
            out.channel});
      } else {
        try {
          node.loopback_queue.push_back(PendingDeparture{
              cpu, cpu, seq, std::move(out.msg), /*fifo_seq=*/0, out.to,
              out.channel});
        } catch (const std::bad_alloc&) {
          throw ResourceExhausted(
              "simulator: loopback queue allocation failed with " +
              std::to_string(in_flight_) + " events in flight");
        }
      }
      continue;
    }

    std::uint64_t fifo_seq = 0;
    std::size_t seq_bytes = 0;
    if (cfg_.fifo_links) {
      fifo_seq = node.fifo_next_seq[out.to]++;
      seq_bytes = uvarint_size(fifo_seq);
    }
    const std::size_t frame =
        net::framed_size(payload + seq_bytes, out.channel, cfg_.auth_channels);

    // Sending costs CPU (framing + MAC), then occupies the uplink.
    cpu += us_round(cost.per_msg_send_us +
                    static_cast<double>(frame) * cost.per_byte_cpu_us);
    const SimTime serialize =
        us_round(static_cast<double>(frame) / cost.uplink_bytes_per_us);
    const SimTime departure = std::max(node.uplink_free, cpu) + serialize;
    node.uplink_free = departure;

    const SimTime arrival =
        departure + latency->delay(from, out.to, net_rng_) +
        adversary->extra_delay(from, out.to, departure, net_rng_);
    // The frame waits in the sender's uplink FIFO; only the queue head gets
    // a heap entry (the departure marker). seq is assigned here, in send
    // order, exactly as if the arrival were scheduled eagerly.
    const std::uint64_t seq = next_seq_++;
    note_in_flight();
    const bool uplink_was_idle = node.uplink_queue.empty();
    try {
      node.uplink_queue.push_back(PendingDeparture{
          departure, arrival, seq, std::move(out.msg), fifo_seq, out.to,
          out.channel});
    } catch (const std::bad_alloc&) {
      throw ResourceExhausted(
          "simulator: uplink queue allocation failed with " +
          std::to_string(in_flight_) + " events in flight");
    }
    if (uplink_was_idle) {
      push_heap_vec(marker_heap_, HeapEntry{departure, seq, from, 0});
    }

    ++node.metrics.msgs_sent;
    node.metrics.bytes_sent += frame;
  }
  outbox_scratch_.clear();
  node.busy_until = cpu;
}

}  // namespace delphi::sim
