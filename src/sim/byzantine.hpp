#pragma once
/// \file byzantine.hpp
/// Generic Byzantine node behaviours usable against any protocol. Protocol-
/// specific equivocation attacks live next to each protocol's tests; the
/// strategies here exercise the universal failure modes: silence (crash),
/// mid-run crash, and garbage injection.

#include <memory>

#include "net/protocol.hpp"

namespace delphi::sim {

/// A node that never sends anything — the classic crash-from-start fault.
/// Termination is reported immediately so harnesses don't wait on it.
class SilentProtocol final : public net::Protocol {
 public:
  void on_start(net::Context&) override {}
  void on_message(net::Context&, NodeId, std::uint32_t,
                  const net::MessageBody&) override {}
  bool terminated() const override { return true; }
};

/// Undecodable junk: honest protocols must reject it (ProtocolViolation) and
/// keep working.
class GarbageMessage final : public net::MessageBody {
 public:
  explicit GarbageMessage(std::size_t size) : size_(size) {}
  std::size_t wire_size() const override { return size_; }
  void serialize(ByteWriter& w) const override {
    for (std::size_t i = 0; i < size_; ++i) w.u8(0xA5);
  }
  std::string debug() const override { return "garbage"; }

 private:
  std::size_t size_;
};

/// Runs the wrapped honest protocol faithfully but crashes (goes silent)
/// after `crash_after_sends` outgoing messages — the "participate a while,
/// then vanish" fault that often breaks naive quorum logic.
class CrashAfterProtocol final : public net::Protocol {
 public:
  CrashAfterProtocol(std::unique_ptr<net::Protocol> inner,
                     std::uint64_t crash_after_sends)
      : inner_(std::move(inner)), budget_(crash_after_sends) {}

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return true; }  // never awaited

 private:
  class FilterContext;
  std::unique_ptr<net::Protocol> inner_;
  std::uint64_t budget_;
  bool crashed_ = false;
};

/// Replies to every delivery with garbage frames to random nodes on random
/// channels — stresses input validation paths.
class GarbageSprayProtocol final : public net::Protocol {
 public:
  /// \param spray_per_delivery  messages emitted per received message.
  /// \param max_size            junk sizes are drawn uniformly in
  ///                            [1, max_size] bytes (the default keeps the
  ///                            historical draw sequence bit-for-bit).
  explicit GarbageSprayProtocol(std::size_t spray_per_delivery = 2,
                                std::size_t max_size = 64)
      : spray_(spray_per_delivery), max_size_(max_size) {}

  void on_start(net::Context& ctx) override { spray(ctx); }
  void on_message(net::Context& ctx, NodeId, std::uint32_t,
                  const net::MessageBody&) override {
    spray(ctx);
  }
  bool terminated() const override { return true; }

 private:
  void spray(net::Context& ctx);
  std::size_t spray_;
  std::size_t max_size_;
  std::uint64_t sent_ = 0;
};

}  // namespace delphi::sim
