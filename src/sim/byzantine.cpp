#include "sim/byzantine.hpp"

namespace delphi::sim {

/// Context wrapper that counts (and eventually swallows) outgoing messages.
class CrashAfterProtocol::FilterContext final : public net::Context {
 public:
  FilterContext(net::Context& inner, std::uint64_t& budget, bool& crashed)
      : inner_(inner), budget_(budget), crashed_(crashed) {}

  NodeId self() const override { return inner_.self(); }
  std::size_t n() const override { return inner_.n(); }
  SimTime now() const override { return inner_.now(); }
  Rng& rng() override { return inner_.rng(); }
  void charge_compute(SimTime us) override { inner_.charge_compute(us); }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    if (crashed_) return;
    if (budget_ == 0) {
      crashed_ = true;
      return;
    }
    --budget_;
    inner_.send(to, channel, std::move(msg));
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    // A crash can strike mid-broadcast: deliver to a prefix of nodes only.
    for (NodeId to = 0; to < inner_.n(); ++to) {
      send(to, channel, msg);
    }
  }

 private:
  net::Context& inner_;
  std::uint64_t& budget_;
  bool& crashed_;
};

void CrashAfterProtocol::on_start(net::Context& ctx) {
  FilterContext fctx(ctx, budget_, crashed_);
  inner_->on_start(fctx);
}

void CrashAfterProtocol::on_message(net::Context& ctx, NodeId from,
                                    std::uint32_t channel,
                                    const net::MessageBody& body) {
  if (crashed_) return;
  FilterContext fctx(ctx, budget_, crashed_);
  inner_->on_message(fctx, from, channel, body);
}

void GarbageSprayProtocol::spray(net::Context& ctx) {
  // Cap total junk so adversarial nodes can't keep the simulation alive
  // forever by replying to their own echoes.
  if (sent_ > 10'000) return;
  for (std::size_t i = 0; i < spray_; ++i) {
    const auto to = static_cast<NodeId>(ctx.rng().below(ctx.n()));
    const auto channel = static_cast<std::uint32_t>(ctx.rng().below(64));
    const auto size = static_cast<std::size_t>(
        ctx.rng().range(1, static_cast<std::int64_t>(max_size_)));
    ctx.send(to, channel, std::make_shared<GarbageMessage>(size));
    ++sent_;
  }
}

}  // namespace delphi::sim
