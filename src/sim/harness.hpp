#pragma once
/// \file harness.hpp
/// Convenience layer for "build n nodes, run, collect outputs" — used by
/// tests, examples, and every bench binary.

#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace delphi::sim {

/// Protocol output interface (see net/protocol.hpp).
using ValueOutput = net::ValueOutput;

/// Result of a harness run. Traffic fields come from the simulator's batched
/// post-run aggregation (Simulator::traffic_totals) — bench binaries pay no
/// per-delivery accounting beyond the per-node counters.
struct RunOutcome {
  bool all_honest_terminated = false;
  SimMetrics metrics;
  /// Outputs of honest nodes that implement ValueOutput, in node-id order.
  std::vector<double> honest_outputs;
  /// Bytes sent by honest nodes only (the complexity the paper reports).
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_msgs = 0;
};

/// Builds node i's protocol — the shared alias from net/protocol.hpp (same
/// factory type the TCP transport and scenario runtimes consume).
using ProtocolFactory = net::ProtocolFactory;

/// Construct a simulator from `cfg`, populate nodes via `factory`, mark
/// `byzantine`, run to completion, and harvest outputs + traffic stats.
RunOutcome run_nodes(const SimConfig& cfg, const ProtocolFactory& factory,
                     const std::set<NodeId>& byzantine = {});

/// Default Byzantine placement used across tests/benches: the *last* t node
/// ids. (Protocol logic is id-agnostic; tests also exercise other placements.)
std::set<NodeId> last_t_byzantine(std::size_t n, std::size_t t);

}  // namespace delphi::sim
