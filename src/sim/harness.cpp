#include "sim/harness.hpp"

namespace delphi::sim {

RunOutcome run_nodes(const SimConfig& cfg, const ProtocolFactory& factory,
                     const std::set<NodeId>& byzantine) {
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(factory(i));
  }
  sim.set_byzantine(byzantine);

  RunOutcome out;
  out.all_honest_terminated = sim.run();
  out.metrics = sim.metrics();
  // Traffic is aggregated by the simulator's batched post-run pass; only the
  // protocol outputs still need a walk over the honest nodes.
  const TrafficTotals traffic = sim.traffic_totals();
  out.honest_bytes = traffic.honest_bytes;
  out.honest_msgs = traffic.honest_msgs;
  for (NodeId i = 0; i < cfg.n; ++i) {
    if (byzantine.contains(i)) continue;
    if (const auto* vo = dynamic_cast<const ValueOutput*>(&sim.node(i))) {
      if (auto v = vo->output_value()) out.honest_outputs.push_back(*v);
    }
  }
  return out;
}

std::set<NodeId> last_t_byzantine(std::size_t n, std::size_t t) {
  std::set<NodeId> ids;
  for (std::size_t i = n - t; i < n; ++i) ids.insert(static_cast<NodeId>(i));
  return ids;
}

}  // namespace delphi::sim
