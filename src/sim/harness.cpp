#include "sim/harness.hpp"

namespace delphi::sim {

RunOutcome run_nodes(const SimConfig& cfg, const ProtocolFactory& factory,
                     const std::set<NodeId>& byzantine) {
  Simulator sim(cfg);
  for (NodeId i = 0; i < cfg.n; ++i) {
    sim.add_node(factory(i));
  }
  sim.set_byzantine(byzantine);

  RunOutcome out;
  out.all_honest_terminated = sim.run();
  out.metrics = sim.metrics();
  for (NodeId i = 0; i < cfg.n; ++i) {
    if (byzantine.contains(i)) continue;
    out.honest_bytes += sim.node_metrics(i).bytes_sent;
    out.honest_msgs += sim.node_metrics(i).msgs_sent;
    if (const auto* vo = dynamic_cast<const ValueOutput*>(&sim.node(i))) {
      if (auto v = vo->output_value()) out.honest_outputs.push_back(*v);
    }
  }
  return out;
}

std::set<NodeId> last_t_byzantine(std::size_t n, std::size_t t) {
  std::set<NodeId> ids;
  for (std::size_t i = n - t; i < n; ++i) ids.insert(static_cast<NodeId>(i));
  return ids;
}

}  // namespace delphi::sim
