#pragma once
/// \file localize.hpp
/// Fleet localization protocol: agree on a target's 2-D position by running
/// two Delphi instances, one per coordinate (the paper: "drones use two
/// instances of Delphi to agree on each coordinate individually", §VI-B).

#include <optional>

#include "delphi/delphi.hpp"
#include "drone/detection.hpp"
#include "net/protocol.hpp"

namespace delphi::drone {

/// One drone agreeing on a 2-D location with its fleet.
class LocalizationProtocol final : public net::Protocol,
                                   public net::ValueOutput {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    protocol::DelphiParams params;  ///< per-coordinate parameters (§VI-B)
  };

  LocalizationProtocol(Config cfg, Vec2 observation);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override {
    return x_.terminated() && y_.terminated();
  }

  /// Agreed position, once terminated.
  std::optional<Vec2> position() const;

  /// ValueOutput: the agreed x coordinate (harness convenience; tests use
  /// position() for the full answer).
  std::optional<double> output_value() const override {
    return x_.output_value();
  }

  const protocol::DelphiProtocol& x_instance() const noexcept { return x_; }
  const protocol::DelphiProtocol& y_instance() const noexcept { return y_; }

 private:
  static constexpr std::uint32_t kChannelX = 0;
  static constexpr std::uint32_t kChannelY = 1;

  protocol::DelphiProtocol x_;
  protocol::DelphiProtocol y_;
};

}  // namespace delphi::drone
