#include "drone/detection.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace delphi::drone {

double Vec2::norm() const { return std::hypot(x, y); }

DetectionModel::DetectionModel(DetectionConfig cfg)
    : cfg_(cfg),
      iou_loss_(cfg.iou_loss_shape, cfg.iou_loss_scale),
      gps_err_(cfg.gps_shape, cfg.gps_scale) {}

double DetectionModel::sample_iou(Rng& rng) const {
  const double loss = iou_loss_.sample(rng);
  return std::clamp(1.0 - loss, 0.0, 1.0);
}

Vec2 DetectionModel::sample_gps_error(Rng& rng) const {
  const double mag = gps_err_.sample(rng);
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return {mag * std::cos(theta), mag * std::sin(theta)};
}

Vec2 DetectionModel::observe(Vec2 ground_truth, Rng& rng) const {
  // Bounding-box error: independent per-coordinate signed errors bounded by
  // the car-diagonal heuristic d = 5.3 * (1 - IoU).
  const double iou = sample_iou(rng);
  const double d = cfg_.meters_per_iou_loss * (1.0 - iou);
  const Vec2 bb_err{(rng.coin() ? 1.0 : -1.0) * d * rng.uniform(),
                    (rng.coin() ? 1.0 : -1.0) * d * rng.uniform()};
  return ground_truth + bb_err + sample_gps_error(rng);
}

std::vector<Vec2> fleet_observations(const DetectionModel& model,
                                     Vec2 ground_truth, std::size_t n,
                                     Rng& rng) {
  std::vector<Vec2> obs;
  obs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs.push_back(model.observe(ground_truth, rng));
  }
  return obs;
}

}  // namespace delphi::drone
