#include "drone/localize.hpp"

namespace delphi::drone {

namespace {
protocol::DelphiProtocol::Config coord_config(
    const LocalizationProtocol::Config& cfg, std::uint32_t channel) {
  protocol::DelphiProtocol::Config d;
  d.n = cfg.n;
  d.t = cfg.t;
  d.params = cfg.params;
  d.channel = channel;
  return d;
}
}  // namespace

LocalizationProtocol::LocalizationProtocol(Config cfg, Vec2 observation)
    : x_(coord_config(cfg, kChannelX), observation.x),
      y_(coord_config(cfg, kChannelY), observation.y) {}

void LocalizationProtocol::on_start(net::Context& ctx) {
  x_.on_start(ctx);
  y_.on_start(ctx);
}

void LocalizationProtocol::on_message(net::Context& ctx, NodeId from,
                                      std::uint32_t channel,
                                      const net::MessageBody& body) {
  if (channel == kChannelX) {
    x_.on_message(ctx, from, channel, body);
  } else if (channel == kChannelY) {
    y_.on_message(ctx, from, channel, body);
  } else {
    throw ProtocolViolation("localization: unknown channel");
  }
}

std::optional<Vec2> LocalizationProtocol::position() const {
  const auto x = x_.output_value();
  const auto y = y_.output_value();
  if (!x || !y) return std::nullopt;
  return Vec2{*x, *y};
}

}  // namespace delphi::drone
