#pragma once
/// \file detection.hpp
/// Synthetic drone object-detection error models — the data substrate for the
/// paper's CPS evaluation (§VI-B).
///
/// The paper characterizes two error sources for a drone estimating a car's
/// location as L_T = L_BB + L_GPS:
///  * detection error: EfficientDet's IoU follows a Gamma distribution with
///    mean 0.87 and P(IoU < 0.6) ≈ 0.37 % (Fig 5); per-coordinate position
///    error is d = 5.3 * (1 - IoU) meters (car diagonal heuristic);
///  * GPS error: FAA-reported horizontal accuracy, mean 1.3 m and < 5 m
///    99.99 % of the time, modeled Gamma (the paper's own upper-bounding
///    choice).
/// We sample both from the published parameters — the evaluation consumes the
/// models only through these distributions (DESIGN.md substitutions).

#include <vector>

#include "common/rng.hpp"
#include "stats/distributions.hpp"

namespace delphi::drone {

/// 2-D point/vector in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  double norm() const;
};

/// IoU and error-model configuration.
struct DetectionConfig {
  /// Gamma parameters of (1 - IoU): chosen so mean(IoU) = 0.87 and
  /// P(IoU < 0.6) ≈ 0.4 % as in Fig 5.
  double iou_loss_shape = 4.0;
  double iou_loss_scale = 0.0325;
  /// Per-coordinate position error per IoU loss: d = 5.3 * (1 - IoU) m
  /// (ground-truth bounding-box diagonal of a 5 m x 2 m car).
  double meters_per_iou_loss = 5.3;
  /// Gamma parameters of the GPS horizontal error magnitude: mean 1.3 m,
  /// P(err > 5 m) ≈ 1e-4 (FAA SPS PAN report).
  double gps_shape = 4.0;
  double gps_scale = 0.325;
};

/// Samples detection + localization errors for one drone observation.
class DetectionModel {
 public:
  explicit DetectionModel(DetectionConfig cfg);

  /// Draw one IoU value in [0, 1].
  double sample_iou(Rng& rng) const;

  /// Draw one GPS error vector (magnitude Gamma, direction uniform).
  Vec2 sample_gps_error(Rng& rng) const;

  /// Full observation: ground truth + bounding-box error + GPS error.
  Vec2 observe(Vec2 ground_truth, Rng& rng) const;

  const DetectionConfig& config() const noexcept { return cfg_; }

 private:
  DetectionConfig cfg_;
  stats::Gamma iou_loss_;
  stats::Gamma gps_err_;
};

/// Observations of one target by a fleet of n drones (the inputs the fleet
/// feeds into two Delphi instances, one per coordinate).
std::vector<Vec2> fleet_observations(const DetectionModel& model,
                                     Vec2 ground_truth, std::size_t n,
                                     Rng& rng);

}  // namespace delphi::drone
