#pragma once
/// \file mux.hpp
/// SessionMux: run many protocol instances ("sessions") over one long-lived
/// transport — the shape of a real oracle deployment, where the network
/// produces one agreement per minute (§VI-A: "one price report every
/// minute") without tearing the mesh down between instances.
///
/// The channel space is partitioned into per-session windows of `stride`
/// channels: session `sid` owns channels [sid*stride, (sid+1)*stride). A
/// session's protocol is built by the deployment-supplied factory and runs
/// behind a Context shim that offsets its channels into the window.
///
/// Sessions open three ways:
///  * kConcurrent — all `expected` sessions start together (parallel
///    agreement on many quantities over one mesh);
///  * kSequential — session sid+1 starts locally when sid terminates (the
///    one-report-per-minute pipeline);
///  * lazily in both modes — the first message for a not-yet-open session
///    opens it (a fast peer may be a session ahead; asynchronous semantics
///    make starting "late" indistinguishable from slow links).
/// The mux terminates when all `expected` sessions opened and terminated.

#include <functional>
#include <memory>
#include <vector>

#include "net/protocol.hpp"

namespace delphi::net {

/// Multiplexes `expected` sub-protocols over one transport.
class SessionMux final : public Protocol {
 public:
  enum class Mode { kConcurrent, kSequential };

  /// Builds session `sid`'s protocol (e.g. a DelphiProtocol around the
  /// node's minute-`sid` reading). Called at most once per sid.
  using SessionFactory =
      std::function<std::unique_ptr<Protocol>(std::uint32_t sid)>;

  struct Config {
    /// Number of sessions this deployment will run.
    std::uint32_t expected = 1;
    /// Channels per session window; must exceed every sub-protocol's channel
    /// use (Delphi uses 1; Abraham uses rounds*(n+1)+1; DORA uses 0xD1).
    std::uint32_t stride = 1 << 16;
    Mode mode = Mode::kSequential;
  };

  SessionMux(Config cfg, SessionFactory factory);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, std::uint32_t channel,
                  const MessageBody& body) override;
  bool terminated() const override { return done_ == cfg_.expected; }

  /// The session's protocol, or nullptr if not yet opened.
  const Protocol* session(std::uint32_t sid) const;

  /// Sessions opened so far.
  std::size_t open_count() const noexcept { return open_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  /// Context shim offsetting a session's channels into its window.
  class WindowContext;

  /// Open (build + start) session sid if not yet open.
  void ensure_open(Context& ctx, std::uint32_t sid);
  /// Track a session's termination edge; sequential mode advances the chain
  /// frontier (skipping sessions that lazily opened and already finished).
  void after_delivery(Context& ctx, std::uint32_t sid);

  /// channel → sid without a per-message divide when stride is a power of
  /// two (it always is in practice: the default window is 2^16).
  std::uint32_t sid_of(std::uint32_t channel) const noexcept {
    return shift_ >= 0 ? channel >> shift_ : channel / cfg_.stride;
  }
  std::uint32_t offset_of(std::uint32_t channel) const noexcept {
    return shift_ >= 0 ? channel & (cfg_.stride - 1) : channel % cfg_.stride;
  }

  Config cfg_;
  SessionFactory factory_;
  int shift_ = -1;  ///< log2(stride) when stride is a power of two, else -1
  std::vector<std::unique_ptr<Protocol>> sessions_;
  std::vector<bool> finished_;
  std::size_t open_ = 0;
  std::uint32_t done_ = 0;
  /// Sequential-chain frontier: the lowest sid not yet finished. Everything
  /// below it is finished; the chain only ever opens the frontier session.
  std::uint32_t chain_next_ = 0;
};

}  // namespace delphi::net
