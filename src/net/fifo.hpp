#pragma once
/// \file fifo.hpp
/// FIFO re-ordering buffer — the "FIFO broadcast" building block the paper
/// borrows from Abraham et al.: receivers process a sender's messages in send
/// order even though the network reorders them. The sender stamps a per-link
/// sequence number; the receiver releases message k only after 0..k-1.
///
/// Used by the simulator's FIFO-link mode (which BinAA's compact delta codec
/// requires). The buffer is *flat*: in-window items live in a power-of-two
/// ring indexed by (seq - next_expected), so the hot path (in-order or nearly
/// in-order arrival) is O(1) with no node allocations — the std::map the
/// original implementation used cost an allocation plus O(log k) pointer
/// chasing per message. Sequence numbers beyond the bounded ring window
/// (Byzantine senders jumping far ahead) overflow into a side map, keeping
/// memory proportional to the number of buffered items, exactly like the old
/// structure.

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace delphi::net {

/// Order-restoring buffer for one directed link. `Item` is any movable,
/// default-constructible type.
template <typename Item>
class FifoReorderBuffer {
 public:
  /// The ring never grows beyond this many slots; farther-future sequence
  /// numbers are buffered in the overflow map instead. Bounds flat memory at
  /// sizeof(Item) * 64Ki per link regardless of adversary behavior.
  static constexpr std::size_t kMaxRingSlots = std::size_t{1} << 16;

  /// Zero-allocation insert path. Returns true iff the item was accepted;
  /// false for stale (< next_expected) or duplicate sequence numbers — the
  /// first-received copy wins, as with Byzantine retransmits.
  bool insert(std::uint64_t seq, Item item) {
    if (seq < next_) return false;  // stale duplicate
    const std::uint64_t offset = seq - next_;
    if (offset >= kMaxRingSlots) {
      return far_.emplace(seq, std::move(item)).second;
    }
    // A seq first buffered beyond the window may have come back in range as
    // next_ advanced; the far copy was received first, so it wins.
    if (!far_.empty() && far_.contains(seq)) return false;
    if (offset >= ring_.size()) grow(offset + 1);
    const std::size_t idx = (head_ + offset) & (ring_.size() - 1);
    if (present_[idx]) return false;  // in-window duplicate
    ring_[idx] = std::move(item);
    present_[idx] = 1;
    ++ring_count_;
    return true;
  }

  /// The next in-order item if it has arrived, else nullptr. The pointer is
  /// valid until the next mutating call; move from it, then pop_ready().
  Item* ready() {
    if (ring_count_ != 0 && present_[head_]) return &ring_[head_];
    if (!far_.empty() && far_.begin()->first == next_) {
      // The far item is due: surface it through the ring head slot.
      if (ring_.empty()) grow(1);
      ring_[head_] = std::move(far_.begin()->second);
      far_.erase(far_.begin());
      present_[head_] = 1;
      ++ring_count_;
      return &ring_[head_];
    }
    return nullptr;
  }

  /// Consume the item ready() returned and advance to the next sequence
  /// number. Only valid immediately after a non-null ready().
  void pop_ready() {
    DELPHI_ASSERT(!ring_.empty() && present_[head_],
                  "FifoReorderBuffer: pop_ready without ready item");
    present_[head_] = 0;
    --ring_count_;
    head_ = (head_ + 1) & (ring_.size() - 1);
    ++next_;
  }

  /// Convenience wrapper preserving the original API: insert, then drain
  /// every consecutively deliverable item in sequence order.
  std::vector<Item> push(std::uint64_t seq, Item item) {
    std::vector<Item> out;
    if (!insert(seq, std::move(item))) return out;
    while (Item* p = ready()) {
      out.push_back(std::move(*p));
      pop_ready();
    }
    return out;
  }

  /// Next sequence number this link expects to release.
  std::uint64_t next_expected() const noexcept { return next_; }

  /// Number of buffered out-of-order items.
  std::size_t pending() const noexcept { return ring_count_ + far_.size(); }

 private:
  /// Grow the ring to a power of two >= needed, re-basing so that `next_`
  /// maps to index 0. Amortized O(1) per item; capped at kMaxRingSlots.
  void grow(std::size_t needed) {
    std::size_t cap = ring_.empty() ? 16 : ring_.size();
    while (cap < needed) cap <<= 1;
    DELPHI_ASSERT(cap <= kMaxRingSlots, "FifoReorderBuffer: ring overgrown");
    std::vector<Item> ring(cap);
    std::vector<std::uint8_t> present(cap, 0);
    for (std::size_t off = 0; off < ring_.size(); ++off) {
      const std::size_t idx = (head_ + off) & (ring_.size() - 1);
      if (present_[idx]) {
        ring[off] = std::move(ring_[idx]);
        present[off] = 1;
      }
    }
    ring_ = std::move(ring);
    present_ = std::move(present);
    head_ = 0;
  }

  std::uint64_t next_ = 0;
  std::size_t head_ = 0;        ///< ring index holding sequence number next_
  std::size_t ring_count_ = 0;  ///< items currently buffered in the ring
  std::vector<Item> ring_;      ///< power-of-two window starting at next_
  std::vector<std::uint8_t> present_;
  std::map<std::uint64_t, Item> far_;  ///< seq >= next_ + kMaxRingSlots
};

/// Per-link sequence-number allocator for the sending side.
class FifoSequencer {
 public:
  explicit FifoSequencer(std::size_t n) : next_(n, 0) {}

  /// Sequence number for the next message to `to`.
  std::uint64_t next(std::size_t to) {
    DELPHI_ASSERT(to < next_.size(), "FifoSequencer: bad destination");
    return next_[to]++;
  }

 private:
  std::vector<std::uint64_t> next_;
};

}  // namespace delphi::net
