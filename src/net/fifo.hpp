#pragma once
/// \file fifo.hpp
/// FIFO re-ordering buffer — the "FIFO broadcast" building block the paper
/// borrows from Abraham et al.: receivers process a sender's messages in send
/// order even though the network reorders them. The sender stamps a per-link
/// sequence number; the receiver releases message k only after 0..k-1.
///
/// Used by the simulator's optional FIFO-link mode (which BinAA's compact
/// delta codec requires) and by the TCP transport's per-connection inbox.

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace delphi::net {

/// Order-restoring buffer for one directed link. `Item` is any movable type.
template <typename Item>
class FifoReorderBuffer {
 public:
  /// Insert the item with the sender-assigned sequence number; returns every
  /// item that is now deliverable, in sequence order (possibly empty).
  /// Duplicate sequence numbers (Byzantine sender / retransmit) keep the
  /// first-received copy.
  std::vector<Item> push(std::uint64_t seq, Item item) {
    std::vector<Item> ready;
    if (seq < next_) return ready;            // stale duplicate
    pending_.emplace(seq, std::move(item));   // keeps first copy on duplicate
    while (true) {
      auto it = pending_.find(next_);
      if (it == pending_.end()) break;
      ready.push_back(std::move(it->second));
      pending_.erase(it);
      ++next_;
    }
    return ready;
  }

  /// Next sequence number this link expects to release.
  std::uint64_t next_expected() const noexcept { return next_; }

  /// Number of buffered out-of-order items.
  std::size_t pending() const noexcept { return pending_.size(); }

 private:
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, Item> pending_;
};

/// Per-link sequence-number allocator for the sending side.
class FifoSequencer {
 public:
  explicit FifoSequencer(std::size_t n) : next_(n, 0) {}

  /// Sequence number for the next message to `to`.
  std::uint64_t next(std::size_t to) {
    DELPHI_ASSERT(to < next_.size(), "FifoSequencer: bad destination");
    return next_[to]++;
  }

 private:
  std::vector<std::uint64_t> next_;
};

}  // namespace delphi::net
