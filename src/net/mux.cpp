#include "net/mux.hpp"

#include <bit>
#include <limits>

#include "common/error.hpp"

namespace delphi::net {

/// Offsets outgoing channels by the session's window base. Deliveries are
/// un-offset by the mux before they reach the session, so the sub-protocol
/// sees a private channel space starting at 0.
class SessionMux::WindowContext final : public Context {
 public:
  WindowContext(Context& inner, std::uint32_t base)
      : inner_(inner), base_(base) {}

  NodeId self() const override { return inner_.self(); }
  std::size_t n() const override { return inner_.n(); }
  SimTime now() const override { return inner_.now(); }
  void send(NodeId to, std::uint32_t channel, MessagePtr msg) override {
    inner_.send(to, base_ + channel, std::move(msg));
  }
  void broadcast(std::uint32_t channel, MessagePtr msg) override {
    inner_.broadcast(base_ + channel, std::move(msg));
  }
  void charge_compute(SimTime us) override { inner_.charge_compute(us); }
  Rng& rng() override { return inner_.rng(); }

 private:
  Context& inner_;
  std::uint32_t base_;
};

SessionMux::SessionMux(Config cfg, SessionFactory factory)
    : cfg_(cfg), factory_(std::move(factory)) {
  if (cfg_.expected < 1) throw ConfigError("SessionMux: expected must be >= 1");
  if (cfg_.stride < 1) throw ConfigError("SessionMux: stride must be >= 1");
  if (!factory_) throw ConfigError("SessionMux: factory required");
  // The last session's window must fit the 32-bit channel space.
  if (static_cast<std::uint64_t>(cfg_.expected) * cfg_.stride >
      std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError("SessionMux: expected * stride overflows channel space");
  }
  if ((cfg_.stride & (cfg_.stride - 1)) == 0) {
    shift_ = std::countr_zero(cfg_.stride);
  }
  sessions_.resize(cfg_.expected);
  finished_.assign(cfg_.expected, false);
}

void SessionMux::on_start(Context& ctx) {
  if (cfg_.mode == Mode::kConcurrent) {
    for (std::uint32_t sid = 0; sid < cfg_.expected; ++sid) {
      ensure_open(ctx, sid);
    }
  } else {
    ensure_open(ctx, 0);
  }
  // A session may terminate within its own on_start (degenerate protocols);
  // settle the chain.
  for (std::uint32_t sid = 0; sid < cfg_.expected; ++sid) {
    if (sessions_[sid]) after_delivery(ctx, sid);
  }
}

void SessionMux::ensure_open(Context& ctx, std::uint32_t sid) {
  DELPHI_ASSERT(sid < cfg_.expected, "SessionMux: sid out of range");
  if (sessions_[sid]) return;
  sessions_[sid] = factory_(sid);
  DELPHI_ASSERT(sessions_[sid] != nullptr, "SessionMux: factory returned null");
  ++open_;
  WindowContext wctx(ctx, sid * cfg_.stride);
  sessions_[sid]->on_start(wctx);
}

void SessionMux::on_message(Context& ctx, NodeId from, std::uint32_t channel,
                            const MessageBody& body) {
  const std::uint32_t sid = sid_of(channel);
  DELPHI_REQUIRE(sid < cfg_.expected, "SessionMux: channel beyond sessions");
  // Lazy open: a peer already progressed into this session.
  ensure_open(ctx, sid);
  WindowContext wctx(ctx, sid * cfg_.stride);
  sessions_[sid]->on_message(wctx, from, offset_of(channel), body);
  after_delivery(ctx, sid);
}

void SessionMux::after_delivery(Context& ctx, std::uint32_t sid) {
  if (!finished_[sid]) {
    if (!sessions_[sid]->terminated()) return;
    finished_[sid] = true;
    ++done_;
  }
  if (cfg_.mode != Mode::kSequential) return;
  // Advance the chain frontier. A lazily-opened successor may terminate
  // before its predecessor (a fast peer ran ahead), so the frontier must
  // skip every already-finished session — stopping at the first finished
  // successor would strand the sessions beyond it forever. Only the
  // frontier session is ever opened here: sessions past it wait until
  // their turn (or a peer's traffic opens them lazily). The outer loop
  // re-settles because a freshly opened session may terminate inside its
  // own on_start (degenerate protocols).
  while (true) {
    while (chain_next_ < cfg_.expected && finished_[chain_next_]) {
      ++chain_next_;
    }
    if (chain_next_ >= cfg_.expected || sessions_[chain_next_] != nullptr) {
      return;
    }
    ensure_open(ctx, chain_next_);
    if (!sessions_[chain_next_]->terminated()) return;
    finished_[chain_next_] = true;
    ++done_;
  }
}

const Protocol* SessionMux::session(std::uint32_t sid) const {
  DELPHI_ASSERT(sid < cfg_.expected, "SessionMux: sid out of range");
  return sessions_[sid].get();
}

}  // namespace delphi::net
