#include "net/wakeup.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

#if defined(__linux__)
#define DELPHI_HAVE_EVENTFD 1
#include <sys/eventfd.h>
#endif

namespace delphi::net {

WakeupFd::WakeupFd() {
#ifdef DELPHI_HAVE_EVENTFD
  read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (read_fd_ < 0) {
    throw Error(std::string("eventfd: ") + std::strerror(errno));
  }
  write_fd_ = read_fd_;
#else
  int fds[2];
  if (::pipe(fds) < 0) {
    throw Error(std::string("pipe: ") + std::strerror(errno));
  }
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
#endif
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

void WakeupFd::signal() noexcept {
  const std::uint64_t one = 1;
  // EAGAIN means the counter/pipe is already saturated — the poller is
  // already pending wakeup, which is all a signal has to guarantee.
  [[maybe_unused]] const auto n = ::write(write_fd_, &one, sizeof(one));
}

void WakeupFd::drain() noexcept {
  std::uint64_t buf[8];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace delphi::net
