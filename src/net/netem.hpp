#pragma once
/// \file netem.hpp
/// In-process network emulation shim for the socket substrates — the
/// counterpart of the simulator's NetworkAdversary (sim/adversary.hpp) at the
/// send boundary of real TCP/UDP links.
///
/// The simulator schedules delivery times directly; a real socket cannot be
/// delay-scheduled, but its *send side* can be: every outgoing frame first
/// asks its link's LinkShim for a Verdict — drop it, or release it to the
/// wire no earlier than `release_us`. The transports keep shimmed frames in
/// a holdback queue ordered by (release_us, order) and transmit them when
/// due, which reproduces every `adversary=` form from the fault plane on
/// genuine kernel sockets:
///
///   * random-delay:<max_us>      — seeded uniform jitter in [0, max] per frame
///   * targeted-lag:<k>:<lag_us>  — +lag on traffic touching nodes 0..k-1
///   * partition:<k>:<heal_us>    — cross-cut traffic held until heal (+jitter)
///   * burst:<period_us>          — hold to window end, LIFO within the window
///
/// plus the loss/bandwidth knobs the simulator deliberately lacks (its model
/// forbids drops):
///
///   * loss / loss-burst  — Gilbert–Elliott frame drops (UDP only: recovery
///                          relies on the UDP substrate's retransmission)
///   * rate-kbps          — token-bucket bandwidth cap per directed link
///
/// Determinism: a LinkShim draws from its own Rng seeded from
/// (seed, from, to), so the drop/jitter schedule for a given config is a pure
/// function of the spec — same seed ⇒ same schedule, which netem_shim_test
/// pins. (Wall-clock send times still vary run to run, so socket runs are not
/// bit-reproducible like sim runs; the *schedule function* is.)

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace delphi::net::netem {

/// Declarative emulation parameters for one cluster, derived from a
/// ScenarioSpec by the scenario layer. Default-constructed = inert (no
/// emulation, zero per-frame cost).
struct Config {
  /// Master seed; each directed link forks its own stream from (seed,from,to).
  std::uint64_t seed = 1;

  /// random-delay: uniform extra delay in [0, jitter_max_us] per frame.
  SimTime jitter_max_us = 0;

  /// targeted-lag: +lag_us on every frame from or to nodes 0..lag_k-1.
  std::size_t lag_k = 0;
  SimTime lag_us = 0;

  /// partition: frames crossing the cut between nodes 0..partition_k-1 and
  /// the rest are held until heal_us (measured from cluster start), plus a
  /// small seeded jitter so releases don't collapse to one instant — the
  /// same semantics as sim::PartitionAdversary.
  std::size_t partition_k = 0;
  SimTime heal_us = 0;
  /// One-way variant: only group→rest traffic is blocked; rest→group flows
  /// freely. (Class-level knob for asymmetric-link experiments and tests;
  /// the spec's partition form is symmetric.)
  bool oneway = false;

  /// burst: hold every frame to the end of its period-sized window and
  /// release LIFO within the window (sim::BurstReorderAdversary).
  SimTime burst_period_us = 0;

  /// Gilbert–Elliott frame loss: unconditional drop probability `loss` with
  /// mean drop-run length `loss_burst_len` (1 = independent Bernoulli).
  double loss = 0.0;
  double loss_burst_len = 1.0;

  /// Token-bucket bandwidth cap in bytes per microsecond (0 = uncapped);
  /// the bucket holds `bucket_depth_us` worth of line rate as burst credit.
  double rate_bytes_per_us = 0.0;
  SimTime bucket_depth_us = 20'000;

  /// True when any knob is set — transports skip the shim entirely (and its
  /// holdback bookkeeping) for inert configs.
  bool active() const noexcept {
    return jitter_max_us > 0 || (lag_k > 0 && lag_us > 0) ||
           (partition_k > 0 && heal_us > 0) || burst_period_us > 0 ||
           loss > 0.0 || rate_bytes_per_us > 0.0;
  }
};

/// Emulation state of ONE directed link (from → to). The owning transport
/// calls on_send() once per transmission attempt with the link-local
/// monotonic time (µs since cluster start) and acts on the verdict.
class LinkShim {
 public:
  /// Inert shim: every verdict is "send now".
  LinkShim() = default;

  LinkShim(const Config& cfg, NodeId from, NodeId to);

  struct Verdict {
    /// Drop the frame (Gilbert–Elliott loss). Only meaningful on substrates
    /// with a recovery layer; the TCP transport ignores it by design.
    bool drop = false;
    /// Earliest wire time (same clock as `now_us`); <= now means send now.
    SimTime release_us = 0;
    /// Secondary ordering key for equal release times: ascending within the
    /// holdback queue. Burst windows hand out *descending* orders so later
    /// sends overtake earlier ones (LIFO), mirroring the sim adversary.
    std::uint64_t order = 0;
  };

  /// Verdict for a frame of `wire_bytes` attempted at `now_us`. Advances the
  /// deterministic schedule (RNG draws, bucket level, loss state) even for
  /// frames the caller ends up not sending.
  Verdict on_send(SimTime now_us, std::size_t wire_bytes);

  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  Rng rng_{0};

  // Resolved per-link behaviour (from/to baked in at construction).
  SimTime jitter_max_us_ = 0;
  SimTime lag_us_ = 0;         ///< 0 when this link is not lagged
  SimTime heal_us_ = 0;        ///< 0 when this link is not partitioned
  SimTime burst_period_us_ = 0;

  // Gilbert–Elliott loss channel.
  double p_enter_bad_ = 0.0;   ///< good → bad transition probability
  double p_exit_bad_ = 1.0;    ///< bad → good transition probability
  bool loss_bad_state_ = false;

  // Token bucket (bytes); negative = queueing debt already scheduled.
  double rate_ = 0.0;          ///< bytes per µs
  double bucket_cap_ = 0.0;    ///< burst credit in bytes
  double tokens_ = 0.0;
  SimTime bucket_at_ = 0;      ///< last refill time

  // Ordering keys.
  std::uint64_t fifo_order_ = 0;
  SimTime burst_window_ = -1;         ///< window index currently counting down
  std::uint64_t burst_order_ = 0;     ///< descending within the window
};

}  // namespace delphi::net::netem
