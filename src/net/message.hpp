#pragma once
/// \file message.hpp
/// Wire-message abstraction shared by the simulator and the TCP transport.
///
/// Protocol messages are immutable value objects derived from MessageBody.
/// Every message knows its exact encoded size (`wire_size`) and how to
/// serialize itself; the simulator's fast path passes typed message objects
/// by shared_ptr (no per-delivery serialization) while *accounting* bytes as
/// if each copy were encoded, MAC'd and framed — so bandwidth metrics match
/// what the TCP transport actually puts on the wire. Codec unit tests pin the
/// two representations together (serialize → decode → equal, encoded length
/// == wire_size()).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace delphi::net {

/// Base class of all protocol messages.
class MessageBody {
 public:
  MessageBody() = default;
  /// Copies never share the memoized size (it is recomputed on demand);
  /// assignment also invalidates the target's cache — the payload may have
  /// changed size.
  MessageBody(const MessageBody&) noexcept {}
  MessageBody& operator=(const MessageBody&) noexcept {
    cached_wire_size_.store(0, std::memory_order_relaxed);
    return *this;
  }
  virtual ~MessageBody() = default;

  /// Exact number of payload bytes `serialize` will produce. Must be pure:
  /// bodies are immutable, so the size never changes after construction.
  virtual std::size_t wire_size() const = 0;

  /// Memoized wire_size(). A broadcast shares one body across n deliveries
  /// and the simulator accounts bytes once on send and once on receive, so
  /// without the cache a bundle's size is recomputed O(n) times per
  /// broadcast — measurably hot on the CPS benches. Relaxed atomics suffice:
  /// concurrent initializers store the same value (a zero-size payload is
  /// simply recomputed each call).
  std::size_t wire_size_cached() const {
    std::size_t s = cached_wire_size_.load(std::memory_order_relaxed);
    if (s == 0) {
      s = wire_size();
      cached_wire_size_.store(s, std::memory_order_relaxed);
    }
    return s;
  }

  /// Encode the payload (excluding envelope framing and MAC tag).
  virtual void serialize(ByteWriter& w) const = 0;

  /// One-line description for logs/tests.
  virtual std::string debug() const = 0;

 private:
  mutable std::atomic<std::size_t> cached_wire_size_{0};
};

/// Shared immutable handle; a broadcast allocates the body once and shares it
/// across all n deliveries.
using MessagePtr = std::shared_ptr<const MessageBody>;

/// Per-message envelope overhead on the wire:
///   u32 length frame + uvarint channel + payload + 32-byte HMAC tag.
/// Returns the total frame size for a payload of `payload_size` bytes sent on
/// `channel`, with or without authentication.
std::size_t framed_size(std::size_t payload_size, std::uint32_t channel,
                        bool authenticated) noexcept;

}  // namespace delphi::net
