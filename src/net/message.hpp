#pragma once
/// \file message.hpp
/// Wire-message abstraction shared by the simulator and the TCP transport.
///
/// Protocol messages are immutable value objects derived from MessageBody.
/// Every message knows its exact encoded size (`wire_size`) and how to
/// serialize itself; the simulator's fast path passes typed message objects
/// by shared_ptr (no per-delivery serialization) while *accounting* bytes as
/// if each copy were encoded, MAC'd and framed — so bandwidth metrics match
/// what the TCP transport actually puts on the wire. Codec unit tests pin the
/// two representations together (serialize → decode → equal, encoded length
/// == wire_size()).

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace delphi::net {

/// Base class of all protocol messages.
class MessageBody {
 public:
  virtual ~MessageBody() = default;

  /// Exact number of payload bytes `serialize` will produce.
  virtual std::size_t wire_size() const = 0;

  /// Encode the payload (excluding envelope framing and MAC tag).
  virtual void serialize(ByteWriter& w) const = 0;

  /// One-line description for logs/tests.
  virtual std::string debug() const = 0;
};

/// Shared immutable handle; a broadcast allocates the body once and shares it
/// across all n deliveries.
using MessagePtr = std::shared_ptr<const MessageBody>;

/// Per-message envelope overhead on the wire:
///   u32 length frame + uvarint channel + payload + 32-byte HMAC tag.
/// Returns the total frame size for a payload of `payload_size` bytes sent on
/// `channel`, with or without authentication.
std::size_t framed_size(std::size_t payload_size, std::uint32_t channel,
                        bool authenticated) noexcept;

}  // namespace delphi::net
