#include "net/netem.hpp"

#include <algorithm>

namespace delphi::net::netem {

namespace {

/// Partition releases get the same small decollapsing jitter as
/// sim::PartitionAdversary's default.
constexpr SimTime kHealJitterUs = 10'000;

/// Burst windows hand out descending orders starting here; a window would
/// need 2^62 sends to wrap into the ascending FIFO range.
constexpr std::uint64_t kBurstOrderBase = 1ULL << 62;

/// Independent per-directed-link stream from (seed, from, to) — two SplitMix
/// hops so (from, to) and (to, from) decorrelate.
std::uint64_t link_seed(std::uint64_t seed, NodeId from, NodeId to) {
  SplitMix64 a(seed ^ (0x9E3779B97F4A7C15ULL *
                       (static_cast<std::uint64_t>(from) + 1)));
  SplitMix64 b(a.next() ^ (0xBF58476D1CE4E5B9ULL *
                           (static_cast<std::uint64_t>(to) + 1)));
  return b.next();
}

}  // namespace

LinkShim::LinkShim(const Config& cfg, NodeId from, NodeId to)
    : rng_(link_seed(cfg.seed, from, to)) {
  jitter_max_us_ = std::max<SimTime>(cfg.jitter_max_us, 0);
  if (cfg.lag_k > 0 && (from < cfg.lag_k || to < cfg.lag_k)) {
    lag_us_ = std::max<SimTime>(cfg.lag_us, 0);
  }
  const bool from_in = from < cfg.partition_k;
  const bool to_in = to < cfg.partition_k;
  if (cfg.partition_k > 0 && from_in != to_in &&
      (!cfg.oneway || from_in)) {
    heal_us_ = std::max<SimTime>(cfg.heal_us, 0);
  }
  burst_period_us_ = std::max<SimTime>(cfg.burst_period_us, 0);
  if (cfg.loss > 0.0) {
    // Gilbert–Elliott calibrated so the stationary drop fraction equals
    // `loss` with mean drop-run length `loss_burst_len` (1 = Bernoulli).
    const double p = std::min(cfg.loss, 0.999);
    const double len = std::max(1.0, cfg.loss_burst_len);
    p_exit_bad_ = 1.0 / len;
    p_enter_bad_ = std::min(1.0, p / (len * (1.0 - p)));
  }
  if (cfg.rate_bytes_per_us > 0.0) {
    rate_ = cfg.rate_bytes_per_us;
    bucket_cap_ =
        rate_ * static_cast<double>(std::max<SimTime>(cfg.bucket_depth_us, 0));
    tokens_ = bucket_cap_;
  }
  active_ = jitter_max_us_ > 0 || lag_us_ > 0 || heal_us_ > 0 ||
            burst_period_us_ > 0 || p_enter_bad_ > 0.0 || rate_ > 0.0;
}

LinkShim::Verdict LinkShim::on_send(SimTime now_us, std::size_t wire_bytes) {
  Verdict v;
  v.release_us = now_us;
  v.order = ++fifo_order_;
  if (!active_) return v;

  // Loss channel: advance the two-state chain, then drop iff in the bad
  // state. The draw happens on every attempt so the schedule downstream of a
  // drop is unchanged whether or not the caller honours it.
  if (p_enter_bad_ > 0.0) {
    const double u = rng_.uniform();
    if (loss_bad_state_) {
      if (u < p_exit_bad_) loss_bad_state_ = false;
    } else if (u < p_enter_bad_) {
      loss_bad_state_ = true;
    }
    v.drop = loss_bad_state_;
  }

  SimTime release = now_us;

  // Token bucket: refill since the last attempt, spend, and if the bucket
  // went negative the frame queues behind the debt — long-run throughput
  // converges to the configured rate.
  if (rate_ > 0.0) {
    tokens_ += static_cast<double>(now_us - bucket_at_) * rate_;
    tokens_ = std::min(tokens_, bucket_cap_);
    bucket_at_ = now_us;
    tokens_ -= static_cast<double>(wire_bytes);
    if (tokens_ < 0.0) {
      release = std::max(release,
                         now_us + static_cast<SimTime>(-tokens_ / rate_) + 1);
    }
  }

  if (jitter_max_us_ > 0) {
    release = std::max(
        release, now_us + static_cast<SimTime>(rng_.below(
                     static_cast<std::uint64_t>(jitter_max_us_) + 1)));
  }
  if (lag_us_ > 0) release = std::max(release, now_us + lag_us_);
  if (heal_us_ > 0 && now_us < heal_us_) {
    release = std::max(
        release, heal_us_ + static_cast<SimTime>(rng_.below(kHealJitterUs)));
  }
  if (burst_period_us_ > 0) {
    const SimTime window = now_us / burst_period_us_;
    if (window != burst_window_) {
      burst_window_ = window;
      burst_order_ = kBurstOrderBase;
    }
    release = std::max(release, (window + 1) * burst_period_us_);
    v.order = --burst_order_;  // earlier sends sort later: LIFO in the window
  }

  v.release_us = release;
  return v;
}

}  // namespace delphi::net::netem
