#pragma once
/// \file wakeup.hpp
/// WakeupFd — a pollable cross-thread wakeup primitive for event loops.
///
/// An event loop that blocks in poll(2) on its sockets has no way to notice
/// work arriving from another thread (a stop request, a termination
/// notification) except by waking on a timeout tick — which puts a fixed
/// latency floor under every cross-thread signal and burns wakeups while
/// idle. A WakeupFd closes that gap: the loop adds fd() to its poll set and
/// blocks indefinitely; any thread calls signal() to make the fd readable
/// and the poll return immediately; the loop calls drain() to reset it.
///
/// Backed by eventfd(2) on Linux (one fd, one counter word) and a
/// non-blocking self-pipe elsewhere. signal() and drain() never block and
/// are safe to call concurrently from any thread; coalescing is inherent
/// (n signals before a drain wake the poller at least once, exactly as a
/// level-triggered readiness bit should).

#include <cstdint>

namespace delphi::net {

class WakeupFd {
 public:
  /// Throws Error if the kernel refuses an fd pair.
  WakeupFd();
  ~WakeupFd();

  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  /// The fd to add to a poll set with POLLIN.
  int fd() const noexcept { return read_fd_; }

  /// Make fd() readable, waking any poller. Callable from any thread.
  void signal() noexcept;

  /// Consume all pending signals so the next poll blocks again.
  void drain() noexcept;

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  ///< equals read_fd_ on the eventfd path
};

}  // namespace delphi::net
