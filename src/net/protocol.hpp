#pragma once
/// \file protocol.hpp
/// The protocol/runtime boundary: every distributed algorithm in this repo
/// (RBC, ABA, ACS, BinAA, Delphi, Abraham et al.) is a message-driven state
/// machine implementing `Protocol`, talking to its host through `Context`.
/// The same state machines run unchanged under the discrete-event simulator
/// and the TCP transport.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace delphi::net {

/// Host facilities available to a protocol instance.
///
/// `send`/`broadcast` are fire-and-forget over authenticated asynchronous
/// channels: delivery is guaranteed but arbitrarily delayed and reordered
/// (unless the deployment enables FIFO links). `channel` multiplexes
/// sub-protocol instances within one node (e.g. ACS routes channel ids to its
/// n RBC and n ABA children).
class Context {
 public:
  virtual ~Context() = default;

  /// This node's id in 0..n-1.
  virtual NodeId self() const = 0;

  /// System size n.
  virtual std::size_t n() const = 0;

  /// Current local time (simulated µs under the simulator; wall µs under
  /// TCP). Protocols in this repo never branch on time — asynchronous-model
  /// correctness forbids it — but applications and metrics read it.
  virtual SimTime now() const = 0;

  /// Send one message to `to` (loopback allowed).
  virtual void send(NodeId to, std::uint32_t channel, MessagePtr msg) = 0;

  /// Send to every node including self. Self-delivery is local (no network
  /// bytes); the n-1 remote copies share one message body.
  virtual void broadcast(std::uint32_t channel, MessagePtr msg) = 0;

  /// Model CPU work (crypto, aggregation) of `us` microseconds: under the
  /// simulator this extends the node's busy time; under TCP it is a no-op
  /// (real cycles are already spent).
  virtual void charge_compute(SimTime us) = 0;

  /// This node's private deterministic randomness stream.
  virtual Rng& rng() = 0;
};

/// Implemented by protocols whose result is a single real value (all the
/// approximate-agreement / convex-BA protocols in this repo). Harnesses and
/// applications read outputs through this interface without knowing concrete
/// protocol types.
class ValueOutput {
 public:
  virtual ~ValueOutput() = default;

  /// The node's decided value, or nullopt before termination.
  virtual std::optional<double> output_value() const = 0;
};

/// A message-driven protocol state machine.
///
/// Contract:
///  * `on_start` is invoked exactly once before any delivery.
///  * `on_message` is invoked serially (single-threaded per node).
///  * `terminated()` is monotone: once true it stays true.
///  * Malformed adversarial input must raise ProtocolViolation (the host
///    drops the message); honest state must stay consistent.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Begin execution (send initial messages).
  virtual void on_start(Context& ctx) = 0;

  /// Handle one delivered message.
  virtual void on_message(Context& ctx, NodeId from, std::uint32_t channel,
                          const MessageBody& body) = 0;

  /// True once this node has produced its final output.
  virtual bool terminated() const = 0;
};

/// Optional capability: a protocol that can checkpoint its state and resume
/// from the checkpoint in a fresh instance — the catch-up hook of the churn
/// plane. When a node restarts on a socket substrate, the transport snapshots
/// the protocol at shutdown and restores it into a factory-fresh instance at
/// rejoin (modelling a real process restart from a persisted checkpoint).
/// Protocols that do not implement this keep their live instance across the
/// restart instead (an implicit in-memory snapshot) and rely on peer
/// retransmission of undelivered frames to catch up.
///
/// Contract: `restore(r)` on a fresh instance built by the same factory with
/// the same configuration must reproduce the snapshotted instance exactly —
/// same `terminated()`, same outputs, same reaction to every future message.
class RestartableProtocol {
 public:
  virtual ~RestartableProtocol() = default;

  /// Serialize resumable state (not configuration — the factory re-supplies
  /// that) into `w`.
  virtual void snapshot(ByteWriter& w) const = 0;

  /// Restore state written by snapshot(). Throws SerializationError /
  /// ProtocolViolation on malformed bytes.
  virtual void restore(ByteReader& r) = 0;
};

/// Builds node i's protocol instance. The shared deployment-population hook
/// of every substrate (simulator harness, TCP cluster, scenario runtimes);
/// Byzantine placements return adversarial implementations.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(NodeId id)>;

}  // namespace delphi::net
