#include "net/message.hpp"

#include "crypto/hmac.hpp"

namespace delphi::net {

std::size_t framed_size(std::size_t payload_size, std::uint32_t channel,
                        bool authenticated) noexcept {
  return 4                              // u32 length prefix
         + uvarint_size(channel)        // channel id
         + payload_size                 // body
         + (authenticated ? crypto::kMacTagSize : 0);
}

}  // namespace delphi::net
