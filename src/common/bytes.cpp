#include "common/bytes.hpp"

#include <bit>

namespace delphi {

void ByteWriter::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  // Zigzag: maps small magnitudes (either sign) to small codes.
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63);
  uvarint(u);
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  uvarint(data.size());
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  uvarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::uint8_t ByteReader::u8() { return get_le<std::uint8_t>(); }
std::uint16_t ByteReader::u16() { return get_le<std::uint16_t>(); }
std::uint32_t ByteReader::u32() { return get_le<std::uint32_t>(); }
std::uint64_t ByteReader::u64() { return get_le<std::uint64_t>(); }

std::uint64_t ByteReader::uvarint() {
  std::uint64_t v = 0;
  for (std::size_t shift = 0; shift < 70; shift += 7) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7Eu) != 0) {
      throw SerializationError("uvarint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
  }
  throw SerializationError("uvarint too long");
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t u = uvarint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> ByteReader::bytes() {
  const std::uint64_t n = uvarint();
  if (n > remaining()) throw SerializationError("byte string length overflow");
  auto view = raw(static_cast<std::size_t>(n));
  return {view.begin(), view.end()};
}

std::string ByteReader::str() {
  const std::uint64_t n = uvarint();
  if (n > remaining()) throw SerializationError("string length overflow");
  auto view = raw(static_cast<std::size_t>(n));
  return {reinterpret_cast<const char*>(view.data()), view.size()};
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::size_t uvarint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::size_t svarint_size(std::int64_t v) noexcept {
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63);
  return uvarint_size(u);
}

}  // namespace delphi
