#pragma once
/// \file bitset.hpp
/// Dynamic fixed-capacity bitset over node ids with a cached popcount.
///
/// Quorum tracking ("which senders echoed value v?") is the hottest state in
/// every protocol here; with hundreds of BinAA instances per node a
/// std::set<NodeId> per (instance, round, value) would cost gigabytes at
/// n = 160. This bitset costs ceil(n/64) words and O(1) membership/insert.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace delphi {

/// Set of node ids in [0, n).
class NodeBitset {
 public:
  NodeBitset() = default;

  explicit NodeBitset(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  /// Insert; returns true iff the id was newly added.
  bool insert(NodeId id) {
    DELPHI_ASSERT(id < n_, "NodeBitset: id out of range");
    const std::uint64_t mask = std::uint64_t{1} << (id % 64);
    std::uint64_t& w = words_[id / 64];
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  /// Membership test.
  bool contains(NodeId id) const {
    DELPHI_ASSERT(id < n_, "NodeBitset: id out of range");
    return (words_[id / 64] >> (id % 64)) & 1;
  }

  /// Number of members (O(1), cached).
  std::size_t count() const noexcept { return count_; }

  /// Capacity n the set was created for.
  std::size_t capacity() const noexcept { return n_; }

  /// True when no ids are present.
  bool empty() const noexcept { return count_ == 0; }

  /// Invoke fn(NodeId) for every member in increasing id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace delphi
