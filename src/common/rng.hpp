#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// The project never uses `std::normal_distribution` et al. because their
/// output is implementation-defined: the same seed would produce different
/// simulations on different standard libraries, breaking reproducibility of
/// every experiment. Instead we ship xoshiro256** plus hand-rolled samplers
/// (see stats/) whose output is bit-identical everywhere.

#include <array>
#include <cstdint>

namespace delphi {

/// SplitMix64 — used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (seed + stream id).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit output.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, tiny state.
/// Deterministic across platforms; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion (recommended by the xoshiro authors).
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent generator for a named sub-stream. Streams derived
  /// from distinct ids are statistically independent; this is how the
  /// simulator gives every node/channel its own RNG without correlation.
  Rng fork(std::uint64_t stream_id) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64 bits.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform_pos() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Fair coin.
  bool coin() noexcept { return (next() >> 63) != 0; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace delphi
