#include "common/rng.hpp"

#include <bit>

namespace delphi {

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot emit four
  // zeros in a row, so no further guard is needed.
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Hash the current state together with the stream id through SplitMix64 to
  // obtain an independent seed. The parent generator is not advanced.
  SplitMix64 sm(s_[0] ^ (s_[1] * 0x9E3779B97F4A7C15ULL) ^
                (stream_id * 0xD1B54A32D192ED03ULL));
  std::uint64_t mixed = sm.next() ^ sm.next();
  return Rng(mixed ^ s_[2] ^ (s_[3] + stream_id));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_pos() noexcept {
  return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

}  // namespace delphi
