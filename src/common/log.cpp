#include "common/log.hpp"

namespace delphi {

namespace {
constexpr const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel lvl, std::string_view msg) {
  std::cerr << "[" << level_name(lvl) << "] " << msg << '\n';
}

}  // namespace delphi
