#pragma once
/// \file bytes.hpp
/// Bounds-checked binary serialization: ByteWriter / ByteReader.
///
/// All wire formats in the project are built from these primitives so that
/// message sizes are exact and decoding of adversarial bytes is safe.
/// Integers use little-endian fixed width or LEB128 varints; signed varints
/// use zigzag coding. Doubles are bit-cast to u64 (IEEE-754, little-endian).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace delphi {

/// Append-only binary encoder producing a byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Reserve capacity up front when the caller knows the rough size.
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  /// Fixed-width little-endian writes.
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }

  /// LEB128 unsigned varint (1..10 bytes).
  void uvarint(std::uint64_t v);

  /// Zigzag-coded signed varint.
  void svarint(std::int64_t v);

  /// IEEE-754 double, bit-cast to u64.
  void f64(double v);

  /// Length-prefixed (uvarint) byte string.
  void bytes(std::span<const std::uint8_t> data);

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);

  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> data);

  /// Number of bytes written so far.
  std::size_t size() const noexcept { return buf_.size(); }

  /// Access the encoded bytes.
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }

  /// Move the encoded bytes out (writer becomes empty).
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked binary decoder over a borrowed byte span. Every read throws
/// SerializationError on truncation or malformed varints, so decoding
/// adversarial input is safe by construction.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// LEB128 unsigned varint; rejects encodings longer than 10 bytes.
  std::uint64_t uvarint();

  /// Zigzag-decoded signed varint.
  std::int64_t svarint();

  /// IEEE-754 double.
  double f64();

  /// Length-prefixed byte string; the length is validated against the
  /// remaining input before any allocation (no memory-exhaustion attacks).
  std::vector<std::uint8_t> bytes();

  /// Length-prefixed UTF-8 string.
  std::string str();

  /// Read exactly n raw bytes.
  std::span<const std::uint8_t> raw(std::size_t n);

  /// Bytes not yet consumed.
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  /// True when the whole input has been consumed. Message decoders check this
  /// to reject trailing garbage.
  bool exhausted() const noexcept { return remaining() == 0; }

  /// Throw unless the input was fully consumed.
  void expect_exhausted() const {
    if (!exhausted()) throw SerializationError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw SerializationError("truncated input");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Size in bytes of uvarint(v) — used for exact wire-size accounting without
/// materializing the encoding.
std::size_t uvarint_size(std::uint64_t v) noexcept;

/// Size in bytes of svarint(v).
std::size_t svarint_size(std::int64_t v) noexcept;

}  // namespace delphi
