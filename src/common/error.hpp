#pragma once
/// \file error.hpp
/// Exception hierarchy and invariant-checking helpers.
///
/// Protocol code validates every externally supplied datum (messages may come
/// from Byzantine senders); violations raise typed exceptions which the
/// simulation harness converts into "malformed message dropped" events rather
/// than crashing honest nodes.

#include <stdexcept>
#include <string>

namespace delphi {

/// Root of the project exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A byte stream could not be decoded (truncated, out-of-range varint, ...).
/// Raised while parsing messages; honest nodes treat the message as garbage
/// from a faulty sender and drop it.
class SerializationError : public Error {
 public:
  using Error::Error;
};

/// A message decoded correctly but violates the protocol's schema (e.g. a
/// round number beyond the configured maximum, a value outside [0, 1]).
class ProtocolViolation : public Error {
 public:
  using Error::Error;
};

/// Configuration is internally inconsistent (e.g. epsilon <= 0).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// An internal invariant of *our own* code failed. Never expected to fire;
/// indicates a bug rather than adversarial input.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// A bounded runtime resource (the simulator's event arena/heap, a reorder
/// window) hit its configured capacity — e.g. a pathological adversary
/// schedule keeping tens of millions of frames in flight. Raised *instead of*
/// std::bad_alloc so callers can distinguish "schedule exceeded the
/// deployment's budget" from genuine memory corruption, and can catch it as a
/// delphi::Error.
class ResourceExhausted : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw InternalError(std::string("assertion failed: ") + expr + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

/// Internal invariant check. Always on (protocol correctness depends on it and
/// the cost is negligible next to message handling).
#define DELPHI_ASSERT(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::delphi::detail::assert_fail(#expr, __FILE__, __LINE__, \
                                               (msg));                 \
  } while (false)

/// Validate adversary-controllable input; throws ProtocolViolation.
#define DELPHI_REQUIRE(expr, msg)                      \
  do {                                                 \
    if (!(expr)) throw ::delphi::ProtocolViolation(msg); \
  } while (false)

}  // namespace delphi
