#pragma once
/// \file log.hpp
/// Minimal leveled logger. Off by default so simulations stay fast; tests and
/// examples can raise the level for debugging.

#include <iostream>
#include <sstream>
#include <string_view>

namespace delphi {

/// Severity levels, lowest to highest.
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration (process-wide; simulations are single-threaded,
/// the TCP transport guards stream writes itself).
class Log {
 public:
  /// Current threshold; messages below it are discarded.
  static LogLevel level() noexcept { return level_; }

  /// Set the threshold (e.g. LogLevel::kDebug in a failing test).
  static void set_level(LogLevel lvl) noexcept { level_ = lvl; }

  /// True if a message at `lvl` would be emitted.
  static bool enabled(LogLevel lvl) noexcept { return lvl >= level_; }

  /// Emit one line to stderr.
  static void write(LogLevel lvl, std::string_view msg);

 private:
  static inline LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
struct LogLine {
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

/// Usage: DLOG(kDebug) << "rbc deliver from " << j;
#define DLOG(lvl)                                   \
  if (::delphi::Log::enabled(::delphi::LogLevel::lvl)) \
  ::delphi::detail::LogLine(::delphi::LogLevel::lvl)

}  // namespace delphi
