#pragma once
/// \file types.hpp
/// Fundamental identifier and time types shared by every module.

#include <cstddef>
#include <cstdint>
#include <limits>

namespace delphi {

/// Identity of a node/process in the system. Nodes are numbered 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Simulated time in microseconds. Signed so that durations and differences
/// compose without surprises (C++ Core Guidelines ES.102: use signed for
/// arithmetic).
using SimTime = std::int64_t;

/// One millisecond expressed in SimTime units.
inline constexpr SimTime kMillisecond = 1000;
/// One second expressed in SimTime units.
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Byzantine fault bound helper: the largest t with n >= 3t + 1.
constexpr std::size_t max_faults(std::size_t n) noexcept {
  return (n - 1) / 3;
}

/// Quorum size n - t for a system of n nodes tolerating t faults.
constexpr std::size_t quorum_size(std::size_t n, std::size_t t) noexcept {
  return n - t;
}

}  // namespace delphi
