#pragma once
/// \file abraham.hpp
/// Abraham–Amit–Dolev asynchronous approximate agreement (OPODIS'04) — the
/// best prior AAA protocol and the paper's second baseline (Fig 6). Optimal
/// resilience n = 3t+1, O(n³) bits per round (the bottleneck Delphi removes,
/// §III-A), O(log(delta/eps)) rounds.
///
/// Round structure:
///  1. every node reliably broadcasts its current estimate (n parallel
///     Bracha RBCs — equivocation prevention is what forces RBC here);
///  2. after RBC-delivering n-t estimates, broadcast a WITNESS message
///     listing the senders seen;
///  3. wait for n-t witnesses whose entire lists are locally delivered —
///     this guarantees any two honest nodes share >= 2t+1 common values;
///  4. new estimate := midpoint of the t-trimmed value multiset. The honest
///     range at least halves per round.
/// After `rounds` = ceil(log2(delta/eps)) rounds the estimate is the output:
/// eps-agreement with *strict* convex validity [m, M] (Table I row).

#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "net/protocol.hpp"
#include "rbc/rbc.hpp"

namespace delphi::abraham {

/// WITNESS message: the sender's list of RBC-delivered origins for a round.
class WitnessMessage final : public net::MessageBody {
 public:
  WitnessMessage(std::uint32_t round, std::vector<NodeId> ids)
      : round_(round), ids_(std::move(ids)) {}

  std::uint32_t round() const noexcept { return round_; }
  const std::vector<NodeId>& ids() const noexcept { return ids_; }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override;
  static std::shared_ptr<const WitnessMessage> decode(ByteReader& r);

 private:
  std::uint32_t round_;
  std::vector<NodeId> ids_;
};

/// One node of the Abraham et al. protocol.
class AbrahamProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    /// Rounds to run: ceil(log2(delta/eps)) (+1 margin is conventional).
    std::uint32_t rounds = 10;
    /// Input-space sanity bounds for Byzantine value filtering.
    double space_min = -1e18;
    double space_max = 1e18;
  };

  AbrahamProtocol(Config cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return output_.has_value(); }
  std::optional<double> output_value() const override { return output_; }

  /// Current estimate (the output once terminated).
  double estimate() const noexcept { return estimate_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct RoundCtx {
    std::vector<rbc::RbcInstance> rbcs;
    std::vector<std::optional<double>> values;
    std::size_t delivered = 0;
    bool witness_sent = false;
    /// witness_lists[j] = j's reported id set (first valid WITNESS per
    /// sender), stored as a bitset: O(n/8) bytes instead of O(n) ids.
    std::vector<std::optional<NodeBitset>> witness_lists;
    /// Incremental satisfaction tracking (keeps per-delivery work O(1)-ish
    /// instead of rescanning all witnesses on every message):
    /// number of ids each pending witness still waits for...
    std::vector<std::size_t> witness_missing;
    /// ...and, per value id, the witnesses waiting on it.
    std::vector<std::vector<NodeId>> waiters;
    std::size_t satisfied = 0;
    NodeBitset in_union;
    bool advanced = false;
  };

  /// Handle a fresh RBC delivery in (round, slot).
  void on_value_delivered(RoundCtx& rc, NodeId slot);
  /// Handle an accepted witness list from j.
  void on_witness_accepted(RoundCtx& rc, NodeId j);

  std::uint32_t channel_round(std::uint32_t channel) const {
    return channel / (static_cast<std::uint32_t>(cfg_.n) + 1);
  }
  std::uint32_t channel_slot(std::uint32_t channel) const {
    return channel % (static_cast<std::uint32_t>(cfg_.n) + 1);
  }
  std::uint32_t rbc_channel(std::uint32_t round, NodeId j) const {
    return round * (static_cast<std::uint32_t>(cfg_.n) + 1) + j;
  }
  std::uint32_t witness_channel(std::uint32_t round) const {
    return round * (static_cast<std::uint32_t>(cfg_.n) + 1) +
           static_cast<std::uint32_t>(cfg_.n);
  }

  RoundCtx& round_ctx(std::uint32_t round);
  void begin_round(net::Context& ctx);
  void check_progress(net::Context& ctx);

  Config cfg_;
  double estimate_;
  std::uint32_t round_ = 0;  // 0-based current round
  std::vector<RoundCtx> rounds_state_;
  std::optional<double> output_;
};

}  // namespace delphi::abraham
