#include "abraham/abraham.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace delphi::abraham {

namespace {

std::vector<std::uint8_t> encode_value(double v) {
  ByteWriter w(8);
  w.f64(v);
  return w.take();
}

/// Decode an estimate payload; returns nullopt on malformed/out-of-range
/// bytes (a Byzantine broadcaster — its value is simply not counted).
std::optional<double> decode_value(const std::vector<std::uint8_t>& payload,
                                   double lo, double hi) {
  if (payload.size() != 8) return std::nullopt;
  ByteReader r(payload);
  const double v = r.f64();
  if (!std::isfinite(v) || v < lo || v > hi) return std::nullopt;
  return v;
}

}  // namespace

// ---------------------------------------------------------- WitnessMessage --

std::size_t WitnessMessage::wire_size() const {
  std::size_t sz = uvarint_size(round_) + uvarint_size(ids_.size());
  for (NodeId id : ids_) sz += uvarint_size(id);
  return sz;
}

void WitnessMessage::serialize(ByteWriter& w) const {
  w.uvarint(round_);
  w.uvarint(ids_.size());
  for (NodeId id : ids_) w.uvarint(id);
}

std::string WitnessMessage::debug() const {
  return "WITNESS(r=" + std::to_string(round_) +
         ", |ids|=" + std::to_string(ids_.size()) + ")";
}

std::shared_ptr<const WitnessMessage> WitnessMessage::decode(ByteReader& r) {
  const auto round = static_cast<std::uint32_t>(r.uvarint());
  const std::uint64_t count = r.uvarint();
  DELPHI_REQUIRE(count <= r.remaining() + 1, "WITNESS: id count overflow");
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<NodeId>(r.uvarint()));
  }
  return std::make_shared<WitnessMessage>(round, std::move(ids));
}

// --------------------------------------------------------- AbrahamProtocol --

AbrahamProtocol::AbrahamProtocol(Config cfg, double input)
    : cfg_(cfg), estimate_(input) {
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "Abraham AA requires n > 3t");
  DELPHI_ASSERT(cfg_.rounds >= 1, "Abraham AA needs >= 1 round");
  if (!(input >= cfg_.space_min && input <= cfg_.space_max)) {
    throw ConfigError("Abraham AA: input outside the value space");
  }
  rounds_state_.resize(cfg_.rounds);
}

AbrahamProtocol::RoundCtx& AbrahamProtocol::round_ctx(std::uint32_t round) {
  DELPHI_ASSERT(round < cfg_.rounds, "Abraham AA: round out of range");
  RoundCtx& rc = rounds_state_[round];
  if (rc.rbcs.empty()) {
    rc.rbcs.reserve(cfg_.n);
    for (NodeId j = 0; j < cfg_.n; ++j) {
      rc.rbcs.push_back(rbc::RbcInstance(rbc::RbcInstance::Config{
          cfg_.n, cfg_.t, j, rbc_channel(round, j), /*max_payload=*/16}));
    }
    rc.values.assign(cfg_.n, std::nullopt);
    rc.witness_lists.assign(cfg_.n, std::nullopt);
    rc.witness_missing.assign(cfg_.n, 0);
    rc.waiters.assign(cfg_.n, {});
    rc.in_union = NodeBitset(cfg_.n);
  }
  return rc;
}

void AbrahamProtocol::on_value_delivered(RoundCtx& rc, NodeId slot) {
  auto v = decode_value(rc.rbcs[slot].value(), cfg_.space_min, cfg_.space_max);
  if (!v) return;  // malformed Byzantine value: never counted
  rc.values[slot] = *v;
  ++rc.delivered;
  // Wake witnesses that were waiting on this id.
  for (NodeId j : rc.waiters[slot]) {
    if (--rc.witness_missing[j] == 0) {
      ++rc.satisfied;
      rc.witness_lists[j]->for_each(
          [&](NodeId id) { rc.in_union.insert(id); });
    }
  }
  rc.waiters[slot].clear();
  rc.waiters[slot].shrink_to_fit();
}

void AbrahamProtocol::on_witness_accepted(RoundCtx& rc, NodeId j) {
  std::size_t missing = 0;
  rc.witness_lists[j]->for_each([&](NodeId id) {
    if (!rc.values[id]) {
      ++missing;
      rc.waiters[id].push_back(j);
    }
  });
  if (missing == 0) {
    ++rc.satisfied;
    rc.witness_lists[j]->for_each([&](NodeId id) { rc.in_union.insert(id); });
  } else {
    rc.witness_missing[j] = missing;
  }
}

void AbrahamProtocol::on_start(net::Context& ctx) { begin_round(ctx); }

void AbrahamProtocol::begin_round(net::Context& ctx) {
  RoundCtx& rc = round_ctx(round_);
  rc.rbcs[ctx.self()].start(ctx, encode_value(estimate_));
}

void AbrahamProtocol::on_message(net::Context& ctx, NodeId from,
                                 std::uint32_t channel,
                                 const net::MessageBody& body) {
  if (output_) return;
  const std::uint32_t round = channel_round(channel);
  const std::uint32_t slot = channel_slot(channel);
  DELPHI_REQUIRE(round < cfg_.rounds, "Abraham AA: bad round channel");
  RoundCtx& rc = round_ctx(round);

  if (slot < cfg_.n) {
    const bool was = rc.rbcs[slot].delivered();
    rc.rbcs[slot].on_message(ctx, from, body);
    if (!was && rc.rbcs[slot].delivered()) {
      on_value_delivered(rc, static_cast<NodeId>(slot));
    }
  } else {
    const auto* w = dynamic_cast<const WitnessMessage*>(&body);
    DELPHI_REQUIRE(w != nullptr, "Abraham AA: foreign witness message");
    DELPHI_REQUIRE(w->round() == round, "Abraham AA: witness round mismatch");
    if (!rc.witness_lists[from]) {
      // Validate: ids distinct and in range, list size >= n - t (an honest
      // witness has seen at least a quorum).
      NodeBitset ids(cfg_.n);
      bool ok = true;
      for (NodeId id : w->ids()) {
        if (id >= cfg_.n || !ids.insert(id)) {
          ok = false;
          break;
        }
      }
      if (ok && ids.count() >= cfg_.n - cfg_.t) {
        rc.witness_lists[from] = std::move(ids);
        on_witness_accepted(rc, from);
      }
    }
  }
  check_progress(ctx);
}

void AbrahamProtocol::check_progress(net::Context& ctx) {
  while (!output_) {
    RoundCtx& rc = round_ctx(round_);

    // Step 2: witness broadcast after n-t deliveries.
    if (!rc.witness_sent && rc.delivered >= cfg_.n - cfg_.t) {
      rc.witness_sent = true;
      std::vector<NodeId> ids;
      ids.reserve(rc.delivered);
      for (NodeId j = 0; j < cfg_.n; ++j) {
        if (rc.values[j]) ids.push_back(j);
      }
      ctx.broadcast(witness_channel(round_),
                    std::make_shared<WitnessMessage>(round_, ids));
    }

    // Step 3: enough witnesses whose lists we fully delivered? (Tracked
    // incrementally by on_value_delivered / on_witness_accepted.)
    if (rc.satisfied < cfg_.n - cfg_.t) return;

    // Step 4: trimmed-midpoint update over the union of satisfied witnesses.
    std::vector<double> vals;
    vals.reserve(cfg_.n);
    for (NodeId j = 0; j < cfg_.n; ++j) {
      if (rc.in_union.contains(j) && rc.values[j]) {
        vals.push_back(*rc.values[j]);
      }
    }
    DELPHI_ASSERT(vals.size() >= 2 * cfg_.t + 1,
                  "Abraham AA: union smaller than 2t+1");
    std::sort(vals.begin(), vals.end());
    const double lo = vals[cfg_.t];
    const double hi = vals[vals.size() - 1 - cfg_.t];
    estimate_ = 0.5 * (lo + hi);
    rc.advanced = true;

    if (round_ + 1 == cfg_.rounds) {
      output_ = estimate_;
      return;
    }
    ++round_;
    begin_round(ctx);
    // Loop: buffered traffic may already complete the new round.
  }
}

}  // namespace delphi::abraham
