#pragma once
/// \file message.hpp
/// Delphi's bundled wire format (§III-C "Optimizing Communication").
///
/// One DelphiBundle carries every echo a node produced while handling one
/// event, across all levels and checkpoints:
///  * explicit entries — echoes of *active* checkpoint instances
///    (level, k, kind, round, value);
///  * default entries — one entry stands for the same echo in EVERY
///    checkpoint of a level that no one has ever referenced explicitly (the
///    single "virtual default instance" aggregating the infinite quiet
///    checkpoints; its state is provably 0 at honest nodes).
/// This is what turns per-checkpoint BinAA traffic into Õ(n²) bits per round.

#include <vector>

#include "binaa/core.hpp"
#include "net/message.hpp"

namespace delphi::protocol {

/// Echo of one active checkpoint instance.
struct ExplicitEcho {
  std::uint32_t level = 0;
  std::int64_t k = 0;  ///< checkpoint index (mu = k * rho_level)
  std::uint8_t kind = 1;
  std::uint32_t round = 1;
  binaa::ScaledValue value = 0;
};

/// Echo of the virtual default instance of one level.
struct DefaultEcho {
  std::uint32_t level = 0;
  std::uint8_t kind = 1;
  std::uint32_t round = 1;
  binaa::ScaledValue value = 0;
};

/// The bundled message.
class DelphiBundle final : public net::MessageBody {
 public:
  DelphiBundle(std::vector<DefaultEcho> defaults,
               std::vector<ExplicitEcho> explicits)
      : defaults_(std::move(defaults)), explicits_(std::move(explicits)) {}

  const std::vector<DefaultEcho>& defaults() const noexcept {
    return defaults_;
  }
  const std::vector<ExplicitEcho>& explicits() const noexcept {
    return explicits_;
  }

  bool empty() const noexcept {
    return defaults_.empty() && explicits_.empty();
  }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override;
  static std::shared_ptr<const DelphiBundle> decode(ByteReader& r);

 private:
  std::vector<DefaultEcho> defaults_;
  std::vector<ExplicitEcho> explicits_;
};

}  // namespace delphi::protocol
