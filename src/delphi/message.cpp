#include "delphi/message.hpp"

#include <sstream>

#include "common/error.hpp"

namespace delphi::protocol {

std::size_t DelphiBundle::wire_size() const {
  std::size_t sz = uvarint_size(defaults_.size());
  for (const auto& d : defaults_) {
    sz += uvarint_size(d.level) + 1 + uvarint_size(d.round) +
          svarint_size(d.value);
  }
  sz += uvarint_size(explicits_.size());
  for (const auto& e : explicits_) {
    sz += uvarint_size(e.level) + svarint_size(e.k) + 1 +
          uvarint_size(e.round) + svarint_size(e.value);
  }
  return sz;
}

void DelphiBundle::serialize(ByteWriter& w) const {
  w.uvarint(defaults_.size());
  for (const auto& d : defaults_) {
    w.uvarint(d.level);
    w.u8(d.kind);
    w.uvarint(d.round);
    w.svarint(d.value);
  }
  w.uvarint(explicits_.size());
  for (const auto& e : explicits_) {
    w.uvarint(e.level);
    w.svarint(e.k);
    w.u8(e.kind);
    w.uvarint(e.round);
    w.svarint(e.value);
  }
}

std::string DelphiBundle::debug() const {
  std::ostringstream os;
  os << "DelphiBundle(defaults=" << defaults_.size()
     << ", explicits=" << explicits_.size() << ")";
  return os.str();
}

std::shared_ptr<const DelphiBundle> DelphiBundle::decode(ByteReader& r) {
  // Entry counts are validated against the remaining bytes before any
  // allocation: each entry costs at least 4 bytes on the wire, so a Byzantine
  // count cannot trigger an oversized reserve.
  const std::uint64_t nd = r.uvarint();
  DELPHI_REQUIRE(nd <= r.remaining() / 4 + 1, "bundle: default count overflow");
  std::vector<DefaultEcho> defaults;
  defaults.reserve(nd);
  for (std::uint64_t i = 0; i < nd; ++i) {
    DefaultEcho d;
    d.level = static_cast<std::uint32_t>(r.uvarint());
    d.kind = r.u8();
    d.round = static_cast<std::uint32_t>(r.uvarint());
    d.value = r.svarint();
    defaults.push_back(d);
  }
  const std::uint64_t ne = r.uvarint();
  DELPHI_REQUIRE(ne <= r.remaining() / 5 + 1,
                 "bundle: explicit count overflow");
  std::vector<ExplicitEcho> explicits;
  explicits.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    ExplicitEcho e;
    e.level = static_cast<std::uint32_t>(r.uvarint());
    e.k = r.svarint();
    e.kind = r.u8();
    e.round = static_cast<std::uint32_t>(r.uvarint());
    e.value = r.svarint();
    explicits.push_back(e);
  }
  return std::make_shared<DelphiBundle>(std::move(defaults),
                                        std::move(explicits));
}

}  // namespace delphi::protocol
