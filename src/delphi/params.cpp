#include "delphi/params.hpp"

#include <algorithm>
#include <cmath>

namespace delphi::protocol {

void DelphiParams::validate() const {
  if (!(space_max > space_min)) throw ConfigError("Delphi: need e > s");
  if (!(rho0 > 0.0)) throw ConfigError("Delphi: rho0 must be > 0");
  if (!(eps > 0.0)) throw ConfigError("Delphi: eps must be > 0");
  if (!(delta_max >= rho0)) {
    throw ConfigError("Delphi: Delta must be >= rho0");
  }
  if (!(delta_max <= space_max - space_min)) {
    throw ConfigError("Delphi: Delta exceeds the input space");
  }
  // The top level must still have at least one checkpoint inside [s, e].
  if (k_min(max_level()) > k_max(max_level())) {
    throw ConfigError("Delphi: top level has no checkpoint inside [s, e]");
  }
}

std::uint32_t DelphiParams::max_level() const {
  const double ratio = delta_max / rho0;
  const double l = std::ceil(std::log2(std::max(ratio, 1.0)));
  return static_cast<std::uint32_t>(std::max(l, 0.0));
}

double DelphiParams::rho(std::uint32_t level) const {
  return std::ldexp(rho0, static_cast<int>(level));
}

double DelphiParams::eps_prime(std::size_t n) const {
  const double lm = std::max<double>(max_level(), 1.0);
  return eps / (4.0 * delta_max * lm * static_cast<double>(n));
}

std::uint32_t DelphiParams::r_max(std::size_t n) const {
  const double ep = eps_prime(n);
  const auto r = static_cast<std::int64_t>(std::ceil(std::log2(1.0 / ep)));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(r, 1, 40));
}

std::int64_t DelphiParams::k_min(std::uint32_t level) const {
  return static_cast<std::int64_t>(std::ceil(space_min / rho(level)));
}

std::int64_t DelphiParams::k_max(std::uint32_t level) const {
  return static_cast<std::int64_t>(std::floor(space_max / rho(level)));
}

std::pair<std::int64_t, std::int64_t> DelphiParams::closest_checkpoints(
    std::uint32_t level, double v) const {
  const double r = rho(level);
  auto lo = static_cast<std::int64_t>(std::floor(v / r));
  auto hi = lo + 1;
  lo = std::clamp(lo, k_min(level), k_max(level));
  hi = std::clamp(hi, k_min(level), k_max(level));
  return {lo, hi};
}

DelphiParams DelphiParams::oracle_network() {
  DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;  // "maximum possible price observed so far"
  p.rho0 = 2.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  p.validate();
  return p;
}

DelphiParams DelphiParams::drone_cps() {
  DelphiParams p;
  p.space_min = -1000.0;
  p.space_max = 1000.0;
  p.rho0 = 0.5;
  p.eps = 0.5;
  p.delta_max = 50.0;
  p.validate();
  return p;
}

DelphiParams DelphiParams::from_distribution(const stats::Distribution& dist,
                                             std::size_t n, double lambda_bits,
                                             double eps, double space_min,
                                             double space_max) {
  DelphiParams p;
  p.space_min = space_min;
  p.space_max = space_max;
  p.eps = eps;
  p.rho0 = eps;  // the paper's static choice for minimum validity relaxation
  const double bound = stats::range_bound(dist, n, lambda_bits);
  p.delta_max =
      std::clamp(std::max(bound, p.rho0), p.rho0, space_max - space_min);
  p.validate();
  return p;
}

}  // namespace delphi::protocol
