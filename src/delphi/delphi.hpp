#pragma once
/// \file delphi.hpp
/// The Delphi protocol (Algorithm 2): multi-level checkpoint BinAA plus the
/// cross-level weighted average — the paper's primary contribution.
///
/// Per level l in 0..l_M (separator rho_l = 2^l * rho0):
///  * every checkpoint mu_k = k * rho_l is conceptually one BinAA instance;
///  * a node inputs 1 to the two checkpoints closest to its value v_i and 0
///    everywhere else;
///  * checkpoints nobody ever references are aggregated into one *virtual
///    default instance* per level (state provably 0 at honest nodes), and all
///    echoes emitted while handling a single event are coalesced into one
///    DelphiBundle — together these give the advertised Õ(n²) bits per round.
///
/// After r_M rounds of every instance, aggregation (lines 13-24):
///   (V_l, w_l)  = (weighted average of positive-weight checkpoints, max
///                  weight), or (v_i, eps') when the level is all-zero;
///   w'_0 = w_0², w'_l = w_l * |w_l - w_{l-1}|   (kills levels above the
///                  first all-agree level — the "differentiation" trick);
///   o_i = sum(w'_l * V_l) / sum(w'_l).
///
/// Guarantees (paper §IV): termination (the weight sum is >= 1/2), agreement
/// |o_i - o_j| <= eps, and validity o_i in [min(V_h) - max(rho0, delta),
/// max(V_h) + max(rho0, delta)].
///
/// Liveness note: a node keeps processing and echoing after it outputs
/// (help-after-decide) — going silent would deadlock a t-sized minority
/// whose checkpoints the fast majority never materialized before deciding.
/// See the comment in on_message and PROTOCOL.md §2.

#include <optional>
#include <utility>
#include <vector>

#include "delphi/message.hpp"
#include "delphi/params.hpp"
#include "net/protocol.hpp"

namespace delphi::protocol {

/// One Delphi node.
class DelphiProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    DelphiParams params;
    std::uint32_t channel = 0;
  };

  /// Post-run per-level diagnostics (used by tests and the heatmap bench).
  struct LevelReport {
    double value = 0.0;      ///< V_l
    double weight = 0.0;     ///< w_l
    double weight_prime = 0.0;  ///< w'_l
    std::size_t active_instances = 0;
    bool used_fallback = false;  ///< (v_i, eps') case
  };

  DelphiProtocol(Config cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return output_.has_value(); }

  std::optional<double> output_value() const override { return output_; }

  /// Per-level aggregation details (valid once terminated).
  const std::vector<LevelReport>& level_reports() const;

  /// Number of active (explicitly materialized) instances at a level.
  std::size_t active_instances(std::uint32_t level) const;

  /// BinAA round count in use.
  std::uint32_t r_max() const noexcept { return r_max_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  /// Collects outgoing echoes produced while handling one event.
  struct Collector {
    std::vector<DefaultEcho> defaults;
    std::vector<ExplicitEcho> explicits;
  };

  struct Level {
    binaa::BinAaCore default_core;
    /// Materialized instances, sorted by checkpoint index k. A flat sorted
    /// vector, not a map: the per-sender mention budget keeps the population
    /// small, lookups dominate insertions by orders of magnitude on the hot
    /// path (every echo in every bundle), and binary search over contiguous
    /// pairs beats red-black pointer chasing. Pointers returned by
    /// ensure_instance are invalidated by the *next* materialization — no
    /// caller retains one across deliveries.
    std::vector<std::pair<std::int64_t, binaa::BinAaCore>> instances;
    /// First-mention budget per sender (Byzantine checkpoint-spam guard).
    std::vector<std::uint16_t> mentions_left;

    explicit Level(const binaa::BinAaCore::Config& core_cfg)
        : default_core(core_cfg) {}
  };

  /// True iff k is one of this node's two input-1 checkpoints at `level`.
  bool is_own_checkpoint(std::uint32_t level, std::int64_t k) const;

  /// Materialize instance (level, k) if absent; respects the per-sender
  /// mention budget when the activation is triggered by `from`'s entry.
  /// Returns nullptr when the activation was refused.
  binaa::BinAaCore* ensure_instance(std::uint32_t level, std::int64_t k,
                                    NodeId from, Collector& col);

  void feed_explicit(const ExplicitEcho& e, NodeId from, Collector& col);
  void feed_default(const DefaultEcho& d, NodeId from, Collector& col);
  void append_actions(std::uint32_t level, std::int64_t k,
                      const std::vector<binaa::EchoAction>& acts,
                      Collector& col);
  void append_default_actions(std::uint32_t level,
                              const std::vector<binaa::EchoAction>& acts,
                              Collector& col);
  void flush(net::Context& ctx, Collector&& col);
  void maybe_terminate(net::Context& ctx);
  void aggregate();

  Config cfg_;
  double input_;
  std::uint32_t r_max_;
  /// Instances (incl. per-level default cores) still running; aggregation
  /// fires when this hits zero (kept incrementally: O(1) per delivery).
  std::size_t pending_instances_ = 0;
  std::vector<Level> levels_;
  std::vector<std::pair<std::int64_t, std::int64_t>> own_checkpoints_;
  std::optional<double> output_;
  std::vector<LevelReport> reports_;
  std::vector<binaa::EchoAction> scratch_;  // reused per delivery
};

}  // namespace delphi::protocol
