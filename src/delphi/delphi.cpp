#include "delphi/delphi.hpp"

#include <algorithm>
#include <cmath>

namespace delphi::protocol {

namespace {
/// Per-sender first-mention budget at a level: honest nodes introduce at most
/// their two closest checkpoints (plus relays of instances the receiver will
/// also hear about from the original mentioner), so a budget linear in the
/// level's legitimate active width blocks Byzantine checkpoint-spam without
/// ever throttling honest traffic.
std::uint16_t mention_budget(const DelphiParams& p, std::uint32_t level,
                             std::size_t n) {
  const double width = p.delta_max / p.rho(level);
  const double cap =
      std::min<double>(2.0 * static_cast<double>(n),
                       4.0 + 2.0 * std::ceil(width));
  return static_cast<std::uint16_t>(std::max(8.0, cap));
}
}  // namespace

DelphiProtocol::DelphiProtocol(Config cfg, double input)
    : cfg_(cfg), input_(input) {
  cfg_.params.validate();
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "Delphi requires n > 3t");
  if (!(input >= cfg_.params.space_min && input <= cfg_.params.space_max)) {
    throw ConfigError("Delphi: input outside [s, e]");
  }
  r_max_ = cfg_.params.r_max(cfg_.n);
  const binaa::BinAaCore::Config core_cfg{cfg_.n, cfg_.t, r_max_};
  const std::uint32_t nl = cfg_.params.num_levels();
  levels_.reserve(nl);
  own_checkpoints_.reserve(nl);
  for (std::uint32_t l = 0; l < nl; ++l) {
    levels_.emplace_back(core_cfg);
    levels_.back().mentions_left.assign(
        cfg_.n, mention_budget(cfg_.params, l, cfg_.n));
    own_checkpoints_.push_back(cfg_.params.closest_checkpoints(l, input_));
    ++pending_instances_;  // the level's default core
  }
}

bool DelphiProtocol::is_own_checkpoint(std::uint32_t level,
                                       std::int64_t k) const {
  const auto& [lo, hi] = own_checkpoints_[level];
  return k == lo || k == hi;
}

void DelphiProtocol::on_start(net::Context& ctx) {
  Collector col;
  for (std::uint32_t l = 0; l < levels_.size(); ++l) {
    // The virtual default instance always starts with input 0.
    scratch_.clear();
    levels_[l].default_core.start(false, scratch_);
    append_default_actions(l, scratch_, col);
    // Our two closest checkpoints start with input 1 (Algorithm 2 line 11).
    const auto& [lo, hi] = own_checkpoints_[l];
    ensure_instance(l, lo, ctx.self(), col);
    if (hi != lo) ensure_instance(l, hi, ctx.self(), col);
  }
  flush(ctx, std::move(col));
}

binaa::BinAaCore* DelphiProtocol::ensure_instance(std::uint32_t level,
                                                  std::int64_t k, NodeId from,
                                                  Collector& col) {
  Level& lv = levels_[level];
  auto it = std::lower_bound(
      lv.instances.begin(), lv.instances.end(), k,
      [](const auto& entry, std::int64_t key) { return entry.first < key; });
  if (it != lv.instances.end() && it->first == k) return &it->second;

  if (k < cfg_.params.k_min(level) || k > cfg_.params.k_max(level)) {
    return nullptr;  // outside the input space — Byzantine garbage
  }
  if (lv.mentions_left[from] == 0) return nullptr;  // spam guard
  --lv.mentions_left[from];

  const binaa::BinAaCore::Config core_cfg{cfg_.n, cfg_.t, r_max_};
  it = lv.instances.emplace(it, k, binaa::BinAaCore(core_cfg));
  ++pending_instances_;
  scratch_.clear();
  it->second.start(is_own_checkpoint(level, k), scratch_);
  append_actions(level, k, scratch_, col);
  return &it->second;
}

void DelphiProtocol::feed_explicit(const ExplicitEcho& e, NodeId from,
                                   Collector& col) {
  if (e.level >= levels_.size()) return;  // Byzantine garbage
  binaa::BinAaCore* core = ensure_instance(e.level, e.k, from, col);
  if (core == nullptr) return;
  const bool was_done = core->done();
  scratch_.clear();
  core->on_echo(e.kind, e.round, e.value, from, scratch_);
  append_actions(e.level, e.k, scratch_, col);
  if (!was_done && core->done()) --pending_instances_;
}

void DelphiProtocol::feed_default(const DefaultEcho& d, NodeId from,
                                  Collector& col) {
  if (d.level >= levels_.size()) return;
  binaa::BinAaCore& core = levels_[d.level].default_core;
  const bool was_done = core.done();
  scratch_.clear();
  core.on_echo(d.kind, d.round, d.value, from, scratch_);
  append_default_actions(d.level, scratch_, col);
  if (!was_done && core.done()) --pending_instances_;
}

void DelphiProtocol::append_actions(std::uint32_t level, std::int64_t k,
                                    const std::vector<binaa::EchoAction>& acts,
                                    Collector& col) {
  for (const auto& a : acts) {
    col.explicits.push_back(ExplicitEcho{level, k, a.kind, a.round, a.value});
  }
}

void DelphiProtocol::append_default_actions(
    std::uint32_t level, const std::vector<binaa::EchoAction>& acts,
    Collector& col) {
  for (const auto& a : acts) {
    col.defaults.push_back(DefaultEcho{level, a.kind, a.round, a.value});
  }
}

void DelphiProtocol::on_message(net::Context& ctx, NodeId from,
                                std::uint32_t channel,
                                const net::MessageBody& body) {
  // NOTE: processing continues after termination (output_ stays frozen; see
  // maybe_terminate). A terminated node must keep echoing so that laggards —
  // e.g. a t-sized minority behind a network partition — can still finish
  // instances the fast majority never materialized before deciding. Weight
  // agreement is unaffected: a checkpoint can only reach nonzero weight with
  // >= n - 2t >= t + 1 honest mentioners, at least one of which is outside
  // any t-sized slow set, so early terminators' implicit zero weight only
  // ever coexists with a true zero.
  DELPHI_REQUIRE(channel == cfg_.channel, "Delphi: unexpected channel");
  const auto* bundle = dynamic_cast<const DelphiBundle*>(&body);
  DELPHI_REQUIRE(bundle != nullptr, "Delphi: foreign message type");

  Collector col;
  for (const auto& e : bundle->explicits()) feed_explicit(e, from, col);
  for (const auto& d : bundle->defaults()) feed_default(d, from, col);
  flush(ctx, std::move(col));
  maybe_terminate(ctx);
}

void DelphiProtocol::flush(net::Context& ctx, Collector&& col) {
  if (col.defaults.empty() && col.explicits.empty()) return;
  ctx.broadcast(cfg_.channel,
                std::make_shared<DelphiBundle>(std::move(col.defaults),
                                               std::move(col.explicits)));
}

void DelphiProtocol::maybe_terminate(net::Context&) {
  if (output_ || pending_instances_ != 0) return;
  aggregate();
}

void DelphiProtocol::aggregate() {
  const double eps_prime = cfg_.params.eps_prime(cfg_.n);
  reports_.clear();
  reports_.resize(levels_.size());

  // Per-level representative value V_l and weight w_l (Algorithm 2 line 18).
  for (std::uint32_t l = 0; l < levels_.size(); ++l) {
    LevelReport& rep = reports_[l];
    rep.active_instances = levels_[l].instances.size();
    double sum_w = 0.0, sum_wmu = 0.0, max_w = 0.0;
    for (const auto& [k, core] : levels_[l].instances) {
      const double w = core.output();
      if (w > 0.0) {
        sum_w += w;
        sum_wmu += w * cfg_.params.checkpoint(l, k);
        max_w = std::max(max_w, w);
      }
    }
    if (sum_w > 0.0) {
      rep.value = sum_wmu / sum_w;
      rep.weight = max_w;
    } else {
      // All weights zero: custom fallback weight (line 20).
      rep.value = input_;
      rep.weight = eps_prime;
      rep.used_fallback = true;
    }
  }

  // Cross-level aggregation (lines 21-24): w'_l kills the levels above the
  // first level where everything agrees (weight differentiation).
  double sum_wp = 0.0, sum_wpv = 0.0;
  for (std::uint32_t l = 0; l < reports_.size(); ++l) {
    double wp;
    if (l == 0) {
      wp = reports_[0].weight * reports_[0].weight;
    } else {
      wp = reports_[l].weight *
           std::fabs(reports_[l].weight - reports_[l - 1].weight);
    }
    reports_[l].weight_prime = wp;
    sum_wp += wp;
    sum_wpv += wp * reports_[l].value;
  }
  DELPHI_ASSERT(sum_wp > 0.0, "Delphi: zero weight sum (Theorem IV.1)");
  output_ = sum_wpv / sum_wp;
}

const std::vector<DelphiProtocol::LevelReport>& DelphiProtocol::level_reports()
    const {
  DELPHI_ASSERT(output_.has_value(), "level_reports before termination");
  return reports_;
}

std::size_t DelphiProtocol::active_instances(std::uint32_t level) const {
  DELPHI_ASSERT(level < levels_.size(), "active_instances: bad level");
  return levels_[level].instances.size();
}

}  // namespace delphi::protocol
