#pragma once
/// \file params.hpp
/// Delphi configuration (Algorithm 2's inputs) and derived quantities.
///
/// The protocol is parameterized by the input space [s, e], the level-0
/// separator rho0, the maximum honest range Delta (from the thin-tail
/// analysis, §IV-D — see stats/evt.hpp), and the agreement distance eps.
/// Derived: l_M = ceil(log2(Delta/rho0)) (levels 0..l_M),
/// eps' = eps / (4 * Delta * l_M * n), r_M = ceil(log2(1/eps')).

#include <cstdint>

#include "common/error.hpp"
#include "stats/distributions.hpp"
#include "stats/evt.hpp"

namespace delphi::protocol {

/// Static protocol parameters, identical at every honest node.
struct DelphiParams {
  /// Input space bounds [s, e]; all honest inputs must lie inside.
  double space_min = 0.0;
  double space_max = 1.0;
  /// Separator at level 0 (the paper statically sets rho0 = eps for minimum
  /// validity relaxation; Fig 6a uses rho0 > eps to cut rounds).
  double rho0 = 1.0;
  /// Upper bound Delta on the honest range delta; from EVT analysis.
  double delta_max = 1.0;
  /// Agreement distance eps.
  double eps = 1.0;

  /// Validate internal consistency; throws ConfigError.
  void validate() const;

  /// Highest level index l_M = ceil(log2(Delta / rho0)) (>= 0).
  std::uint32_t max_level() const;

  /// Number of levels = l_M + 1.
  std::uint32_t num_levels() const { return max_level() + 1; }

  /// Separator at level l: rho_l = 2^l * rho0.
  double rho(std::uint32_t level) const;

  /// eps' = eps / (4 * Delta * l_M * n)  (with l_M >= 1 in the formula to
  /// avoid the degenerate single-level zero).
  double eps_prime(std::size_t n) const;

  /// BinAA round count r_M = ceil(log2(1 / eps')), clamped to [1, 40].
  std::uint32_t r_max(std::size_t n) const;

  /// Checkpoint index bounds at a level: k in [k_min, k_max] with
  /// mu_k = k * rho_l inside [s, e].
  std::int64_t k_min(std::uint32_t level) const;
  std::int64_t k_max(std::uint32_t level) const;

  /// Checkpoint value mu_k = k * rho_l.
  double checkpoint(std::uint32_t level, std::int64_t k) const {
    return static_cast<double>(k) * rho(level);
  }

  /// The two checkpoints closest to input v at `level` (clamped into range;
  /// may coincide at the space edge). Honest nodes input 1 exactly to these
  /// (Algorithm 2, line 10-11).
  std::pair<std::int64_t, std::int64_t> closest_checkpoints(
      std::uint32_t level, double v) const;

  /// Convenience constructor for the paper's oracle-network configuration
  /// (§VI-A): rho0 = eps = 2$, Delta = 2000$, space [0, 200000$].
  static DelphiParams oracle_network();

  /// The paper's CPS/drone configuration (§VI-B): rho0 = eps = 0.5 m,
  /// Delta = 50 m, space [-1000 m, 1000 m] around the surveilled area.
  static DelphiParams drone_cps();

  /// Derive parameters from a thin/fat-tailed input distribution via the EVT
  /// range bound: Delta = range_bound(dist, n, lambda_bits) (paper §IV-D).
  static DelphiParams from_distribution(const stats::Distribution& dist,
                                        std::size_t n, double lambda_bits,
                                        double eps, double space_min,
                                        double space_max);
};

}  // namespace delphi::protocol
