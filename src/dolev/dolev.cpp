#include "dolev/dolev.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace delphi::dolev {

// -------------------------------------------------------- RoundValueMessage

std::string RoundValueMessage::debug() const {
  return "DOLEV(r=" + std::to_string(round_) + ", v=" + std::to_string(value_) +
         ")";
}

std::shared_ptr<const RoundValueMessage> RoundValueMessage::decode(
    ByteReader& r) {
  const auto round = static_cast<std::uint32_t>(r.uvarint());
  const double value = r.f64();
  return std::make_shared<RoundValueMessage>(round, value);
}

// ------------------------------------------------------------ DolevProtocol

std::uint32_t DolevProtocol::rounds_for(double delta, double eps) {
  DELPHI_ASSERT(eps > 0.0, "Dolev AA: eps must be positive");
  if (delta <= eps) return 1;
  return static_cast<std::uint32_t>(std::ceil(std::log2(delta / eps)));
}

DolevProtocol::DolevProtocol(Config cfg, double input)
    : cfg_(cfg), estimate_(input) {
  if (cfg_.n < 5 * cfg_.t + 1) {
    throw ConfigError("Dolev AA requires n >= 5t + 1");
  }
  if (cfg_.rounds < 1) throw ConfigError("Dolev AA needs >= 1 round");
  if (!(input >= cfg_.space_min && input <= cfg_.space_max)) {
    throw ConfigError("Dolev AA: input outside the value space");
  }
  rounds_state_.resize(cfg_.rounds);
  for (auto& rc : rounds_state_) rc.values.assign(cfg_.n, std::nullopt);
}

void DolevProtocol::on_start(net::Context& ctx) {
  // Own value arrives via broadcast self-delivery like everyone else's.
  ctx.broadcast(/*channel=*/0,
                std::make_shared<RoundValueMessage>(0, estimate_));
}

void DolevProtocol::on_message(net::Context& ctx, NodeId from,
                               std::uint32_t /*channel*/,
                               const net::MessageBody& body) {
  if (output_.has_value()) return;
  const auto* msg = dynamic_cast<const RoundValueMessage*>(&body);
  DELPHI_REQUIRE(msg != nullptr, "Dolev AA: foreign message type");
  DELPHI_REQUIRE(msg->round() < cfg_.rounds, "Dolev AA: round out of range");
  const double v = msg->value();
  DELPHI_REQUIRE(std::isfinite(v) && v >= cfg_.space_min && v <= cfg_.space_max,
                 "Dolev AA: value outside the value space");

  Round& rc = rounds_state_[msg->round()];
  if (rc.values[from].has_value()) return;  // equivocation: first value wins
  rc.values[from] = v;
  ++rc.count;
  advance_while_ready(ctx);
}

void DolevProtocol::snapshot(ByteWriter& w) const {
  w.f64(estimate_);
  w.uvarint(round_);
  w.u8(output_.has_value() ? 1 : 0);
  if (output_) w.f64(*output_);
  w.uvarint(rounds_state_.size());
  for (const Round& rc : rounds_state_) {
    w.uvarint(rc.count);
    for (const auto& v : rc.values) {
      w.u8(v.has_value() ? 1 : 0);
      if (v) w.f64(*v);
    }
  }
}

void DolevProtocol::restore(ByteReader& r) {
  estimate_ = r.f64();
  round_ = static_cast<std::uint32_t>(r.uvarint());
  DELPHI_REQUIRE(round_ <= cfg_.rounds, "Dolev AA: snapshot round range");
  output_.reset();
  if (r.u8() != 0) output_ = r.f64();
  const std::uint64_t n_rounds = r.uvarint();
  DELPHI_REQUIRE(n_rounds == rounds_state_.size(),
                 "Dolev AA: snapshot round-count mismatch");
  for (Round& rc : rounds_state_) {
    rc.count = static_cast<std::size_t>(r.uvarint());
    DELPHI_REQUIRE(rc.count <= cfg_.n, "Dolev AA: snapshot count range");
    for (auto& v : rc.values) {
      v.reset();
      if (r.u8() != 0) v = r.f64();
    }
  }
  r.expect_exhausted();
}

void DolevProtocol::advance_while_ready(net::Context& ctx) {
  const std::size_t needed = quorum_size(cfg_.n, cfg_.t);
  while (!output_.has_value() && rounds_state_[round_].count >= needed) {
    // Snapshot the collected multiset; exactly the values present now.
    Round& rc = rounds_state_[round_];
    std::vector<double> vals;
    vals.reserve(rc.count);
    for (const auto& v : rc.values) {
      if (v) vals.push_back(*v);
    }
    std::sort(vals.begin(), vals.end());
    // Trim t from each side: survivors are bracketed by honest values.
    DELPHI_ASSERT(vals.size() > 2 * cfg_.t, "Dolev AA: trim underflow");
    const double lo = vals[cfg_.t];
    const double hi = vals[vals.size() - 1 - cfg_.t];
    estimate_ = (lo + hi) / 2.0;

    ++round_;
    if (round_ == cfg_.rounds) {
      output_ = estimate_;
      return;
    }
    ctx.broadcast(/*channel=*/0,
                  std::make_shared<RoundValueMessage>(round_, estimate_));
  }
}

}  // namespace delphi::dolev
