#pragma once
/// \file dolev.hpp
/// Dolev–Lynch–Pinter–Stark–Weihl asynchronous approximate agreement
/// (JACM '86) — the *first* asynchronous AAA protocol and the historical
/// baseline the paper cites as [24] (§III-A, §VII). Resilience n >= 5t + 1
/// (sub-optimal; Abraham et al. later achieved 3t + 1 by adding RBC), but in
/// exchange the protocol is pure multicast: O(n²) messages of O(ℓ) bits per
/// round and no broadcast primitive at all.
///
/// Round structure (asynchronous version, op. cit. §5):
///  1. multicast <round, estimate>;
///  2. wait for n - t round-r values (honest nodes alone eventually supply
///     them, so no helper/relay mechanism is needed for a fixed round count);
///  3. trim the t lowest and t highest of the collected multiset; because at
///     most t values are Byzantine, every survivor is bracketed by honest
///     values, so the trimmed multiset lies inside the honest range;
///  4. new estimate := midpoint of the trimmed multiset.
///
/// With n >= 5t + 1 the honest range contracts by at least 1/2 per round
/// (ibid., Lemma 3 adapted to the midpoint update), so
/// ceil(log2(delta/eps)) rounds give eps-agreement with *strict* convex
/// validity — the same guarantee as Abraham et al. at a stronger resilience
/// requirement. The ablation bench `ablation_resilience` quantifies the
/// three-way trade (Dolev 5t+1 multicast / Abraham 3t+1 RBC / Delphi 3t+1
/// relaxed validity).

#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/protocol.hpp"

namespace delphi::dolev {

/// <round, estimate> multicast payload.
class RoundValueMessage final : public net::MessageBody {
 public:
  RoundValueMessage(std::uint32_t round, double value)
      : round_(round), value_(value) {}

  std::uint32_t round() const noexcept { return round_; }
  double value() const noexcept { return value_; }

  std::size_t wire_size() const override {
    return uvarint_size(round_) + 8;
  }
  void serialize(ByteWriter& w) const override {
    w.uvarint(round_);
    w.f64(value_);
  }
  std::string debug() const override;
  static std::shared_ptr<const RoundValueMessage> decode(ByteReader& r);

 private:
  std::uint32_t round_;
  double value_;
};

/// One node of the Dolev et al. protocol. Implements RestartableProtocol —
/// the churn plane snapshots a node at shutdown and restores it into a
/// factory-fresh instance at rejoin (the reference implementation of the
/// checkpoint/restore hook; see net/protocol.hpp).
class DolevProtocol final : public net::Protocol,
                            public net::ValueOutput,
                            public net::RestartableProtocol {
 public:
  struct Config {
    std::size_t n = 6;
    /// Fault bound; construction rejects n < 5t + 1.
    std::size_t t = 1;
    /// Rounds to run: use rounds_for(delta, eps).
    std::uint32_t rounds = 10;
    /// Input-space sanity bounds for Byzantine value filtering.
    double space_min = -1e18;
    double space_max = 1e18;
  };

  /// ceil(log2(delta/eps)) — the halving-based round budget (>= 1).
  static std::uint32_t rounds_for(double delta, double eps);

  /// Largest t tolerated at system size n (n >= 5t + 1).
  static constexpr std::size_t max_faults_5t(std::size_t n) noexcept {
    return (n - 1) / 5;
  }

  DolevProtocol(Config cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return output_.has_value(); }
  std::optional<double> output_value() const override { return output_; }

  void snapshot(ByteWriter& w) const override;
  void restore(ByteReader& r) override;

  /// Current estimate (equals the output once terminated).
  double estimate() const noexcept { return estimate_; }
  /// Round the node is currently collecting values for (0-based).
  std::uint32_t round() const noexcept { return round_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct Round {
    /// First valid value per sender (later duplicates are ignored).
    std::vector<std::optional<double>> values;
    std::size_t count = 0;
  };

  /// Advance through every round already satisfied by buffered messages.
  void advance_while_ready(net::Context& ctx);

  Config cfg_;
  double estimate_;
  std::uint32_t round_ = 0;
  std::vector<Round> rounds_state_;
  std::optional<double> output_;
};

}  // namespace delphi::dolev
