#pragma once
/// \file rbc.hpp
/// Bracha reliable broadcast (SEND / ECHO / READY), the substrate both
/// baselines need: Abraham et al. uses one RBC per node per round to prevent
/// equivocation at n = 3t+1 (§III-A — this is precisely where the paper
/// locates the O(n³) bottleneck Delphi removes), and the FIN-style ACS
/// disseminates inputs through n parallel RBCs.
///
/// Guarantees with n > 3t:
///  * Validity    — if the broadcaster is honest, every honest node delivers
///                  its value.
///  * Agreement   — no two honest nodes deliver different values.
///  * Totality    — if one honest node delivers, every honest node delivers.

#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "net/message.hpp"
#include "net/protocol.hpp"

namespace delphi::rbc {

/// Wire message for one RBC instance (kind + opaque payload).
class RbcMessage final : public net::MessageBody {
 public:
  enum class Kind : std::uint8_t { kSend = 0, kEcho = 1, kReady = 2 };

  RbcMessage(Kind kind, std::vector<std::uint8_t> payload)
      : kind_(kind), payload_(std::move(payload)) {}

  Kind kind() const noexcept { return kind_; }
  const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override;

  /// Decode (throws SerializationError / ProtocolViolation on bad input).
  static std::shared_ptr<const RbcMessage> decode(ByteReader& r);

 private:
  Kind kind_;
  std::vector<std::uint8_t> payload_;
};

/// One broadcast instance, embeddable in a larger protocol. The owner routes
/// messages for this instance's channel into `on_message` and forwards a
/// Context; the instance sends on its configured channel.
class RbcInstance {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    NodeId broadcaster = 0;
    std::uint32_t channel = 0;
    /// Cap accepted payload size; bigger frames are Byzantine spam.
    std::size_t max_payload = 1 << 20;
  };

  explicit RbcInstance(Config cfg);

  /// Called by the broadcaster to disseminate `payload`.
  void start(net::Context& ctx, std::vector<std::uint8_t> payload);

  /// Feed a message addressed to this instance.
  void on_message(net::Context& ctx, NodeId from, const net::MessageBody& body);

  /// True once this node delivered the broadcast value.
  bool delivered() const noexcept { return delivered_.has_value(); }

  /// The delivered value (valid once delivered()).
  const std::vector<std::uint8_t>& value() const;

  const Config& config() const noexcept { return cfg_; }

 private:
  void maybe_echo(net::Context& ctx, const std::vector<std::uint8_t>& v);
  void maybe_ready(net::Context& ctx);
  void maybe_deliver();

  /// Senders supporting one payload.
  struct PayloadVotes {
    std::vector<std::uint8_t> payload;
    NodeBitset senders;
  };

  PayloadVotes& votes_for(std::vector<PayloadVotes>& votes,
                          const std::vector<std::uint8_t>& payload);

  Config cfg_;
  /// First-received SEND payload from the broadcaster.
  std::optional<std::vector<std::uint8_t>> send_value_;
  /// Senders counted once per message kind (Byzantine double-votes ignored).
  std::vector<PayloadVotes> echoes_;
  std::vector<PayloadVotes> readies_;
  NodeBitset echo_senders_;
  NodeBitset ready_senders_;
  bool sent_echo_ = false;
  bool sent_ready_ = false;
  std::optional<std::vector<std::uint8_t>> delivered_;
};

/// Standalone net::Protocol wrapper around a single RbcInstance — used by the
/// RBC unit/property tests and the quickstart example.
class RbcProtocol final : public net::Protocol {
 public:
  /// \param input  payload to broadcast when this node is the broadcaster.
  RbcProtocol(RbcInstance::Config cfg, std::vector<std::uint8_t> input = {});

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return instance_.delivered(); }

  const RbcInstance& instance() const noexcept { return instance_; }

 private:
  RbcInstance instance_;
  std::vector<std::uint8_t> input_;
};

}  // namespace delphi::rbc
