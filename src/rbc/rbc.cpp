#include "rbc/rbc.hpp"

#include "common/error.hpp"

namespace delphi::rbc {

// -------------------------------------------------------------- RbcMessage --

std::size_t RbcMessage::wire_size() const {
  return 1 + uvarint_size(payload_.size()) + payload_.size();
}

void RbcMessage::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.bytes(payload_);
}

std::string RbcMessage::debug() const {
  switch (kind_) {
    case Kind::kSend: return "RBC.SEND";
    case Kind::kEcho: return "RBC.ECHO";
    case Kind::kReady: return "RBC.READY";
  }
  return "RBC.?";
}

std::shared_ptr<const RbcMessage> RbcMessage::decode(ByteReader& r) {
  const std::uint8_t k = r.u8();
  DELPHI_REQUIRE(k <= 2, "RBC: unknown message kind");
  auto payload = r.bytes();
  return std::make_shared<RbcMessage>(static_cast<Kind>(k),
                                      std::move(payload));
}

// ------------------------------------------------------------- RbcInstance --

RbcInstance::RbcInstance(Config cfg)
    : cfg_(cfg), echo_senders_(cfg.n), ready_senders_(cfg.n) {
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "RBC requires n > 3t");
  DELPHI_ASSERT(cfg_.broadcaster < cfg_.n, "RBC: bad broadcaster id");
}

RbcInstance::PayloadVotes& RbcInstance::votes_for(
    std::vector<PayloadVotes>& votes, const std::vector<std::uint8_t>& payload) {
  for (auto& v : votes) {
    if (v.payload == payload) return v;
  }
  votes.push_back(PayloadVotes{payload, NodeBitset(cfg_.n)});
  return votes.back();
}

void RbcInstance::start(net::Context& ctx, std::vector<std::uint8_t> payload) {
  DELPHI_ASSERT(ctx.self() == cfg_.broadcaster, "only broadcaster starts RBC");
  ctx.broadcast(cfg_.channel, std::make_shared<RbcMessage>(
                                  RbcMessage::Kind::kSend, std::move(payload)));
}

void RbcInstance::on_message(net::Context& ctx, NodeId from,
                             const net::MessageBody& body) {
  const auto* msg = dynamic_cast<const RbcMessage*>(&body);
  DELPHI_REQUIRE(msg != nullptr, "RBC: foreign message type");
  DELPHI_REQUIRE(msg->payload().size() <= cfg_.max_payload,
                 "RBC: oversized payload");

  switch (msg->kind()) {
    case RbcMessage::Kind::kSend: {
      // Only the designated broadcaster may SEND; first SEND wins.
      if (from != cfg_.broadcaster || send_value_.has_value()) return;
      send_value_ = msg->payload();
      maybe_echo(ctx, *send_value_);
      break;
    }
    case RbcMessage::Kind::kEcho: {
      // Count at most one ECHO per sender (whatever the value).
      if (!echo_senders_.insert(from)) return;
      votes_for(echoes_, msg->payload()).senders.insert(from);
      maybe_ready(ctx);
      break;
    }
    case RbcMessage::Kind::kReady: {
      if (!ready_senders_.insert(from)) return;
      votes_for(readies_, msg->payload()).senders.insert(from);
      maybe_ready(ctx);
      maybe_deliver();
      break;
    }
  }
}

void RbcInstance::maybe_echo(net::Context& ctx,
                             const std::vector<std::uint8_t>& v) {
  if (sent_echo_) return;
  sent_echo_ = true;
  ctx.broadcast(cfg_.channel,
                std::make_shared<RbcMessage>(RbcMessage::Kind::kEcho, v));
}

void RbcInstance::maybe_ready(net::Context& ctx) {
  if (sent_ready_) return;
  // Echo quorum: strictly more than (n + t) / 2 echoes for the same value.
  const std::size_t echo_quorum = (cfg_.n + cfg_.t) / 2 + 1;
  for (const auto& v : echoes_) {
    if (v.senders.count() >= echo_quorum) {
      sent_ready_ = true;
      ctx.broadcast(cfg_.channel, std::make_shared<RbcMessage>(
                                      RbcMessage::Kind::kReady, v.payload));
      return;
    }
  }
  // READY amplification: t + 1 READYs for a value let a node that missed the
  // echo quorum join in (this is what gives Totality).
  for (const auto& v : readies_) {
    if (v.senders.count() >= cfg_.t + 1) {
      sent_ready_ = true;
      ctx.broadcast(cfg_.channel, std::make_shared<RbcMessage>(
                                      RbcMessage::Kind::kReady, v.payload));
      return;
    }
  }
}

void RbcInstance::maybe_deliver() {
  if (delivered_) return;
  for (const auto& v : readies_) {
    if (v.senders.count() >= 2 * cfg_.t + 1) {
      delivered_ = v.payload;
      return;
    }
  }
}

const std::vector<std::uint8_t>& RbcInstance::value() const {
  DELPHI_ASSERT(delivered_.has_value(), "RBC value read before delivery");
  return *delivered_;
}

// ------------------------------------------------------------- RbcProtocol --

RbcProtocol::RbcProtocol(RbcInstance::Config cfg,
                         std::vector<std::uint8_t> input)
    : instance_(cfg), input_(std::move(input)) {}

void RbcProtocol::on_start(net::Context& ctx) {
  if (ctx.self() == instance_.config().broadcaster) {
    instance_.start(ctx, input_);
  }
}

void RbcProtocol::on_message(net::Context& ctx, NodeId from,
                             std::uint32_t channel,
                             const net::MessageBody& body) {
  DELPHI_REQUIRE(channel == instance_.config().channel,
                 "RBC: unexpected channel");
  instance_.on_message(ctx, from, body);
}

}  // namespace delphi::rbc
