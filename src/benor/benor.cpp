#include "benor/benor.hpp"

#include "common/error.hpp"

namespace delphi::benor {

// ------------------------------------------------------------ BenOrMessage

std::size_t BenOrMessage::wire_size() const {
  return 1 + uvarint_size(round_) + 1;
}

void BenOrMessage::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.uvarint(round_);
  w.u8(value_);
}

std::string BenOrMessage::debug() const {
  const char* k = kind_ == Kind::kReport
                      ? "R"
                      : (kind_ == Kind::kPropose ? "P" : "FINISH");
  return std::string("BENOR.") + k + "(r=" + std::to_string(round_) +
         ", v=" + std::to_string(value_) + ")";
}

std::shared_ptr<const BenOrMessage> BenOrMessage::decode(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  DELPHI_REQUIRE(kind <= 2, "BenOr: bad message kind");
  const auto round = static_cast<std::uint32_t>(r.uvarint());
  const std::uint8_t value = r.u8();
  return std::make_shared<BenOrMessage>(static_cast<Kind>(kind), round,
                                        value);
}

// ----------------------------------------------------------- BenOrProtocol

BenOrProtocol::BenOrProtocol(Config cfg, bool input)
    : cfg_(cfg), est_(input) {
  if (cfg_.n < 5 * cfg_.t + 1) {
    throw ConfigError("Ben-Or requires n >= 5t + 1");
  }
  if (cfg_.max_rounds < 1) throw ConfigError("Ben-Or: max_rounds must be >= 1");
  finish_senders_[0] = NodeBitset(cfg_.n);
  finish_senders_[1] = NodeBitset(cfg_.n);
}

BenOrProtocol::RoundState& BenOrProtocol::round_state(std::uint32_t r) {
  auto it = rounds_.find(r);
  if (it == rounds_.end()) {
    it = rounds_.emplace(r, RoundState(cfg_.n)).first;
  }
  return it->second;
}

void BenOrProtocol::on_start(net::Context& ctx) {
  round_ = 1;
  begin_round(ctx);
}

void BenOrProtocol::begin_round(net::Context& ctx) {
  DELPHI_ASSERT(round_ <= cfg_.max_rounds, "Ben-Or: round budget exhausted");
  ctx.broadcast(cfg_.channel,
                std::make_shared<BenOrMessage>(BenOrMessage::Kind::kReport,
                                               round_, est_ ? 1 : 0));
}

void BenOrProtocol::on_message(net::Context& ctx, NodeId from,
                               std::uint32_t channel,
                               const net::MessageBody& body) {
  if (terminated_) return;
  DELPHI_REQUIRE(channel == cfg_.channel, "Ben-Or: unexpected channel");
  const auto* msg = dynamic_cast<const BenOrMessage*>(&body);
  DELPHI_REQUIRE(msg != nullptr, "Ben-Or: foreign message type");
  DELPHI_REQUIRE(msg->round() >= 1 && msg->round() <= cfg_.max_rounds,
                 "Ben-Or: round out of range");

  switch (msg->kind()) {
    case BenOrMessage::Kind::kReport: {
      DELPHI_REQUIRE(msg->value() <= 1, "Ben-Or: report value not binary");
      RoundState& rs = round_state(msg->round());
      if (!rs.report_senders.insert(from)) return;
      ++rs.report_count[msg->value()];
      if (msg->round() == round_) try_propose(ctx, rs);
      break;
    }
    case BenOrMessage::Kind::kPropose: {
      DELPHI_REQUIRE(msg->value() <= kBottom, "Ben-Or: bad proposal value");
      RoundState& rs = round_state(msg->round());
      if (!rs.propose_senders.insert(from)) return;
      ++rs.propose_count[msg->value()];
      if (msg->round() == round_) try_advance(ctx, rs);
      break;
    }
    case BenOrMessage::Kind::kFinish: {
      DELPHI_REQUIRE(msg->value() <= 1, "Ben-Or: finish value not binary");
      on_finish(ctx, from, msg->value() == 1);
      break;
    }
  }
}

void BenOrProtocol::try_propose(net::Context& ctx, RoundState& rs) {
  if (rs.proposal_sent) return;
  const std::size_t total = rs.report_count[0] + rs.report_count[1];
  if (total < quorum_size(cfg_.n, cfg_.t)) return;
  rs.proposal_sent = true;
  // Strict majority beyond the fault margin → safe to propose.
  const double bar = static_cast<double>(cfg_.n + cfg_.t) / 2.0;
  std::uint8_t proposal = kBottom;
  for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1}}) {
    if (static_cast<double>(rs.report_count[v]) > bar) proposal = v;
  }
  ctx.broadcast(cfg_.channel,
                std::make_shared<BenOrMessage>(BenOrMessage::Kind::kPropose,
                                               round_, proposal));
  try_advance(ctx, rs);  // proposals may already be quorate
}

void BenOrProtocol::try_advance(net::Context& ctx, RoundState& rs) {
  if (rs.advanced || !rs.proposal_sent) return;
  const std::size_t total =
      rs.propose_count[0] + rs.propose_count[1] + rs.propose_count[kBottom];
  if (total < quorum_size(cfg_.n, cfg_.t)) return;
  rs.advanced = true;

  const double bar = static_cast<double>(cfg_.n + cfg_.t) / 2.0;
  std::optional<bool> decide_v;
  std::optional<bool> adopt_v;
  for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1}}) {
    if (static_cast<double>(rs.propose_count[v]) > bar) decide_v = (v == 1);
    if (rs.propose_count[v] >= cfg_.t + 1) adopt_v = (v == 1);
  }
  if (decide_v) {
    est_ = *decide_v;
    decide(ctx, *decide_v);
    if (terminated_) return;
  } else if (adopt_v) {
    est_ = *adopt_v;
  } else {
    est_ = ctx.rng().below(2) == 1;  // the local coin
  }
  ++round_;
  begin_round(ctx);
  // Replay any buffered progress for the new round.
  RoundState& next = round_state(round_);
  try_propose(ctx, next);
}

void BenOrProtocol::decide(net::Context& ctx, bool b) {
  if (decision_.has_value()) {
    DELPHI_ASSERT(*decision_ == b, "Ben-Or: conflicting decisions");
    return;
  }
  decision_ = b;
  if (!finish_sent_) {
    finish_sent_ = true;
    ctx.broadcast(cfg_.channel,
                  std::make_shared<BenOrMessage>(BenOrMessage::Kind::kFinish,
                                                 round_, b ? 1 : 0));
  }
}

void BenOrProtocol::on_finish(net::Context& ctx, NodeId from, bool b) {
  if (!finish_senders_[b ? 1 : 0].insert(from)) return;
  const std::size_t cnt = finish_senders_[b ? 1 : 0].count();
  if (cnt >= cfg_.t + 1 && !finish_sent_) {
    // Some honest node decided b; join the termination wave.
    finish_sent_ = true;
    decision_ = b;
    ctx.broadcast(cfg_.channel,
                  std::make_shared<BenOrMessage>(BenOrMessage::Kind::kFinish,
                                                 round_, b ? 1 : 0));
  }
  if (cnt >= 2 * cfg_.t + 1 && decision_.has_value() && *decision_ == b) {
    terminated_ = true;
  }
}

std::optional<double> BenOrProtocol::output_value() const {
  if (!terminated_ || !decision_.has_value()) return std::nullopt;
  return *decision_ ? 1.0 : 0.0;
}

}  // namespace delphi::benor
