#pragma once
/// \file benor.hpp
/// Ben-Or's classic randomized asynchronous binary agreement with *local*
/// coins (PODC '83) — the information-theoretic end of the design space the
/// paper's Table I spans with its WaterBear row: no signatures, no threshold
/// setup, no common coin, at the price of expected-exponential round
/// complexity when honest inputs are split (and 5t+1 resilience for this
/// classic variant).
///
/// Per round r (n >= 5t + 1):
///   Phase 1 (report):  broadcast <R, r, est>; collect n - t reports.
///                      If more than (n + t)/2 carry the same v, propose v,
///                      else propose ⊥.
///   Phase 2 (propose): broadcast <P, r, proposal>; collect n - t proposals.
///                      If more than (n + t)/2 carry the same v ≠ ⊥ → decide v.
///                      If at least t + 1 carry v ≠ ⊥            → est = v.
///                      Otherwise                                → est = local
///                      random bit.
/// Termination gadget (as in aba/): deciders broadcast FINISH(b); t + 1
/// FINISH(b) amplify, 2t + 1 terminate the instance.
///
/// Guarantees: Validity and Agreement always (the thresholds make two
/// different phase-2 decisions impossible and a decision sticky); Termination
/// with probability 1 — one round after any honest decision everyone decides,
/// and when nobody decides, each round ends with all-equal estimates with
/// probability >= 2^-(n-t) (the local coins happen to align). Compare
/// aba/aba.hpp (MMR + common coin): expected O(1) rounds, but every round
/// tosses a coin whose real-world implementation costs O(n) pairings.

#include <map>
#include <optional>

#include "common/bitset.hpp"
#include "net/message.hpp"
#include "net/protocol.hpp"

namespace delphi::benor {

/// Phase-2 "no proposal" marker.
inline constexpr std::uint8_t kBottom = 2;

/// Wire message for one Ben-Or instance.
class BenOrMessage final : public net::MessageBody {
 public:
  enum class Kind : std::uint8_t { kReport = 0, kPropose = 1, kFinish = 2 };

  /// `value` is 0/1 for reports and finishes, 0/1/kBottom for proposals.
  BenOrMessage(Kind kind, std::uint32_t round, std::uint8_t value)
      : kind_(kind), round_(round), value_(value) {}

  Kind kind() const noexcept { return kind_; }
  std::uint32_t round() const noexcept { return round_; }
  std::uint8_t value() const noexcept { return value_; }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override;
  static std::shared_ptr<const BenOrMessage> decode(ByteReader& r);

 private:
  Kind kind_;
  std::uint32_t round_;
  std::uint8_t value_;
};

/// One node of Ben-Or binary agreement.
class BenOrProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    std::size_t n = 6;
    /// Fault bound; construction rejects n < 5t + 1.
    std::size_t t = 1;
    std::uint32_t channel = 0;
    /// Abort the run past this many rounds (probabilistic-termination test
    /// safety valve; the expected round count at matched inputs is 1).
    std::uint32_t max_rounds = 4096;
  };

  BenOrProtocol(Config cfg, bool input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return terminated_; }

  /// 0.0 or 1.0 once terminated.
  std::optional<double> output_value() const override;

  /// Decision state (set at the decide rule; termination needs the FINISH
  /// quorum on top).
  bool decided() const noexcept { return decision_.has_value(); }

  /// Rounds consumed so far (diagnostics / the local-coin bench).
  std::uint32_t rounds_used() const noexcept { return round_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct RoundState {
    explicit RoundState(std::size_t n)
        : report_senders(n), propose_senders(n) {}
    NodeBitset report_senders;
    std::size_t report_count[2] = {0, 0};
    bool proposal_sent = false;
    NodeBitset propose_senders;
    std::size_t propose_count[3] = {0, 0, 0};  // 0 / 1 / kBottom
    bool advanced = false;
  };

  RoundState& round_state(std::uint32_t r);
  void begin_round(net::Context& ctx);
  void try_propose(net::Context& ctx, RoundState& rs);
  void try_advance(net::Context& ctx, RoundState& rs);
  void decide(net::Context& ctx, bool b);
  void on_finish(net::Context& ctx, NodeId from, bool b);

  Config cfg_;
  bool est_;
  std::uint32_t round_ = 0;  // 1-based once started
  std::map<std::uint32_t, RoundState> rounds_;
  std::optional<bool> decision_;
  bool finish_sent_ = false;
  NodeBitset finish_senders_[2] = {NodeBitset(0), NodeBitset(0)};
  bool terminated_ = false;
};

}  // namespace delphi::benor
