#pragma once
/// \file vector_delphi.hpp
/// Multi-dimensional Delphi: approximate agreement on d-dimensional vectors
/// by running one DelphiProtocol per coordinate, multiplexed over channels.
///
/// This is exactly the construction the paper deploys for the drone
/// application (§VI-B): "As input L_T,i = (x, y) is a 2D vector, drones use
/// two instances of Delphi to agree on each coordinate individually." The
/// per-coordinate guarantees compose directly:
///  * Termination: every coordinate instance terminates, so the vector does.
///  * Validity: coordinate c of the output lies in the rho-relaxed interval
///    of honest coordinate-c inputs, i.e. the output lies in the relaxed
///    *bounding box* of honest input vectors (box validity — weaker than the
///    convex-hull validity of Mendes-Herlihy-style MDAA, but sufficient for
///    the paper's localization use case and exponentially cheaper).
///  * Agreement: |o_i - o_j|_inf <= max_c eps_c, so the Euclidean distance is
///    at most sqrt(d) * eps.
///
/// All coordinates' traffic shares one transport; coordinate c's messages
/// travel on channel base + c.

#include <optional>
#include <vector>

#include "delphi/delphi.hpp"
#include "net/protocol.hpp"

namespace delphi::multidim {

/// Implemented by protocols whose result is a d-dimensional point.
class VectorOutput {
 public:
  virtual ~VectorOutput() = default;

  /// The node's decided vector, or nullopt before termination.
  virtual std::optional<std::vector<double>> output_vector() const = 0;
};

/// One node agreeing on a d-dimensional vector via d Delphi instances.
class VectorDelphiProtocol final : public net::Protocol, public VectorOutput {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    /// Per-coordinate parameters; size() defines the dimension d >= 1.
    std::vector<protocol::DelphiParams> params;
    /// Coordinate c uses channel `channel_base + c`.
    std::uint32_t channel_base = 0;

    /// Same parameters for every one of `dims` coordinates.
    static Config uniform(std::size_t n, std::size_t t,
                          const protocol::DelphiParams& p, std::size_t dims);
  };

  VectorDelphiProtocol(Config cfg, std::vector<double> input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return done_ == coords_.size(); }

  std::optional<std::vector<double>> output_vector() const override;

  /// Dimension d.
  std::size_t dims() const noexcept { return coords_.size(); }

  /// Per-coordinate protocol (diagnostics: level reports, r_max, ...).
  const protocol::DelphiProtocol& coordinate(std::size_t c) const;

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
  /// unique_ptr: DelphiProtocol is neither movable nor copyable.
  std::vector<std::unique_ptr<protocol::DelphiProtocol>> coords_;
  std::size_t done_ = 0;
};

}  // namespace delphi::multidim
