#include "multidim/vector_delphi.hpp"

#include "common/error.hpp"

namespace delphi::multidim {

VectorDelphiProtocol::Config VectorDelphiProtocol::Config::uniform(
    std::size_t n, std::size_t t, const protocol::DelphiParams& p,
    std::size_t dims) {
  Config c;
  c.n = n;
  c.t = t;
  c.params.assign(dims, p);
  return c;
}

VectorDelphiProtocol::VectorDelphiProtocol(Config cfg,
                                           std::vector<double> input)
    : cfg_(std::move(cfg)) {
  if (cfg_.params.empty()) {
    throw ConfigError("VectorDelphi: dimension must be >= 1");
  }
  if (input.size() != cfg_.params.size()) {
    throw ConfigError("VectorDelphi: input dimension mismatch");
  }
  coords_.reserve(cfg_.params.size());
  for (std::size_t c = 0; c < cfg_.params.size(); ++c) {
    protocol::DelphiProtocol::Config dc;
    dc.n = cfg_.n;
    dc.t = cfg_.t;
    dc.params = cfg_.params[c];
    dc.channel = cfg_.channel_base + static_cast<std::uint32_t>(c);
    coords_.push_back(
        std::make_unique<protocol::DelphiProtocol>(dc, input[c]));
  }
}

void VectorDelphiProtocol::on_start(net::Context& ctx) {
  for (auto& coord : coords_) coord->on_start(ctx);
}

void VectorDelphiProtocol::on_message(net::Context& ctx, NodeId from,
                                      std::uint32_t channel,
                                      const net::MessageBody& body) {
  DELPHI_REQUIRE(channel >= cfg_.channel_base &&
                     channel < cfg_.channel_base + coords_.size(),
                 "VectorDelphi: channel out of range");
  auto& coord = coords_[channel - cfg_.channel_base];
  const bool was_done = coord->terminated();
  coord->on_message(ctx, from, channel, body);
  if (!was_done && coord->terminated()) ++done_;
}

std::optional<std::vector<double>> VectorDelphiProtocol::output_vector()
    const {
  if (!terminated()) return std::nullopt;
  std::vector<double> out;
  out.reserve(coords_.size());
  for (const auto& coord : coords_) {
    const auto v = coord->output_value();
    DELPHI_ASSERT(v.has_value(), "VectorDelphi: child terminated w/o output");
    out.push_back(*v);
  }
  return out;
}

const protocol::DelphiProtocol& VectorDelphiProtocol::coordinate(
    std::size_t c) const {
  DELPHI_ASSERT(c < coords_.size(), "VectorDelphi: coordinate out of range");
  return *coords_[c];
}

}  // namespace delphi::multidim
