#include "adaptive/range_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace delphi::adaptive {

void RangeEstimator::Options::validate() const {
  if (window == 0) throw ConfigError("RangeEstimator: window must be > 0");
  if (min_samples < 8) {
    throw ConfigError("RangeEstimator: min_samples must be >= 8");
  }
  if (!(lambda_bits > 0.0)) {
    throw ConfigError("RangeEstimator: lambda_bits must be positive");
  }
  if (!(fallback_delta > 0.0)) {
    throw ConfigError("RangeEstimator: fallback_delta must be positive");
  }
  if (!(safety_factor >= 1.0)) {
    throw ConfigError("RangeEstimator: safety_factor must be >= 1");
  }
  if (refit_interval == 0) {
    throw ConfigError("RangeEstimator: refit_interval must be > 0");
  }
  if (!(max_delta > 0.0)) {
    throw ConfigError("RangeEstimator: max_delta must be positive");
  }
}

RangeEstimator::RangeEstimator(Options opt) : opt_(opt) { opt_.validate(); }

void RangeEstimator::observe(double delta_sample) {
  if (!(std::isfinite(delta_sample) && delta_sample >= 0.0)) {
    throw ConfigError("RangeEstimator: range sample must be finite and >= 0");
  }
  window_.push_back(delta_sample);
  if (window_.size() > opt_.window) window_.pop_front();
  ++total_;
  ++since_refit_;
  if (warmed_up() && (since_refit_ >= opt_.refit_interval || !fit_)) {
    refit();
  }
}

void RangeEstimator::refit() {
  since_refit_ = 0;
  std::vector<double> xs(window_.begin(), window_.end());
  // Degenerate windows (constant feed) have no fittable shape; keep the
  // fallback and let headroom carry the bound.
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (!(*mx > *mn)) {
    fit_.reset();
    cached_bound_ = std::max(opt_.fallback_delta, *mx * opt_.safety_factor);
    return;
  }
  auto fits = stats::best_fit(xs, {"Gumbel", "Frechet"});
  DELPHI_ASSERT(!fits.empty(), "RangeEstimator: no candidate fits");
  fit_ = fits.front();
  cached_bound_ = tail_quantile(*fit_->dist, opt_.lambda_bits) *
                  opt_.safety_factor;
  // Domain-knowledge ceiling first (tail-index collapse guard), then never
  // report a bound below the largest range already witnessed: the model
  // must at least cover the data it was fitted on.
  cached_bound_ = std::min(cached_bound_, opt_.max_delta);
  cached_bound_ = std::max(cached_bound_, *mx);
}

double RangeEstimator::delta_bound() const {
  if (!warmed_up() || !(cached_bound_ > 0.0)) return opt_.fallback_delta;
  return cached_bound_;
}

std::optional<std::string> RangeEstimator::fitted_family() const {
  if (!fit_) return std::nullopt;
  return fit_->family;
}

std::optional<double> RangeEstimator::fitted_ks() const {
  if (!fit_) return std::nullopt;
  return fit_->ks;
}

protocol::DelphiParams RangeEstimator::make_params(double space_min,
                                                   double space_max,
                                                   double rho0,
                                                   double eps) const {
  protocol::DelphiParams p;
  p.space_min = space_min;
  p.space_max = space_max;
  p.rho0 = rho0;
  p.eps = eps;
  // The honest range can never exceed the input space itself, so the space
  // width caps ∆ no matter how heavy the fitted tail looks.
  p.delta_max = std::clamp(delta_bound(), rho0, space_max - space_min);
  p.validate();
  return p;
}

double tail_quantile(const stats::Distribution& dist, double lambda_bits) {
  const double tail = std::exp2(-lambda_bits);
  const double target = 1.0 - tail;
  // Exponential search for an upper bracket.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 1200 && dist.cdf(hi) < target; ++i) {
    lo = hi;
    hi *= 2.0;
  }
  DELPHI_ASSERT(dist.cdf(hi) >= target,
                "tail_quantile: tail heavier than the search range");
  for (int i = 0; i < 200; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    if (dist.cdf(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace delphi::adaptive
