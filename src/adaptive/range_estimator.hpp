#pragma once
/// \file range_estimator.hpp
/// Online estimation of Delphi's max-range parameter ∆ from observed honest
/// ranges — the operational loop behind the paper's §VI-A/§VI-B methodology.
///
/// The paper configures ∆ *offline*: collect two weeks of per-minute range
/// samples δ = max(V_h) - min(V_h), fit candidate extreme-value families
/// (Fréchet won for the BTC feed, Gumbel/Gamma for the drone errors), and
/// invert the fitted tail at probability 2^-λ. This module packages that
/// exact pipeline as a rolling-window estimator so a deployment can re-derive
/// ∆ as market/sensor conditions drift, instead of freezing a constant
/// forever. Each call to `delta_bound()`:
///   1. fits Gumbel and Fréchet to the current window (stats/fit.hpp — the
///      two families EVT designates for sample ranges);
///   2. keeps the better Kolmogorov–Smirnov fit (the paper's model choice);
///   3. inverts its tail at 1 - 2^-λ by bisection on the CDF;
///   4. applies a configurable engineering headroom factor.
///
/// ∆ feeds DelphiParams; a *larger* ∆ only costs rounds/levels (performance),
/// while a too-small ∆ risks the δ ≤ ∆ assumption — hence the asymmetric
/// safety factor and the conservative warm-up fallback.

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>

#include "delphi/params.hpp"
#include "stats/fit.hpp"

namespace delphi::adaptive {

/// Rolling-window ∆ estimator. Not thread-safe; one per agreement pipeline.
class RangeEstimator {
 public:
  struct Options {
    /// Rolling window size; the paper's horizon is two weeks of per-minute
    /// samples (20160). Older samples are evicted FIFO.
    std::size_t window = 20160;
    /// Observations required before the fitted bound is trusted.
    std::size_t min_samples = 64;
    /// Statistical security: P(δ > ∆) <= 2^-λ under the fitted model.
    double lambda_bits = 30.0;
    /// ∆ reported before warm-up (domain-knowledge bound, paper §IV-D).
    double fallback_delta = 1.0;
    /// Multiplicative headroom on the inverted tail (>= 1).
    double safety_factor = 1.25;
    /// Domain-knowledge ceiling on ∆ (paper §IV-D: "∆ can be set based on
    /// domain knowledge — e.g. the maximum possible price observed so far").
    /// Guards against tail-index collapse when the window straddles regime
    /// changes; infinity disables the cap.
    double max_delta = std::numeric_limits<double>::infinity();
    /// Refit every `refit_interval` observations (fits are O(window log
    /// window); recomputing per observation would be wasteful).
    std::size_t refit_interval = 256;

    void validate() const;
  };

  explicit RangeEstimator(Options opt);

  /// Record one realized range sample δ >= 0 (one per agreement instance).
  void observe(double delta_sample);

  /// Number of samples currently in the window.
  std::size_t count() const noexcept { return window_.size(); }

  /// True once min_samples observations have been made.
  bool warmed_up() const noexcept { return total_ >= opt_.min_samples; }

  /// Current ∆: fallback before warm-up, fitted tail bound after.
  double delta_bound() const;

  /// Best-fit family of the last refit ("Gumbel"/"Frechet"), if warmed up.
  std::optional<std::string> fitted_family() const;

  /// KS distance of the winning fit, if warmed up.
  std::optional<double> fitted_ks() const;

  /// Assemble DelphiParams around the current ∆ estimate. rho0/eps follow the
  /// caller (the paper sets rho0 = eps for minimum relaxation); ∆ is clamped
  /// to at least rho0 so the level ladder is well-formed.
  protocol::DelphiParams make_params(double space_min, double space_max,
                                     double rho0, double eps) const;

  const Options& options() const noexcept { return opt_; }

 private:
  void refit();

  Options opt_;
  std::deque<double> window_;
  std::size_t total_ = 0;
  std::size_t since_refit_ = 0;
  /// Cached result of the last refit (nullopt before first refit).
  std::optional<stats::FitResult> fit_;
  double cached_bound_ = 0.0;
};

/// Invert `dist`'s upper tail: smallest x with 1 - cdf(x) <= 2^-lambda_bits,
/// found by exponential search + bisection. Exposed for tests and for
/// offline configuration tooling.
double tail_quantile(const stats::Distribution& dist, double lambda_bits);

}  // namespace delphi::adaptive
