#include "acs/acs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace delphi::acs {

std::vector<std::uint8_t> encode_value(double v) {
  ByteWriter w(8);
  w.f64(v);
  return w.take();
}

double decode_value(const std::vector<std::uint8_t>& payload) {
  DELPHI_REQUIRE(payload.size() == 8, "ACS: value payload must be 8 bytes");
  ByteReader r(payload);
  const double v = r.f64();
  DELPHI_REQUIRE(std::isfinite(v), "ACS: non-finite value");
  return v;
}

AcsProtocol::AcsProtocol(Config cfg, double input)
    : cfg_(cfg), input_(input) {
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "ACS requires n > 3t");
  DELPHI_ASSERT(cfg_.coin != nullptr, "ACS requires a common coin");
  rbcs_.reserve(cfg_.n);
  abas_.reserve(cfg_.n);
  for (NodeId j = 0; j < cfg_.n; ++j) {
    rbcs_.push_back(rbc::RbcInstance(rbc::RbcInstance::Config{
        cfg_.n, cfg_.t, j, rbc_channel(j), /*max_payload=*/64}));
    abas_.push_back(aba::AbaInstance(aba::AbaInstance::Config{
        cfg_.n, cfg_.t,
        /*instance_id=*/cfg_.session * cfg_.n + j, aba_channel(j), cfg_.coin,
        cfg_.coin_compute_us, /*max_rounds=*/64}));
  }
  aba_input_given_.assign(cfg_.n, false);
  values_.assign(cfg_.n, std::nullopt);
}

void AcsProtocol::on_start(net::Context& ctx) {
  rbcs_[ctx.self()].start(ctx, encode_value(input_));
}

void AcsProtocol::on_message(net::Context& ctx, NodeId from,
                             std::uint32_t channel,
                             const net::MessageBody& body) {
  if (output_) return;  // finished; late traffic is irrelevant
  const auto n32 = static_cast<std::uint32_t>(cfg_.n);
  if (channel < n32) {
    const NodeId j = channel;
    const bool was = rbcs_[j].delivered();
    rbcs_[j].on_message(ctx, from, body);
    if (!was && rbcs_[j].delivered() && !values_[j]) {
      // RBC_j delivered => decode and vote 1 for inclusion of slot j.
      values_[j] = decode_value(rbcs_[j].value());
      if (!aba_input_given_[j]) {
        aba_input_given_[j] = true;
        // start() can decide immediately off buffered traffic (e.g. a
        // quorum of FINISHes arrived before our late RBC delivery — routine
        // after a healed partition); that transition must be counted here
        // exactly like the zero-fill path below, or decided_count_ sticks
        // below n and the node never terminates.
        const bool aba_was = abas_[j].decided();
        abas_[j].start(ctx, true);
        if (!aba_was && abas_[j].decided()) {
          ++decided_count_;
          if (abas_[j].decision()) ++ones_count_;
        }
      }
    }
  } else if (channel < 2 * n32) {
    const NodeId j = channel - n32;
    const bool was = abas_[j].decided();
    abas_[j].on_message(ctx, from, body);
    if (!was && abas_[j].decided()) {
      ++decided_count_;
      if (abas_[j].decision()) ++ones_count_;
    }
  } else {
    throw ProtocolViolation("ACS: channel out of range");
  }
  after_delivery(ctx);
}

void AcsProtocol::after_delivery(net::Context& ctx) {
  // Once n-t slots decided 1, vote 0 for everything still undecided-by-us.
  if (!zero_fill_done_ && ones_count_ >= cfg_.n - cfg_.t) {
    zero_fill_done_ = true;
    for (NodeId j = 0; j < cfg_.n; ++j) {
      if (!aba_input_given_[j]) {
        aba_input_given_[j] = true;
        const bool was = abas_[j].decided();
        abas_[j].start(ctx, false);
        if (!was && abas_[j].decided()) {
          ++decided_count_;
          if (abas_[j].decision()) ++ones_count_;
        }
      }
    }
  }
  if (decided_count_ == cfg_.n) maybe_finish();
}

void AcsProtocol::maybe_finish() {
  if (output_) return;
  // All n ABAs have decided (checked by the caller via decided_count_), and
  // the value of every included slot must have been delivered. (ABA_j
  // deciding 1 implies an honest node input 1, i.e. delivered RBC_j, so by
  // Totality our own delivery is guaranteed to happen — we just wait.)
  std::vector<double> included;
  std::vector<NodeId> subset;
  for (NodeId j = 0; j < cfg_.n; ++j) {
    if (abas_[j].decision()) {
      if (!values_[j]) return;  // still in flight
      included.push_back(*values_[j]);
      subset.push_back(j);
    }
  }
  DELPHI_ASSERT(included.size() >= cfg_.n - cfg_.t,
                "ACS: agreed subset smaller than n - t");
  std::sort(included.begin(), included.end());
  // Median: with |S| >= 2t+1 and <= t Byzantine values, the middle element is
  // bracketed by honest inputs — exact convex validity.
  output_ = included[included.size() / 2];
  subset_ = std::move(subset);
}

}  // namespace delphi::acs
