#pragma once
/// \file acs.hpp
/// Asynchronous Common Subset and the convex-BA adapter built on it — the
/// repo's stand-in for FIN [27], the state-of-the-art ACS the paper
/// benchmarks against (Fig 6).
///
/// Construction (BKR-style; see DESIGN.md for why this is a faithful cost
/// stand-in for FIN): every node reliably broadcasts its input (n parallel
/// Bracha RBCs), one binary-agreement instance per slot decides inclusion,
/// and once n-t slots decided 1 the node inputs 0 to the rest. The agreed
/// subset S has |S| >= n-t >= 2t+1, so the *median* of the delivered values
/// in S lies inside the honest input range — exact convex validity, the
/// property column the paper gives FIN in Table I.
///
/// Costs (matching Table I's FIN row shapes): O(ln² + n³) bits from n RBCs of
/// l-bit values plus n ABAs, constant expected rounds, and coin compute
/// charged per toss (the CPU term that dominates on the CPS testbed).

#include <map>
#include <optional>
#include <vector>

#include "aba/aba.hpp"
#include "crypto/coin.hpp"
#include "net/protocol.hpp"
#include "rbc/rbc.hpp"

namespace delphi::acs {

/// One node of the ACS-median convex-BA protocol.
class AcsProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    /// Coin source shared by the deployment.
    const crypto::CommonCoin* coin = nullptr;
    /// CPU per coin toss (threshold-crypto stand-in; see crypto/coin.hpp).
    SimTime coin_compute_us = 0;
    /// Session id separating coin streams of concurrent ACS runs.
    std::uint64_t session = 0;
  };

  /// \param input this node's real-valued oracle input.
  AcsProtocol(Config cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return output_.has_value(); }

  /// Median of the agreed subset, once terminated.
  std::optional<double> output_value() const override { return output_; }

  /// The agreed subset (node ids whose ABA decided 1), once terminated.
  const std::vector<NodeId>& agreed_subset() const { return subset_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  /// Channel layout: [0, n) RBC slots, [n, 2n) ABA slots.
  std::uint32_t rbc_channel(NodeId j) const { return j; }
  std::uint32_t aba_channel(NodeId j) const {
    return static_cast<std::uint32_t>(cfg_.n) + j;
  }

  void after_delivery(net::Context& ctx);
  void maybe_finish();

  Config cfg_;
  double input_;
  std::vector<rbc::RbcInstance> rbcs_;
  std::vector<aba::AbaInstance> abas_;
  std::vector<bool> aba_input_given_;
  std::vector<std::optional<double>> values_;
  std::size_t decided_count_ = 0;
  std::size_t ones_count_ = 0;
  bool zero_fill_done_ = false;
  std::vector<NodeId> subset_;
  std::optional<double> output_;
};

/// Encode an oracle value as an RBC payload (8-byte IEEE-754).
std::vector<std::uint8_t> encode_value(double v);

/// Decode an RBC payload back to a value; throws on bad size / non-finite.
double decode_value(const std::vector<std::uint8_t>& payload);

}  // namespace delphi::acs
