#include "aba/aba.hpp"

#include "common/error.hpp"

namespace delphi::aba {

// -------------------------------------------------------------- AbaMessage --

std::size_t AbaMessage::wire_size() const {
  return 1 + uvarint_size(round_) + 1;
}

void AbaMessage::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.uvarint(round_);
  w.u8(value_ ? 1 : 0);
}

std::string AbaMessage::debug() const {
  const char* k = kind_ == Kind::kBval  ? "BVAL"
                  : kind_ == Kind::kAux ? "AUX"
                                        : "FINISH";
  return std::string("ABA.") + k + "(r=" + std::to_string(round_) +
         ", b=" + (value_ ? "1" : "0") + ")";
}

std::shared_ptr<const AbaMessage> AbaMessage::decode(ByteReader& r) {
  const std::uint8_t k = r.u8();
  DELPHI_REQUIRE(k <= 2, "ABA: unknown message kind");
  const auto round = static_cast<std::uint32_t>(r.uvarint());
  const std::uint8_t v = r.u8();
  DELPHI_REQUIRE(v <= 1, "ABA: non-binary value");
  return std::make_shared<AbaMessage>(static_cast<Kind>(k), round, v == 1);
}

// ------------------------------------------------------------- AbaInstance --

AbaInstance::AbaInstance(Config cfg) : cfg_(cfg) {
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "ABA requires n > 3t");
  DELPHI_ASSERT(cfg_.coin != nullptr, "ABA requires a common coin");
  finish_senders_[0] = NodeBitset(cfg_.n);
  finish_senders_[1] = NodeBitset(cfg_.n);
}

AbaInstance::RoundState& AbaInstance::round_state(std::uint32_t r) {
  RoundState& rs = rounds_[r];
  if (!rs.initialized) {
    rs.initialized = true;
    rs.bval_senders[0] = NodeBitset(cfg_.n);
    rs.bval_senders[1] = NodeBitset(cfg_.n);
    rs.aux_senders = NodeBitset(cfg_.n);
    rs.aux_votes[0] = NodeBitset(cfg_.n);
    rs.aux_votes[1] = NodeBitset(cfg_.n);
  }
  return rs;
}

void AbaInstance::start(net::Context& ctx, bool input) {
  DELPHI_ASSERT(!started_, "ABA started twice");
  started_ = true;
  advance_to(ctx, 1, input);
  process_round(ctx);
}

void AbaInstance::advance_to(net::Context& ctx, std::uint32_t r, bool est) {
  round_ = r;
  est_ = est;
  RoundState& rs = round_state(r);
  const std::size_t b = est ? 1 : 0;
  if (!rs.bval_broadcast[b]) {
    rs.bval_broadcast[b] = true;
    ctx.broadcast(cfg_.channel, std::make_shared<AbaMessage>(
                                    AbaMessage::Kind::kBval, r, est));
  }
}

void AbaInstance::on_message(net::Context& ctx, NodeId from,
                             const net::MessageBody& body) {
  if (terminated_) return;
  const auto* msg = dynamic_cast<const AbaMessage*>(&body);
  DELPHI_REQUIRE(msg != nullptr, "ABA: foreign message type");
  DELPHI_REQUIRE(msg->round() >= 1 && msg->round() <= cfg_.max_rounds + 1,
                 "ABA: round out of range");

  switch (msg->kind()) {
    case AbaMessage::Kind::kBval: {
      RoundState& rs = round_state(msg->round());
      const std::size_t b = msg->value() ? 1 : 0;
      if (!rs.bval_senders[b].insert(from)) return;  // duplicate
      // t+1 amplification.
      if (rs.bval_senders[b].count() >= cfg_.t + 1 && !rs.bval_broadcast[b]) {
        rs.bval_broadcast[b] = true;
        ctx.broadcast(cfg_.channel,
                      std::make_shared<AbaMessage>(AbaMessage::Kind::kBval,
                                                   msg->round(), msg->value()));
      }
      // 2t+1 acceptance into bin_values; first acceptance triggers AUX.
      if (rs.bval_senders[b].count() >= 2 * cfg_.t + 1 && !rs.bin_values[b]) {
        rs.bin_values[b] = true;
        if (!rs.aux_sent) {
          rs.aux_sent = true;
          ctx.broadcast(cfg_.channel, std::make_shared<AbaMessage>(
                                          AbaMessage::Kind::kAux, msg->round(),
                                          msg->value()));
        }
      }
      break;
    }
    case AbaMessage::Kind::kAux: {
      RoundState& rs = round_state(msg->round());
      if (rs.aux_senders.insert(from)) {  // first AUX per sender counts
        rs.aux_votes[msg->value() ? 1 : 0].insert(from);
      }
      break;
    }
    case AbaMessage::Kind::kFinish: {
      on_finish(ctx, from, msg->value());
      return;
    }
  }
  if (started_) process_round(ctx);
}

void AbaInstance::process_round(net::Context& ctx) {
  while (!terminated_) {
    RoundState& rs = round_state(round_);
    if (rs.done || (!rs.bin_values[0] && !rs.bin_values[1])) return;

    // Wait for n-t AUX votes carrying values inside bin_values.
    std::size_t supporting = 0;
    bool in_view[2] = {false, false};
    for (std::size_t b = 0; b < 2; ++b) {
      if (rs.bin_values[b] && rs.aux_votes[b].count() > 0) {
        supporting += rs.aux_votes[b].count();
        in_view[b] = true;
      }
    }
    if (supporting < cfg_.n - cfg_.t) return;

    // Threshold-coin toss: the compute charge is the whole point of modeling
    // this (see DESIGN.md substitutions).
    ctx.charge_compute(cfg_.coin_compute_us);
    const bool c = cfg_.coin->toss(cfg_.instance_id, round_);
    rs.done = true;

    bool next_est;
    if (in_view[0] != in_view[1]) {
      const bool b = in_view[1];
      next_est = b;
      if (b == c && !decision_) decide(ctx, b);
    } else {
      next_est = c;
    }
    if (terminated_) return;
    if (round_ >= cfg_.max_rounds) {
      throw InternalError("ABA exceeded max_rounds — scheduler stalled?");
    }
    advance_to(ctx, round_ + 1, next_est);
    // Loop: buffered messages for the new round may already satisfy it.
  }
}

void AbaInstance::decide(net::Context& ctx, bool b) {
  decision_ = b;
  if (!finish_sent_) {
    finish_sent_ = true;
    ctx.broadcast(cfg_.channel, std::make_shared<AbaMessage>(
                                    AbaMessage::Kind::kFinish, 1, b));
  }
}

void AbaInstance::on_finish(net::Context& ctx, NodeId from, bool b) {
  const std::size_t idx = b ? 1 : 0;
  if (!finish_senders_[idx].insert(from)) return;
  if (finish_senders_[idx].count() >= cfg_.t + 1 && !finish_sent_) {
    finish_sent_ = true;
    if (!decision_) decision_ = b;
    ctx.broadcast(cfg_.channel, std::make_shared<AbaMessage>(
                                    AbaMessage::Kind::kFinish, 1, b));
  }
  if (finish_senders_[idx].count() >= 2 * cfg_.t + 1) {
    if (!decision_) decision_ = b;
    terminated_ = true;
  }
}

bool AbaInstance::decision() const {
  DELPHI_ASSERT(decision_.has_value(), "ABA decision read before deciding");
  return *decision_;
}

}  // namespace delphi::aba
