#pragma once
/// \file aba.hpp
/// Signature-free asynchronous binary agreement in the style of Mostefaoui,
/// Moumen & Raynal (JACM'15), driven by a common coin — the per-slot decision
/// engine inside the FIN-style ACS baseline.
///
/// Per round r:
///   1. BV-broadcast of the round estimate (BVAL messages with t+1
///      amplification and 2t+1 acceptance into `bin_values`).
///   2. AUX exchange: broadcast one accepted value; wait for n-t AUX whose
///      values are all inside bin_values.
///   3. Toss the common coin c_r (charged to CPU per the cost model — this is
///      where the pairing bill of a real threshold coin shows up, see
///      crypto/coin.hpp).
///      If the AUX view is a single value b: est = b and decide b if b == c_r;
///      otherwise est = c_r.
/// Termination gadget: deciders broadcast FINISH(b); t+1 FINISH amplify,
/// 2t+1 FINISH terminate the instance.
///
/// Guarantees with n > 3t: Validity (unanimous input is the only possible
/// decision), Agreement, and expected-constant-round termination against an
/// adversary oblivious to the coin.

#include <map>
#include <optional>
#include <set>

#include "common/bitset.hpp"
#include "crypto/coin.hpp"
#include "net/message.hpp"
#include "net/protocol.hpp"

namespace delphi::aba {

/// Wire message for one ABA instance.
class AbaMessage final : public net::MessageBody {
 public:
  enum class Kind : std::uint8_t { kBval = 0, kAux = 1, kFinish = 2 };

  AbaMessage(Kind kind, std::uint32_t round, bool value)
      : kind_(kind), round_(round), value_(value) {}

  Kind kind() const noexcept { return kind_; }
  std::uint32_t round() const noexcept { return round_; }
  bool value() const noexcept { return value_; }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override;
  static std::shared_ptr<const AbaMessage> decode(ByteReader& r);

 private:
  Kind kind_;
  std::uint32_t round_;
  bool value_;
};

/// One binary-agreement instance, embeddable in a larger protocol.
class AbaInstance {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    /// Instance id mixed into the coin PRF (unique per ABA in a deployment).
    std::uint64_t instance_id = 0;
    std::uint32_t channel = 0;
    const crypto::CommonCoin* coin = nullptr;
    /// CPU charged per coin toss (models threshold-coin share crypto; the
    /// dominant real-world cost of coin-based protocols — §I of the paper).
    SimTime coin_compute_us = 0;
    /// Rounds after which we abort the run (the adversary cannot stall an
    /// oblivious-scheduler run this long; this is a test safety valve).
    std::uint32_t max_rounds = 64;
  };

  explicit AbaInstance(Config cfg);

  /// Provide this node's input and begin round 1.
  void start(net::Context& ctx, bool input);

  /// True once start() was called.
  bool started() const noexcept { return started_; }

  /// Feed a message addressed to this instance.
  void on_message(net::Context& ctx, NodeId from, const net::MessageBody& body);

  /// Decision state.
  bool decided() const noexcept { return decision_.has_value(); }
  bool decision() const;

  /// True once the FINISH quorum completed; the instance stops processing.
  bool terminated() const noexcept { return terminated_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct RoundState {
    NodeBitset bval_senders[2];         // who sent BVAL(b)
    bool bval_broadcast[2] = {false, false};
    bool bin_values[2] = {false, false};
    bool aux_sent = false;
    NodeBitset aux_senders;             // first AUX per sender counts
    NodeBitset aux_votes[2];            // senders voting b
    bool done = false;                  // coin consumed, moved past round
    bool initialized = false;
  };

  RoundState& round_state(std::uint32_t r);
  void process_round(net::Context& ctx);
  void advance_to(net::Context& ctx, std::uint32_t r, bool est);
  void decide(net::Context& ctx, bool b);
  void on_finish(net::Context& ctx, NodeId from, bool b);

  Config cfg_;
  bool started_ = false;
  std::uint32_t round_ = 0;
  bool est_ = false;
  std::map<std::uint32_t, RoundState> rounds_;
  std::optional<bool> decision_;
  bool finish_sent_ = false;
  NodeBitset finish_senders_[2];
  bool terminated_ = false;
};

/// Standalone wrapper for tests: one node running a single ABA instance.
class AbaProtocol final : public net::Protocol {
 public:
  AbaProtocol(AbaInstance::Config cfg, bool input)
      : instance_(cfg), input_(input) {}

  void on_start(net::Context& ctx) override { instance_.start(ctx, input_); }
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override {
    DELPHI_REQUIRE(channel == instance_.config().channel,
                   "ABA: unexpected channel");
    instance_.on_message(ctx, from, body);
  }
  bool terminated() const override { return instance_.terminated(); }

  const AbaInstance& instance() const noexcept { return instance_; }

 private:
  AbaInstance instance_;
  bool input_;
};

}  // namespace delphi::aba
