#include "scenario/runtime.hpp"

#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "sim/byzantine.hpp"
#include "sim/latency.hpp"
#include "transport/tcp.hpp"

namespace delphi::scenario {

namespace {

/// Resolve t (kAutoFaults → protocol default) and validate.
ScenarioSpec resolve(const ScenarioSpec& spec, const ProtocolInfo& info) {
  ScenarioSpec rs = spec;
  if (rs.t == kAutoFaults) rs.t = info.default_faults(rs.n);
  rs.validate();
  return rs;
}

/// Crash-fault placement: the top `crashes` node ids, silent from the start
/// (the fault model of the paper's crash experiments and delphi_cli
/// --crashes).
std::set<NodeId> crash_set(const ScenarioSpec& spec) {
  std::set<NodeId> ids;
  for (std::size_t i = 0; i < spec.crashes; ++i) {
    ids.insert(static_cast<NodeId>(spec.n - 1 - i));
  }
  return ids;
}

/// Wrap the suite factory so crash-faulted placements get SilentProtocol.
net::ProtocolFactory with_crashes(net::ProtocolFactory inner,
                                  std::set<NodeId> crashed) {
  if (crashed.empty()) return inner;
  return [inner = std::move(inner),
          crashed = std::move(crashed)](NodeId i) -> std::unique_ptr<net::Protocol> {
    if (crashed.contains(i)) return std::make_unique<sim::SilentProtocol>();
    return inner(i);
  };
}

}  // namespace

sim::SimConfig testbed_config(TestbedKind tb, std::size_t n,
                              std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  switch (tb) {
    case TestbedKind::kAws:
      cfg.latency = std::make_shared<sim::AwsGeoLatency>(n);
      cfg.cost = sim::CostModel::aws();
      break;
    case TestbedKind::kCps:
      cfg.latency = std::make_shared<sim::CpsLanLatency>();
      cfg.cost = sim::CostModel::cps();
      break;
    case TestbedKind::kAsync:
      cfg.latency = std::make_shared<sim::UniformLatency>(100, 20'000);
      cfg.cost = sim::CostModel::fast();
      break;
    case TestbedKind::kFast:
      cfg.cost = sim::CostModel::fast();
      break;
  }
  return cfg;
}

RunReport SimRuntime::run(const ScenarioSpec& spec) {
  const auto& reg = registry_ != nullptr ? *registry_ : ProtocolRegistry::global();
  const auto& info = reg.require(spec.protocol);
  const ScenarioSpec rs = resolve(spec, info);

  auto cfg = testbed_config(rs.testbed, rs.n, rs.seed);
  cfg.auth_channels = rs.param("auth", 1.0) != 0.0;
  cfg.fifo_links = rs.param("fifo", 0.0) != 0.0;

  const auto crashed = crash_set(rs);
  // The factory may own shared deployment state (coins, keys); it must
  // outlive the simulator, so it is declared first.
  const auto factory =
      with_crashes(info.make_factory(rs, rs.make_inputs()), crashed);

  sim::Simulator sim(cfg);
  for (NodeId i = 0; i < rs.n; ++i) sim.add_node(factory(i));
  sim.set_byzantine(crashed);

  RunReport rep;
  rep.ok = sim.run();
  rep.runtime_ms =
      static_cast<double>(sim.metrics().honest_completion) / 1000.0;
  const auto traffic = sim.traffic_totals();
  rep.honest_bytes = traffic.honest_bytes;
  rep.honest_msgs = traffic.honest_msgs;
  rep.nodes.resize(rs.n);
  for (NodeId i = 0; i < rs.n; ++i) {
    const auto& m = sim.node_metrics(i);
    rep.nodes[i] = {m.msgs_sent, m.bytes_sent, m.msgs_delivered,
                    m.malformed_dropped, m.terminated_at};
    if (!crashed.contains(i)) {
      if (m.terminated_at < 0) rep.unfinished.push_back(i);
      info.harvest(sim.node(i), rep.outputs);
    }
  }
  return rep;
}

RunReport TcpRuntime::run(const ScenarioSpec& spec) {
  const auto& reg = registry_ != nullptr ? *registry_ : ProtocolRegistry::global();
  const auto& info = reg.require(spec.protocol);
  const ScenarioSpec rs = resolve(spec, info);

  transport::TcpCluster::Options opts;
  opts.n = rs.n;
  opts.auth = rs.param("auth", 1.0) != 0.0;
  opts.seed = rs.seed;
  opts.timeout_ms = static_cast<std::int64_t>(rs.param("timeout-ms", 30'000.0));

  const auto crashed = crash_set(rs);
  const auto factory =
      with_crashes(info.make_factory(rs, rs.make_inputs()), crashed);

  transport::TcpCluster cluster(opts);
  const auto start = std::chrono::steady_clock::now();
  cluster.start(factory, info.make_decoder(rs));

  RunReport rep;
  rep.ok = cluster.wait();
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  rep.runtime_ms = rep.ok ? static_cast<double>(wall) / 1000.0 : -0.001;
  rep.nodes.resize(rs.n);
  for (NodeId i = 0; i < rs.n; ++i) {
    const auto& m = cluster.metrics(i);
    rep.nodes[i] = {m.msgs_sent, m.bytes_sent, m.msgs_delivered,
                    m.malformed_dropped, /*terminated_at=*/-1};
    if (!crashed.contains(i)) {
      rep.honest_bytes += m.bytes_sent;
      rep.honest_msgs += m.msgs_sent;
      info.harvest(cluster.protocol(i), rep.outputs);
    }
  }
  // wait() reports crashed (SilentProtocol) nodes as done, so everything in
  // unfinished() is an honest straggler.
  rep.unfinished = cluster.unfinished();
  return rep;
}

RunReport run_scenario(const ScenarioSpec& spec) {
  if (spec.substrate == Substrate::kTcp) return TcpRuntime().run(spec);
  return SimRuntime().run(spec);
}

}  // namespace delphi::scenario
