#include "scenario/runtime.hpp"

#include <chrono>
#include <memory>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/mux.hpp"
#include "net/netem.hpp"
#include "scenario/registry.hpp"
#include "sim/byzantine.hpp"
#include "sim/latency.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace delphi::scenario {

namespace {

/// Resolve t (kAutoFaults → protocol default) and validate (structure and
/// parameter keys — a typo'd param must not silently change nothing).
ScenarioSpec resolve(const ScenarioSpec& spec, const ProtocolRegistry& reg,
                     const ProtocolInfo& info) {
  ScenarioSpec rs = spec;
  if (rs.t == kAutoFaults) rs.t = info.default_faults(rs.n);
  rs.validate();
  rs.validate_params(reg);
  return rs;
}

/// Crash-fault placement: the top `crashes` node ids, silent from the start
/// (the fault model of the paper's crash experiments and delphi_cli
/// --crashes).
std::set<NodeId> crash_set(const ScenarioSpec& spec) {
  std::set<NodeId> ids;
  for (std::size_t i = 0; i < spec.crashes; ++i) {
    ids.insert(static_cast<NodeId>(spec.n - 1 - i));
  }
  return ids;
}

/// Byzantine-behaviour placement: the `byzantine.k` ids directly below the
/// crash block, so `crashes=1 byzantine=garbage:64:2` faults the top three.
std::set<NodeId> byzantine_set(const ScenarioSpec& spec) {
  std::set<NodeId> ids;
  for (std::size_t i = 0; i < spec.byzantine.k; ++i) {
    ids.insert(static_cast<NodeId>(spec.n - 1 - spec.crashes - i));
  }
  return ids;
}

/// Wrap the suite factory so faulted placements get their declared
/// behaviour: SilentProtocol on crash ids, the spec'd Byzantine wrapper on
/// byzantine ids, the honest suite everywhere else. Protocol-level wrapping,
/// so the same factory runs on both substrates.
net::ProtocolFactory with_faults(net::ProtocolFactory inner,
                                 std::set<NodeId> crashed,
                                 std::set<NodeId> byz, ByzantineSpec bz) {
  if (crashed.empty() && byz.empty()) return inner;
  return [inner = std::move(inner), crashed = std::move(crashed),
          byz = std::move(byz),
          bz](NodeId i) -> std::unique_ptr<net::Protocol> {
    if (crashed.contains(i)) return std::make_unique<sim::SilentProtocol>();
    if (byz.contains(i)) {
      switch (bz.kind) {
        case ByzantineKind::kCrashAfter:
          return std::make_unique<sim::CrashAfterProtocol>(inner(i), bz.param);
        case ByzantineKind::kGarbage:
          return std::make_unique<sim::GarbageSprayProtocol>(
              2, static_cast<std::size_t>(bz.param));
        case ByzantineKind::kNone:
          break;
      }
    }
    return inner(i);
  };
}

/// Channels per SessionMux instance window. Kept at the mux default so every
/// registered suite's channel layout fits (the widest, abraham, uses
/// rounds*(n+1)+1 channels).
constexpr std::uint32_t kMuxStride = 1u << 16;

/// Per-instance honest inputs: explicit inputs pin the workload for every
/// feed; generated workloads draw a distinct clustered set per feed, with
/// instance 0 matching the single-instance generator (seed + n) exactly.
std::vector<double> instance_inputs(const ScenarioSpec& rs,
                                    std::uint32_t sid) {
  if (!rs.inputs.empty()) return rs.make_inputs();
  return clustered_inputs(rs.n, rs.center, rs.delta, rs.seed + rs.n + sid);
}

/// The honest per-node factory: the suite's own factory at instances == 1, a
/// SessionMux wrapping one suite instance per session window otherwise. Each
/// instance gets its own inner factory built up front (owning that
/// instance's shared deployment state — coins, key stores — across all
/// nodes) with a distinct derived seed, so concurrent feeds don't share coin
/// sessions.
net::ProtocolFactory make_node_factory(const ProtocolInfo& info,
                                       const ScenarioSpec& rs) {
  if (rs.instances <= 1) return info.make_factory(rs, rs.make_inputs());
  auto inners = std::make_shared<std::vector<net::ProtocolFactory>>();
  for (std::uint32_t sid = 0; sid < rs.instances; ++sid) {
    ScenarioSpec is = rs;
    is.seed = rs.seed + sid;
    inners->push_back(info.make_factory(is, instance_inputs(rs, sid)));
  }
  net::SessionMux::Config cfg;
  cfg.expected = static_cast<std::uint32_t>(rs.instances);
  cfg.stride = kMuxStride;
  cfg.mode = rs.mux_mode == MuxMode::kSequential
                 ? net::SessionMux::Mode::kSequential
                 : net::SessionMux::Mode::kConcurrent;
  return [inners, cfg](NodeId i) -> std::unique_ptr<net::Protocol> {
    return std::make_unique<net::SessionMux>(
        cfg, [inners, i](std::uint32_t sid) { return (*inners)[sid](i); });
  };
}

/// Socket-substrate payload decoder: under a mux the wire channel is
/// sid * stride + c, while suite decoders map in-window channels — fold the
/// window offset away before dispatch.
transport::Decoder make_node_decoder(const ProtocolInfo& info,
                                     const ScenarioSpec& rs) {
  auto inner = info.make_decoder(rs);
  if (rs.instances <= 1) return inner;
  return [inner = std::move(inner)](std::uint32_t channel, ByteReader& r) {
    return inner(channel % kMuxStride, r);
  };
}

/// Harvest one honest node's outputs: per instance through the mux (every
/// feed reports, in sid order — never-opened sessions of an unfinished
/// sequential chain contribute nothing), directly otherwise.
void harvest_node(const ProtocolInfo& info, const net::Protocol& node,
                  std::size_t instances, std::vector<double>& out) {
  if (instances <= 1) {
    info.harvest(node, out);
    return;
  }
  const auto& mux = dynamic_cast<const net::SessionMux&>(node);
  for (std::uint32_t sid = 0; sid < instances; ++sid) {
    if (const auto* s = mux.session(sid)) info.harvest(*s, out);
  }
}

/// Churn placement for one spec entry: the first k honest ids (0..k-1) when
/// churn_seed == 0, else k distinct seed-derived honest ids (per-entry
/// stream, so repeated `churn=` entries hit independent subsets). The honest
/// range excludes the top-id crash/byzantine block; validate() guarantees k
/// fits, so the rejection loop terminates.
std::vector<NodeId> churn_targets(const ScenarioSpec& rs, std::size_t entry) {
  const std::uint64_t k = rs.churn[entry].k;
  std::vector<NodeId> ids;
  if (rs.churn_seed == 0) {
    for (std::uint64_t i = 0; i < k; ++i) {
      ids.push_back(static_cast<NodeId>(i));
    }
    return ids;
  }
  const std::uint64_t honest = rs.n - rs.crashes - rs.byzantine.k;
  Rng rng(rs.churn_seed ^ (0x9e3779b97f4a7c15ULL * (entry + 1)));
  std::set<NodeId> chosen;
  while (chosen.size() < k) {
    chosen.insert(static_cast<NodeId>(rng.below(honest)));
  }
  ids.assign(chosen.begin(), chosen.end());
  return ids;
}

/// Expand the spec's churn schedule into per-node transport windows (the
/// same expansion feeds sim::SimConfig::churn, field for field).
std::vector<transport::ChurnWindow> churn_windows(const ScenarioSpec& rs) {
  std::vector<transport::ChurnWindow> ws;
  for (std::size_t e = 0; e < rs.churn.size(); ++e) {
    for (NodeId id : churn_targets(rs, e)) {
      ws.push_back({id, static_cast<std::int64_t>(rs.churn[e].down_us),
                    static_cast<std::int64_t>(rs.churn[e].up_us)});
    }
  }
  return ws;
}

/// Materialize the spec's network adversary (nullptr = benign network, the
/// SimConfig default). Victim/minority groups are the *first* k ids —
/// disjoint from the top-id fault placements, so `adversary=` composes with
/// `crashes=` / `byzantine=` without attacking already-dead nodes.
std::shared_ptr<sim::NetworkAdversary> make_adversary(
    const AdversarySpec& a) {
  std::set<NodeId> group;
  for (std::uint64_t i = 0; i < a.k; ++i) {
    group.insert(static_cast<NodeId>(i));
  }
  switch (a.kind) {
    case AdversaryKind::kNone:
      return nullptr;
    case AdversaryKind::kRandomDelay:
      return std::make_shared<sim::RandomDelayAdversary>(
          static_cast<SimTime>(a.us));
    case AdversaryKind::kTargetedLag:
      return std::make_shared<sim::TargetedLagAdversary>(
          std::move(group), static_cast<SimTime>(a.us));
    case AdversaryKind::kPartition:
      return std::make_shared<sim::PartitionAdversary>(
          std::move(group), static_cast<SimTime>(a.us));
    case AdversaryKind::kBurst:
      return std::make_shared<sim::BurstReorderAdversary>(
          static_cast<SimTime>(a.us));
  }
  return nullptr;
}

/// Netem shim parameters for a socket substrate: the spec's adversary= form
/// plus the loss/bandwidth knobs. The shim's schedule seed is the spec seed,
/// so the same spec emulates the same network on every run.
net::netem::Config netem_from_spec(const ScenarioSpec& rs) {
  net::netem::Config c;
  c.seed = rs.seed;
  switch (rs.adversary.kind) {
    case AdversaryKind::kNone:
      break;
    case AdversaryKind::kRandomDelay:
      c.jitter_max_us = static_cast<SimTime>(rs.adversary.us);
      break;
    case AdversaryKind::kTargetedLag:
      c.lag_k = static_cast<std::size_t>(rs.adversary.k);
      c.lag_us = static_cast<SimTime>(rs.adversary.us);
      break;
    case AdversaryKind::kPartition:
      c.partition_k = static_cast<std::size_t>(rs.adversary.k);
      c.heal_us = static_cast<SimTime>(rs.adversary.us);
      break;
    case AdversaryKind::kBurst:
      c.burst_period_us = static_cast<SimTime>(rs.adversary.us);
      break;
  }
  c.loss = rs.param("loss", 0.0);
  c.loss_burst_len = rs.param("loss-burst", 1.0);
  // 1 kbit/s = 125 bytes/s = 1.25e-4 bytes/µs.
  c.rate_bytes_per_us = rs.param("rate-kbps", 0.0) * 0.000125;
  return c;
}

/// Precise substrate-support errors for the netem knobs: a key that cannot
/// take effect on the spec's substrate must fail loudly, with the fix named.
void check_netem_support(const ScenarioSpec& rs) {
  const bool sim = rs.substrate == Substrate::kSim;
  const bool udp = rs.substrate == Substrate::kUdp;
  if (!udp) {
    for (const char* key : {"loss", "loss-burst"}) {
      if (rs.params.contains(key)) {
        throw ConfigError(
            std::string("scenario: ") + key + "= needs a substrate that can " +
            (sim ? "drop messages (the simulator's asynchronous model "
                   "forbids drops)"
                 : "recover dropped frames (tcp has no frame-level "
                   "retransmission, a shim-dropped frame would be lost "
                   "forever)") +
            "; did you mean substrate=udp?");
      }
    }
    if (rs.params.contains("rto-ms")) {
      throw ConfigError(
          "scenario: rto-ms= is the udp substrate's retransmission timeout; "
          "did you mean substrate=udp?");
    }
  }
  if (sim && rs.params.contains("rate-kbps")) {
    throw ConfigError(
        "scenario: rate-kbps= shapes a real socket's send boundary (the "
        "simulator models bandwidth via its testbed cost model); did you "
        "mean substrate=udp?");
  }
  if (udp && rs.param("fifo", 0.0) != 0.0) {
    throw ConfigError(
        "scenario: fifo=1 requires per-link FIFO delivery, which the udp "
        "substrate deliberately does not provide — use substrate=sim or "
        "substrate=tcp");
  }
}

/// The socket-substrate run body shared by TcpRuntime and UdpRuntime: both
/// clusters expose the same lifecycle/observer API, so only the Options
/// differ.
template <typename Cluster>
RunReport run_cluster(const ProtocolInfo& info, const ScenarioSpec& rs,
                      const typename Cluster::Options& opts) {
  const auto crashed = crash_set(rs);
  auto faulted = crashed;
  faulted.merge(byzantine_set(rs));
  // Faults wrap the whole node: a crashed node is silent across every
  // instance, crash-after counts sends across the pipeline — the same
  // composition on every substrate.
  const auto factory = with_faults(make_node_factory(info, rs), crashed,
                                   byzantine_set(rs), rs.byzantine);

  Cluster cluster(opts);
  const auto start = std::chrono::steady_clock::now();
  cluster.start(factory, make_node_decoder(info, rs));

  RunReport rep;
  rep.ok = cluster.wait();
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  rep.runtime_ms = rep.ok ? static_cast<double>(wall) / 1000.0 : -0.001;
  rep.nodes.resize(rs.n);
  for (NodeId i = 0; i < rs.n; ++i) {
    const auto& m = cluster.metrics(i);
    rep.nodes[i] = {m.msgs_sent,         m.bytes_sent,
                    m.msgs_delivered,    m.malformed_dropped,
                    /*terminated_at=*/-1, m.reconnects,
                    m.catchup_frames,    m.catchup_bytes,
                    m.downtime_us / 1000};
    if (!faulted.contains(i)) {
      rep.honest_bytes += m.bytes_sent;
      rep.honest_msgs += m.msgs_sent;
      harvest_node(info, cluster.protocol(i), rs.instances, rep.outputs);
    }
  }
  // wait() reports faulted nodes as done (SilentProtocol and the Byzantine
  // wrappers all claim terminated()), so everything in unfinished() is an
  // honest straggler.
  rep.unfinished = cluster.unfinished();
  for (const auto& f : cluster.failures()) {
    rep.node_errors.push_back({f.id, f.message});
  }
  return rep;
}

}  // namespace

sim::SimConfig testbed_config(TestbedKind tb, std::size_t n,
                              std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  switch (tb) {
    case TestbedKind::kAws:
      cfg.latency = std::make_shared<sim::AwsGeoLatency>(n);
      cfg.cost = sim::CostModel::aws();
      break;
    case TestbedKind::kCps:
      cfg.latency = std::make_shared<sim::CpsLanLatency>();
      cfg.cost = sim::CostModel::cps();
      break;
    case TestbedKind::kAsync:
      cfg.latency = std::make_shared<sim::UniformLatency>(100, 20'000);
      cfg.cost = sim::CostModel::fast();
      break;
    case TestbedKind::kFast:
      cfg.cost = sim::CostModel::fast();
      break;
  }
  return cfg;
}

RunReport SimRuntime::run(const ScenarioSpec& spec) {
  const auto& reg = registry_ != nullptr ? *registry_ : ProtocolRegistry::global();
  const auto& info = reg.require(spec.protocol);
  const ScenarioSpec rs = resolve(spec, reg, info);
  check_netem_support(rs);

  auto cfg = testbed_config(rs.testbed, rs.n, rs.seed);
  cfg.auth_channels = rs.param("auth", 1.0) != 0.0;
  cfg.fifo_links = rs.param("fifo", 0.0) != 0.0;
  cfg.adversary = make_adversary(rs.adversary);
  for (std::size_t e = 0; e < rs.churn.size(); ++e) {
    for (NodeId id : churn_targets(rs, e)) {
      cfg.churn.push_back({id, static_cast<SimTime>(rs.churn[e].down_us),
                           static_cast<SimTime>(rs.churn[e].up_us)});
    }
  }

  const auto crashed = crash_set(rs);
  // All behaviourally-faulted placements: excluded from honest traffic,
  // outputs, and termination accounting.
  auto faulted = crashed;
  faulted.merge(byzantine_set(rs));
  // The factory may own shared deployment state (coins, keys); it must
  // outlive the simulator, so it is declared first.
  const auto factory = with_faults(make_node_factory(info, rs), crashed,
                                   byzantine_set(rs), rs.byzantine);

  sim::Simulator sim(cfg);
  for (NodeId i = 0; i < rs.n; ++i) sim.add_node(factory(i));
  sim.set_byzantine(faulted);

  RunReport rep;
  rep.ok = sim.run();
  rep.runtime_ms =
      static_cast<double>(sim.metrics().honest_completion) / 1000.0;
  const auto traffic = sim.traffic_totals();
  rep.honest_bytes = traffic.honest_bytes;
  rep.honest_msgs = traffic.honest_msgs;
  rep.nodes.resize(rs.n);
  for (NodeId i = 0; i < rs.n; ++i) {
    const auto& m = sim.node_metrics(i);
    rep.nodes[i] = {m.msgs_sent, m.bytes_sent, m.msgs_delivered,
                    m.malformed_dropped, m.terminated_at};
    // The simulator's restart is a deterministic pure-delay model: frames
    // deferred past a dark window are the catch-up traffic, and each window
    // is one rejoin.
    rep.nodes[i].catchup_frames = m.deferred_frames;
    rep.nodes[i].catchup_bytes = m.deferred_bytes;
    if (!faulted.contains(i)) {
      if (m.terminated_at < 0) rep.unfinished.push_back(i);
      harvest_node(info, sim.node(i), rs.instances, rep.outputs);
    }
  }
  for (const auto& w : cfg.churn) {
    ++rep.nodes[w.id].reconnects;
    rep.nodes[w.id].downtime_ms +=
        static_cast<std::uint64_t>(w.up_us - w.down_us) / 1000;
  }
  return rep;
}

RunReport TcpRuntime::run(const ScenarioSpec& spec) {
  const auto& reg = registry_ != nullptr ? *registry_ : ProtocolRegistry::global();
  const auto& info = reg.require(spec.protocol);
  const ScenarioSpec rs = resolve(spec, reg, info);
  check_netem_support(rs);

  transport::TcpCluster::Options opts;
  opts.n = rs.n;
  opts.auth = rs.param("auth", 1.0) != 0.0;
  opts.seed = rs.seed;
  opts.timeout_ms = static_cast<std::int64_t>(rs.param("timeout-ms", 30'000.0));
  opts.nodelay = rs.param("nodelay", 1.0) != 0.0;
  // Every adversary= form runs here via the shim's holdback (delay-only:
  // check_netem_support already rejected the loss knobs).
  opts.netem = netem_from_spec(rs);
  opts.churn = churn_windows(rs);  // non-empty implies recovery mode

  return run_cluster<transport::TcpCluster>(info, rs, opts);
}

RunReport UdpRuntime::run(const ScenarioSpec& spec) {
  const auto& reg = registry_ != nullptr ? *registry_ : ProtocolRegistry::global();
  const auto& info = reg.require(spec.protocol);
  const ScenarioSpec rs = resolve(spec, reg, info);
  check_netem_support(rs);

  transport::UdpMesh::Options opts;
  opts.n = rs.n;
  opts.auth = rs.param("auth", 1.0) != 0.0;
  opts.seed = rs.seed;
  opts.timeout_ms = static_cast<std::int64_t>(rs.param("timeout-ms", 30'000.0));
  opts.rto_ms = static_cast<std::int64_t>(rs.param("rto-ms", 25.0));
  opts.netem = netem_from_spec(rs);
  opts.churn = churn_windows(rs);

  return run_cluster<transport::UdpMesh>(info, rs, opts);
}

RunReport run_scenario(const ScenarioSpec& spec) {
  switch (spec.substrate) {
    case Substrate::kTcp:
      return TcpRuntime().run(spec);
    case Substrate::kUdp:
      return UdpRuntime().run(spec);
    case Substrate::kSim:
      break;
  }
  return SimRuntime().run(spec);
}

}  // namespace delphi::scenario
