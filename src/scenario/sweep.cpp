#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace delphi::scenario {

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<RunReport> SweepRunner::run(
    const std::vector<ScenarioSpec>& specs) const {
  std::vector<RunReport> out(specs.size());
  std::vector<std::exception_ptr> errors(specs.size());

  std::vector<std::size_t> sim_indices;
  std::vector<std::size_t> socket_indices;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    (specs[i].substrate == Substrate::kSim ? sim_indices : socket_indices)
        .push_back(i);
  }

  const auto run_one = [&](std::size_t i) {
    try {
      out[i] = run_scenario(specs[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  // Sim specs: work-stealing over a shared counter; each worker owns its
  // result slots exclusively.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
         k < sim_indices.size();
         k = next.fetch_add(1, std::memory_order_relaxed)) {
      run_one(sim_indices[k]);
    }
  };
  const unsigned pool =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, sim_indices.size()));
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool - 1);
    for (unsigned j = 0; j + 1 < pool; ++j) threads.emplace_back(worker);
    worker();  // the calling thread pulls its share too
    for (auto& th : threads) th.join();
  }

  // Socket specs (tcp/udp) run serially (each one is already an n-thread
  // deployment).
  for (const std::size_t i : socket_indices) run_one(i);

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return out;
}

}  // namespace delphi::scenario
