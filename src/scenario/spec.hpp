#pragma once
/// \file spec.hpp
/// ScenarioSpec — one declarative description of "run protocol P on testbed T
/// with n nodes, fault model F, workload W, seed S, on substrate X".
///
/// The spec is the currency of the scenario API (see scenario/runtime.hpp):
/// the same value runs unchanged on the discrete-event simulator and the real
/// TCP/UDP transports, drives single runs and parallel sweeps, and
/// round-trips through a plain `key=value` text form for CLI flags and
/// scenario files.
///
/// Text form (whitespace-separated `key=value` tokens, e.g. one per line in a
/// file):
///
///   protocol=delphi substrate=sim testbed=aws n=16 t=auto crashes=0 seed=1
///   center=40000 delta=20 rho0=10 eps=2 delta-max=2000
///
/// Fault plane (both optional; omitted when inactive — see SCENARIOS.md
/// "Fault models" for semantics and substrate support):
///
///   adversary=none | random-delay:<max_us> | targeted-lag:<k>:<lag_us>
///           | partition:<k>:<heal_us> | burst:<period_us>
///   byzantine=none | crash-after:<sends>:<k> | garbage:<size>:<k>
///   churn=<k>:<down_us>:<up_us>     (repeatable; disjoint windows)
///   churn-seed=<s>                  (randomized churn placement when != 0)
///
/// Multi-instance pipelining (both optional; omitted at their defaults —
/// see SCENARIOS.md "Multi-instance pipelining"):
///
///   instances=<k> mux-mode=concurrent|sequential
///
/// Reserved keys are the fixed fields below; every other key is a numeric
/// protocol parameter collected into `params`. Parameter keys are validated
/// against the protocol's registry entry (plus the universal substrate knobs
/// auth / fifo / timeout-ms / loss / loss-burst / rate-kbps / rto-ms), so a
/// typo like `crashs=2` is a ConfigError with a "did you mean" suggestion
/// instead of a silent no-op.
/// `inputs=v0,v1,...` pins explicit per-node inputs instead of the
/// clustered-workload generator.
/// Serialization is canonical: fixed fields first, then params in key order,
/// then inputs — `from_text(to_text(s)) == s` exactly (doubles are printed
/// with round-trip precision).

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace delphi::scenario {

/// Which runtime executes the scenario (see scenario/runtime.hpp).
enum class Substrate { kSim, kTcp, kUdp };

/// Simulated deployment the latency/cost models are shaped after (§VI-C).
/// Ignored by the socket substrates, which run on the real network.
enum class TestbedKind {
  kAws,    ///< t2.micro WAN: geo latency matrix, latency-dominated costs
  kCps,    ///< Raspberry-Pi LAN: bandwidth- and CPU-dominated costs
  kAsync,  ///< wide uniform latency, free CPU — correctness-test asynchrony
  kFast,   ///< default latency, free CPU — fastest to execute
};

/// Sentinel for "derive the fault bound from the protocol's resilience".
inline constexpr std::size_t kAutoFaults =
    std::numeric_limits<std::size_t>::max();

/// How a multi-instance run (`instances > 1`) opens its net::SessionMux
/// sessions: all together, or pipelined one-after-another (the paper's
/// one-report-per-minute deployment shape).
enum class MuxMode { kConcurrent, kSequential };

class ProtocolRegistry;

/// Network-level adversary strategy — the asynchronous model's
/// arbitrary-but-finite delay/reorder power. Runs natively in the simulator
/// (sim/adversary.hpp) and on both socket substrates via the in-process
/// netem shim (net/netem.hpp), which reproduces the same schedule at the
/// socket send boundary.
enum class AdversaryKind {
  kNone,         ///< benign network
  kRandomDelay,  ///< uniform extra delay in [0, us] on every message
  kTargetedLag,  ///< +us delay on all traffic touching nodes 0..k-1
  kPartition,    ///< cut between nodes 0..k-1 and the rest until time us
  kBurst,        ///< hold + LIFO-release messages in us-sized windows
};

/// Declarative network-adversary description; text form
/// `none | random-delay:<max_us> | targeted-lag:<k>:<lag_us> |
///  partition:<k>:<heal_us> | burst:<period_us>`.
struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::kNone;
  /// Victim/minority group size: the *first* k node ids (targeted-lag,
  /// partition). Honest nodes — the adversary attacks the network, not them.
  std::uint64_t k = 0;
  /// The strategy's time knob in simulated µs: max extra delay
  /// (random-delay), lag (targeted-lag), heal time (partition), window
  /// period (burst).
  std::uint64_t us = 0;

  bool operator==(const AdversarySpec&) const = default;
};

/// Byzantine node behaviour applied to the faulted placements (generic
/// strategies from sim/byzantine.hpp; protocol-wrapping, so they run on both
/// substrates).
enum class ByzantineKind {
  kNone,        ///< no behavioural faults beyond `crashes`
  kCrashAfter,  ///< run honestly, go silent after `param` outgoing messages
  kGarbage,     ///< spray undecodable junk frames of size <= `param` bytes
};

/// Declarative Byzantine-behaviour description; text form
/// `none | crash-after:<sends>:<k> | garbage:<size>:<k>`.
struct ByzantineSpec {
  ByzantineKind kind = ByzantineKind::kNone;
  /// Behaviour knob: outgoing-message budget (crash-after) or max junk
  /// message size in bytes (garbage).
  std::uint64_t param = 0;
  /// How many nodes misbehave: placed at the top ids directly below the
  /// `crashes` block.
  std::uint64_t k = 0;

  bool operator==(const ByzantineSpec&) const = default;
};

/// One churn event of the recovery fault family: `k` nodes go dark at
/// `down_us` and restart (rejoin + catch up) at `up_us`. Text form
/// `churn:<k>:<down_us>:<up_us>`, repeatable (`churn=` may appear several
/// times in a spec; windows must be pairwise disjoint). Placement: the first
/// k *honest* ids (0..k-1 — disjoint from the top-id crash/byzantine block),
/// or a seed-derived honest subset when `churn-seed=` is non-zero.
///
/// Per-substrate semantics (SCENARIOS.md "Churn & recovery"): the simulator
/// defers every delivery to a dark node until its restart time (a
/// deterministic pure-delay restart — state survives, as the asynchronous
/// model permits); the socket substrates really stop the node's event loop,
/// close its sockets, and re-dial/rebind at restart, with catch-up via
/// replay (TCP) or ARQ retransmission (UDP).
struct ChurnSpec {
  std::uint64_t k = 0;        ///< How many nodes restart together.
  std::uint64_t down_us = 0;  ///< When they go dark (µs; sim time / wall).
  std::uint64_t up_us = 0;    ///< When they rejoin; must be > down_us.

  bool operator==(const ChurnSpec&) const = default;
};

/// Parse the `adversary=` / `byzantine=` / `churn=` value grammars; throws
/// ConfigError naming the accepted forms on malformed input.
AdversarySpec parse_adversary(const std::string& value);
ByzantineSpec parse_byzantine(const std::string& value);
ChurnSpec parse_churn(const std::string& value);

/// Canonical text of a fault field ("none" when inactive).
std::string to_string(const AdversarySpec& a);
std::string to_string(const ByzantineSpec& b);
/// Canonical `churn:<k>:<down_us>:<up_us>` text.
std::string to_string(const ChurnSpec& c);

/// Substrate knobs every protocol accepts (auth, fifo, nodelay, timeout-ms,
/// and the netem shim knobs loss / loss-burst / rate-kbps / rto-ms) —
/// always legal `params` keys in addition to a registry entry's
/// `param_keys`.
const std::vector<std::string>& universal_param_keys();

struct ScenarioSpec {
  /// Registered protocol name (scenario/registry.hpp).
  std::string protocol = "delphi";
  Substrate substrate = Substrate::kSim;
  TestbedKind testbed = TestbedKind::kAws;
  std::size_t n = 16;
  /// Fault bound the protocols are configured for; kAutoFaults derives the
  /// protocol's maximum (e.g. (n-1)/3 for Delphi, (n-1)/5 for Dolev).
  std::size_t t = kAutoFaults;
  /// Crash-faulted nodes (silent from the start), placed at the top ids —
  /// the fault model of the paper's crash experiments.
  std::size_t crashes = 0;
  /// Protocol instances multiplexed over one mesh (net::SessionMux windows
  /// of 2^16 channels each). 1 = run the protocol directly, exactly as
  /// before the mux wiring existed. Each instance gets its own clustered
  /// workload (generator seed `seed + n + sid`; explicit `inputs` apply to
  /// every instance) and its own slice of the outputs in RunReport.
  std::size_t instances = 1;
  /// How instances open when instances > 1: concurrent (parallel feeds) or
  /// sequential (the one-report-per-minute pipeline). Ignored at
  /// instances == 1.
  MuxMode mux_mode = MuxMode::kConcurrent;
  /// Network-level adversary: scheduled natively by the simulator, emulated
  /// on tcp/udp by the netem shim at the send boundary (every form runs on
  /// every substrate).
  AdversarySpec adversary;
  /// Byzantine node behaviour for `byzantine.k` nodes directly below the
  /// `crashes` block (both substrates — the wrappers are protocol-level).
  ByzantineSpec byzantine;
  /// Churn schedule: each entry restarts k honest nodes (dark at down_us,
  /// rejoined at up_us). Empty = no churn (the default; omitted from text).
  /// Windows must be pairwise disjoint — validate() rejects overlap.
  std::vector<ChurnSpec> churn;
  /// 0 (default): churn hits the first k honest ids. Non-zero: placements
  /// are drawn deterministically from this seed (per entry), still within
  /// the honest id range.
  std::uint64_t churn_seed = 0;
  /// Master seed: network randomness, per-node RNG streams, coin session.
  std::uint64_t seed = 1;

  /// Workload generator: honest inputs clustered with realized range exactly
  /// `delta` around `center` (endpoints pinned) — how the paper's
  /// "delta = 20$ / 180$" curves are driven. Generator seed is `seed + n` so
  /// different system sizes in one sweep get distinct workloads.
  double center = 40'000.0;
  double delta = 20.0;
  /// Explicit per-node inputs; when non-empty (size must be n) they replace
  /// the generator.
  std::vector<double> inputs;

  /// Protocol-specific numeric knobs, e.g. rho0 / eps / delta-max / rounds /
  /// r-max / coin-us / dims. Also carries substrate knobs: auth (default 1),
  /// fifo (default 0, sim only), timeout-ms (default 30000, sockets only),
  /// and the netem shim knobs loss / loss-burst (udp), rate-kbps (sockets),
  /// rto-ms (udp retransmission timeout).
  std::map<std::string, double> params;

  bool operator==(const ScenarioSpec&) const = default;

  /// Parameter lookup with default.
  double param(const std::string& key, double dflt) const;

  /// Materialize the per-node input vector (explicit inputs or generator).
  /// Throws ConfigError if explicit inputs don't match n.
  std::vector<double> make_inputs() const;

  /// Basic structural validation (n >= 1, crashes + byzantine.k < n, fault
  /// fields well-formed, protocol non-empty); protocol-level constraints
  /// are checked by the protocol configs.
  void validate() const;

  /// Reject params keys the protocol's registry entry does not advertise
  /// (and that are not universal substrate knobs), with a "did you mean"
  /// suggestion. No-op for protocols `reg` does not know — require() names
  /// those later with the full protocol list.
  void validate_params(const ProtocolRegistry& reg) const;

  /// Canonical text form (see file header).
  std::string to_text() const;
  /// Parse a text form; throws ConfigError on malformed input.
  static ScenarioSpec from_text(const std::string& text);
};

/// Honest inputs with realized range exactly `delta` around `center`
/// (endpoints pinned, the rest uniform inside, positions shuffled). The
/// single workload generator formerly private to bench_util.
std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed);

const char* to_string(Substrate s) noexcept;
const char* to_string(TestbedKind tb) noexcept;
const char* to_string(MuxMode m) noexcept;

}  // namespace delphi::scenario
