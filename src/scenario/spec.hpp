#pragma once
/// \file spec.hpp
/// ScenarioSpec — one declarative description of "run protocol P on testbed T
/// with n nodes, fault model F, workload W, seed S, on substrate X".
///
/// The spec is the currency of the scenario API (see scenario/runtime.hpp):
/// the same value runs unchanged on the discrete-event simulator and the real
/// TCP transport, drives single runs and parallel sweeps, and round-trips
/// through a plain `key=value` text form for CLI flags and scenario files.
///
/// Text form (whitespace-separated `key=value` tokens, e.g. one per line in a
/// file):
///
///   protocol=delphi substrate=sim testbed=aws n=16 t=auto crashes=0 seed=1
///   center=40000 delta=20 rho0=10 eps=2 delta-max=2000
///
/// Reserved keys are the fixed fields below; every other key is a numeric
/// protocol parameter collected into `params` (the registry entry for the
/// protocol decides which ones it reads — unknown parameters are ignored, so
/// one sweep file can drive several protocols). `inputs=v0,v1,...` pins
/// explicit per-node inputs instead of the clustered-workload generator.
/// Serialization is canonical: fixed fields first, then params in key order,
/// then inputs — `from_text(to_text(s)) == s` exactly (doubles are printed
/// with round-trip precision).

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace delphi::scenario {

/// Which runtime executes the scenario (see scenario/runtime.hpp).
enum class Substrate { kSim, kTcp };

/// Simulated deployment the latency/cost models are shaped after (§VI-C).
/// Ignored by the TCP substrate, which runs on the real network.
enum class TestbedKind {
  kAws,    ///< t2.micro WAN: geo latency matrix, latency-dominated costs
  kCps,    ///< Raspberry-Pi LAN: bandwidth- and CPU-dominated costs
  kAsync,  ///< wide uniform latency, free CPU — correctness-test asynchrony
  kFast,   ///< default latency, free CPU — fastest to execute
};

/// Sentinel for "derive the fault bound from the protocol's resilience".
inline constexpr std::size_t kAutoFaults =
    std::numeric_limits<std::size_t>::max();

struct ScenarioSpec {
  /// Registered protocol name (scenario/registry.hpp).
  std::string protocol = "delphi";
  Substrate substrate = Substrate::kSim;
  TestbedKind testbed = TestbedKind::kAws;
  std::size_t n = 16;
  /// Fault bound the protocols are configured for; kAutoFaults derives the
  /// protocol's maximum (e.g. (n-1)/3 for Delphi, (n-1)/5 for Dolev).
  std::size_t t = kAutoFaults;
  /// Crash-faulted nodes (silent from the start), placed at the top ids —
  /// the fault model of the paper's crash experiments.
  std::size_t crashes = 0;
  /// Master seed: network randomness, per-node RNG streams, coin session.
  std::uint64_t seed = 1;

  /// Workload generator: honest inputs clustered with realized range exactly
  /// `delta` around `center` (endpoints pinned) — how the paper's
  /// "delta = 20$ / 180$" curves are driven. Generator seed is `seed + n` so
  /// different system sizes in one sweep get distinct workloads.
  double center = 40'000.0;
  double delta = 20.0;
  /// Explicit per-node inputs; when non-empty (size must be n) they replace
  /// the generator.
  std::vector<double> inputs;

  /// Protocol-specific numeric knobs, e.g. rho0 / eps / delta-max / rounds /
  /// r-max / coin-us / dims. Also carries substrate knobs: auth (default 1),
  /// fifo (default 0, sim only), timeout-ms (default 30000, tcp only).
  std::map<std::string, double> params;

  bool operator==(const ScenarioSpec&) const = default;

  /// Parameter lookup with default.
  double param(const std::string& key, double dflt) const;

  /// Materialize the per-node input vector (explicit inputs or generator).
  /// Throws ConfigError if explicit inputs don't match n.
  std::vector<double> make_inputs() const;

  /// Basic structural validation (n >= 1, crashes < n, protocol non-empty);
  /// protocol-level constraints are checked by the protocol configs.
  void validate() const;

  /// Canonical text form (see file header).
  std::string to_text() const;
  /// Parse a text form; throws ConfigError on malformed input.
  static ScenarioSpec from_text(const std::string& text);
};

/// Honest inputs with realized range exactly `delta` around `center`
/// (endpoints pinned, the rest uniform inside, positions shuffled). The
/// single workload generator formerly private to bench_util.
std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed);

const char* to_string(Substrate s) noexcept;
const char* to_string(TestbedKind tb) noexcept;

}  // namespace delphi::scenario
