#pragma once
/// \file runtime.hpp
/// Runtime — execute a ScenarioSpec on a substrate and return one unified
/// RunReport.
///
/// SimRuntime drives the deterministic discrete-event simulator (same spec +
/// seed ⇒ bit-identical report); TcpRuntime and UdpRuntime drive real
/// full-mesh socket clusters on localhost (stream and datagram transports
/// respectively, both optionally shaped by the in-process netem shim). All
/// substrates run the identical protocol state machines (net::Protocol)
/// built by the ProtocolRegistry, and all report through the same RunReport
/// — the merge of the historical sim::RunOutcome, bench::Result, and
/// transport::TransportMetrics mini-APIs.
///
/// Multi-instance runs: when spec.instances > 1, every runtime wraps each
/// node's protocol in a net::SessionMux (2^16-channel windows, concurrent or
/// sequential per spec.mux_mode), shares the one mesh across all instances,
/// and harvests every instance's outputs into the report.

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "sim/simulator.hpp"

namespace delphi::scenario {

class ProtocolRegistry;

/// Per-node counters, unified across substrates (sim::NodeMetrics and
/// transport::TransportMetrics report the same four quantities).
struct NodeCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< framed bytes, self-delivery excluded
  std::uint64_t msgs_delivered = 0;
  std::uint64_t malformed_dropped = 0;
  /// Termination time (simulated µs); -1 if never, or on the socket
  /// substrates (which have no per-node clock worth reporting).
  SimTime terminated_at = -1;
  // Churn/recovery plane (all zero on churn-free runs — see SCENARIOS.md
  // "Churn & recovery" for the metrics schema):
  /// Link re-establishments (TCP) / socket rebinds (UDP) this node took
  /// part in; under sim, one per restart window hitting the node.
  std::uint64_t reconnects = 0;
  /// Catch-up traffic carried for/by this node: replayed frames (TCP), ARQ
  /// retransmissions (UDP), deliveries deferred past a dark window (sim).
  /// Transport recovery overhead — NEVER added to honest_bytes/honest_msgs,
  /// so cross-substrate parity is unaffected by churn.
  std::uint64_t catchup_frames = 0;
  std::uint64_t catchup_bytes = 0;
  /// Total time this node spent dark across its restarts (ms).
  std::uint64_t downtime_ms = 0;

  bool operator==(const NodeCounters&) const = default;
};

/// A node whose thread died with an error on a socket substrate: which node
/// and why (exception text, typically carrying errno — e.g. the typed
/// ResourceExhausted of a UDP unacked-map overflow).
struct NodeError {
  NodeId id = 0;
  std::string message;

  bool operator==(const NodeError&) const = default;
};

/// Result of one scenario run on either substrate.
struct RunReport {
  /// Every honest (non-crashed) node terminated.
  bool ok = false;
  /// Honest completion time: simulated ms under sim, wall-clock ms on the
  /// socket substrates. (-0.001 when some honest node never terminated,
  /// matching the historical honest_completion = -1 convention.)
  double runtime_ms = 0.0;
  /// Traffic of honest nodes only (the complexity the paper reports).
  std::uint64_t honest_bytes = 0;
  std::uint64_t honest_msgs = 0;
  /// Harvested outputs of honest nodes, in node-id order (vector-valued
  /// protocols contribute all coordinates; non-terminated nodes contribute
  /// nothing). Multi-instance runs (spec.instances > 1) append every
  /// instance's outputs per node, in instance order — all k feeds report,
  /// not just feed 0.
  std::vector<double> outputs;
  /// All n nodes' counters, in node-id order.
  std::vector<NodeCounters> nodes;
  /// Honest node ids that had not terminated (empty iff ok) — on the socket
  /// substrates the ids the cluster's wait() timed out on.
  std::vector<NodeId> unfinished;
  /// Node threads that died with an error (socket substrates; empty under
  /// sim and on clean runs) — which node and the failure cause.
  std::vector<NodeError> node_errors;

  bool operator==(const RunReport&) const = default;

  double megabytes() const { return static_cast<double>(honest_bytes) / 1e6; }
};

/// A substrate that can execute scenarios.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Execute `spec` to completion. Throws ConfigError for unknown protocols
  /// or invalid specs; protocol/transport errors propagate as delphi::Error.
  virtual RunReport run(const ScenarioSpec& spec) = 0;
};

/// Deterministic discrete-event simulation (spec.testbed selects the
/// latency/cost models; spec params: fifo, auth). Executes the full fault
/// plane: spec.adversary becomes the SimConfig's NetworkAdversary and
/// spec.byzantine / spec.crashes wrap the faulted placements' protocols —
/// faulted runs keep the determinism contract (same spec + seed ⇒
/// bit-identical RunReport). Protocols resolve via `registry` (nullptr =
/// ProtocolRegistry::global()).
class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(const ProtocolRegistry* registry = nullptr) noexcept
      : registry_(registry) {}
  RunReport run(const ScenarioSpec& spec) override;

 private:
  const ProtocolRegistry* registry_;
};

/// Real TCP sockets on 127.0.0.1, one OS thread per node (spec params: auth,
/// timeout-ms, nodelay, rate-kbps; testbed is ignored — the network is
/// real). Executes the protocol-wrapping faults (spec.crashes and every
/// spec.byzantine kind) and every spec.adversary form via the netem shim's
/// send-boundary holdback (delay-only on TCP). The loss knobs are rejected
/// with a ConfigError suggesting substrate=udp: TCP has no frame-level
/// recovery, so a shim-dropped frame would be gone forever. Protocols
/// resolve via `registry` (nullptr = ProtocolRegistry::global()).
class TcpRuntime final : public Runtime {
 public:
  explicit TcpRuntime(const ProtocolRegistry* registry = nullptr) noexcept
      : registry_(registry) {}
  RunReport run(const ScenarioSpec& spec) override;

 private:
  const ProtocolRegistry* registry_;
};

/// Real UDP datagrams on 127.0.0.1 (transport/udp.hpp), one OS thread per
/// node (spec params: auth, timeout-ms, rto-ms, and the full netem plane:
/// every adversary= form plus loss / loss-burst / rate-kbps). The
/// substrate's selective-repeat ARQ recovers shim-dropped datagrams, so
/// agreement terminates under bounded loss. Protocols resolve via
/// `registry` (nullptr = ProtocolRegistry::global()).
class UdpRuntime final : public Runtime {
 public:
  explicit UdpRuntime(const ProtocolRegistry* registry = nullptr) noexcept
      : registry_(registry) {}
  RunReport run(const ScenarioSpec& spec) override;

 private:
  const ProtocolRegistry* registry_;
};

/// Run on the substrate the spec names.
RunReport run_scenario(const ScenarioSpec& spec);

/// Simulation config for a testbed kind — the single construction point for
/// the §VI-C testbeds (formerly duplicated between bench_util and tests).
sim::SimConfig testbed_config(TestbedKind tb, std::size_t n,
                              std::uint64_t seed);

}  // namespace delphi::scenario
