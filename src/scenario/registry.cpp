#include "scenario/registry.hpp"

#include <memory>
#include <utility>

#include "aba/aba.hpp"
#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "benor/benor.hpp"
#include "binaa/protocol.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/certificate.hpp"
#include "crypto/coin.hpp"
#include "delphi/delphi.hpp"
#include "dolev/dolev.hpp"
#include "multidim/vector_delphi.hpp"
#include "oracle/dora.hpp"
#include "rbc/rbc.hpp"
#include "transport/decoders.hpp"

namespace delphi::scenario {

namespace {

/// Deployment-wide coin seed (matches the historical bench_util constant so
/// FIN/ACS runs through the scenario API reproduce the bench figures
/// bit-for-bit).
constexpr std::uint64_t kDefaultCoinSeed = 0xF1A5C0;

/// Delphi-family parameter block from the spec's params (AWS-figure
/// defaults; every knob overridable per spec).
protocol::DelphiParams delphi_params(const ScenarioSpec& spec) {
  protocol::DelphiParams p;
  p.space_min = spec.param("space-min", 0.0);
  p.space_max = spec.param("space-max", 200'000.0);
  p.rho0 = spec.param("rho0", 10.0);
  p.eps = spec.param("eps", 2.0);
  p.delta_max = spec.param("delta-max", 2'000.0);
  return p;
}

/// Binary-protocol input: is this node's reading above the workload center?
bool binary_input(const ScenarioSpec& spec, const std::vector<double>& inputs,
                  NodeId i) {
  return inputs[i] >= spec.center;
}

void harvest_value_output(const net::Protocol& p, std::vector<double>& out) {
  if (const auto* vo = dynamic_cast<const net::ValueOutput*>(&p)) {
    if (const auto v = vo->output_value()) out.push_back(*v);
  }
}

ProtocolInfo make_delphi_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    protocol::DelphiProtocol::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.params = delphi_params(spec);
    return [c, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::delphi();
  };
  info.param_keys = {"space-min", "space-max", "rho0", "eps", "delta-max"};
  return info;
}

ProtocolInfo make_binaa_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    binaa::BinAaProtocol::Config c;
    c.core.n = spec.n;
    c.core.t = spec.t;
    c.core.r_max = static_cast<std::uint32_t>(spec.param("r-max", 10.0));
    // The compact VAL codec needs FIFO links: pass fifo=1 alongside it on
    // the sim substrate (TCP is FIFO by nature).
    c.compact = spec.param("compact", 0.0) != 0.0;
    std::vector<bool> bits(spec.n);
    for (NodeId i = 0; i < spec.n; ++i) bits[i] = binary_input(spec, inputs, i);
    return [c, bits = std::move(bits)](NodeId i) {
      return std::make_unique<binaa::BinAaProtocol>(c, bits[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::binaa();
  };
  info.param_keys = {"r-max", "compact"};
  return info;
}

ProtocolInfo make_abraham_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    abraham::AbrahamProtocol::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.rounds = static_cast<std::uint32_t>(spec.param("rounds", 10.0));
    c.space_min = spec.param("space-min", 0.0);
    c.space_max = spec.param("space-max", 200'000.0);
    return [c, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<abraham::AbrahamProtocol>(c, inputs[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec& spec) {
    return transport::decoders::abraham(spec.n);
  };
  info.param_keys = {"rounds", "space-min", "space-max"};
  return info;
}

ProtocolInfo make_dolev_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    dolev::DolevProtocol::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.rounds = static_cast<std::uint32_t>(spec.param("rounds", 10.0));
    c.space_min = spec.param("space-min", -1e18);
    c.space_max = spec.param("space-max", 1e18);
    return [c, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<dolev::DolevProtocol>(c, inputs[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::dolev();
  };
  info.default_faults = [](std::size_t n) {
    return dolev::DolevProtocol::max_faults_5t(n);
  };
  info.param_keys = {"rounds", "space-min", "space-max"};
  return info;
}

ProtocolInfo make_benor_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    benor::BenOrProtocol::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.max_rounds = static_cast<std::uint32_t>(spec.param("max-rounds", 4096.0));
    std::vector<bool> bits(spec.n);
    for (NodeId i = 0; i < spec.n; ++i) bits[i] = binary_input(spec, inputs, i);
    return [c, bits = std::move(bits)](NodeId i) {
      return std::make_unique<benor::BenOrProtocol>(c, bits[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::benor();
  };
  info.default_faults = [](std::size_t n) { return (n - 1) / 5; };
  info.param_keys = {"max-rounds"};
  return info;
}

ProtocolInfo make_aba_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    auto coin = std::make_shared<crypto::CommonCoin>(static_cast<std::uint64_t>(
        spec.param("coin-seed", static_cast<double>(kDefaultCoinSeed))));
    aba::AbaInstance::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.instance_id = spec.seed;
    c.coin = coin.get();
    c.coin_compute_us = static_cast<SimTime>(spec.param(
        "coin-us",
        static_cast<double>(default_coin_cost(spec.testbed, spec.n))));
    std::vector<bool> bits(spec.n);
    for (NodeId i = 0; i < spec.n; ++i) bits[i] = binary_input(spec, inputs, i);
    return [c, coin, bits = std::move(bits)](NodeId i) {
      return std::make_unique<aba::AbaProtocol>(c, bits[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::aba();
  };
  info.harvest = [](const net::Protocol& p, std::vector<double>& out) {
    if (const auto* ap = dynamic_cast<const aba::AbaProtocol*>(&p)) {
      if (ap->instance().decided()) {
        out.push_back(ap->instance().decision() ? 1.0 : 0.0);
      }
    }
  };
  info.param_keys = {"coin-seed", "coin-us"};
  return info;
}

ProtocolInfo make_rbc_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    rbc::RbcInstance::Config c;
    c.n = spec.n;
    c.t = spec.t;
    const double b = spec.param("broadcaster", 0.0);
    if (b < 0.0 || b >= static_cast<double>(spec.n)) {
      throw ConfigError("rbc: broadcaster must be in 0..n-1");
    }
    c.broadcaster = static_cast<NodeId>(b);
    // The broadcaster disseminates its own input, encoded as IEEE-754 bytes;
    // the harvester decodes it back, so RBC plugs into the same real-valued
    // output channel as the agreement protocols.
    ByteWriter w;
    w.f64(inputs[c.broadcaster]);
    auto payload = w.data();
    return [c, payload](NodeId) {
      return std::make_unique<rbc::RbcProtocol>(c, payload);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::rbc();
  };
  info.harvest = [](const net::Protocol& p, std::vector<double>& out) {
    if (const auto* rp = dynamic_cast<const rbc::RbcProtocol*>(&p)) {
      if (rp->instance().delivered()) {
        ByteReader r(rp->instance().value());
        out.push_back(r.f64());
      }
    }
  };
  info.param_keys = {"broadcaster"};
  return info;
}

ProtocolInfo make_acs_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    auto coin = std::make_shared<crypto::CommonCoin>(static_cast<std::uint64_t>(
        spec.param("coin-seed", static_cast<double>(kDefaultCoinSeed))));
    acs::AcsProtocol::Config c;
    c.n = spec.n;
    c.t = spec.t;
    c.coin = coin.get();
    c.coin_compute_us = static_cast<SimTime>(spec.param(
        "coin-us",
        static_cast<double>(default_coin_cost(spec.testbed, spec.n))));
    c.session = spec.seed;
    return [c, coin, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<acs::AcsProtocol>(c, inputs[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec& spec) {
    return transport::decoders::acs(spec.n);
  };
  info.param_keys = {"coin-seed", "coin-us"};
  return info;
}

ProtocolInfo make_multidim_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    const auto dims =
        static_cast<std::size_t>(spec.param("dims", 2.0));
    auto c = multidim::VectorDelphiProtocol::Config::uniform(
        spec.n, spec.t, delphi_params(spec), dims);
    // Every coordinate observes the node's scalar reading (a d-way
    // replicated sensor) — scenario workloads are scalar streams.
    return [c, dims, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<multidim::VectorDelphiProtocol>(
          c, std::vector<double>(dims, inputs[i]));
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::delphi();
  };
  info.harvest = [](const net::Protocol& p, std::vector<double>& out) {
    if (const auto* vp = dynamic_cast<const multidim::VectorOutput*>(&p)) {
      if (const auto v = vp->output_vector()) {
        out.insert(out.end(), v->begin(), v->end());
      }
    }
  };
  info.param_keys = {"dims", "space-min", "space-max", "rho0", "eps", "delta-max"};
  return info;
}

ProtocolInfo make_dora_info() {
  ProtocolInfo info;
  info.make_factory = [](const ScenarioSpec& spec,
                         std::vector<double> inputs) -> net::ProtocolFactory {
    // Deployment key material + attestation session, both derived from the
    // spec seed (the "DKG" the substitution model does not run).
    auto keys = std::make_shared<crypto::KeyStore>(
        static_cast<std::uint64_t>(spec.param("keys-seed", 99.0)), spec.n);
    auto attestor = std::make_shared<crypto::Attestor>(*keys, spec.seed);
    oracle::DoraProtocol::Config c;
    c.delphi.n = spec.n;
    c.delphi.t = spec.t;
    c.delphi.params = delphi_params(spec);
    c.attestor = attestor.get();
    c.sign_compute_us = static_cast<SimTime>(spec.param("sign-us", 0.0));
    c.verify_compute_us = static_cast<SimTime>(spec.param("verify-us", 0.0));
    return [c, keys, attestor, inputs = std::move(inputs)](NodeId i) {
      return std::make_unique<oracle::DoraProtocol>(c, inputs[i]);
    };
  };
  info.make_decoder = [](const ScenarioSpec&) {
    return transport::decoders::dora();
  };
  info.param_keys = {"keys-seed", "sign-us", "verify-us", "space-min", "space-max", "rho0", "eps", "delta-max"};
  return info;
}

void register_builtins(ProtocolRegistry& reg) {
  reg.add("delphi", make_delphi_info());
  reg.add("binaa", make_binaa_info());
  reg.add("abraham", make_abraham_info());
  reg.add("dolev", make_dolev_info());
  reg.add("benor", make_benor_info());
  reg.add("aba", make_aba_info());
  reg.add("rbc", make_rbc_info());
  reg.add("acs", make_acs_info());
  reg.add("fin", make_acs_info());  // the paper's name for the ACS baseline
  reg.add("multidim", make_multidim_info());
  reg.add("dora", make_dora_info());
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry* reg = [] {
    auto* r = new ProtocolRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void ProtocolRegistry::add(std::string name, ProtocolInfo info) {
  if (name.empty()) throw ConfigError("registry: empty protocol name");
  if (!info.make_factory || !info.make_decoder) {
    throw ConfigError("registry: '" + name +
                      "' needs make_factory and make_decoder");
  }
  if (!info.harvest) info.harvest = harvest_value_output;
  if (!info.default_faults) {
    info.default_faults = [](std::size_t n) { return max_faults(n); };
  }
  const auto [it, inserted] = entries_.emplace(std::move(name), std::move(info));
  if (!inserted) {
    throw ConfigError("registry: duplicate protocol '" + it->first + "'");
  }
}

const ProtocolInfo* ProtocolRegistry::find(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const ProtocolInfo& ProtocolRegistry::require(std::string_view name) const {
  if (const auto* info = find(name)) return *info;
  std::string known;
  for (const auto& [k, v] : entries_) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  throw ConfigError("registry: unknown protocol '" + std::string(name) +
                    "' (known: " + known + ")");
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

SimTime default_coin_cost(TestbedKind tb, std::size_t n) {
  // A Cachin-style coin costs ~n/3+1 share verifications, one pairing each.
  // Pairings run ~0.25 ms on t2.micro-class x86 and ~4 ms on Cortex-A72
  // (Raspberry Pi 4) — the three-orders-over-symmetric-crypto cost the paper
  // cites in §I. The free-CPU correctness testbeds charge nothing.
  double per_pairing_us = 0.0;
  switch (tb) {
    case TestbedKind::kAws:
      per_pairing_us = 250.0;
      break;
    case TestbedKind::kCps:
      per_pairing_us = 4000.0;
      break;
    case TestbedKind::kAsync:
    case TestbedKind::kFast:
      return 0;
  }
  return static_cast<SimTime>(per_pairing_us *
                              (static_cast<double>(n) / 3.0 + 1.0));
}

}  // namespace delphi::scenario
