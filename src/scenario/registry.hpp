#pragma once
/// \file registry.hpp
/// ProtocolRegistry — name → "how to run this protocol suite anywhere".
///
/// Each entry packages the three substrate-facing hooks a protocol needs:
///   * a factory building per-node protocol instances from a ScenarioSpec
///     (shared deployment state — common coins, key stores, attestors — is
///     owned by closures captured inside the returned net::ProtocolFactory);
///   * the TCP payload `Decoder` recovering typed messages from bytes
///     (the per-suite channel→message-type mapping, transport/decoders.hpp);
///   * an output harvester appending a node's decided value(s) to the run's
///     output vector (ValueOutput for scalar protocols, all coordinates for
///     vector protocols, the decoded payload for RBC, 0/1 for binary BA).
///
/// Built-in suites (registered on first access of global()): delphi, binaa,
/// abraham, dolev, benor, aba, rbc, acs (alias: fin), multidim, dora.
/// Applications may add their own entries; registration must happen before
/// the registry is used concurrently (e.g. before a parallel sweep starts).

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hpp"
#include "scenario/spec.hpp"
#include "transport/tcp.hpp"

namespace delphi::scenario {

/// Appends node's output value(s) — zero or more doubles — to `out`.
using OutputHarvester =
    std::function<void(const net::Protocol&, std::vector<double>&)>;

/// One registered protocol suite.
struct ProtocolInfo {
  /// Build the per-node factory. `spec.t` is already resolved (never
  /// kAutoFaults) and `inputs` has exactly spec.n entries. The returned
  /// factory must stay alive for the whole run (it may own shared state).
  std::function<net::ProtocolFactory(const ScenarioSpec& spec,
                                     std::vector<double> inputs)>
      make_factory;

  /// TCP payload decoder for this suite.
  std::function<transport::Decoder(const ScenarioSpec& spec)> make_decoder;

  /// Harvest a node's outputs. Defaults (when null) to reading
  /// net::ValueOutput.
  OutputHarvester harvest;

  /// Default fault bound for system size n when spec.t == kAutoFaults.
  /// Defaults (when null) to max_faults(n) = (n-1)/3.
  std::function<std::size_t(std::size_t n)> default_faults;

  /// Parameter keys this suite reads from spec.params, beyond the universal
  /// substrate knobs (scenario::universal_param_keys()). Advertising them
  /// lets ScenarioSpec::validate_params reject typo'd keys ("crashs=2")
  /// instead of silently swallowing them.
  std::vector<std::string> param_keys;
};

class ProtocolRegistry {
 public:
  /// The process-wide registry, with all built-in suites pre-registered.
  static ProtocolRegistry& global();

  /// Register a suite; throws ConfigError on duplicate names. Null harvest /
  /// default_faults hooks are filled with the documented defaults.
  void add(std::string name, ProtocolInfo info);

  /// nullptr if `name` is not registered.
  const ProtocolInfo* find(std::string_view name) const;

  /// Like find(), but throws ConfigError naming the known protocols.
  const ProtocolInfo& require(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, ProtocolInfo, std::less<>> entries_;
};

/// Default CPU charge per threshold-coin toss on a testbed — the stand-in
/// for the O(n) pairing bill of a real common coin (DESIGN.md): a Cachin
/// coin verifies a quorum of ~n/3+1 shares, one pairing each, at ~0.25 ms
/// (t2.micro x86) / ~4 ms (Pi 4) per pairing. Zero on the free-CPU testbeds.
SimTime default_coin_cost(TestbedKind tb, std::size_t n);

}  // namespace delphi::scenario
