#pragma once
/// \file sweep.hpp
/// SweepRunner — fan a batch of scenarios across a thread pool.
///
/// Simulator runs are single-threaded and deterministic, so independent
/// specs parallelize with zero coordination: the pool's only shared state is
/// the next-index counter, each worker writes its own result slot, and the
/// returned vector is in spec order regardless of the job count — a parallel
/// sweep is bit-identical to running the same specs serially
/// (tests/sweep_test.cpp pins this).
///
/// TCP-substrate specs already spawn n threads each, so they are executed
/// serially on the calling thread instead of multiplying the pool.
///
/// Fault dimensions sweep like any other: specs differing only in
/// adversary= / byzantine= / crashes= are independent deterministic runs
/// (bench::fault_axis builds the standard labeled grid; bench_fault_sweep
/// is the canonical fault × protocol × n consumer).

#include <vector>

#include "scenario/runtime.hpp"

namespace delphi::scenario {

class SweepRunner {
 public:
  /// \param jobs  worker threads for sim-substrate specs; 0 = one per
  ///              hardware thread.
  explicit SweepRunner(unsigned jobs = 0);

  /// Run every spec, returning reports in spec order. If any run throws, the
  /// remaining queued specs still execute and the error of the lowest-index
  /// failing spec is rethrown after the pool drains.
  std::vector<RunReport> run(const std::vector<ScenarioSpec>& specs) const;

  unsigned jobs() const noexcept { return jobs_; }

 private:
  unsigned jobs_;
};

}  // namespace delphi::scenario
