#include "scenario/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "scenario/registry.hpp"

namespace delphi::scenario {

namespace {

/// Round-trip-exact double formatting: shortest %.17g form is parsed back to
/// the identical bit pattern by strtod.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips (keeps specs readable).
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%g", v);
  if (std::strtod(short_buf, nullptr) == v) return short_buf;
  return buf;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("scenario: '" + key + "' expects a number, got '" +
                      value + "'");
  }
  // ERANGE covers both overflow (±HUGE_VAL) and subnormal underflow; only
  // overflow is a lie about the value's magnitude.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    throw ConfigError("scenario: '" + key + "' overflows a double: '" + value +
                      "'");
  }
  if (std::isnan(v)) {
    throw ConfigError("scenario: '" + key + "' must not be nan");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  // strtoull silently negates a leading '-' (n=-3 wraps to ~2^64): reject
  // signs up front so only plain digit strings pass.
  if (value.empty() || !(value[0] >= '0' && value[0] <= '9')) {
    throw ConfigError("scenario: '" + key +
                      "' expects a non-negative integer, got '" + value + "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("scenario: '" + key + "' expects an integer, got '" +
                      value + "'");
  }
  if (errno == ERANGE) {
    throw ConfigError("scenario: '" + key + "' overflows a 64-bit integer: '" +
                      value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// Split a fault-field value on ':' — "crash-after:5:2" -> {crash-after,5,2}.
std::vector<std::string> split_colon(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto colon = value.find(':', start);
    parts.push_back(value.substr(start, colon - start));
    if (colon == std::string::npos) return parts;
    start = colon + 1;
  }
}

[[noreturn]] void bad_adversary(const std::string& value) {
  throw ConfigError(
      "scenario: adversary must be none, random-delay:<max_us>, "
      "targeted-lag:<k>:<lag_us>, partition:<k>:<heal_us> or "
      "burst:<period_us>, got '" +
      value + "'");
}

[[noreturn]] void bad_byzantine(const std::string& value) {
  throw ConfigError(
      "scenario: byzantine must be none, crash-after:<sends>:<k> or "
      "garbage:<size>:<k>, got '" +
      value + "'");
}

[[noreturn]] void bad_churn(const std::string& value) {
  throw ConfigError(
      "scenario: churn must be <k>:<down_us>:<up_us> (or the fault-family "
      "spelling churn:<k>:<down_us>:<up_us>), got '" +
      value + "'");
}

}  // namespace

AdversarySpec parse_adversary(const std::string& value) {
  const auto parts = split_colon(value);
  AdversarySpec a;
  const std::string& name = parts[0];
  if (name == "none") {
    if (parts.size() != 1) bad_adversary(value);
    return a;
  }
  if (name == "random-delay" || name == "burst") {
    if (parts.size() != 2) bad_adversary(value);
    a.kind = name == "burst" ? AdversaryKind::kBurst
                             : AdversaryKind::kRandomDelay;
    a.us = parse_u64("adversary", parts[1]);
  } else if (name == "targeted-lag" || name == "partition") {
    if (parts.size() != 3) bad_adversary(value);
    a.kind = name == "partition" ? AdversaryKind::kPartition
                                 : AdversaryKind::kTargetedLag;
    a.k = parse_u64("adversary", parts[1]);
    a.us = parse_u64("adversary", parts[2]);
  } else {
    bad_adversary(value);
  }
  return a;
}

ByzantineSpec parse_byzantine(const std::string& value) {
  const auto parts = split_colon(value);
  ByzantineSpec b;
  const std::string& name = parts[0];
  if (name == "none") {
    if (parts.size() != 1) bad_byzantine(value);
    return b;
  }
  if (name == "crash-after" || name == "garbage") {
    if (parts.size() != 3) bad_byzantine(value);
    b.kind = name == "garbage" ? ByzantineKind::kGarbage
                               : ByzantineKind::kCrashAfter;
    b.param = parse_u64("byzantine", parts[1]);
    b.k = parse_u64("byzantine", parts[2]);
  } else {
    bad_byzantine(value);
  }
  return b;
}

ChurnSpec parse_churn(const std::string& value) {
  auto parts = split_colon(value);
  // Accept the fault-family spelling churn:<k>:<down>:<up> too.
  if (!parts.empty() && parts[0] == "churn") parts.erase(parts.begin());
  if (parts.size() != 3) bad_churn(value);
  ChurnSpec c;
  c.k = parse_u64("churn", parts[0]);
  c.down_us = parse_u64("churn", parts[1]);
  c.up_us = parse_u64("churn", parts[2]);
  return c;
}

std::string to_string(const ChurnSpec& c) {
  return "churn:" + std::to_string(c.k) + ":" + std::to_string(c.down_us) +
         ":" + std::to_string(c.up_us);
}

std::string to_string(const AdversarySpec& a) {
  switch (a.kind) {
    case AdversaryKind::kNone:
      return "none";
    case AdversaryKind::kRandomDelay:
      return "random-delay:" + std::to_string(a.us);
    case AdversaryKind::kTargetedLag:
      return "targeted-lag:" + std::to_string(a.k) + ":" + std::to_string(a.us);
    case AdversaryKind::kPartition:
      return "partition:" + std::to_string(a.k) + ":" + std::to_string(a.us);
    case AdversaryKind::kBurst:
      return "burst:" + std::to_string(a.us);
  }
  return "none";
}

std::string to_string(const ByzantineSpec& b) {
  switch (b.kind) {
    case ByzantineKind::kNone:
      return "none";
    case ByzantineKind::kCrashAfter:
      return "crash-after:" + std::to_string(b.param) + ":" +
             std::to_string(b.k);
    case ByzantineKind::kGarbage:
      return "garbage:" + std::to_string(b.param) + ":" + std::to_string(b.k);
  }
  return "none";
}

const std::vector<std::string>& universal_param_keys() {
  static const std::vector<std::string> keys = {
      "auth",      "fifo",      "nodelay", "timeout-ms",
      "loss",      "loss-burst", "rate-kbps", "rto-ms"};
  return keys;
}

const char* to_string(Substrate s) noexcept {
  switch (s) {
    case Substrate::kSim:
      return "sim";
    case Substrate::kTcp:
      return "tcp";
    case Substrate::kUdp:
      return "udp";
  }
  return "?";
}

const char* to_string(MuxMode m) noexcept {
  switch (m) {
    case MuxMode::kConcurrent:
      return "concurrent";
    case MuxMode::kSequential:
      return "sequential";
  }
  return "?";
}

const char* to_string(TestbedKind tb) noexcept {
  switch (tb) {
    case TestbedKind::kAws:
      return "aws";
    case TestbedKind::kCps:
      return "cps";
    case TestbedKind::kAsync:
      return "async";
    case TestbedKind::kFast:
      return "fast";
  }
  return "?";
}

double ScenarioSpec::param(const std::string& key, double dflt) const {
  const auto it = params.find(key);
  return it == params.end() ? dflt : it->second;
}

std::vector<double> ScenarioSpec::make_inputs() const {
  if (!inputs.empty()) {
    if (inputs.size() != n) {
      throw ConfigError("scenario: explicit inputs size " +
                        std::to_string(inputs.size()) + " != n " +
                        std::to_string(n));
    }
    return inputs;
  }
  return clustered_inputs(n, center, delta, seed + n);
}

void ScenarioSpec::validate() const {
  if (protocol.empty()) throw ConfigError("scenario: empty protocol name");
  if (n < 1) throw ConfigError("scenario: n must be >= 1");
  if (crashes >= n) throw ConfigError("scenario: crashes must be < n");
  // Wrap-free form of crashes + byzantine.k < n: a byzantine.k near 2^64
  // must not slip past the bound by overflowing the sum.
  if (byzantine.k >= n - crashes) {
    throw ConfigError("scenario: crashes + byzantine nodes must be < n");
  }
  if (adversary.kind == AdversaryKind::kTargetedLag ||
      adversary.kind == AdversaryKind::kPartition) {
    if (adversary.k < 1 || adversary.k >= n) {
      throw ConfigError(
          "scenario: adversary victim/group size k must be in 1..n-1");
    }
  }
  if (adversary.kind == AdversaryKind::kBurst && adversary.us < 1) {
    throw ConfigError("scenario: burst adversary period must be >= 1 us");
  }
  if (byzantine.kind == ByzantineKind::kGarbage && byzantine.param < 1) {
    throw ConfigError("scenario: garbage message size must be >= 1 byte");
  }
  for (const auto& c : churn) {
    if (c.k < 1) throw ConfigError("scenario: churn k must be >= 1");
    // Churned nodes are honest: placements stay below the top-id
    // crash/byzantine block (wrap-free bound like the one above).
    if (c.k > n - crashes - byzantine.k) {
      throw ConfigError(
          "scenario: churn k must be <= n - crashes - byzantine nodes "
          "(restarting nodes are honest)");
    }
    if (c.up_us <= c.down_us) {
      throw ConfigError("scenario: churn up_us must be > down_us");
    }
  }
  if (churn.size() > 1) {
    std::vector<ChurnSpec> sorted = churn;
    std::sort(sorted.begin(), sorted.end(),
              [](const ChurnSpec& a, const ChurnSpec& b) {
                return a.down_us < b.down_us;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].down_us < sorted[i - 1].up_us) {
        throw ConfigError("scenario: churn windows must be pairwise disjoint");
      }
    }
  }
  if (!inputs.empty() && inputs.size() != n) {
    throw ConfigError("scenario: explicit inputs size != n");
  }
  if (instances < 1) throw ConfigError("scenario: instances must be >= 1");
  // Each instance owns a 2^16-channel SessionMux window of the 32-bit
  // channel space, so 2^16 instances is the hard ceiling.
  if (instances > (std::size_t{1} << 16)) {
    throw ConfigError(
        "scenario: instances must be <= 65536 (each instance owns a "
        "2^16-channel window of the 32-bit channel space)");
  }
  // Netem shim knob ranges (substrate support is checked by the runtimes;
  // the ranges are wrong on every substrate).
  const double loss = param("loss", 0.0);
  if (loss < 0.0 || loss >= 1.0) {
    throw ConfigError("scenario: loss must be in [0, 1)");
  }
  if (param("loss-burst", 1.0) < 1.0) {
    throw ConfigError("scenario: loss-burst must be >= 1");
  }
  if (param("rate-kbps", 0.0) < 0.0) {
    throw ConfigError("scenario: rate-kbps must be >= 0");
  }
  if (param("rto-ms", 25.0) < 1.0) {
    throw ConfigError("scenario: rto-ms must be >= 1");
  }
}

namespace {

/// Classic O(|a|·|b|) Levenshtein distance — small strings only (key names).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev = cur;
    }
  }
  return row[b.size()];
}

/// Fixed spec fields — candidates for "did you mean" on top of the
/// protocol's parameter keys (a typo'd fixed key lands in params too).
const std::vector<std::string>& fixed_spec_keys() {
  static const std::vector<std::string> keys = {
      "protocol",  "substrate", "testbed",  "n",         "t",
      "crashes",   "instances", "mux-mode", "adversary", "byzantine",
      "churn",     "churn-seed", "seed",    "center",    "delta",
      "inputs"};
  return keys;
}

}  // namespace

void ScenarioSpec::validate_params(const ProtocolRegistry& reg) const {
  const auto* info = reg.find(protocol);
  if (info == nullptr) return;  // require() reports unknown protocols
  std::vector<std::string> known = info->param_keys;
  known.insert(known.end(), universal_param_keys().begin(),
               universal_param_keys().end());
  for (const auto& [key, value] : params) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    // Suggest the closest known key (params, universal knobs, or a fixed
    // field the typo was probably aiming at).
    std::vector<std::string> candidates = known;
    candidates.insert(candidates.end(), fixed_spec_keys().begin(),
                      fixed_spec_keys().end());
    std::string best;
    std::size_t best_dist = std::string::npos;
    for (const auto& cand : candidates) {
      const auto d = edit_distance(key, cand);
      if (d < best_dist) {
        best_dist = d;
        best = cand;
      }
    }
    std::string msg = "scenario: unknown parameter '" + key +
                      "' for protocol '" + protocol + "'";
    if (best_dist <= 2) msg += " (did you mean '" + best + "'?)";
    std::sort(known.begin(), known.end());
    msg += "; valid keys:";
    for (const auto& k : known) msg += " " + k;
    throw ConfigError(msg);
  }
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  os << "protocol=" << protocol;
  os << " substrate=" << to_string(substrate);
  os << " testbed=" << to_string(testbed);
  os << " n=" << n;
  os << " t=";
  if (t == kAutoFaults) {
    os << "auto";
  } else {
    os << t;
  }
  os << " crashes=" << crashes;
  // Mux fields are omitted at their defaults so single-instance spec text
  // (and the goldens pinned to it) is reproduced byte-for-byte.
  if (instances != 1) os << " instances=" << instances;
  if (mux_mode != MuxMode::kConcurrent) {
    os << " mux-mode=" << to_string(mux_mode);
  }
  // Fault fields are omitted when inactive so pre-fault-plane spec text (and
  // the goldens pinned to it) is reproduced byte-for-byte.
  if (adversary.kind != AdversaryKind::kNone) {
    os << " adversary=" << to_string(adversary);
  }
  if (byzantine.kind != ByzantineKind::kNone) {
    os << " byzantine=" << to_string(byzantine);
  }
  // Churn entries are emitted as repeated keys (the value without the family
  // prefix; from_text appends each occurrence in order).
  for (const auto& c : churn) {
    os << " churn=" << c.k << ":" << c.down_us << ":" << c.up_us;
  }
  if (churn_seed != 0) os << " churn-seed=" << churn_seed;
  os << " seed=" << seed;
  os << " center=" << fmt_double(center);
  os << " delta=" << fmt_double(delta);
  for (const auto& [k, v] : params) os << " " << k << "=" << fmt_double(v);
  if (!inputs.empty()) {
    os << " inputs=";
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << fmt_double(inputs[i]);
    }
  }
  return os.str();
}

ScenarioSpec ScenarioSpec::from_text(const std::string& text) {
  ScenarioSpec spec;
  spec.params.clear();
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("scenario: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "protocol") {
      spec.protocol = value;
    } else if (key == "substrate") {
      if (value == "sim") {
        spec.substrate = Substrate::kSim;
      } else if (value == "tcp") {
        spec.substrate = Substrate::kTcp;
      } else if (value == "udp") {
        spec.substrate = Substrate::kUdp;
      } else {
        throw ConfigError(
            "scenario: substrate must be sim, tcp or udp, got '" + value +
            "'");
      }
    } else if (key == "testbed") {
      if (value == "aws") {
        spec.testbed = TestbedKind::kAws;
      } else if (value == "cps") {
        spec.testbed = TestbedKind::kCps;
      } else if (value == "async") {
        spec.testbed = TestbedKind::kAsync;
      } else if (value == "fast") {
        spec.testbed = TestbedKind::kFast;
      } else {
        throw ConfigError("scenario: unknown testbed '" + value + "'");
      }
    } else if (key == "n") {
      spec.n = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "t") {
      spec.t = value == "auto"
                   ? kAutoFaults
                   : static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "crashes") {
      spec.crashes = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "instances") {
      spec.instances = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "mux-mode") {
      if (value == "concurrent") {
        spec.mux_mode = MuxMode::kConcurrent;
      } else if (value == "sequential") {
        spec.mux_mode = MuxMode::kSequential;
      } else {
        throw ConfigError(
            "scenario: mux-mode must be concurrent or sequential, got '" +
            value + "'");
      }
    } else if (key == "adversary") {
      spec.adversary = parse_adversary(value);
    } else if (key == "byzantine") {
      spec.byzantine = parse_byzantine(value);
    } else if (key == "churn") {
      spec.churn.push_back(parse_churn(value));
    } else if (key == "churn-seed") {
      spec.churn_seed = parse_u64(key, value);
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "center") {
      spec.center = parse_double(key, value);
    } else if (key == "delta") {
      spec.delta = parse_double(key, value);
    } else if (key == "inputs") {
      spec.inputs.clear();
      std::stringstream ss(value);
      std::string item;
      while (std::getline(ss, item, ',')) {
        spec.inputs.push_back(parse_double(key, item));
      }
      if (spec.inputs.empty()) {
        throw ConfigError("scenario: inputs= list is empty");
      }
    } else {
      spec.params[key] = parse_double(key, value);
    }
  }
  spec.validate();
  // Typos must not silently vanish into params: hand-written text is checked
  // against the built-in registry (custom-registry protocols validate at run
  // time via the runtime's registry instead).
  spec.validate_params(ProtocolRegistry::global());
  return spec;
}

std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> inputs(n);
  if (n >= 2 && delta > 0.0) {
    inputs[0] = center - delta / 2.0;
    inputs[1] = center + delta / 2.0;
    for (std::size_t i = 2; i < n; ++i) {
      inputs[i] = center + (rng.uniform() - 0.5) * delta;
    }
    // Shuffle so the extremes are not always nodes 0/1.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(inputs[i - 1], inputs[rng.below(i)]);
    }
  } else {
    for (auto& v : inputs) v = center;
  }
  return inputs;
}

}  // namespace delphi::scenario
