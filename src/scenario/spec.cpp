#include "scenario/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace delphi::scenario {

namespace {

/// Round-trip-exact double formatting: shortest %.17g form is parsed back to
/// the identical bit pattern by strtod.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips (keeps specs readable).
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%g", v);
  if (std::strtod(short_buf, nullptr) == v) return short_buf;
  return buf;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("scenario: '" + key + "' expects a number, got '" +
                      value + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("scenario: '" + key + "' expects an integer, got '" +
                      value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* to_string(Substrate s) noexcept {
  return s == Substrate::kSim ? "sim" : "tcp";
}

const char* to_string(TestbedKind tb) noexcept {
  switch (tb) {
    case TestbedKind::kAws:
      return "aws";
    case TestbedKind::kCps:
      return "cps";
    case TestbedKind::kAsync:
      return "async";
    case TestbedKind::kFast:
      return "fast";
  }
  return "?";
}

double ScenarioSpec::param(const std::string& key, double dflt) const {
  const auto it = params.find(key);
  return it == params.end() ? dflt : it->second;
}

std::vector<double> ScenarioSpec::make_inputs() const {
  if (!inputs.empty()) {
    if (inputs.size() != n) {
      throw ConfigError("scenario: explicit inputs size " +
                        std::to_string(inputs.size()) + " != n " +
                        std::to_string(n));
    }
    return inputs;
  }
  return clustered_inputs(n, center, delta, seed + n);
}

void ScenarioSpec::validate() const {
  if (protocol.empty()) throw ConfigError("scenario: empty protocol name");
  if (n < 1) throw ConfigError("scenario: n must be >= 1");
  if (crashes >= n) throw ConfigError("scenario: crashes must be < n");
  if (!inputs.empty() && inputs.size() != n) {
    throw ConfigError("scenario: explicit inputs size != n");
  }
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  os << "protocol=" << protocol;
  os << " substrate=" << to_string(substrate);
  os << " testbed=" << to_string(testbed);
  os << " n=" << n;
  os << " t=";
  if (t == kAutoFaults) {
    os << "auto";
  } else {
    os << t;
  }
  os << " crashes=" << crashes;
  os << " seed=" << seed;
  os << " center=" << fmt_double(center);
  os << " delta=" << fmt_double(delta);
  for (const auto& [k, v] : params) os << " " << k << "=" << fmt_double(v);
  if (!inputs.empty()) {
    os << " inputs=";
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << fmt_double(inputs[i]);
    }
  }
  return os.str();
}

ScenarioSpec ScenarioSpec::from_text(const std::string& text) {
  ScenarioSpec spec;
  spec.params.clear();
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("scenario: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "protocol") {
      spec.protocol = value;
    } else if (key == "substrate") {
      if (value == "sim") {
        spec.substrate = Substrate::kSim;
      } else if (value == "tcp") {
        spec.substrate = Substrate::kTcp;
      } else {
        throw ConfigError("scenario: substrate must be sim or tcp, got '" +
                          value + "'");
      }
    } else if (key == "testbed") {
      if (value == "aws") {
        spec.testbed = TestbedKind::kAws;
      } else if (value == "cps") {
        spec.testbed = TestbedKind::kCps;
      } else if (value == "async") {
        spec.testbed = TestbedKind::kAsync;
      } else if (value == "fast") {
        spec.testbed = TestbedKind::kFast;
      } else {
        throw ConfigError("scenario: unknown testbed '" + value + "'");
      }
    } else if (key == "n") {
      spec.n = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "t") {
      spec.t = value == "auto"
                   ? kAutoFaults
                   : static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "crashes") {
      spec.crashes = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "center") {
      spec.center = parse_double(key, value);
    } else if (key == "delta") {
      spec.delta = parse_double(key, value);
    } else if (key == "inputs") {
      spec.inputs.clear();
      std::stringstream ss(value);
      std::string item;
      while (std::getline(ss, item, ',')) {
        spec.inputs.push_back(parse_double(key, item));
      }
      if (spec.inputs.empty()) {
        throw ConfigError("scenario: inputs= list is empty");
      }
    } else {
      spec.params[key] = parse_double(key, value);
    }
  }
  spec.validate();
  return spec;
}

std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> inputs(n);
  if (n >= 2 && delta > 0.0) {
    inputs[0] = center - delta / 2.0;
    inputs[1] = center + delta / 2.0;
    for (std::size_t i = 2; i < n; ++i) {
      inputs[i] = center + (rng.uniform() - 0.5) * delta;
    }
    // Shuffle so the extremes are not always nodes 0/1.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(inputs[i - 1], inputs[rng.below(i)]);
    }
  } else {
    for (auto& v : inputs) v = center;
  }
  return inputs;
}

}  // namespace delphi::scenario
