#pragma once
/// \file feed.hpp
/// Synthetic cryptocurrency price feed — the data substrate for the paper's
/// oracle-network evaluation (§VI-A).
///
/// The paper collected two weeks of per-minute Bitcoin prices from 10
/// exchanges and found the per-minute range delta = max - min across
/// exchanges to be Fréchet-distributed (alpha = 4.41, scale = 29.3 USD; Fig
/// 4), i.e. the underlying per-exchange noise is LogGamma-ish. We generate
/// the same structure synthetically: a mid-price random walk plus
/// per-exchange deviations whose realized range follows exactly that fitted
/// Fréchet. Everything downstream (Fig 4's histogram + fits, the
/// Delta = 2000$ / lambda = 30 calibration, Fig 6 workloads) consumes the
/// feed only through these statistics, which is why the substitution is
/// faithful (DESIGN.md).

#include <vector>

#include "common/rng.hpp"
#include "stats/distributions.hpp"

namespace delphi::oracle {

/// Configuration of the synthetic exchange feed.
struct FeedConfig {
  /// Number of exchanges (the paper queried 10).
  std::size_t exchanges = 10;
  /// Starting mid price (the paper's discussion uses ~40000 USD).
  double initial_price = 40'000.0;
  /// Per-minute lognormal volatility of the mid price random walk.
  double minute_volatility = 4e-4;
  /// Fréchet tail index of the per-minute cross-exchange range (Fig 4 fit).
  double range_alpha = 4.41;
  /// Fréchet scale of the range in USD (Fig 4 fit).
  double range_scale = 29.3;
};

/// A replayable synthetic feed: every call to `next_minute` advances the mid
/// price and draws one cross-exchange snapshot.
class PriceFeed {
 public:
  PriceFeed(FeedConfig cfg, Rng rng);

  /// Prices quoted by each exchange for the next minute (size = exchanges).
  /// The realized max-min of the snapshot equals the minute's Fréchet range
  /// draw; individual deviations are uniform within it (endpoints pinned).
  std::vector<double> next_minute();

  /// Current mid (ground-truth) price.
  double mid() const noexcept { return mid_; }

  /// The range delta = max - min of the last snapshot.
  double last_range() const noexcept { return last_range_; }

  const FeedConfig& config() const noexcept { return cfg_; }

 private:
  FeedConfig cfg_;
  Rng rng_;
  stats::Frechet range_dist_;
  double mid_;
  double last_range_ = 0.0;
};

/// An oracle node's input: the median of the exchanges it queries (the paper:
/// "each node measures the price by querying one or a set of exchanges and
/// computing the median of responses").
double node_observation(const std::vector<double>& snapshot,
                        std::size_t queries, Rng& rng);

/// Generate `minutes` per-minute range samples (the paper's Fig 4 dataset:
/// two weeks = 20160 minutes).
std::vector<double> range_history(const FeedConfig& cfg, std::size_t minutes,
                                  std::uint64_t seed);

}  // namespace delphi::oracle
