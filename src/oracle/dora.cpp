#include "oracle/dora.hpp"

#include <cmath>

namespace delphi::oracle {

DoraProtocol::DoraProtocol(Config cfg, double input)
    : cfg_(cfg), delphi_(cfg.delphi, input) {
  DELPHI_ASSERT(cfg_.attestor != nullptr, "DORA requires an attestor");
}

void DoraProtocol::on_start(net::Context& ctx) {
  delphi_.on_start(ctx);
  after_delphi(ctx);
}

void DoraProtocol::on_message(net::Context& ctx, NodeId from,
                              std::uint32_t channel,
                              const net::MessageBody& body) {
  if (certificate_) return;
  if (channel == kAttestChannel) {
    const auto* msg = dynamic_cast<const AttestMessage*>(&body);
    DELPHI_REQUIRE(msg != nullptr, "DORA: foreign attest message");
    // Verify the share (Byzantine tags are dropped); cost charged per the
    // testbed model.
    ctx.charge_compute(cfg_.verify_compute_us);
    crypto::AttestationShare share{from, msg->value_index(), msg->tag()};
    if (cfg_.attestor->verify(share)) {
      shares_.push_back(share);
      try_certify();
    }
    return;
  }
  if (!delphi_.terminated()) {
    delphi_.on_message(ctx, from, channel, body);
    after_delphi(ctx);
  }
}

void DoraProtocol::after_delphi(net::Context& ctx) {
  if (share_sent_ || !delphi_.terminated()) return;
  share_sent_ = true;
  // Round the Delphi output to the nearest multiple of eps and endorse it.
  const double eps = cfg_.delphi.params.eps;
  const auto idx = static_cast<std::int64_t>(
      std::llround(*delphi_.output_value() / eps));
  ctx.charge_compute(cfg_.sign_compute_us);
  const auto share = cfg_.attestor->sign(ctx.self(), idx);
  shares_.push_back(share);
  ctx.broadcast(kAttestChannel,
                std::make_shared<AttestMessage>(idx, share.tag));
  try_certify();
}

void DoraProtocol::try_certify() {
  if (certificate_) return;
  certificate_ =
      cfg_.attestor->try_assemble(shares_, cfg_.delphi.t + 1);
}

std::optional<double> DoraProtocol::output_value() const {
  if (!certificate_) return std::nullopt;
  return static_cast<double>(certificate_->value_index) *
         cfg_.delphi.params.eps;
}

const crypto::Certificate& DoraProtocol::certificate() const {
  DELPHI_ASSERT(certificate_.has_value(), "DORA certificate before quorum");
  return *certificate_;
}

}  // namespace delphi::oracle
