#include "oracle/feed.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace delphi::oracle {

PriceFeed::PriceFeed(FeedConfig cfg, Rng rng)
    : cfg_(cfg), rng_(rng),
      range_dist_(cfg.range_alpha, cfg.range_scale),
      mid_(cfg.initial_price) {
  DELPHI_ASSERT(cfg_.exchanges >= 2, "PriceFeed: need >= 2 exchanges");
  DELPHI_ASSERT(cfg_.initial_price > 0.0, "PriceFeed: bad initial price");
}

std::vector<double> PriceFeed::next_minute() {
  // Geometric random-walk step for the mid price.
  stats::Normal step(0.0, cfg_.minute_volatility);
  mid_ *= std::exp(step.sample(rng_));

  // Draw this minute's cross-exchange range from the fitted Fréchet and
  // scatter the exchanges inside it, pinning both endpoints so the realized
  // range equals the draw.
  last_range_ = range_dist_.sample(rng_);
  std::vector<double> prices(cfg_.exchanges);
  prices[0] = mid_ - 0.5 * last_range_;
  prices[1] = mid_ + 0.5 * last_range_;
  for (std::size_t i = 2; i < cfg_.exchanges; ++i) {
    prices[i] = mid_ + (rng_.uniform() - 0.5) * last_range_;
  }
  // Shuffle so "exchange 0" is not always the minimum (Fisher–Yates).
  for (std::size_t i = prices.size(); i > 1; --i) {
    std::swap(prices[i - 1], prices[rng_.below(i)]);
  }
  return prices;
}

double node_observation(const std::vector<double>& snapshot,
                        std::size_t queries, Rng& rng) {
  DELPHI_ASSERT(!snapshot.empty(), "node_observation: empty snapshot");
  queries = std::clamp<std::size_t>(queries, 1, snapshot.size());
  std::vector<double> picked;
  picked.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    picked.push_back(snapshot[rng.below(snapshot.size())]);
  }
  std::sort(picked.begin(), picked.end());
  return picked[picked.size() / 2];
}

std::vector<double> range_history(const FeedConfig& cfg, std::size_t minutes,
                                  std::uint64_t seed) {
  PriceFeed feed(cfg, Rng(seed));
  std::vector<double> deltas;
  deltas.reserve(minutes);
  for (std::size_t m = 0; m < minutes; ++m) {
    feed.next_minute();
    deltas.push_back(feed.last_range());
  }
  return deltas;
}

}  // namespace delphi::oracle
