#pragma once
/// \file dora_baseline.hpp
/// The DORA baseline of Chakka et al. [20] (Table III): the SMR-assisted
/// oracle agreement the paper compares Delphi against.
///
/// Protocol (3 rounds, O(l n² + kappa n²) bits, O(n) verifications/node):
///   1. every oracle signs its reading and broadcasts the signed value;
///   2. after collecting n-t valid signed values it submits the list to the
///      external SMR channel (blockchain);
///   3. the SMR channel orders submissions; the *first* valid list wins and
///      every oracle outputs the median of its values.
/// The median of n-t >= 2t+1 values with <= t Byzantine entries lies inside
/// the honest hull — exact convex validity, the row the paper gives DORA.
///
/// The SMR channel is external and trusted in [20] (a blockchain); we model
/// it as one designated sequencer process (node id n in an (n+1)-node
/// deployment) that validates and relays the first submission — see
/// DESIGN.md substitutions. Signatures are HMAC attestation tags; their
/// CPU cost is charged per the testbed model (this is DORA's O(n²)
/// verification bill that Delphi eliminates).

#include <optional>

#include "common/bitset.hpp"
#include "crypto/certificate.hpp"
#include "net/protocol.hpp"

namespace delphi::oracle {

/// A signed oracle reading.
class SignedValueMessage final : public net::MessageBody {
 public:
  SignedValueMessage(double value, crypto::Digest tag)
      : value_(value), tag_(tag) {}

  double value() const noexcept { return value_; }
  const crypto::Digest& tag() const noexcept { return tag_; }

  std::size_t wire_size() const override { return 8 + tag_.size(); }
  void serialize(ByteWriter& w) const override {
    w.f64(value_);
    w.raw(std::span<const std::uint8_t>(tag_.data(), tag_.size()));
  }
  std::string debug() const override { return "DORA.SIGNED"; }
  static std::shared_ptr<const SignedValueMessage> decode(ByteReader& r);

 private:
  double value_;
  crypto::Digest tag_;
};

/// A list of signed readings (a submission to / decision from the SMR).
class ValueListMessage final : public net::MessageBody {
 public:
  struct Entry {
    NodeId signer;
    double value;
    crypto::Digest tag;
  };

  explicit ValueListMessage(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  std::size_t wire_size() const override;
  void serialize(ByteWriter& w) const override;
  std::string debug() const override { return "DORA.LIST"; }
  static std::shared_ptr<const ValueListMessage> decode(ByteReader& r);

 private:
  std::vector<Entry> entries_;
};

/// Shared configuration of the DORA baseline deployment.
struct DoraBaselineConfig {
  /// Number of *oracles* (the deployment has n+1 processes; id n = SMR).
  std::size_t n = 4;
  std::size_t t = 1;
  const crypto::Attestor* attestor = nullptr;
  /// CPU per signature creation / verification (ECDSA/BLS-scale).
  SimTime sign_compute_us = 50;
  SimTime verify_compute_us = 120;
  /// Channel ids.
  static constexpr std::uint32_t kSignedChannel = 1;
  static constexpr std::uint32_t kSubmitChannel = 2;
  static constexpr std::uint32_t kDecideChannel = 3;
};

/// One oracle node of the DORA baseline.
class DoraBaselineOracle final : public net::Protocol, public net::ValueOutput {
 public:
  DoraBaselineOracle(DoraBaselineConfig cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return output_.has_value(); }
  std::optional<double> output_value() const override { return output_; }

 private:
  NodeId smr_node() const { return static_cast<NodeId>(cfg_.n); }

  DoraBaselineConfig cfg_;
  double input_;
  std::vector<ValueListMessage::Entry> collected_;
  NodeBitset seen_;
  bool submitted_ = false;
  std::optional<double> output_;
};

/// The trusted SMR sequencer (external blockchain stand-in, node id n).
class SmrSequencer final : public net::Protocol {
 public:
  explicit SmrSequencer(DoraBaselineConfig cfg) : cfg_(cfg) {}

  void on_start(net::Context&) override {}
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return true; }  // service, not a party

 private:
  DoraBaselineConfig cfg_;
  bool decided_ = false;
};

}  // namespace delphi::oracle
