#pragma once
/// \file dora.hpp
/// DORA-style attested oracle output on top of Delphi (paper §V).
///
/// After Delphi terminates, each node rounds its output to the nearest
/// multiple of eps, signs the rounded value, and collects t+1 matching
/// signatures into a succinct certificate for the SMR channel / blockchain.
/// Because honest Delphi outputs are eps-close, rounding lands them on at
/// most two adjacent grid points, so at least one value is endorsed by t+1
/// honest nodes, and no third value can ever be certified (at most two
/// possible outputs — Table III). Rounding adds one extra eps of validity
/// relaxation: [m - delta - eps, M + delta + eps].
///
/// Signatures are HMAC attestation shares (crypto/certificate.hpp) standing
/// in for the paper's BLS aggregates — see DESIGN.md substitutions.

#include <optional>

#include "crypto/certificate.hpp"
#include "delphi/delphi.hpp"
#include "net/protocol.hpp"

namespace delphi::oracle {

/// Attestation share wire message.
class AttestMessage final : public net::MessageBody {
 public:
  AttestMessage(std::int64_t value_index, crypto::Digest tag)
      : value_index_(value_index), tag_(tag) {}

  std::int64_t value_index() const noexcept { return value_index_; }
  const crypto::Digest& tag() const noexcept { return tag_; }

  std::size_t wire_size() const override {
    return svarint_size(value_index_) + tag_.size();
  }
  void serialize(ByteWriter& w) const override {
    w.svarint(value_index_);
    w.raw(std::span<const std::uint8_t>(tag_.data(), tag_.size()));
  }
  std::string debug() const override {
    return "ATTEST(idx=" + std::to_string(value_index_) + ")";
  }
  static std::shared_ptr<const AttestMessage> decode(ByteReader& r) {
    const std::int64_t idx = r.svarint();
    auto span = r.raw(32);
    crypto::Digest tag{};
    std::copy(span.begin(), span.end(), tag.begin());
    return std::make_shared<AttestMessage>(idx, tag);
  }

 private:
  std::int64_t value_index_;
  crypto::Digest tag_;
};

/// Delphi + rounding + certificate assembly.
class DoraProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    protocol::DelphiProtocol::Config delphi;
    /// Attestor over the deployment's key store.
    const crypto::Attestor* attestor = nullptr;
    /// CPU cost of one signature / one verification (models BLS; charged via
    /// the simulator — Delphi itself stays crypto-free, Table III).
    SimTime sign_compute_us = 0;
    SimTime verify_compute_us = 0;
  };

  DoraProtocol(Config cfg, double input);

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override;
  bool terminated() const override { return certificate_.has_value(); }

  /// The certified (rounded) value.
  std::optional<double> output_value() const override;

  /// The certificate itself (valid once terminated).
  const crypto::Certificate& certificate() const;

  /// The node's raw Delphi output (pre-rounding), once Delphi terminated.
  std::optional<double> raw_output() const { return delphi_.output_value(); }

  /// Channel carrying attestation shares (everything else is Delphi traffic;
  /// the TCP decoder routes on this).
  static constexpr std::uint32_t kAttestChannel = 0xD0 /* distinct */;

 private:
  void after_delphi(net::Context& ctx);
  void try_certify();

  Config cfg_;
  protocol::DelphiProtocol delphi_;
  bool share_sent_ = false;
  std::vector<crypto::AttestationShare> shares_;
  std::optional<crypto::Certificate> certificate_;
};

}  // namespace delphi::oracle
