#include "oracle/dora_baseline.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace delphi::oracle {

namespace {
/// Sign/verify a double exactly via its bit pattern (no rounding grid here —
/// DORA attests raw readings, unlike Delphi+DORA which attests the rounded
/// agreement output).
std::int64_t value_index_of(double v) {
  return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(v));
}
}  // namespace

std::shared_ptr<const SignedValueMessage> SignedValueMessage::decode(
    ByteReader& r) {
  const double v = r.f64();
  DELPHI_REQUIRE(std::isfinite(v), "DORA: non-finite signed value");
  auto span = r.raw(32);
  crypto::Digest tag{};
  std::copy(span.begin(), span.end(), tag.begin());
  return std::make_shared<SignedValueMessage>(v, tag);
}

std::size_t ValueListMessage::wire_size() const {
  std::size_t sz = uvarint_size(entries_.size());
  for (const auto& e : entries_) sz += uvarint_size(e.signer) + 8 + 32;
  return sz;
}

void ValueListMessage::serialize(ByteWriter& w) const {
  w.uvarint(entries_.size());
  for (const auto& e : entries_) {
    w.uvarint(e.signer);
    w.f64(e.value);
    w.raw(std::span<const std::uint8_t>(e.tag.data(), e.tag.size()));
  }
}

std::shared_ptr<const ValueListMessage> ValueListMessage::decode(
    ByteReader& r) {
  const std::uint64_t count = r.uvarint();
  DELPHI_REQUIRE(count <= r.remaining() / 41 + 1, "DORA: list count overflow");
  std::vector<ValueListMessage::Entry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    e.signer = static_cast<NodeId>(r.uvarint());
    e.value = r.f64();
    auto span = r.raw(32);
    std::copy(span.begin(), span.end(), e.tag.begin());
    entries.push_back(e);
  }
  return std::make_shared<ValueListMessage>(std::move(entries));
}

// -------------------------------------------------------- DoraBaselineOracle

DoraBaselineOracle::DoraBaselineOracle(DoraBaselineConfig cfg, double input)
    : cfg_(cfg), input_(input), seen_(cfg.n) {
  DELPHI_ASSERT(cfg_.attestor != nullptr, "DORA baseline needs an attestor");
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "DORA baseline requires n > 3t oracles");
}

void DoraBaselineOracle::on_start(net::Context& ctx) {
  // Round 1: sign and broadcast the reading to the other oracles.
  ctx.charge_compute(cfg_.sign_compute_us);
  const auto share = cfg_.attestor->sign(ctx.self(), value_index_of(input_));
  auto msg = std::make_shared<SignedValueMessage>(input_, share.tag);
  for (NodeId to = 0; to < cfg_.n; ++to) {
    ctx.send(to, DoraBaselineConfig::kSignedChannel, msg);
  }
}

void DoraBaselineOracle::on_message(net::Context& ctx, NodeId from,
                                    std::uint32_t channel,
                                    const net::MessageBody& body) {
  if (output_) return;

  if (channel == DoraBaselineConfig::kSignedChannel) {
    const auto* msg = dynamic_cast<const SignedValueMessage*>(&body);
    DELPHI_REQUIRE(msg != nullptr, "DORA: foreign signed-value message");
    if (from >= cfg_.n || seen_.contains(from)) return;
    // Verify the signature (the per-node O(n) verification bill).
    ctx.charge_compute(cfg_.verify_compute_us);
    crypto::AttestationShare share{from, value_index_of(msg->value()),
                                   msg->tag()};
    if (!cfg_.attestor->verify(share)) return;
    seen_.insert(from);
    collected_.push_back(
        ValueListMessage::Entry{from, msg->value(), msg->tag()});
    // Round 2: first n-t valid values form our submission to the SMR.
    if (!submitted_ && collected_.size() >= cfg_.n - cfg_.t) {
      submitted_ = true;
      ctx.send(smr_node(), DoraBaselineConfig::kSubmitChannel,
               std::make_shared<ValueListMessage>(collected_));
    }
    return;
  }

  if (channel == DoraBaselineConfig::kDecideChannel) {
    DELPHI_REQUIRE(from == smr_node(), "DORA: decision not from the SMR");
    const auto* list = dynamic_cast<const ValueListMessage*>(&body);
    DELPHI_REQUIRE(list != nullptr, "DORA: foreign decision message");
    // Verify the decided list (paper: every oracle checks the chain output).
    std::vector<double> values;
    NodeBitset signers(cfg_.n);
    for (const auto& e : list->entries()) {
      ctx.charge_compute(cfg_.verify_compute_us);
      if (e.signer >= cfg_.n || !signers.insert(e.signer)) return;
      crypto::AttestationShare share{e.signer, value_index_of(e.value), e.tag};
      if (!cfg_.attestor->verify(share)) return;
      values.push_back(e.value);
    }
    if (values.size() < cfg_.n - cfg_.t) return;
    std::sort(values.begin(), values.end());
    // Median of >= 2t+1 values with <= t Byzantine: inside the honest hull.
    output_ = values[values.size() / 2];
    return;
  }

  throw ProtocolViolation("DORA: unexpected channel");
}

// --------------------------------------------------------------- SmrSequencer

void SmrSequencer::on_message(net::Context& ctx, NodeId from,
                              std::uint32_t channel,
                              const net::MessageBody& body) {
  if (decided_ || channel != DoraBaselineConfig::kSubmitChannel) return;
  if (from >= cfg_.n) return;
  const auto* list = dynamic_cast<const ValueListMessage*>(&body);
  DELPHI_REQUIRE(list != nullptr, "SMR: foreign submission");
  // The chain validates the submission before inclusion (charged here; the
  // paper does not count SMR-side cost in Table III, and neither do we when
  // reporting per-oracle numbers — the sequencer's metrics are separate).
  NodeBitset signers(cfg_.n);
  std::size_t valid = 0;
  for (const auto& e : list->entries()) {
    ctx.charge_compute(cfg_.verify_compute_us);
    if (e.signer >= cfg_.n || !signers.insert(e.signer)) return;
    crypto::AttestationShare share{
        e.signer,
        static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(e.value)),
        e.tag};
    if (!cfg_.attestor->verify(share)) return;
    ++valid;
  }
  if (valid < cfg_.n - cfg_.t) return;
  decided_ = true;
  // Totality of the chain: everyone sees the first included list.
  auto decision = std::make_shared<ValueListMessage>(list->entries());
  for (NodeId to = 0; to < cfg_.n; ++to) {
    ctx.send(to, DoraBaselineConfig::kDecideChannel, decision);
  }
}

}  // namespace delphi::oracle
