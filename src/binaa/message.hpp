#pragma once
/// \file message.hpp
/// Wire messages for standalone BinAA instances, with plain and compact
/// codecs.
///
/// Plain codec: kind/round/value with the value as a signed varint of the
/// scaled dyadic numerator.
///
/// Compact codec (the paper's §II-C "VAL 2L/L/C/R/2R" optimization): because
/// a node's round-(r+1) state moves by at most two granularity steps relative
/// to round r, the value can be transmitted as a 3-bit move code instead of a
/// full number, provided links are FIFO so the receiver can track each
/// sender's trajectory (delta_codec.hpp implements and tests that
/// reconstruction). Messages built with `compact = true` account their wire
/// size accordingly; `serialize` always emits the self-contained plain form
/// (what our TCP transport uses). The ablation bench quantifies the savings,
/// matching the paper's O(n² log(1/eps) loglog(1/eps)) refinement.

#include "binaa/core.hpp"
#include "net/message.hpp"

namespace delphi::binaa {

/// ECHO1/ECHO2 message of one BinAA instance.
class EchoMessage final : public net::MessageBody {
 public:
  EchoMessage(std::uint8_t kind, std::uint32_t round, ScaledValue value,
              bool compact = false)
      : kind_(kind), round_(round), value_(value), compact_(compact) {}

  std::uint8_t kind() const noexcept { return kind_; }
  std::uint32_t round() const noexcept { return round_; }
  ScaledValue value() const noexcept { return value_; }

  std::size_t wire_size() const override {
    if (compact_) {
      // kind+move packed in one byte, plus the round number — the
      // log log(1/eps) factor the paper attributes to round indices.
      return 1 + uvarint_size(round_);
    }
    return 1 + uvarint_size(round_) + svarint_size(value_);
  }

  void serialize(ByteWriter& w) const override {
    w.u8(kind_);
    w.uvarint(round_);
    w.svarint(value_);
  }

  std::string debug() const override {
    return std::string("BinAA.ECHO") + (kind_ == 1 ? "1" : "2") +
           "(r=" + std::to_string(round_) + ", v=" + std::to_string(value_) +
           ")";
  }

  static std::shared_ptr<const EchoMessage> decode(ByteReader& r) {
    const std::uint8_t kind = r.u8();
    DELPHI_REQUIRE(kind == 1 || kind == 2, "BinAA: bad echo kind");
    const auto round = static_cast<std::uint32_t>(r.uvarint());
    const ScaledValue value = r.svarint();
    return std::make_shared<EchoMessage>(kind, round, value);
  }

 private:
  std::uint8_t kind_;
  std::uint32_t round_;
  ScaledValue value_;
  bool compact_;
};

}  // namespace delphi::binaa
