#pragma once
/// \file core.hpp
/// BinAA (Algorithm 1 of the paper): approximate agreement for *binary*
/// inputs via iterated weak Binary-Value broadcast, as a pure state machine.
///
/// The machine is transport-agnostic: feeding it echoes produces outgoing
/// echo *actions*, which the standalone wrapper (protocol.hpp) sends as
/// individual messages and Delphi (src/delphi) coalesces into per-level
/// bundles — the paper's Õ(n²) communication optimization.
///
/// Exact arithmetic: round-r state values are dyadic rationals k / 2^(r-1)
/// in [0, 1], stored as integer numerators scaled by 2^r_max. Averaging two
/// round-r values is exact integer math, so the induction "the honest value
/// range at least halves every round" is checkable bit-for-bit, and after
/// r_max = ceil(log2(1/eps)) rounds honest outputs differ by at most
/// eps * 2^r_max scaled units.
///
/// Properties (n > 3t, asynchronous, per paper §II-C):
///  * Termination — every honest node finishes r_max rounds.
///  * Validity    — outputs lie inside the convex hull of honest inputs
///                  (0-relaxed); in particular unanimous input is decided.
///  * eps-Agreement — honest outputs differ by < 2^-r_max.

#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace delphi::binaa {

/// Scaled dyadic state value (numerator over 2^r_max).
using ScaledValue = std::int64_t;

/// Outgoing echo produced by the state machine; the host turns these into
/// wire messages (standalone) or bundle entries (Delphi).
struct EchoAction {
  std::uint8_t kind = 1;        ///< 1 = ECHO1, 2 = ECHO2
  std::uint32_t round = 1;      ///< 1-based round index
  ScaledValue value = 0;        ///< scaled dyadic value
};

/// The BinAA state machine for one instance at one node.
class BinAaCore {
 public:
  struct Config {
    std::size_t n = 4;
    std::size_t t = 1;
    /// Number of averaging rounds r_M = ceil(log2(1/eps')); also fixes the
    /// value scale 2^r_max. Must be in [1, 62].
    std::uint32_t r_max = 10;
  };

  explicit BinAaCore(const Config& cfg);

  /// Scale factor: all values are numerators over this power of two.
  ScaledValue scale() const noexcept { return ScaledValue{1} << cfg_.r_max; }

  /// Begin with a binary input (false -> 0, true -> scale()). Appends the
  /// initial round-1 ECHO1 to `out`. The host must loop our own echoes back
  /// through on_echo (broadcast-to-self semantics).
  void start(bool input, std::vector<EchoAction>& out);

  /// True once start() ran.
  bool started() const noexcept { return started_; }

  /// Feed one echo received from `from` (possibly ourselves). Invalid values
  /// (non-dyadic for the round, out of range) are ignored — Byzantine noise.
  /// Outgoing echoes triggered by this delivery are appended to `out`.
  void on_echo(std::uint8_t kind, std::uint32_t round, ScaledValue value,
               NodeId from, std::vector<EchoAction>& out);

  /// Round currently being executed (1-based); r_max+1 once finished.
  std::uint32_t current_round() const noexcept { return round_; }

  /// True after r_max rounds completed.
  bool done() const noexcept { return done_; }

  /// Final scaled output (valid once done()).
  ScaledValue output_scaled() const;

  /// Final output as a real in [0, 1].
  double output() const;

  const Config& config() const noexcept { return cfg_; }

 private:
  /// Senders supporting one value (flat storage: a handful of distinct
  /// values per round in honest runs, each with an n-bit sender set).
  struct ValueVotes {
    ScaledValue value = 0;
    NodeBitset senders;
  };

  struct Round {
    /// ECHO1 votes per value; a sender is counted for at most
    /// kMaxValuesPerSender distinct values (honest nodes send <= 2).
    std::vector<ValueVotes> e1;
    NodeBitset e1_seen_once;   ///< senders with >= 1 counted ECHO1 value
    NodeBitset e1_seen_twice;  ///< senders with 2 counted ECHO1 values
    /// ECHO2 votes per value; at most one ECHO2 counted per sender.
    std::vector<ValueVotes> e2;
    NodeBitset e2_senders;
    /// Values we already ECHO1'd (initial + amplification).
    std::vector<ScaledValue> e1_sent;
    bool e2_sent = false;
    bool initialized = false;
  };

  static constexpr std::uint8_t kMaxValuesPerSender = 2;

  static ValueVotes* find_votes(std::vector<ValueVotes>& vv, ScaledValue v) {
    for (auto& e : vv) {
      if (e.value == v) return &e;
    }
    return nullptr;
  }
  static bool contains_value(const std::vector<ScaledValue>& xs,
                             ScaledValue v) {
    for (auto x : xs) {
      if (x == v) return true;
    }
    return false;
  }

  /// Granularity of round r values: scale >> (r-1).
  ScaledValue granularity(std::uint32_t round) const {
    return scale() >> (round - 1);
  }
  bool valid_value(std::uint32_t round, ScaledValue v) const;

  /// Fast-path inline: this is hit for every echo of every bundle; only the
  /// one-time bitset setup stays out of line.
  Round& round_state(std::uint32_t r) {
    DELPHI_ASSERT(r >= 1 && r <= cfg_.r_max, "BinAA round out of range");
    Round& rs = rounds_[r - 1];
    if (!rs.initialized) init_round(rs);
    return rs;
  }
  void init_round(Round& rs);
  void run_triggers(std::uint32_t round, std::vector<EchoAction>& out);
  void try_advance(std::vector<EchoAction>& out);
  void begin_round(std::vector<EchoAction>& out);

  Config cfg_;
  bool started_ = false;
  bool done_ = false;
  std::uint32_t round_ = 0;       // 0 = not started
  ScaledValue state_value_ = 0;   // b_{i, round_}
  std::vector<Round> rounds_;     // index r-1, lazily initialized bitsets
};

}  // namespace delphi::binaa
