#pragma once
/// \file protocol.hpp
/// Standalone BinAA node: wraps BinAaCore as a net::Protocol sending one
/// EchoMessage per echo action. Delphi does *not* use this wrapper (it
/// bundles echoes across checkpoints); this exists for direct BinAA use,
/// unit/property tests, and the codec ablation bench.

#include "binaa/core.hpp"
#include "binaa/message.hpp"
#include "net/protocol.hpp"

namespace delphi::binaa {

/// One node running a single BinAA instance.
class BinAaProtocol final : public net::Protocol, public net::ValueOutput {
 public:
  struct Config {
    BinAaCore::Config core;
    std::uint32_t channel = 0;
    /// Account echo frames with the compact VAL codec (requires FIFO links).
    bool compact = false;
  };

  BinAaProtocol(Config cfg, bool input)
      : cfg_(cfg), core_(cfg.core), input_(input) {}

  void on_start(net::Context& ctx) override {
    std::vector<EchoAction> acts;
    core_.start(input_, acts);
    flush(ctx, acts);
  }

  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override {
    DELPHI_REQUIRE(channel == cfg_.channel, "BinAA: unexpected channel");
    const auto* msg = dynamic_cast<const EchoMessage*>(&body);
    DELPHI_REQUIRE(msg != nullptr, "BinAA: foreign message type");
    std::vector<EchoAction> acts;
    core_.on_echo(msg->kind(), msg->round(), msg->value(), from, acts);
    flush(ctx, acts);
  }

  bool terminated() const override { return core_.done(); }

  std::optional<double> output_value() const override {
    if (!core_.done()) return std::nullopt;
    return core_.output();
  }

  const BinAaCore& core() const noexcept { return core_; }

 private:
  void flush(net::Context& ctx, const std::vector<EchoAction>& acts) {
    for (const auto& a : acts) {
      ctx.broadcast(cfg_.channel, std::make_shared<EchoMessage>(
                                      a.kind, a.round, a.value, cfg_.compact));
    }
  }

  Config cfg_;
  BinAaCore core_;
  bool input_;
};

}  // namespace delphi::binaa
