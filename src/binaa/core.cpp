#include "binaa/core.hpp"

#include <algorithm>

namespace delphi::binaa {

BinAaCore::BinAaCore(const Config& cfg) : cfg_(cfg) {
  DELPHI_ASSERT(cfg_.n > 3 * cfg_.t, "BinAA requires n > 3t");
  DELPHI_ASSERT(cfg_.r_max >= 1 && cfg_.r_max <= 62, "BinAA r_max in [1,62]");
  rounds_.resize(cfg_.r_max);
}

void BinAaCore::init_round(Round& rs) {
  rs.initialized = true;
  rs.e1_seen_once = NodeBitset(cfg_.n);
  rs.e1_seen_twice = NodeBitset(cfg_.n);
  rs.e2_senders = NodeBitset(cfg_.n);
}

bool BinAaCore::valid_value(std::uint32_t round, ScaledValue v) const {
  if (v < 0 || v > scale()) return false;
  return v % granularity(round) == 0;
}

void BinAaCore::start(bool input, std::vector<EchoAction>& out) {
  DELPHI_ASSERT(!started_, "BinAA started twice");
  started_ = true;
  round_ = 1;
  state_value_ = input ? scale() : 0;
  begin_round(out);
}

void BinAaCore::begin_round(std::vector<EchoAction>& out) {
  Round& rs = round_state(round_);
  if (!contains_value(rs.e1_sent, state_value_)) {
    rs.e1_sent.push_back(state_value_);
    out.push_back(EchoAction{/*kind=*/1, round_, state_value_});
  }
}

void BinAaCore::on_echo(std::uint8_t kind, std::uint32_t round,
                        ScaledValue value, NodeId from,
                        std::vector<EchoAction>& out) {
  if (done_) return;
  // Byzantine-robust input validation: silently ignore garbage.
  if (kind < 1 || kind > 2) return;
  if (round < 1 || round > cfg_.r_max) return;
  if (from >= cfg_.n) return;
  if (!valid_value(round, value)) return;

  Round& rs = round_state(round);
  if (kind == 1) {
    ValueVotes* votes = find_votes(rs.e1, value);
    if (votes != nullptr && votes->senders.contains(from)) {
      return;  // duplicate (value, sender)
    }
    // A sender is counted for at most two distinct ECHO1 values per round —
    // honest nodes never send more (own value + one amplification), so the
    // cap only sheds Byzantine multi-voting.
    if (rs.e1_seen_twice.contains(from)) return;
    if (!rs.e1_seen_once.insert(from)) rs.e1_seen_twice.insert(from);
    if (votes == nullptr) {
      rs.e1.push_back(ValueVotes{value, NodeBitset(cfg_.n)});
      votes = &rs.e1.back();
    }
    votes->senders.insert(from);
    // Threshold-crossing gate: exactly one vote arrived, so a trigger can
    // only newly fire when *this* value's tally just reached t+1 (Bracha
    // amplification) or n-t (ECHO2 send / round advance) — every other
    // tally, and hence every other trigger input, is unchanged. Counts move
    // in steps of one, so crossings coincide with equality.
    const std::size_t tally = votes->senders.count();
    if (tally == cfg_.t + 1 || tally == cfg_.n - cfg_.t) {
      run_triggers(round, out);
      if (started_) try_advance(out);
    }
  } else {
    if (!rs.e2_senders.insert(from)) return;  // one ECHO2 per sender
    ValueVotes* votes = find_votes(rs.e2, value);
    if (votes == nullptr) {
      rs.e2.push_back(ValueVotes{value, NodeBitset(cfg_.n)});
      votes = &rs.e2.back();
    }
    votes->senders.insert(from);
    // ECHO2s never feed run_triggers (it reads only ECHO1 state); advance
    // condition (2) can only newly hold at its n-t crossing.
    if (votes->senders.count() == cfg_.n - cfg_.t && started_) {
      try_advance(out);
    }
  }
}

void BinAaCore::run_triggers(std::uint32_t round, std::vector<EchoAction>& out) {
  Round& rs = round_state(round);

  // Bracha-style amplification: t+1 ECHO1s for a value we haven't echoed.
  for (const auto& votes : rs.e1) {
    if (votes.senders.count() >= cfg_.t + 1 &&
        !contains_value(rs.e1_sent, votes.value)) {
      rs.e1_sent.push_back(votes.value);
      out.push_back(EchoAction{/*kind=*/1, round, votes.value});
    }
  }

  // ECHO2 once some value gathers n-t ECHO1s (at most one ECHO2 per round).
  if (!rs.e2_sent) {
    for (const auto& votes : rs.e1) {
      if (votes.senders.count() >= cfg_.n - cfg_.t) {
        rs.e2_sent = true;
        out.push_back(EchoAction{/*kind=*/2, round, votes.value});
        break;
      }
    }
  }
}

void BinAaCore::try_advance(std::vector<EchoAction>& out) {
  while (!done_) {
    Round& rs = round_state(round_);

    ScaledValue next = 0;
    bool advanced = false;

    // Condition (2): n-t ECHO2s for one value -> adopt it.
    for (const auto& votes : rs.e2) {
      if (votes.senders.count() >= cfg_.n - cfg_.t) {
        next = votes.value;
        advanced = true;
        break;
      }
    }

    // Condition (1): n-t ECHO1s for two values -> adopt the midpoint.
    if (!advanced) {
      ScaledValue v1 = 0, v2 = 0;
      int found = 0;
      for (const auto& votes : rs.e1) {
        if (votes.senders.count() >= cfg_.n - cfg_.t) {
          (found == 0 ? v1 : v2) = votes.value;
          if (++found == 2) break;
        }
      }
      if (found == 2) {
        // Two same-granularity dyadics sum to an even scaled number for all
        // rounds < r_max, so the midpoint is exact.
        next = (v1 + v2) / 2;
        advanced = true;
      }
    }

    if (!advanced) return;

    state_value_ = next;
    if (round_ == cfg_.r_max) {
      done_ = true;
      round_ = cfg_.r_max + 1;
      return;
    }
    ++round_;
    begin_round(out);
    // Loop: buffered echoes for the new round may already complete it.
  }
}

ScaledValue BinAaCore::output_scaled() const {
  DELPHI_ASSERT(done_, "BinAA output read before termination");
  return state_value_;
}

double BinAaCore::output() const {
  return static_cast<double>(output_scaled()) / static_cast<double>(scale());
}

}  // namespace delphi::binaa
