#pragma once
/// \file delta_codec.hpp
/// The paper's VAL move-code technique (§II-C), implemented for real: a
/// node's round-r BinAA state differs from its round-(r-1) state by
/// {-2,-1,0,+1,+2} granularity steps (2L, L, C, R, 2R). Over a FIFO link a
/// receiver can therefore reconstruct every sender's state trajectory from
/// 3-bit codes instead of full values.
///
/// DeltaEncoder/DeltaDecoder are exercised by property tests which replay
/// whole BinAA executions through them and check losslessness; the compact
/// EchoMessage wire size (message.hpp) is justified by that proof.

#include <cstdint>
#include <optional>

#include "binaa/core.hpp"

namespace delphi::binaa {

/// Move codes for a state transition between consecutive rounds.
enum class MoveCode : std::uint8_t {
  k2L = 0,  ///< moved left by two granularity(r+1) steps (= one g(r) step)
  kL = 1,   ///< moved left by one step
  kC = 2,   ///< stayed
  kR = 3,   ///< moved right by one step
  k2R = 4,  ///< moved right by two steps
};

/// Encodes one sender's ECHO1 state stream.
class DeltaEncoder {
 public:
  explicit DeltaEncoder(std::uint32_t r_max) : r_max_(r_max) {}

  /// Encode the round-1 value (binary): returns 0 or 1.
  std::uint8_t encode_initial(ScaledValue v, ScaledValue scale) {
    prev_ = v;
    return v == scale ? 1 : 0;
  }

  /// Encode a round-r (r >= 2) state value as a move code relative to the
  /// previous round's value. Returns nullopt if the transition is not a legal
  /// BinAA move (caller falls back to the plain codec).
  std::optional<MoveCode> encode(std::uint32_t round, ScaledValue v,
                                 ScaledValue scale) {
    if (round < 2 || round > r_max_) return std::nullopt;
    // Step unit: the new round's granularity.
    const ScaledValue unit = scale >> (round - 1);
    const ScaledValue delta = v - prev_;
    if (unit == 0 || delta % unit != 0) return std::nullopt;
    const ScaledValue steps = delta / unit;
    if (steps < -2 || steps > 2) return std::nullopt;
    prev_ = v;
    return static_cast<MoveCode>(steps + 2);
  }

 private:
  std::uint32_t r_max_;
  ScaledValue prev_ = 0;
};

/// Decodes one sender's ECHO1 state stream (mirror of DeltaEncoder).
class DeltaDecoder {
 public:
  explicit DeltaDecoder(std::uint32_t r_max) : r_max_(r_max) {}

  /// Decode the round-1 bit.
  ScaledValue decode_initial(std::uint8_t bit, ScaledValue scale) {
    prev_ = bit ? scale : 0;
    return prev_;
  }

  /// Decode a round-r move code into the absolute state value.
  ScaledValue decode(std::uint32_t round, MoveCode code, ScaledValue scale) {
    DELPHI_REQUIRE(round >= 2 && round <= r_max_, "delta: round out of range");
    const ScaledValue unit = scale >> (round - 1);
    // Mirror the encoder: a zero unit means the scale cannot express this
    // round's granularity, so the stream is corrupt — refuse rather than
    // silently decode every code to the previous value.
    DELPHI_REQUIRE(unit != 0, "delta: granularity exhausted for scale");
    const auto steps =
        static_cast<ScaledValue>(static_cast<std::uint8_t>(code)) - 2;
    prev_ += steps * unit;
    return prev_;
  }

 private:
  std::uint32_t r_max_;
  ScaledValue prev_ = 0;
};

}  // namespace delphi::binaa
