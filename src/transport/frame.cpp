#include "transport/frame.hpp"

#include <cstring>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

/// MAC input is channel uvarint || payload — exactly the framed bytes the
/// tag protects.
crypto::Digest frame_tag(const crypto::Key& key, std::uint32_t channel,
                         std::span<const std::uint8_t> payload) {
  ByteWriter mac_input(uvarint_size(channel) + payload.size());
  mac_input.uvarint(channel);
  mac_input.raw(payload);
  return crypto::hmac_sha256(key, mac_input.data());
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::Key* key) {
  const std::size_t body_len = uvarint_size(channel) + payload.size() +
                               (key != nullptr ? crypto::kMacTagSize : 0);
  DELPHI_ASSERT(body_len <= kMaxFrameBytes, "frame: payload too large");
  ByteWriter w(4 + body_len);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.uvarint(channel);
  w.raw(payload);
  if (key != nullptr) {
    const crypto::Digest tag = frame_tag(*key, channel, payload);
    w.raw(tag);
  }
  return w.take();
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact consumed prefix lazily (avoids O(n²) erase-from-front).
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameParser::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  ByteReader prefix(std::span<const std::uint8_t>(buf_.data() + pos_, 4));
  const std::uint32_t body_len = prefix.u32();
  if (body_len > kMaxFrameBytes) {
    throw SerializationError("frame: oversized length prefix");
  }
  if (avail < 4 + static_cast<std::size_t>(body_len)) return std::nullopt;

  std::span<const std::uint8_t> body(buf_.data() + pos_ + 4, body_len);
  ByteReader r(body);
  const auto channel = static_cast<std::uint32_t>(r.uvarint());
  const std::size_t tag_len = key_ != nullptr ? crypto::kMacTagSize : 0;
  if (r.remaining() < tag_len) {
    throw SerializationError("frame: truncated body");
  }
  const std::size_t payload_len = r.remaining() - tag_len;
  std::span<const std::uint8_t> payload = r.raw(payload_len);

  if (key_ != nullptr) {
    crypto::Digest received;
    std::span<const std::uint8_t> tag = r.raw(crypto::kMacTagSize);
    std::memcpy(received.data(), tag.data(), received.size());
    const crypto::Digest expected = frame_tag(*key_, channel, payload);
    if (!crypto::digest_equal(expected, received)) {
      throw ProtocolViolation("frame: HMAC verification failed");
    }
  }

  Frame f;
  f.channel = channel;
  f.payload.assign(payload.begin(), payload.end());
  pos_ += 4 + static_cast<std::size_t>(body_len);
  return f;
}

}  // namespace delphi::transport
