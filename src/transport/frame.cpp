#include "transport/frame.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

template <typename WritePayload>
std::vector<std::uint8_t> encode_body_bytes(std::uint32_t channel,
                                            std::size_t payload_size,
                                            bool authenticated,
                                            WritePayload&& write_payload) {
  const std::size_t body_len =
      uvarint_size(channel) + payload_size +
      (authenticated ? crypto::kMacTagSize : 0);
  DELPHI_ASSERT(body_len <= kMaxFrameBytes, "frame: payload too large");
  ByteWriter w(4 + uvarint_size(channel) + payload_size);
  w.u32(static_cast<std::uint32_t>(body_len));
  w.uvarint(channel);
  write_payload(w);
  return w.take();
}

}  // namespace

SharedFrameBody encode_frame_body(std::uint32_t channel,
                                  std::span<const std::uint8_t> payload,
                                  bool authenticated) {
  return std::make_shared<const std::vector<std::uint8_t>>(encode_body_bytes(
      channel, payload.size(), authenticated,
      [&](ByteWriter& w) { w.raw(payload); }));
}

SharedFrameBody encode_frame_body(std::uint32_t channel,
                                  const net::MessageBody& msg,
                                  bool authenticated) {
  return std::make_shared<const std::vector<std::uint8_t>>(encode_body_bytes(
      channel, msg.wire_size_cached(), authenticated,
      [&](ByteWriter& w) { msg.serialize(w); }));
}

crypto::Digest frame_tag(const crypto::HmacKey& key,
                         const std::vector<std::uint8_t>& body) {
  DELPHI_ASSERT(body.size() >= 5, "frame: body too short to tag");
  // MAC input is channel uvarint || payload — exactly the framed bytes after
  // the length prefix.
  return key.tag(
      std::span<const std::uint8_t>(body.data() + 4, body.size() - 4));
}

std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::HmacKey* key) {
  const bool auth = key != nullptr;
  std::vector<std::uint8_t> frame = encode_body_bytes(
      channel, payload.size(), auth, [&](ByteWriter& w) { w.raw(payload); });
  if (auth) {
    const crypto::Digest tag =
        key->tag(std::span<const std::uint8_t>(frame.data() + 4,
                                               frame.size() - 4));
    frame.insert(frame.end(), tag.begin(), tag.end());
  }
  return frame;
}

std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::Key* key) {
  if (key == nullptr) {
    return encode_frame(channel, payload,
                        static_cast<const crypto::HmacKey*>(nullptr));
  }
  const crypto::HmacKey hk(*key);
  return encode_frame(channel, payload, &hk);
}

std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       std::nullptr_t) {
  return encode_frame(channel, payload,
                      static_cast<const crypto::HmacKey*>(nullptr));
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact consumed prefix lazily (avoids O(n²) erase-from-front).
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  // Reserve ahead of the insert, but grow geometrically — an exact-fit
  // reserve would force a reallocation per feed while a multi-chunk frame
  // accumulates.
  const std::size_t needed = buf_.size() + bytes.size();
  if (needed > buf_.capacity()) {
    buf_.reserve(std::max(needed, buf_.capacity() * 2));
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<FrameView> FrameParser::next_view() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  ByteReader prefix(std::span<const std::uint8_t>(buf_.data() + pos_, 4));
  const std::uint32_t body_len = prefix.u32();
  if (body_len > kMaxFrameBytes) {
    throw SerializationError("frame: oversized length prefix");
  }
  if (avail < 4 + static_cast<std::size_t>(body_len)) return std::nullopt;

  std::span<const std::uint8_t> body(buf_.data() + pos_ + 4, body_len);
  ByteReader r(body);
  const auto channel = static_cast<std::uint32_t>(r.uvarint());
  const std::size_t tag_len = key_.has_value() ? crypto::kMacTagSize : 0;
  if (r.remaining() < tag_len) {
    throw SerializationError("frame: truncated body");
  }
  const std::size_t payload_len = r.remaining() - tag_len;
  std::span<const std::uint8_t> payload = r.raw(payload_len);

  if (key_.has_value()) {
    crypto::Digest received;
    std::span<const std::uint8_t> tag = r.raw(crypto::kMacTagSize);
    std::memcpy(received.data(), tag.data(), received.size());
    // MAC input = channel uvarint || payload, contiguous in the buffer.
    const crypto::Digest expected =
        key_->tag(body.subspan(0, body.size() - crypto::kMacTagSize));
    if (!crypto::digest_equal(expected, received)) {
      throw ProtocolViolation("frame: HMAC verification failed");
    }
  }

  pos_ += 4 + static_cast<std::size_t>(body_len);
  return FrameView{channel, payload};
}

std::optional<Frame> FrameParser::next() {
  auto view = next_view();
  if (!view) return std::nullopt;
  Frame f;
  f.channel = view->channel;
  f.payload.assign(view->payload.begin(), view->payload.end());
  return f;
}

}  // namespace delphi::transport
