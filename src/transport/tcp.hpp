#pragma once
/// \file tcp.hpp
/// Real asynchronous TCP deployment of the protocol state machines — the
/// counterpart of the paper's tokio-based Rust implementation (§VI-C).
///
/// Every protocol in this repo is a transport-agnostic net::Protocol; this
/// module runs them over genuine kernel sockets:
///   * full mesh of TCP connections over localhost (tests/examples) or any
///     reachable addresses;
///   * length-framed, HMAC-SHA256-authenticated links (transport/frame.hpp)
///     with pairwise keys from crypto::KeyStore — the paper's authenticated
///     channels; per-link HMAC midstates are derived once at connection
///     setup (crypto::HmacKey), so a frame tag costs two compression
///     finishes, not a key schedule;
///   * one thread per node, poll(2)-driven non-blocking I/O with no timeout
///     ticks: loops block until socket activity or a wakeup-fd signal
///     (net/wakeup.hpp) and cross-thread stop/termination notifications are
///     event-driven, so idle nodes burn no CPU and shutdown is immediate
///     (the one exception: frames held back by the netem shim bound the
///     poll timeout by their next release time);
///   * broadcasts encode the frame body once and share the immutable buffer
///     across all n-1 links (only the per-link MAC differs); pending frames
///     are gathered into a single writev(2) per ready socket;
///   * each node's protocol runs strictly single-threaded (the Protocol
///     contract);
///   * TCP gives per-link FIFO, so fifo-dependent codecs are sound here.
///
/// Unlike the simulator, messages here are *really* serialized, framed,
/// MAC'd, transmitted, re-parsed and verified — the codec paths the simulator
/// only accounts for. The byte counts of the two substrates agree by
/// construction (net::framed_size), which the transport tests assert.
///
/// Typed message bodies are recovered from payload bytes by a per-deployment
/// `Decoder` (see transport/decoders.hpp for the standard protocol suites).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "crypto/hmac.hpp"
#include "net/netem.hpp"
#include "net/protocol.hpp"
#include "net/wakeup.hpp"
#include "transport/frame.hpp"

namespace delphi::transport {

/// Recovers a typed message from payload bytes arriving on `channel`.
/// Throws SerializationError / ProtocolViolation on malformed input (the
/// transport counts and drops the frame).
using Decoder =
    std::function<net::MessagePtr(std::uint32_t channel, ByteReader& r)>;

/// Per-node transport counters (mirrors sim::NodeMetrics).
struct TransportMetrics {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< framed bytes, self-delivery excluded
  std::uint64_t msgs_delivered = 0;
  std::uint64_t malformed_dropped = 0;
  // Churn/recovery plane (all zero on churn-free runs):
  /// Successful link re-establishments this node took part in (dialer or
  /// acceptor side); UDP counts socket rebinds after a restart.
  std::uint64_t reconnects = 0;
  /// Catch-up traffic: frames replayed to a rejoining peer (TCP) /
  /// retransmitted datagrams (UDP). Transport recovery overhead — never part
  /// of bytes_sent, so cross-substrate honest-byte parity is unaffected.
  std::uint64_t catchup_frames = 0;
  std::uint64_t catchup_bytes = 0;
  /// Wall time this node spent dark across its restarts.
  std::uint64_t downtime_us = 0;
};

/// One scheduled restart on a socket substrate: node `id` stops its event
/// loop and closes every socket at `down_us` (µs since cluster start), then
/// rebinds/re-dials the mesh at `up_us`.
struct ChurnWindow {
  NodeId id = 0;
  std::int64_t down_us = 0;
  std::int64_t up_us = 0;
};

/// A node thread that died with an error: which node and why (exception
/// text, typically carrying errno). Recorded by the clusters' wait().
struct NodeFailure {
  NodeId id = 0;
  std::string message;

  bool operator==(const NodeFailure&) const = default;
};

/// A full-mesh TCP cluster of n nodes, one OS thread each, on 127.0.0.1.
///
/// Usage:
///   TcpCluster cluster(opts);
///   cluster.start(factory, decoder);   // spawns threads, connects the mesh
///   bool ok = cluster.wait();          // all honest protocols terminated?
///   auto& p = cluster.protocol(i);     // read outputs (after wait())
class TcpCluster {
 public:
  struct Options {
    std::size_t n = 4;
    /// HMAC-authenticate every frame (pairwise keys from `seed`).
    bool auth = true;
    /// Master secret / per-node RNG seed.
    std::uint64_t seed = 1;
    /// wait() gives up after this many milliseconds of wall time.
    std::int64_t timeout_ms = 30'000;
    /// Disable Nagle's algorithm on every link (latency over batching; the
    /// scenario layer exposes this as the `nodelay` param).
    bool nodelay = true;
    /// Network emulation applied per directed link at the send boundary
    /// (inert by default). Delay-only on TCP: the stream has no frame-level
    /// recovery, so drop verdicts are ignored — the scenario layer rejects
    /// loss configs on this substrate.
    net::netem::Config netem;
    /// Churn schedule (wall µs since cluster start). Non-empty implies
    /// `recovery`. A dark node closes every socket (peers see EOF /
    /// connection refused) and rejoins at up_us: it rebinds its listen port,
    /// re-dials lower ids, and higher ids re-dial it with backoff.
    std::vector<ChurnWindow> churn;
    /// Enable the connection supervisor + catch-up plane even without a
    /// churn schedule: steady-state accepts of re-connections from known
    /// peers, re-dial with exponential backoff and deterministic jitter,
    /// half-open handshake deadlines, per-link replay logs, and a two-way
    /// hello carrying the receiver's frame count so the sender replays
    /// exactly the undelivered suffix. Off (the default) keeps the wire
    /// format and connection lifecycle byte-identical to the pre-recovery
    /// transport.
    bool recovery = false;
    /// Per-link replay log byte budget in recovery mode. Drop-oldest beyond
    /// it (graceful degradation: a rejoining peer that out-lived the budget
    /// misses the dropped prefix and relies on protocol-level redundancy).
    std::size_t replay_budget_bytes = std::size_t{32} << 20;
  };

  /// Shared factory alias from net/protocol.hpp (same type the simulator
  /// harness and scenario runtimes consume).
  using ProtocolFactory = net::ProtocolFactory;

  explicit TcpCluster(Options opts);
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  /// Create protocols, open the listen sockets, spawn node threads, connect
  /// the mesh, and start every protocol. Call exactly once.
  void start(const ProtocolFactory& factory, Decoder decoder);

  /// Block until every node's protocol terminated or the timeout expires,
  /// then stop and join all threads. Returns true iff all terminated; on
  /// timeout, unfinished() names the nodes that had not.
  bool wait();

  /// Node ids whose protocols had not terminated when wait() gave up, in
  /// ascending order (empty iff wait() returned true). Only safe after
  /// wait() returned.
  const std::vector<NodeId>& unfinished() const;

  /// Nodes whose threads died with an error (exception text, typically
  /// carrying errno), in ascending id order. Only safe after wait()
  /// returned.
  const std::vector<NodeFailure>& failures() const;

  /// Node i's protocol. Only safe after wait() returned (threads joined).
  net::Protocol& protocol(NodeId id);

  /// Node i's transport counters. Only safe after wait() returned.
  const TransportMetrics& metrics(NodeId id) const;

  /// Resolved listen port of node i (set by start()).
  std::uint16_t port(NodeId id) const;

  const Options& options() const noexcept { return opts_; }

 private:
  class Node;

  /// Set the stop flag and wake every node's event loop (idempotent).
  void request_stop();

  Options opts_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  std::vector<std::uint16_t> ports_;
  std::vector<NodeId> unfinished_;
  std::vector<NodeFailure> failures_;
  std::atomic<bool> stop_{false};
  /// Signaled by nodes on protocol termination (and thread exit) so wait()
  /// blocks in poll() instead of sleeping on a timer.
  net::WakeupFd done_wake_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace delphi::transport
