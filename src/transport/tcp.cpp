#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <queue>
#include <string>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

using Clock = std::chrono::steady_clock;

/// First bytes on every link: magic + the initiator's node id, plus (on
/// authenticated deployments) an HMAC tag under the pairwise key — without
/// it, a keyless attacker racing the mesh bring-up could claim a legitimate
/// node id and black-hole that link (frames would fail their MACs, but the
/// real peer's connection would already have been rejected as a duplicate).
constexpr std::uint32_t kHelloMagic = 0x44504849;  // "IHPD" LE == "DPHI"
constexpr std::size_t kHelloPrefixSize = 8;

/// Frames gathered per writev(2): the portable IOV_MAX floor (1024 entries
/// = up to 512 authenticated frames per syscall). The iovec array is pooled
/// per node, so the only cost of a large gather is the syscalls it saves.
constexpr std::size_t kMaxIovs = 1024;

/// Frames at most this large (body + tag) are memcpy'd into a pooled
/// staging buffer so a run of small frames becomes ONE iovec — the kernel's
/// per-iovec bookkeeping costs more than copying ~a hundred bytes. Larger
/// bodies are referenced zero-copy.
constexpr std::size_t kStageFrameLimit = 256;

/// Staged bytes gathered per writev attempt. Caps the copy work done per
/// syscall so a deep backlog behind a slow receiver costs O(backlog) total
/// staging, not O(backlog²) — one writev drains about a socket buffer
/// (~208 KiB default), so re-staging at most this much per attempt keeps
/// the repeated-copy overhead near constant. Also the pooled capacity of
/// stage_, reserved once, so mid-gather reallocation (which would
/// invalidate iovec pointers) cannot happen.
constexpr std::size_t kStageByteBudget = 256 * 1024;

/// Recovery-mode hellos (Options::recovery) append a u64 after the prefix:
/// how many complete frames the sender has received from the destination on
/// this link across all its incarnations. The other side replays exactly the
/// suffix of its send log the count says is missing. Legacy (non-recovery)
/// hellos stay byte-identical to the pre-recovery wire format.
std::size_t hello_size(bool auth, bool recovery = false) {
  return kHelloPrefixSize + (recovery ? 8 : 0) +
         (auth ? crypto::kMacTagSize : 0);
}

crypto::Digest hello_tag(const crypto::Key& key, NodeId initiator,
                         const std::uint64_t* recv = nullptr) {
  ByteWriter w(24);
  w.u32(kHelloMagic);
  w.u32(initiator);
  if (recv != nullptr) w.u64(*recv);  // tag covers the receive count
  w.str("hello");
  return crypto::hmac_sha256(key, w.data());
}

/// How long a reconnect attempt or a pending steady-state accept may sit
/// without completing its hello before it is declared half-open and dropped.
constexpr SimTime kDialTimeoutUs = 2'000'000;

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Bind a listening socket on 127.0.0.1 with an OS-assigned port.
int make_listen_socket(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    sys_fail("getsockname");
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

/// Bind a listening socket on 127.0.0.1 on a *specific* port — how a
/// restarted node reclaims its published identity (peers re-dial the port
/// they were given at cluster start; SO_REUSEADDR beats the old socket's
/// lingering state on loopback).
int make_listen_socket_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(rebind)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind(rebind port " + std::to_string(port) + ")");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    sys_fail("listen(rebind)");
  }
  return fd;
}

/// Blocking connect with retry until `deadline` (peers may not be accepting
/// yet while the cluster boots).
int connect_with_retry(std::uint16_t port, Clock::time_point deadline) {
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_in addr = loopback_addr(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (Clock::now() >= deadline) {
      throw Error("tcp: connect deadline exceeded (port " +
                  std::to_string(port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Write all of `data` on a (blocking) fd.
void write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k = ::write(fd, data.data() + off, data.size() - off);
    if (k <= 0) sys_fail("write(hello)");
    off += static_cast<std::size_t>(k);
  }
}

std::vector<std::uint8_t> encode_hello(NodeId self, const crypto::Key* key,
                                       const std::uint64_t* recv = nullptr) {
  ByteWriter w(hello_size(key != nullptr, recv != nullptr));
  w.u32(kHelloMagic);
  w.u32(self);
  if (recv != nullptr) w.u64(*recv);
  if (key != nullptr) w.raw(hello_tag(*key, self, recv));
  return w.take();
}

/// Full write on a non-blocking fd with a short bounded poll budget (hellos
/// are <= 48 bytes, so a stall means the peer is gone or wedged). Returns
/// false if it could not complete — the caller drops the connection.
bool write_fully(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  int stalls = 0;
  while (off < data.size()) {
    const ssize_t k = ::write(fd, data.data() + off, data.size() - off);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && stalls++ < 200) {
      pollfd pf{fd, POLLOUT, 0};
      ::poll(&pf, 1, 10);
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

// --------------------------------------------------------------------- Node

class TcpCluster::Node final : public net::Context {
 public:
  Node(NodeId self, const Options& opts, const crypto::KeyStore& keys,
       const std::vector<std::uint16_t>& ports, int listen_fd,
       Clock::time_point epoch, std::unique_ptr<net::Protocol> protocol,
       std::function<std::unique_ptr<net::Protocol>()> rebuild,
       Decoder decoder, net::WakeupFd& done_wake)
      : self_(self),
        opts_(opts),
        keys_(keys),
        ports_(ports),
        listen_fd_(listen_fd),
        epoch_(epoch),
        protocol_(std::move(protocol)),
        rebuild_(std::move(rebuild)),
        decoder_(std::move(decoder)),
        done_wake_(done_wake),
        rng_(opts.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))),
        // Backoff jitter gets its own deterministic stream so the
        // supervisor never perturbs the protocol's rng() draws.
        jitter_rng_(opts.seed ^ (0xc2b2ae3d27d4eb4fULL * (self + 2))),
        recovery_(opts.recovery) {
    peers_.resize(opts_.n);
    for (const auto& w : opts_.churn) {
      if (w.id == self_) windows_.push_back(w);
    }
    std::sort(windows_.begin(), windows_.end(),
              [](const ChurnWindow& a, const ChurnWindow& b) {
                return a.down_us < b.down_us;
              });
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) continue;
      Peer& p = peers_[j];
      if (opts_.auth) {
        // One HMAC key schedule per link lifetime: the midstates serve both
        // outgoing tags and the parser's verification.
        p.mac.emplace(keys_.channel_key(self_, j));
        p.parser = FrameParser(&*p.mac);
      }
      if (opts_.netem.active()) {
        p.shim = net::netem::LinkShim(opts_.netem, self_, j);
      }
    }
    rbuf_.resize(64 * 1024);
  }

  ~Node() override {
    for (auto& p : peers_) {
      if (p.fd >= 0) ::close(p.fd);
      if (p.dial_fd >= 0) ::close(p.dial_fd);
    }
    for (auto& pa : accepts_) ::close(pa.fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  // ---- net::Context -------------------------------------------------------
  NodeId self() const override { return self_; }
  std::size_t n() const override { return opts_.n; }

  SimTime now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < opts_.n, "tcp send: bad destination");
    if (to == self_) {
      local_.emplace_back(channel, std::move(msg));
      return;
    }
    enqueue_frame(to, encode_frame_body(channel, *msg, opts_.auth));
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    // One serialization for all destinations: the body (length prefix +
    // channel + payload) is immutable and shared; only per-link tags differ.
    const SharedFrameBody body = encode_frame_body(channel, *msg, opts_.auth);
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) {
        local_.emplace_back(channel, msg);
      } else {
        enqueue_frame(j, body);
      }
    }
  }

  void charge_compute(SimTime) override {}  // real cycles are already spent
  Rng& rng() override { return rng_; }

  // ---- lifecycle -----------------------------------------------------------

  /// Entire node life: mesh setup, protocol start, event loop. Runs on the
  /// node's own thread; never touches other nodes.
  void run(const std::atomic<bool>& stop) {
    try {
      setup_mesh(stop);
      protocol_->on_start(*this);
      drain_local();
      note_termination();
      event_loop(stop);
    } catch (const std::exception& e) {
      error_ = e.what();
    }
    if (have_snapshot_) {
      // Stopped (or died) while dark: rebuild the protocol from its
      // snapshot so outputs stay harvestable after the join.
      try {
        restore_protocol();
      } catch (const std::exception& e) {
        if (error_.empty()) error_ = e.what();
      }
    }
    // A thread that exits un-terminated is dead for good; wake wait() so it
    // can fail fast instead of sleeping out the whole deadline.
    exited.store(true, std::memory_order_release);
    done_wake_.signal();
  }

  /// Interrupt this node's (possibly indefinite) poll. Any thread.
  void wake() noexcept { wake_.signal(); }

  std::atomic<bool> done{false};
  /// This node's thread has returned from run() (error or stop).
  std::atomic<bool> exited{false};

  net::Protocol& protocol() { return *protocol_; }
  const TransportMetrics& metrics() const { return metrics_; }
  const std::string& error() const { return error_; }

 private:
  /// One queued outbound frame: the shared destination-independent body and
  /// this link's MAC tag (meaningful only on authenticated links).
  struct PendingFrame {
    SharedFrameBody body;
    crypto::Digest tag;
  };

  struct Peer {
    int fd = -1;
    /// Precomputed pairwise HMAC midstates (send tags + parser verify).
    std::optional<crypto::HmacKey> mac;
    FrameParser parser;
    /// Netem emulation for this directed link (inert unless configured).
    net::netem::LinkShim shim;
    std::deque<PendingFrame> outq;
    /// Bytes of outq.front() already on the wire (may point into the tag).
    std::size_t front_written = 0;
    /// Last writev hit EAGAIN: wait for POLLOUT instead of re-trying.
    bool blocked = false;

    // ---- recovery mode only (inert when Options::recovery is off) ----
    /// Frames ever enqueued on this link (== log_start + log.size()).
    std::uint64_t sent_count = 0;
    /// Sequence number of log.front(); earlier frames fell off the budget.
    std::uint64_t log_start = 0;
    /// Bounded replay log of sent frames (drop-oldest past the byte
    /// budget). A rejoining peer's hello says how many frames it received;
    /// the suffix beyond that is replayed.
    std::deque<PendingFrame> log;
    std::size_t log_bytes = 0;
    /// Complete frames parsed from this peer across all link incarnations
    /// (the cumulative ack our hellos carry).
    std::uint64_t recv_count = 0;
    // Re-dial state machine (this side dials iff self > peer id, mirroring
    // the bring-up rule).
    int dial_fd = -1;
    bool dial_hello_sent = false;
    std::vector<std::uint8_t> dial_buf;  ///< reply-hello bytes so far
    SimTime redial_at = -1;              ///< next attempt (-1: none due)
    SimTime dial_deadline = 0;           ///< abort a stalled attempt
    std::uint32_t redial_attempts = 0;
  };

  /// An accepted connection whose hello has not fully arrived; dropped at
  /// `deadline` (half-open / slow-loris defense on the steady-state path).
  struct PendingAccept {
    int fd = -1;
    std::vector<std::uint8_t> buf;
    SimTime deadline = 0;
  };

  /// A frame the netem shim is holding back from the wire until `release`.
  struct HeldFrame {
    SimTime release = 0;
    std::uint64_t order = 0;
    NodeId to = 0;
    PendingFrame frame;
  };
  struct HeldLater {
    bool operator()(const HeldFrame& a, const HeldFrame& b) const {
      return a.release != b.release ? a.release > b.release
                                    : a.order > b.order;
    }
  };

  SimTime now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  void enqueue_frame(NodeId to, const SharedFrameBody& body) {
    Peer& p = peers_[to];
    // Counted at enqueue (matches the simulator's send-time accounting and
    // the pre-overhaul data plane), even if the link has died since.
    ++metrics_.msgs_sent;
    metrics_.bytes_sent += frame_wire_size(*body, p.mac.has_value());
    if (!recovery_ && p.fd < 0) {
      return;  // link closed for good: bytes would never reach the wire
    }
    PendingFrame pf;
    pf.body = body;
    if (p.mac.has_value()) pf.tag = frame_tag(*p.mac, *body);
    if (recovery_) log_frame(p, pf);
    if (p.fd < 0) return;  // link down: the log replays this on reconnect
    if (p.shim.active()) {
      const SimTime now = now_us();
      const auto v =
          p.shim.on_send(now, frame_wire_size(*body, p.mac.has_value()));
      // Delay-only on TCP (drop verdicts ignored — see Options::netem): a
      // future release parks the frame on the holdback heap; the event loop
      // moves it to the outq when due.
      if (v.release_us > now) {
        held_.push({v.release_us, v.order, to, std::move(pf)});
        return;
      }
    }
    p.outq.push_back(std::move(pf));
  }

  /// Move every held frame whose release time has arrived onto its link's
  /// output queue, in (release, order) order — which realizes the burst
  /// adversary's within-window LIFO on a real stream.
  void release_held(SimTime now) {
    while (!held_.empty() && held_.top().release <= now) {
      HeldFrame h = std::move(const_cast<HeldFrame&>(held_.top()));
      held_.pop();
      Peer& p = peers_[h.to];
      if (p.fd >= 0) p.outq.push_back(std::move(h.frame));
    }
  }

  // ---- recovery plane -----------------------------------------------------

  /// Append a sent frame to the link's bounded replay log (drop-oldest past
  /// the byte budget — graceful degradation while the peer is down).
  void log_frame(Peer& p, const PendingFrame& pf) {
    const bool auth = p.mac.has_value();
    ++p.sent_count;
    p.log.push_back(pf);
    p.log_bytes += frame_wire_size(*pf.body, auth);
    while (p.log_bytes > opts_.replay_budget_bytes && !p.log.empty()) {
      p.log_bytes -= frame_wire_size(*p.log.front().body, auth);
      p.log.pop_front();
      ++p.log_start;
    }
  }

  /// Validate a recovery hello claiming to come from `expect`; extracts the
  /// sender's receive count on success.
  bool check_hello(std::span<const std::uint8_t> buf, NodeId expect,
                   std::uint64_t& recv_out) const {
    ByteReader r(buf);
    if (r.u32() != kHelloMagic) return false;
    if (r.u32() != expect) return false;
    recv_out = r.u64();
    if (!opts_.auth) return true;
    crypto::Digest received;
    const auto tag = r.raw(crypto::kMacTagSize);
    std::memcpy(received.data(), tag.data(), received.size());
    return crypto::digest_equal(
        hello_tag(keys_.channel_key(self_, expect), expect, &recv_out),
        received);
  }

  static NodeId claimed_id(std::span<const std::uint8_t> buf) {
    ByteReader r(buf);
    r.u32();  // magic (checked later by check_hello)
    return r.u32();
  }

  /// Arm the next dial attempt for a lower-id peer: exponential backoff
  /// (2 ms base, doubling per failure, 250 ms cap) plus deterministic
  /// jitter from the node's seeded jitter stream. Higher-id peers re-dial
  /// us, so for them this is a no-op. Gives up once the next attempt would
  /// land past the cluster deadline (capped retries).
  void schedule_redial(NodeId j, Peer& p, bool reset_backoff) {
    if (j >= self_) return;  // that side initiates (same rule as bring-up)
    if (reset_backoff) p.redial_attempts = 0;
    constexpr SimTime kBase = 2'000;
    constexpr SimTime kCap = 250'000;
    SimTime delay =
        std::min(kCap, kBase << std::min<std::uint32_t>(p.redial_attempts, 7));
    delay += static_cast<SimTime>(
        jitter_rng_.below(static_cast<std::uint64_t>(delay / 4 + 1)));
    const SimTime at = now_us() + delay;
    if (at > opts_.timeout_ms * 1'000) {
      p.redial_at = -1;  // nothing past the run deadline can matter
      return;
    }
    p.redial_at = at;
  }

  /// Connection supervisor pass: abort stalled dial attempts, start due
  /// re-dials, and drop half-open pending accepts.
  void supervisor_tick() {
    const SimTime now = now_us();
    for (NodeId j = 0; j < self_; ++j) {
      Peer& p = peers_[j];
      if (p.dial_fd >= 0 && now >= p.dial_deadline) {
        // Half-open: the connect or the hello reply never completed.
        fail_dial(j, p);
      }
      if (p.fd < 0 && p.dial_fd < 0 && p.redial_at >= 0 &&
          now >= p.redial_at) {
        start_dial(j, p);
      }
    }
    for (std::size_t a = 0; a < accepts_.size();) {
      if (now >= accepts_[a].deadline) {
        ::close(accepts_[a].fd);
        accepts_[a] = std::move(accepts_.back());
        accepts_.pop_back();
      } else {
        ++a;
      }
    }
  }

  /// Begin one non-blocking reconnect attempt to a lower-id peer.
  void start_dial(NodeId j, Peer& p) {
    p.redial_at = -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(redial)");
    set_nonblocking(fd);
    sockaddr_in addr = loopback_addr(ports_[j]);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      ::close(fd);
      ++p.redial_attempts;
      schedule_redial(j, p, false);
      return;
    }
    p.dial_fd = fd;
    p.dial_hello_sent = false;
    p.dial_buf.clear();
    p.dial_deadline = now_us() + kDialTimeoutUs;
  }

  /// Advance a reconnect attempt: finish the connect, send our hello (with
  /// our receive count for this link), then read and verify the peer's
  /// reply before adopting the socket.
  void progress_dial(NodeId j, Peer& p) {
    if (p.dial_fd < 0) return;
    if (!p.dial_hello_sent) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(p.dial_fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        fail_dial(j, p);
        return;
      }
      if (opts_.nodelay) set_nodelay(p.dial_fd);
      const crypto::Key* key =
          opts_.auth ? &keys_.channel_key(self_, j) : nullptr;
      const std::uint64_t recv = p.recv_count;
      if (!write_fully(p.dial_fd, encode_hello(self_, key, &recv))) {
        fail_dial(j, p);
        return;
      }
      p.dial_hello_sent = true;
      return;
    }
    const std::size_t want = hello_size(opts_.auth, true);
    while (p.dial_buf.size() < want) {
      std::uint8_t tmp[64];
      const ssize_t k = ::read(p.dial_fd, tmp, want - p.dial_buf.size());
      if (k > 0) {
        p.dial_buf.insert(p.dial_buf.end(), tmp, tmp + k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      fail_dial(j, p);  // EOF or hard error before the full reply
      return;
    }
    std::uint64_t peer_recv = 0;
    if (!check_hello(p.dial_buf, j, peer_recv)) {
      fail_dial(j, p);
      return;
    }
    const int fd = p.dial_fd;
    p.dial_fd = -1;
    p.dial_hello_sent = false;
    p.dial_buf.clear();
    adopt_link(j, p, fd, peer_recv);
  }

  void fail_dial(NodeId j, Peer& p) {
    abort_dial(p);
    ++p.redial_attempts;
    schedule_redial(j, p, false);
  }

  void abort_dial(Peer& p) {
    if (p.dial_fd >= 0) {
      ::close(p.dial_fd);
      p.dial_fd = -1;
    }
    p.dial_hello_sent = false;
    p.dial_buf.clear();
  }

  /// Steady-state accept path: a known higher-id peer is re-establishing
  /// its link (it restarted, or we did and it noticed the EOF). Hellos
  /// complete asynchronously in progress_accepts() under a deadline.
  void accept_reconnects() {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      if (opts_.nodelay) set_nodelay(fd);
      set_nonblocking(fd);
      accepts_.push_back({fd, {}, now_us() + kDialTimeoutUs});
    }
  }

  void progress_accepts() {
    const std::size_t want = hello_size(opts_.auth, true);
    for (std::size_t a = 0; a < accepts_.size();) {
      PendingAccept& pa = accepts_[a];
      std::uint8_t tmp[64];
      const ssize_t k = ::read(pa.fd, tmp, want - pa.buf.size());
      if (k > 0) pa.buf.insert(pa.buf.end(), tmp, tmp + k);
      const bool dead =
          k == 0 || (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
      bool settled = false;
      if (!dead && pa.buf.size() == want) {
        settled = true;
        const NodeId who = claimed_id(pa.buf);
        std::uint64_t peer_recv = 0;
        if (who > self_ && who < opts_.n &&
            check_hello(pa.buf, who, peer_recv)) {
          // Reply with our receive count; the dialer replays its
          // undelivered suffix symmetrically once it has read it.
          Peer& p = peers_[who];
          const crypto::Key* key =
              opts_.auth ? &keys_.channel_key(self_, who) : nullptr;
          const std::uint64_t recv = p.recv_count;
          if (write_fully(pa.fd, encode_hello(self_, key, &recv))) {
            adopt_link(who, p, pa.fd, peer_recv);
          } else {
            ::close(pa.fd);
          }
        } else {
          ::close(pa.fd);  // stranger, forger, or nonsense: reject
        }
      }
      if (dead) ::close(pa.fd);
      if (dead || settled) {
        accepts_[a] = std::move(accepts_.back());
        accepts_.pop_back();
      } else {
        ++a;
      }
    }
  }

  /// Install a freshly handshaken socket as peer j's link and replay the
  /// log suffix the peer's hello says it is missing. A still-open old fd is
  /// replaced (reconnect-during-handshake race: the newest handshake wins).
  void adopt_link(NodeId j, Peer& p, int fd, std::uint64_t peer_recv) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = fd;
    p.parser = FrameParser(p.mac.has_value() ? &*p.mac : nullptr);
    p.outq.clear();
    p.front_written = 0;
    p.blocked = false;
    p.redial_at = -1;
    drop_held_for(j);
    ++metrics_.reconnects;
    replay_to(p, peer_recv);
  }

  /// Remove netem-held frames destined to j: they are in the replay log,
  /// and the fresh handshake replays them — releasing the held copies too
  /// would deliver duplicates.
  void drop_held_for(NodeId j) {
    if (held_.empty()) return;
    std::vector<HeldFrame> keep;
    keep.reserve(held_.size());
    while (!held_.empty()) {
      HeldFrame h = std::move(const_cast<HeldFrame&>(held_.top()));
      held_.pop();
      if (h.to != j) keep.push_back(std::move(h));
    }
    for (auto& h : keep) held_.push(std::move(h));
  }

  /// Queue the log suffix beyond the peer's cumulative receive count.
  /// Counted as catch-up traffic, never as new sends — honest-byte parity
  /// across substrates is preserved by construction.
  void replay_to(Peer& p, std::uint64_t peer_recv) {
    const bool auth = p.mac.has_value();
    while (!p.log.empty() && p.log_start < peer_recv) {
      // The hello's receive count acknowledges this prefix: prune it.
      p.log_bytes -= frame_wire_size(*p.log.front().body, auth);
      p.log.pop_front();
      ++p.log_start;
    }
    for (const PendingFrame& pf : p.log) {
      ++metrics_.catchup_frames;
      metrics_.catchup_bytes += frame_wire_size(*pf.body, auth);
      p.outq.push_back(pf);
    }
  }

  /// Drive this node's own restart schedule.
  void churn_tick() {
    if (!down_ && next_window_ < windows_.size() &&
        now_us() >= windows_[next_window_].down_us) {
      go_down(windows_[next_window_].up_us);
      ++next_window_;
    }
    if (down_ && now_us() >= up_at_) come_up();
  }

  /// The node goes dark: close every socket (peers observe EOF / refused
  /// connections), snapshot a restartable protocol, freeze until up_at.
  void go_down(SimTime up_at) {
    down_ = true;
    up_at_ = up_at;
    down_since_ = now_us();
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) continue;
      Peer& p = peers_[j];
      if (p.fd >= 0) {
        ::close(p.fd);
        p.fd = -1;
      }
      p.outq.clear();
      p.front_written = 0;
      p.blocked = false;
      p.parser = FrameParser(p.mac.has_value() ? &*p.mac : nullptr);
      abort_dial(p);
      p.redial_at = -1;
    }
    for (auto& pa : accepts_) ::close(pa.fd);
    accepts_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    held_ = {};  // held frames are all in the replay logs already
    // A RestartableProtocol is serialized and destroyed — the rejoin
    // rebuilds it from bytes, proving the snapshot path end to end. Other
    // protocols keep their in-memory state across the dark window and rely
    // on message-level redundancy to catch up.
    if (rebuild_) {
      if (auto* rp =
              dynamic_cast<net::RestartableProtocol*>(protocol_.get())) {
        ByteWriter w(256);
        rp->snapshot(w);
        snapshot_ = w.take();
        have_snapshot_ = true;
        protocol_.reset();
      }
    }
  }

  /// Restart: rebind the listen port, restore the protocol, re-dial every
  /// lower id (higher ids re-dial us once they see the port is back).
  void come_up() {
    down_ = false;
    metrics_.downtime_us += static_cast<std::uint64_t>(now_us() - down_since_);
    listen_fd_ = make_listen_socket_on(ports_[self_]);
    set_nonblocking(listen_fd_);
    if (have_snapshot_) restore_protocol();
    for (NodeId j = 0; j < self_; ++j) {
      peers_[j].redial_attempts = 0;
      peers_[j].redial_at = now_us();  // dial now, back off on failure
    }
    drain_local();
    note_termination();
  }

  void restore_protocol() {
    protocol_ = rebuild_();
    auto* rp = dynamic_cast<net::RestartableProtocol*>(protocol_.get());
    DELPHI_ASSERT(rp != nullptr, "tcp restart: factory lost snapshot support");
    ByteReader r(snapshot_);
    rp->restore(r);
    snapshot_.clear();
    have_snapshot_ = false;
  }

  /// The dark window: every socket is closed; nothing to do but wait for
  /// the restart clock or the cluster stop signal (re-checked by the
  /// caller's loop right after we return).
  void park_dark() {
    const SimTime ms = (up_at_ - now_us()) / 1000 + 1;
    pollfd pf{wake_.fd(), POLLIN, 0};
    ::poll(&pf, 1, static_cast<int>(std::clamp<SimTime>(ms, 0, 60'000)));
    if (pf.revents != 0) wake_.drain();
  }

  /// Establish the full mesh: connect to every lower id, accept from every
  /// higher id, exchanging an 8-byte hello to bind fds to node ids.
  void setup_mesh(const std::atomic<bool>& stop) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
    for (NodeId j = 0; j < self_; ++j) {
      const crypto::Key* key =
          opts_.auth ? &keys_.channel_key(self_, j) : nullptr;
      while (true) {
        const int fd = connect_with_retry(ports_[j], deadline);
        if (!recovery_) {
          write_all(fd, encode_hello(self_, key));
          if (opts_.nodelay) set_nodelay(fd);
          set_nonblocking(fd);
          peers_[j].fd = fd;
          break;
        }
        // Recovery handshakes are two-way and the peer may churn dark in
        // the middle of one — a dead socket means "connect again", not a
        // mesh failure.
        if (bringup_handshake(j, fd, key, deadline)) break;
      }
    }

    // Accept the n - 1 - self higher-id initiators.
    set_nonblocking(listen_fd_);
    std::size_t expected = opts_.n - 1 - self_;
    struct PendingHello {
      int fd;
      std::vector<std::uint8_t> buf;
    };
    std::vector<PendingHello> pending;
    while (expected > 0 && !stop.load(std::memory_order_relaxed)) {
      if (Clock::now() >= deadline) throw Error("tcp: mesh setup timeout");
      std::vector<pollfd> fds;
      fds.push_back({wake_.fd(), POLLIN, 0});
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& ph : pending) fds.push_back({ph.fd, POLLIN, 0});
      ::poll(fds.data(), fds.size(), 10);
      if (fds[0].revents != 0) wake_.drain();  // stop re-checked above

      // New connections.
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (opts_.nodelay) set_nodelay(fd);
        set_nonblocking(fd);
        pending.push_back({fd, {}});
      }
      // Progress hellos.
      const std::size_t want = hello_size(opts_.auth, recovery_);
      for (std::size_t i = 0; i < pending.size();) {
        auto& ph = pending[i];
        std::uint8_t tmp[64];
        const ssize_t k = ::read(ph.fd, tmp, want - ph.buf.size());
        if (k > 0) {
          ph.buf.insert(ph.buf.end(), tmp, tmp + k);
        }
        if (ph.buf.size() == want) {
          ByteReader r(ph.buf);
          const std::uint32_t magic = r.u32();
          const NodeId who = r.u32();
          bool genuine = magic == kHelloMagic && who > self_ &&
                         who < opts_.n && peers_[who].fd < 0;
          if (genuine && recovery_) {
            std::uint64_t peer_recv = 0;
            genuine = check_hello(ph.buf, who, peer_recv);
            if (genuine) {
              // Two-way: reply with our receive count (zero at bring-up);
              // the dialer reads it before sending any frame.
              const crypto::Key* key =
                  opts_.auth ? &keys_.channel_key(self_, who) : nullptr;
              const std::uint64_t recv = peers_[who].recv_count;
              genuine = write_fully(ph.fd, encode_hello(self_, key, &recv));
            }
          } else if (genuine && opts_.auth) {
            crypto::Digest received;
            auto tag = r.raw(crypto::kMacTagSize);
            std::memcpy(received.data(), tag.data(), received.size());
            const auto expected_tag =
                hello_tag(keys_.channel_key(self_, who), who);
            genuine = crypto::digest_equal(expected_tag, received);
          }
          if (genuine) {
            peers_[who].fd = ph.fd;
            --expected;
          } else {
            ::close(ph.fd);  // stranger, forger, or duplicate: reject
          }
          pending[i] = pending.back();
          pending.pop_back();
        } else if (k == 0) {  // peer hung up mid-hello
          ::close(ph.fd);
          pending[i] = pending.back();
          pending.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (const auto& ph : pending) ::close(ph.fd);
    if (expected > 0) throw Error("tcp: mesh setup interrupted");
  }

  /// One bring-up attempt of the two-way recovery hello on a freshly
  /// connected (still blocking) socket. Returns false with the socket
  /// closed if the peer died mid-handshake — the caller reconnects; throws
  /// only on the cluster-wide setup deadline.
  bool bringup_handshake(NodeId j, int fd, const crypto::Key* key,
                         Clock::time_point deadline) {
    const std::uint64_t recv = peers_[j].recv_count;
    const auto hello = encode_hello(self_, key, &recv);
    std::size_t woff = 0;
    while (woff < hello.size()) {
      const ssize_t k = ::write(fd, hello.data() + woff, hello.size() - woff);
      if (k <= 0) {
        ::close(fd);
        return false;
      }
      woff += static_cast<std::size_t>(k);
    }
    std::vector<std::uint8_t> buf;
    const std::size_t want = hello_size(opts_.auth, true);
    while (buf.size() < want) {
      if (Clock::now() >= deadline) {
        ::close(fd);
        throw Error("tcp: mesh setup timeout (hello reply)");
      }
      pollfd pf{fd, POLLIN, 0};
      ::poll(&pf, 1, 10);
      if (pf.revents == 0) continue;
      std::uint8_t tmp[64];
      const ssize_t k = ::read(fd, tmp, want - buf.size());
      if (k <= 0) {
        ::close(fd);
        return false;
      }
      buf.insert(buf.end(), tmp, tmp + k);
    }
    std::uint64_t peer_recv = 0;
    if (!check_hello(buf, j, peer_recv)) {
      ::close(fd);
      return false;
    }
    if (opts_.nodelay) set_nodelay(fd);
    set_nonblocking(fd);
    peers_[j].fd = fd;
    return true;
  }

  /// Deliver every queued self-message (handlers may enqueue more).
  void drain_local() {
    while (!local_.empty()) {
      auto [channel, msg] = std::move(local_.front());
      local_.pop_front();
      dispatch(self_, channel, *msg);
    }
  }

  void dispatch(NodeId from, std::uint32_t channel,
                const net::MessageBody& body) {
    try {
      protocol_->on_message(*this, from, channel, body);
      ++metrics_.msgs_delivered;
    } catch (const Error&) {
      ++metrics_.malformed_dropped;
    }
  }

  void note_termination() {
    if (protocol_ == nullptr) return;  // dark window of a snapshot restart
    if (!done.load(std::memory_order_relaxed) && protocol_->terminated()) {
      done.store(true, std::memory_order_release);
      done_wake_.signal();  // wait() blocks on this instead of a timer
    }
  }

  /// Event-driven main loop: write everything writable, then block in
  /// poll(2) — without a timeout — until socket activity or a wakeup
  /// signal. No sleep ticks anywhere.
  void event_loop(const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (recovery_) {
        churn_tick();
        if (down_) {
          park_dark();
          continue;
        }
        supervisor_tick();
      }
      if (!held_.empty()) release_held(now_us());
      flush_pending();

      pollfds_.clear();
      owners_.clear();
      pollfds_.push_back({wake_.fd(), POLLIN, 0});
      owners_.push_back({FdKind::kPeer, self_});  // placeholder, aligned
      for (NodeId j = 0; j < opts_.n; ++j) {
        Peer& p = peers_[j];
        if (p.fd >= 0) {
          short events = POLLIN;
          if (p.blocked && !p.outq.empty()) events |= POLLOUT;
          pollfds_.push_back({p.fd, events, 0});
          owners_.push_back({FdKind::kPeer, j});
        }
        if (p.dial_fd >= 0) {
          // Writable = connect finished; readable = reply-hello bytes.
          pollfds_.push_back({p.dial_fd,
                              p.dial_hello_sent ? short(POLLIN)
                                                : short(POLLOUT),
                              0});
          owners_.push_back({FdKind::kDial, j});
        }
      }
      if (recovery_ && listen_fd_ >= 0) {
        pollfds_.push_back({listen_fd_, POLLIN, 0});
        owners_.push_back({FdKind::kListen, 0});
      }
      for (std::size_t a = 0; a < accepts_.size(); ++a) {
        pollfds_.push_back({accepts_[a].fd, POLLIN, 0});
        owners_.push_back({FdKind::kAccept, static_cast<NodeId>(a)});
      }

      if (::poll(pollfds_.data(), pollfds_.size(), poll_timeout()) < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll");
      }
      if (pollfds_[0].revents != 0) wake_.drain();  // stop re-checked above

      for (std::size_t i = 1; i < pollfds_.size(); ++i) {
        const PollOwner owner = owners_[i];
        switch (owner.kind) {
          case FdKind::kPeer: {
            Peer& p = peers_[owner.idx];
            if (p.fd < 0) break;
            if (pollfds_[i].revents & (POLLIN | POLLERR | POLLHUP)) {
              read_peer(owner.idx, p);
            }
            if (p.fd >= 0 && (pollfds_[i].revents & POLLOUT)) {
              p.blocked = false;
              flush_peer(owner.idx, p);
            }
            drain_local();
            break;
          }
          case FdKind::kDial:
            if (pollfds_[i].revents != 0) {
              progress_dial(owner.idx, peers_[owner.idx]);
            }
            break;
          case FdKind::kListen:
            if (pollfds_[i].revents & POLLIN) accept_reconnects();
            break;
          case FdKind::kAccept:
            // Handled wholesale below: progress_accepts() compacts the
            // vector, which would invalidate the owner indices here.
            break;
        }
      }
      if (recovery_ && !accepts_.empty()) progress_accepts();
      note_termination();
    }
  }

  /// Next forced poll wakeup: netem releases, our own churn transitions,
  /// due re-dials, dial/accept handshake deadlines. -1 (block forever)
  /// when none apply — the common, churn-free steady state.
  int poll_timeout() const {
    SimTime at = -1;
    const auto consider = [&at](SimTime t) {
      if (t >= 0 && (at < 0 || t < at)) at = t;
    };
    if (!held_.empty()) consider(held_.top().release);
    if (recovery_) {
      if (next_window_ < windows_.size()) {
        consider(windows_[next_window_].down_us);
      }
      for (const Peer& p : peers_) {
        consider(p.redial_at);
        if (p.dial_fd >= 0) consider(p.dial_deadline);
      }
      for (const auto& pa : accepts_) consider(pa.deadline);
    }
    if (at < 0) return -1;
    const SimTime ms = (at - now_us()) / 1000 + 1;
    return static_cast<int>(std::clamp<SimTime>(ms, 0, 60'000));
  }

  /// Opportunistic write pass: one gathered writev per peer with pending
  /// frames (peers that already hit EAGAIN wait for POLLOUT instead).
  void flush_pending() {
    for (NodeId j = 0; j < opts_.n; ++j) {
      Peer& p = peers_[j];
      if (p.fd >= 0 && !p.blocked && !p.outq.empty()) flush_peer(j, p);
    }
  }

  void read_peer(NodeId from, Peer& p) {
    while (true) {
      const ssize_t k = ::read(p.fd, rbuf_.data(), rbuf_.size());
      if (k > 0) {
        p.parser.feed({rbuf_.data(), static_cast<std::size_t>(k)});
        pump_frames(from, p);
        if (p.fd < 0) return;  // stream poisoned during pump
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF or hard error: peer done sending; drop the link.
      close_link(from, p);
      return;
    }
  }

  void pump_frames(NodeId from, Peer& p) {
    while (true) {
      std::optional<FrameView> f;
      try {
        // Zero-copy: the view borrows the parser's buffer; the decoder
        // reads straight out of it, no per-frame payload vector.
        f = p.parser.next_view();
      } catch (const Error&) {
        // Framing/MAC broken: the byte stream is unrecoverable.
        ++metrics_.malformed_dropped;
        close_link(from, p);
        return;
      }
      if (!f) return;
      // A fully parsed frame advances the cumulative ack our recovery
      // hellos carry, decodable payload or not (the sender counts frames
      // written the same way).
      if (recovery_) ++p.recv_count;
      try {
        ByteReader r(f->payload);
        const net::MessagePtr msg = decoder_(f->channel, r);
        r.expect_exhausted();
        dispatch(from, f->channel, *msg);
      } catch (const Error&) {
        ++metrics_.malformed_dropped;  // bad payload only: link stays up
      }
      drain_local();
      note_termination();
    }
  }

  /// Gather queued frames (shared bodies + per-link tags) into iovecs and
  /// push them with as few writev(2) calls as the socket accepts.
  void flush_peer(NodeId j, Peer& p) {
    const std::size_t tag_len =
        p.mac.has_value() ? crypto::kMacTagSize : 0;
    while (!p.outq.empty()) {
      iov_.clear();
      stage_.clear();

      // The (possibly partially written) front frame goes out directly.
      auto it = p.outq.begin();
      {
        const auto& body = *it->body;
        std::size_t skip = p.front_written;
        if (skip < body.size()) {
          iov_.push_back({const_cast<std::uint8_t*>(body.data()) + skip,
                          body.size() - skip});
          skip = 0;
        } else {
          skip -= body.size();
        }
        if (tag_len > 0 && skip < tag_len) {
          iov_.push_back({const_cast<std::uint8_t*>(it->tag.data()) + skip,
                          tag_len - skip});
        }
        ++it;
      }

      // Fixed staging capacity: iovecs point into stage_, so it must not
      // reallocate while the gather is being built; the gather loop stops
      // before exceeding it.
      stage_.reserve(kStageByteBudget);

      // Gather the rest: small frames extend the current staged run (one
      // iovec per run), large bodies are referenced zero-copy.
      bool run_open = false;
      for (auto jt = it; jt != p.outq.end(); ++jt) {
        if (iov_.size() + 2 > kMaxIovs) break;
        const auto& body = *jt->body;
        const std::size_t total = body.size() + tag_len;
        if (total <= kStageFrameLimit) {
          if (stage_.size() + total > kStageByteBudget) break;
          const std::size_t off = stage_.size();
          stage_.insert(stage_.end(), body.begin(), body.end());
          if (tag_len > 0) {
            stage_.insert(stage_.end(), jt->tag.begin(),
                          jt->tag.begin() + tag_len);
          }
          if (run_open) {
            iov_.back().iov_len += total;
          } else {
            iov_.push_back({stage_.data() + off, total});
            run_open = true;
          }
        } else {
          iov_.push_back(
              {const_cast<std::uint8_t*>(body.data()), body.size()});
          if (tag_len > 0) {
            iov_.push_back(
                {const_cast<std::uint8_t*>(jt->tag.data()), tag_len});
          }
          run_open = false;
        }
      }
      const ssize_t k =
          ::writev(p.fd, iov_.data(), static_cast<int>(iov_.size()));
      if (k > 0) {
        advance_outq(p, static_cast<std::size_t>(k), tag_len);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        p.blocked = true;
        return;
      }
      close_link(j, p);
      return;
    }
  }

  /// Retire fully-written frames after a writev of `written` bytes.
  void advance_outq(Peer& p, std::size_t written, std::size_t tag_len) {
    p.front_written += written;
    while (!p.outq.empty()) {
      const std::size_t frame_total = p.outq.front().body->size() + tag_len;
      if (p.front_written < frame_total) break;
      p.front_written -= frame_total;
      p.outq.pop_front();
    }
  }

  void close_link(NodeId j, Peer& p) {
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
    p.outq.clear();
    p.front_written = 0;
    p.blocked = false;
    if (recovery_ && !down_) {
      // Supervisor takes over: fresh parser for the next incarnation and,
      // when we are the link's initiator, a backoff-paced re-dial.
      p.parser = FrameParser(p.mac.has_value() ? &*p.mac : nullptr);
      schedule_redial(j, p, /*reset_backoff=*/true);
    }
  }

  /// What a pollfds_ entry (beyond the wakeup fd) refers to.
  enum class FdKind : std::uint8_t { kPeer, kDial, kListen, kAccept };
  struct PollOwner {
    FdKind kind;
    NodeId idx;  ///< peer id (kPeer/kDial) or accepts_ index (kAccept)
  };

  NodeId self_;
  Options opts_;
  const crypto::KeyStore& keys_;
  std::vector<std::uint16_t> ports_;
  int listen_fd_;
  Clock::time_point epoch_;
  std::unique_ptr<net::Protocol> protocol_;
  /// Recreates this node's protocol instance (recovery mode only) — the
  /// restart path feeds the fresh instance the snapshot bytes.
  std::function<std::unique_ptr<net::Protocol>()> rebuild_;
  Decoder decoder_;
  net::WakeupFd& done_wake_;
  net::WakeupFd wake_;
  Rng rng_;
  Rng jitter_rng_;
  bool recovery_ = false;
  std::vector<Peer> peers_;
  std::priority_queue<HeldFrame, std::vector<HeldFrame>, HeldLater> held_;
  std::deque<std::pair<std::uint32_t, net::MessagePtr>> local_;
  /// Pooled scratch reused across the node's lifetime (no per-iteration or
  /// per-read allocations in the steady state).
  std::vector<std::uint8_t> rbuf_;
  std::vector<pollfd> pollfds_;
  std::vector<PollOwner> owners_;
  std::vector<iovec> iov_;
  std::vector<std::uint8_t> stage_;
  /// This node's own restart schedule (sorted by down_us) and dark state.
  std::vector<ChurnWindow> windows_;
  std::size_t next_window_ = 0;
  bool down_ = false;
  SimTime up_at_ = 0;
  SimTime down_since_ = 0;
  /// Serialized RestartableProtocol state across a dark window.
  std::vector<std::uint8_t> snapshot_;
  bool have_snapshot_ = false;
  std::vector<PendingAccept> accepts_;
  TransportMetrics metrics_;
  std::string error_;
};

// ------------------------------------------------------------------ Cluster

TcpCluster::TcpCluster(Options opts)
    : opts_(opts), keys_(opts.seed, opts.n), ports_(opts.n, 0) {
  if (opts_.n < 1) throw ConfigError("TcpCluster: n must be >= 1");
  if (!opts_.churn.empty()) opts_.recovery = true;
  for (const auto& w : opts_.churn) {
    if (w.id >= opts_.n) {
      throw ConfigError("TcpCluster: churn id out of range");
    }
    if (w.up_us <= w.down_us) {
      throw ConfigError("TcpCluster: churn window needs up_us > down_us");
    }
  }
}

TcpCluster::~TcpCluster() {
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpCluster::request_stop() {
  stop_.store(true);
  for (auto& node : nodes_) node->wake();
}

void TcpCluster::start(const ProtocolFactory& factory, Decoder decoder) {
  DELPHI_ASSERT(!started_, "TcpCluster: start() called twice");
  started_ = true;

  // Open all listen sockets first so every connect() finds a live backlog.
  std::vector<int> listen_fds(opts_.n, -1);
  for (NodeId i = 0; i < opts_.n; ++i) {
    listen_fds[i] = make_listen_socket(ports_[i]);
  }
  // One shared epoch so every node's shim schedules partition heals and
  // burst windows against the same t=0.
  const auto epoch = Clock::now();
  nodes_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    std::function<std::unique_ptr<net::Protocol>()> rebuild;
    if (opts_.recovery) {
      // The restart path re-creates the protocol from the same factory and
      // feeds it the snapshot; configuration is the factory's to re-supply.
      rebuild = [factory, i] { return factory(i); };
    }
    nodes_.push_back(std::make_unique<Node>(
        i, opts_, keys_, ports_, listen_fds[i], epoch, factory(i),
        std::move(rebuild), decoder, done_wake_));
  }
  threads_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    threads_.emplace_back([this, i] { nodes_[i]->run(stop_); });
  }
}

bool TcpCluster::wait() {
  DELPHI_ASSERT(started_, "TcpCluster: wait() before start()");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
  // Block on the done wakeup-fd (nodes signal termination transitions and
  // thread exits) instead of polling flags on a timer.
  while (true) {
    bool all_done = true;
    bool dead_node = false;
    for (const auto& node : nodes_) {
      if (node->done.load(std::memory_order_acquire)) continue;
      all_done = false;
      // An exited-but-unterminated node (mesh failure, protocol exception)
      // can never become done, so the run's outcome is already a fixed
      // false — fail fast instead of sleeping out the deadline.
      if (node->exited.load(std::memory_order_acquire)) dead_node = true;
    }
    if (all_done || dead_node) break;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{done_wake_.fd(), POLLIN, 0};
    // Clamped so arbitrarily large timeouts can't overflow poll's int arg;
    // the loop re-checks the deadline after every wakeup anyway.
    ::poll(&pfd, 1,
           static_cast<int>(std::min<std::int64_t>(remaining.count(), 60'000)));
    done_wake_.drain();
  }
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  // With threads joined the flags are final: record who never terminated so
  // timeouts are diagnosable (which nodes, not just "false").
  unfinished_.clear();
  failures_.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->done.load(std::memory_order_acquire)) {
      unfinished_.push_back(i);
    }
    if (!nodes_[i]->error().empty()) {
      failures_.push_back({i, nodes_[i]->error()});
    }
  }
  joined_ = true;
  // The joined flags are authoritative (a node may have terminated between
  // the last poll and the join).
  return unfinished_.empty();
}

const std::vector<NodeId>& TcpCluster::unfinished() const {
  DELPHI_ASSERT(joined_, "TcpCluster: unfinished() before wait()");
  return unfinished_;
}

const std::vector<NodeFailure>& TcpCluster::failures() const {
  DELPHI_ASSERT(joined_, "TcpCluster: failures() before wait()");
  return failures_;
}

net::Protocol& TcpCluster::protocol(NodeId id) {
  DELPHI_ASSERT(joined_, "TcpCluster: protocol() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->protocol();
}

const TransportMetrics& TcpCluster::metrics(NodeId id) const {
  DELPHI_ASSERT(joined_, "TcpCluster: metrics() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->metrics();
}

std::uint16_t TcpCluster::port(NodeId id) const {
  DELPHI_ASSERT(id < ports_.size(), "TcpCluster: bad node id");
  return ports_[id];
}

}  // namespace delphi::transport
