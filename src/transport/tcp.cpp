#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

using Clock = std::chrono::steady_clock;

/// First bytes on every link: magic + the initiator's node id, plus (on
/// authenticated deployments) an HMAC tag under the pairwise key — without
/// it, a keyless attacker racing the mesh bring-up could claim a legitimate
/// node id and black-hole that link (frames would fail their MACs, but the
/// real peer's connection would already have been rejected as a duplicate).
constexpr std::uint32_t kHelloMagic = 0x44504849;  // "IHPD" LE == "DPHI"
constexpr std::size_t kHelloPrefixSize = 8;

std::size_t hello_size(bool auth) {
  return kHelloPrefixSize + (auth ? crypto::kMacTagSize : 0);
}

crypto::Digest hello_tag(const crypto::Key& key, NodeId initiator) {
  ByteWriter w(16);
  w.u32(kHelloMagic);
  w.u32(initiator);
  w.str("hello");
  return crypto::hmac_sha256(key, w.data());
}

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Bind a listening socket on 127.0.0.1 with an OS-assigned port.
int make_listen_socket(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    sys_fail("getsockname");
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

/// Blocking connect with retry until `deadline` (peers may not be accepting
/// yet while the cluster boots).
int connect_with_retry(std::uint16_t port, Clock::time_point deadline) {
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_in addr = loopback_addr(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (Clock::now() >= deadline) {
      throw Error("tcp: connect deadline exceeded (port " +
                  std::to_string(port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Write all of `data` on a (blocking) fd.
void write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k = ::write(fd, data.data() + off, data.size() - off);
    if (k <= 0) sys_fail("write(hello)");
    off += static_cast<std::size_t>(k);
  }
}

std::vector<std::uint8_t> encode_hello(NodeId self, const crypto::Key* key) {
  ByteWriter w(hello_size(key != nullptr));
  w.u32(kHelloMagic);
  w.u32(self);
  if (key != nullptr) w.raw(hello_tag(*key, self));
  return w.take();
}

}  // namespace

// --------------------------------------------------------------------- Node

class TcpCluster::Node final : public net::Context {
 public:
  Node(NodeId self, const Options& opts, const crypto::KeyStore& keys,
       const std::vector<std::uint16_t>& ports, int listen_fd,
       std::unique_ptr<net::Protocol> protocol, Decoder decoder)
      : self_(self),
        opts_(opts),
        keys_(keys),
        ports_(ports),
        listen_fd_(listen_fd),
        protocol_(std::move(protocol)),
        decoder_(std::move(decoder)),
        rng_(opts.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))) {
    peers_.reserve(opts_.n);
    for (NodeId j = 0; j < opts_.n; ++j) {
      const crypto::Key* key =
          (opts_.auth && j != self_) ? &keys_.channel_key(self_, j) : nullptr;
      peers_.emplace_back(key);
    }
  }

  ~Node() override {
    for (auto& p : peers_) {
      if (p.fd >= 0) ::close(p.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  // ---- net::Context -------------------------------------------------------
  NodeId self() const override { return self_; }
  std::size_t n() const override { return opts_.n; }

  SimTime now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < opts_.n, "tcp send: bad destination");
    if (to == self_) {
      local_.emplace_back(channel, std::move(msg));
      return;
    }
    ByteWriter w(msg->wire_size());
    msg->serialize(w);
    enqueue_frame(to, channel, w.data());
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    ByteWriter w(msg->wire_size());
    msg->serialize(w);
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) {
        local_.emplace_back(channel, msg);
      } else {
        enqueue_frame(j, channel, w.data());
      }
    }
  }

  void charge_compute(SimTime) override {}  // real cycles are already spent
  Rng& rng() override { return rng_; }

  // ---- lifecycle -----------------------------------------------------------

  /// Entire node life: mesh setup, protocol start, event loop. Runs on the
  /// node's own thread; never touches other nodes.
  void run(const std::atomic<bool>& stop) {
    try {
      setup_mesh(stop);
      protocol_->on_start(*this);
      drain_local();
      note_termination();
      event_loop(stop);
    } catch (const std::exception& e) {
      error_ = e.what();
    }
  }

  std::atomic<bool> done{false};

  net::Protocol& protocol() { return *protocol_; }
  const TransportMetrics& metrics() const { return metrics_; }
  const std::string& error() const { return error_; }

 private:
  struct Peer {
    explicit Peer(const crypto::Key* key) : parser(key) {}

    int fd = -1;
    FrameParser parser;
    /// Pending outgoing bytes (already framed); out_pos consumed prefix.
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
  };

  void enqueue_frame(NodeId to, std::uint32_t channel,
                     std::span<const std::uint8_t> payload) {
    Peer& p = peers_[to];
    const crypto::Key* key =
        opts_.auth ? &keys_.channel_key(self_, to) : nullptr;
    const auto frame = encode_frame(channel, payload, key);
    p.out.insert(p.out.end(), frame.begin(), frame.end());
    ++metrics_.msgs_sent;
    metrics_.bytes_sent += frame.size();
  }

  /// Establish the full mesh: connect to every lower id, accept from every
  /// higher id, exchanging an 8-byte hello to bind fds to node ids.
  void setup_mesh(const std::atomic<bool>& stop) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
    for (NodeId j = 0; j < self_; ++j) {
      const int fd = connect_with_retry(ports_[j], deadline);
      const crypto::Key* key =
          opts_.auth ? &keys_.channel_key(self_, j) : nullptr;
      write_all(fd, encode_hello(self_, key));
      set_nodelay(fd);
      set_nonblocking(fd);
      peers_[j].fd = fd;
    }

    // Accept the n - 1 - self higher-id initiators.
    set_nonblocking(listen_fd_);
    std::size_t expected = opts_.n - 1 - self_;
    struct PendingHello {
      int fd;
      std::vector<std::uint8_t> buf;
    };
    std::vector<PendingHello> pending;
    while (expected > 0 && !stop.load(std::memory_order_relaxed)) {
      if (Clock::now() >= deadline) throw Error("tcp: mesh setup timeout");
      std::vector<pollfd> fds;
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& ph : pending) fds.push_back({ph.fd, POLLIN, 0});
      ::poll(fds.data(), fds.size(), 10);

      // New connections.
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nodelay(fd);
        set_nonblocking(fd);
        pending.push_back({fd, {}});
      }
      // Progress hellos.
      const std::size_t want = hello_size(opts_.auth);
      for (std::size_t i = 0; i < pending.size();) {
        auto& ph = pending[i];
        std::uint8_t tmp[64];
        const ssize_t k = ::read(ph.fd, tmp, want - ph.buf.size());
        if (k > 0) {
          ph.buf.insert(ph.buf.end(), tmp, tmp + k);
        }
        if (ph.buf.size() == want) {
          ByteReader r(ph.buf);
          const std::uint32_t magic = r.u32();
          const NodeId who = r.u32();
          bool genuine = magic == kHelloMagic && who > self_ &&
                         who < opts_.n && peers_[who].fd < 0;
          if (genuine && opts_.auth) {
            crypto::Digest received;
            auto tag = r.raw(crypto::kMacTagSize);
            std::memcpy(received.data(), tag.data(), received.size());
            const auto expected_tag =
                hello_tag(keys_.channel_key(self_, who), who);
            genuine = crypto::digest_equal(expected_tag, received);
          }
          if (genuine) {
            peers_[who].fd = ph.fd;
            --expected;
          } else {
            ::close(ph.fd);  // stranger, forger, or duplicate: reject
          }
          pending[i] = pending.back();
          pending.pop_back();
        } else if (k == 0) {  // peer hung up mid-hello
          ::close(ph.fd);
          pending[i] = pending.back();
          pending.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (const auto& ph : pending) ::close(ph.fd);
    if (expected > 0) throw Error("tcp: mesh setup interrupted");
  }

  /// Deliver every queued self-message (handlers may enqueue more).
  void drain_local() {
    while (!local_.empty()) {
      auto [channel, msg] = std::move(local_.front());
      local_.pop_front();
      dispatch(self_, channel, *msg);
    }
  }

  void dispatch(NodeId from, std::uint32_t channel,
                const net::MessageBody& body) {
    try {
      protocol_->on_message(*this, from, channel, body);
      ++metrics_.msgs_delivered;
    } catch (const Error&) {
      ++metrics_.malformed_dropped;
    }
  }

  void note_termination() {
    if (!done.load(std::memory_order_relaxed) && protocol_->terminated()) {
      done.store(true, std::memory_order_release);
    }
  }

  void event_loop(const std::atomic<bool>& stop) {
    std::vector<std::uint8_t> rbuf(64 * 1024);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<pollfd> fds;
      std::vector<NodeId> owner;
      for (NodeId j = 0; j < opts_.n; ++j) {
        Peer& p = peers_[j];
        if (p.fd < 0) continue;
        short events = POLLIN;
        if (p.out_pos < p.out.size()) events |= POLLOUT;
        fds.push_back({p.fd, events, 0});
        owner.push_back(j);
      }
      if (fds.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ::poll(fds.data(), fds.size(), 5);

      for (std::size_t i = 0; i < fds.size(); ++i) {
        Peer& p = peers_[owner[i]];
        if (p.fd < 0) continue;
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          read_peer(owner[i], p, rbuf);
        }
        if (p.fd >= 0 && (fds[i].revents & POLLOUT)) flush_peer(p);
        drain_local();
      }
      note_termination();
    }
  }

  void read_peer(NodeId from, Peer& p, std::vector<std::uint8_t>& rbuf) {
    while (true) {
      const ssize_t k = ::read(p.fd, rbuf.data(), rbuf.size());
      if (k > 0) {
        p.parser.feed({rbuf.data(), static_cast<std::size_t>(k)});
        pump_frames(from, p);
        if (p.fd < 0) return;  // stream poisoned during pump
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF or hard error: peer done sending; drop the link.
      close_link(p);
      return;
    }
  }

  void pump_frames(NodeId from, Peer& p) {
    while (true) {
      std::optional<Frame> f;
      try {
        f = p.parser.next();
      } catch (const Error&) {
        // Framing/MAC broken: the byte stream is unrecoverable.
        ++metrics_.malformed_dropped;
        close_link(p);
        return;
      }
      if (!f) return;
      try {
        ByteReader r(f->payload);
        const net::MessagePtr msg = decoder_(f->channel, r);
        r.expect_exhausted();
        dispatch(from, f->channel, *msg);
      } catch (const Error&) {
        ++metrics_.malformed_dropped;  // bad payload only: link stays up
      }
      drain_local();
      note_termination();
    }
  }

  void flush_peer(Peer& p) {
    while (p.out_pos < p.out.size()) {
      const ssize_t k =
          ::write(p.fd, p.out.data() + p.out_pos, p.out.size() - p.out_pos);
      if (k > 0) {
        p.out_pos += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_link(p);
      return;
    }
    p.out.clear();
    p.out_pos = 0;
  }

  void close_link(Peer& p) {
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
  }

  NodeId self_;
  Options opts_;
  const crypto::KeyStore& keys_;
  std::vector<std::uint16_t> ports_;
  int listen_fd_;
  std::unique_ptr<net::Protocol> protocol_;
  Decoder decoder_;
  Rng rng_;
  std::vector<Peer> peers_;
  std::deque<std::pair<std::uint32_t, net::MessagePtr>> local_;
  TransportMetrics metrics_;
  std::string error_;
};

// ------------------------------------------------------------------ Cluster

TcpCluster::TcpCluster(Options opts)
    : opts_(opts), keys_(opts.seed, opts.n), ports_(opts.n, 0) {
  if (opts_.n < 1) throw ConfigError("TcpCluster: n must be >= 1");
}

TcpCluster::~TcpCluster() {
  stop_.store(true);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpCluster::start(const ProtocolFactory& factory, Decoder decoder) {
  DELPHI_ASSERT(!started_, "TcpCluster: start() called twice");
  started_ = true;

  // Open all listen sockets first so every connect() finds a live backlog.
  std::vector<int> listen_fds(opts_.n, -1);
  for (NodeId i = 0; i < opts_.n; ++i) {
    listen_fds[i] = make_listen_socket(ports_[i]);
  }
  nodes_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, opts_, keys_, ports_,
                                            listen_fds[i], factory(i),
                                            decoder));
  }
  threads_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    threads_.emplace_back([this, i] { nodes_[i]->run(stop_); });
  }
}

bool TcpCluster::wait() {
  DELPHI_ASSERT(started_, "TcpCluster: wait() before start()");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
  bool all_done = false;
  while (Clock::now() < deadline) {
    all_done = true;
    for (const auto& node : nodes_) {
      if (!node->done.load(std::memory_order_acquire)) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop_.store(true);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  // With threads joined the flags are final: record who never terminated so
  // timeouts are diagnosable (which nodes, not just "false").
  unfinished_.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->done.load(std::memory_order_acquire)) {
      unfinished_.push_back(i);
    }
  }
  joined_ = true;
  // The joined flags are authoritative (a node may have terminated between
  // the last poll and the join).
  return unfinished_.empty();
}

const std::vector<NodeId>& TcpCluster::unfinished() const {
  DELPHI_ASSERT(joined_, "TcpCluster: unfinished() before wait()");
  return unfinished_;
}

net::Protocol& TcpCluster::protocol(NodeId id) {
  DELPHI_ASSERT(joined_, "TcpCluster: protocol() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->protocol();
}

const TransportMetrics& TcpCluster::metrics(NodeId id) const {
  DELPHI_ASSERT(joined_, "TcpCluster: metrics() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->metrics();
}

std::uint16_t TcpCluster::port(NodeId id) const {
  DELPHI_ASSERT(id < ports_.size(), "TcpCluster: bad node id");
  return ports_[id];
}

}  // namespace delphi::transport
