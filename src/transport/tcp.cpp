#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <queue>
#include <string>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

using Clock = std::chrono::steady_clock;

/// First bytes on every link: magic + the initiator's node id, plus (on
/// authenticated deployments) an HMAC tag under the pairwise key — without
/// it, a keyless attacker racing the mesh bring-up could claim a legitimate
/// node id and black-hole that link (frames would fail their MACs, but the
/// real peer's connection would already have been rejected as a duplicate).
constexpr std::uint32_t kHelloMagic = 0x44504849;  // "IHPD" LE == "DPHI"
constexpr std::size_t kHelloPrefixSize = 8;

/// Frames gathered per writev(2): the portable IOV_MAX floor (1024 entries
/// = up to 512 authenticated frames per syscall). The iovec array is pooled
/// per node, so the only cost of a large gather is the syscalls it saves.
constexpr std::size_t kMaxIovs = 1024;

/// Frames at most this large (body + tag) are memcpy'd into a pooled
/// staging buffer so a run of small frames becomes ONE iovec — the kernel's
/// per-iovec bookkeeping costs more than copying ~a hundred bytes. Larger
/// bodies are referenced zero-copy.
constexpr std::size_t kStageFrameLimit = 256;

/// Staged bytes gathered per writev attempt. Caps the copy work done per
/// syscall so a deep backlog behind a slow receiver costs O(backlog) total
/// staging, not O(backlog²) — one writev drains about a socket buffer
/// (~208 KiB default), so re-staging at most this much per attempt keeps
/// the repeated-copy overhead near constant. Also the pooled capacity of
/// stage_, reserved once, so mid-gather reallocation (which would
/// invalidate iovec pointers) cannot happen.
constexpr std::size_t kStageByteBudget = 256 * 1024;

std::size_t hello_size(bool auth) {
  return kHelloPrefixSize + (auth ? crypto::kMacTagSize : 0);
}

crypto::Digest hello_tag(const crypto::Key& key, NodeId initiator) {
  ByteWriter w(16);
  w.u32(kHelloMagic);
  w.u32(initiator);
  w.str("hello");
  return crypto::hmac_sha256(key, w.data());
}

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Bind a listening socket on 127.0.0.1 with an OS-assigned port.
int make_listen_socket(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    sys_fail("getsockname");
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

/// Blocking connect with retry until `deadline` (peers may not be accepting
/// yet while the cluster boots).
int connect_with_retry(std::uint16_t port, Clock::time_point deadline) {
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_in addr = loopback_addr(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (Clock::now() >= deadline) {
      throw Error("tcp: connect deadline exceeded (port " +
                  std::to_string(port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Write all of `data` on a (blocking) fd.
void write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k = ::write(fd, data.data() + off, data.size() - off);
    if (k <= 0) sys_fail("write(hello)");
    off += static_cast<std::size_t>(k);
  }
}

std::vector<std::uint8_t> encode_hello(NodeId self, const crypto::Key* key) {
  ByteWriter w(hello_size(key != nullptr));
  w.u32(kHelloMagic);
  w.u32(self);
  if (key != nullptr) w.raw(hello_tag(*key, self));
  return w.take();
}

}  // namespace

// --------------------------------------------------------------------- Node

class TcpCluster::Node final : public net::Context {
 public:
  Node(NodeId self, const Options& opts, const crypto::KeyStore& keys,
       const std::vector<std::uint16_t>& ports, int listen_fd,
       Clock::time_point epoch, std::unique_ptr<net::Protocol> protocol,
       Decoder decoder, net::WakeupFd& done_wake)
      : self_(self),
        opts_(opts),
        keys_(keys),
        ports_(ports),
        listen_fd_(listen_fd),
        epoch_(epoch),
        protocol_(std::move(protocol)),
        decoder_(std::move(decoder)),
        done_wake_(done_wake),
        rng_(opts.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))) {
    peers_.resize(opts_.n);
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) continue;
      Peer& p = peers_[j];
      if (opts_.auth) {
        // One HMAC key schedule per link lifetime: the midstates serve both
        // outgoing tags and the parser's verification.
        p.mac.emplace(keys_.channel_key(self_, j));
        p.parser = FrameParser(&*p.mac);
      }
      if (opts_.netem.active()) {
        p.shim = net::netem::LinkShim(opts_.netem, self_, j);
      }
    }
    rbuf_.resize(64 * 1024);
  }

  ~Node() override {
    for (auto& p : peers_) {
      if (p.fd >= 0) ::close(p.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  // ---- net::Context -------------------------------------------------------
  NodeId self() const override { return self_; }
  std::size_t n() const override { return opts_.n; }

  SimTime now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < opts_.n, "tcp send: bad destination");
    if (to == self_) {
      local_.emplace_back(channel, std::move(msg));
      return;
    }
    enqueue_frame(to, encode_frame_body(channel, *msg, opts_.auth));
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    // One serialization for all destinations: the body (length prefix +
    // channel + payload) is immutable and shared; only per-link tags differ.
    const SharedFrameBody body = encode_frame_body(channel, *msg, opts_.auth);
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) {
        local_.emplace_back(channel, msg);
      } else {
        enqueue_frame(j, body);
      }
    }
  }

  void charge_compute(SimTime) override {}  // real cycles are already spent
  Rng& rng() override { return rng_; }

  // ---- lifecycle -----------------------------------------------------------

  /// Entire node life: mesh setup, protocol start, event loop. Runs on the
  /// node's own thread; never touches other nodes.
  void run(const std::atomic<bool>& stop) {
    try {
      setup_mesh(stop);
      protocol_->on_start(*this);
      drain_local();
      note_termination();
      event_loop(stop);
    } catch (const std::exception& e) {
      error_ = e.what();
    }
    // A thread that exits un-terminated is dead for good; wake wait() so it
    // can fail fast instead of sleeping out the whole deadline.
    exited.store(true, std::memory_order_release);
    done_wake_.signal();
  }

  /// Interrupt this node's (possibly indefinite) poll. Any thread.
  void wake() noexcept { wake_.signal(); }

  std::atomic<bool> done{false};
  /// This node's thread has returned from run() (error or stop).
  std::atomic<bool> exited{false};

  net::Protocol& protocol() { return *protocol_; }
  const TransportMetrics& metrics() const { return metrics_; }
  const std::string& error() const { return error_; }

 private:
  /// One queued outbound frame: the shared destination-independent body and
  /// this link's MAC tag (meaningful only on authenticated links).
  struct PendingFrame {
    SharedFrameBody body;
    crypto::Digest tag;
  };

  struct Peer {
    int fd = -1;
    /// Precomputed pairwise HMAC midstates (send tags + parser verify).
    std::optional<crypto::HmacKey> mac;
    FrameParser parser;
    /// Netem emulation for this directed link (inert unless configured).
    net::netem::LinkShim shim;
    std::deque<PendingFrame> outq;
    /// Bytes of outq.front() already on the wire (may point into the tag).
    std::size_t front_written = 0;
    /// Last writev hit EAGAIN: wait for POLLOUT instead of re-trying.
    bool blocked = false;
  };

  /// A frame the netem shim is holding back from the wire until `release`.
  struct HeldFrame {
    SimTime release = 0;
    std::uint64_t order = 0;
    NodeId to = 0;
    PendingFrame frame;
  };
  struct HeldLater {
    bool operator()(const HeldFrame& a, const HeldFrame& b) const {
      return a.release != b.release ? a.release > b.release
                                    : a.order > b.order;
    }
  };

  SimTime now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  void enqueue_frame(NodeId to, const SharedFrameBody& body) {
    Peer& p = peers_[to];
    // Counted at enqueue (matches the simulator's send-time accounting and
    // the pre-overhaul data plane), even if the link has died since.
    ++metrics_.msgs_sent;
    metrics_.bytes_sent += frame_wire_size(*body, p.mac.has_value());
    if (p.fd < 0) return;  // link closed: bytes would never reach the wire
    PendingFrame pf;
    pf.body = body;
    if (p.mac.has_value()) pf.tag = frame_tag(*p.mac, *body);
    if (p.shim.active()) {
      const SimTime now = now_us();
      const auto v =
          p.shim.on_send(now, frame_wire_size(*body, p.mac.has_value()));
      // Delay-only on TCP (drop verdicts ignored — see Options::netem): a
      // future release parks the frame on the holdback heap; the event loop
      // moves it to the outq when due.
      if (v.release_us > now) {
        held_.push({v.release_us, v.order, to, std::move(pf)});
        return;
      }
    }
    p.outq.push_back(std::move(pf));
  }

  /// Move every held frame whose release time has arrived onto its link's
  /// output queue, in (release, order) order — which realizes the burst
  /// adversary's within-window LIFO on a real stream.
  void release_held(SimTime now) {
    while (!held_.empty() && held_.top().release <= now) {
      HeldFrame h = std::move(const_cast<HeldFrame&>(held_.top()));
      held_.pop();
      Peer& p = peers_[h.to];
      if (p.fd >= 0) p.outq.push_back(std::move(h.frame));
    }
  }

  /// Establish the full mesh: connect to every lower id, accept from every
  /// higher id, exchanging an 8-byte hello to bind fds to node ids.
  void setup_mesh(const std::atomic<bool>& stop) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
    for (NodeId j = 0; j < self_; ++j) {
      const int fd = connect_with_retry(ports_[j], deadline);
      const crypto::Key* key =
          opts_.auth ? &keys_.channel_key(self_, j) : nullptr;
      write_all(fd, encode_hello(self_, key));
      if (opts_.nodelay) set_nodelay(fd);
      set_nonblocking(fd);
      peers_[j].fd = fd;
    }

    // Accept the n - 1 - self higher-id initiators.
    set_nonblocking(listen_fd_);
    std::size_t expected = opts_.n - 1 - self_;
    struct PendingHello {
      int fd;
      std::vector<std::uint8_t> buf;
    };
    std::vector<PendingHello> pending;
    while (expected > 0 && !stop.load(std::memory_order_relaxed)) {
      if (Clock::now() >= deadline) throw Error("tcp: mesh setup timeout");
      std::vector<pollfd> fds;
      fds.push_back({wake_.fd(), POLLIN, 0});
      fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& ph : pending) fds.push_back({ph.fd, POLLIN, 0});
      ::poll(fds.data(), fds.size(), 10);
      if (fds[0].revents != 0) wake_.drain();  // stop re-checked above

      // New connections.
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (opts_.nodelay) set_nodelay(fd);
        set_nonblocking(fd);
        pending.push_back({fd, {}});
      }
      // Progress hellos.
      const std::size_t want = hello_size(opts_.auth);
      for (std::size_t i = 0; i < pending.size();) {
        auto& ph = pending[i];
        std::uint8_t tmp[64];
        const ssize_t k = ::read(ph.fd, tmp, want - ph.buf.size());
        if (k > 0) {
          ph.buf.insert(ph.buf.end(), tmp, tmp + k);
        }
        if (ph.buf.size() == want) {
          ByteReader r(ph.buf);
          const std::uint32_t magic = r.u32();
          const NodeId who = r.u32();
          bool genuine = magic == kHelloMagic && who > self_ &&
                         who < opts_.n && peers_[who].fd < 0;
          if (genuine && opts_.auth) {
            crypto::Digest received;
            auto tag = r.raw(crypto::kMacTagSize);
            std::memcpy(received.data(), tag.data(), received.size());
            const auto expected_tag =
                hello_tag(keys_.channel_key(self_, who), who);
            genuine = crypto::digest_equal(expected_tag, received);
          }
          if (genuine) {
            peers_[who].fd = ph.fd;
            --expected;
          } else {
            ::close(ph.fd);  // stranger, forger, or duplicate: reject
          }
          pending[i] = pending.back();
          pending.pop_back();
        } else if (k == 0) {  // peer hung up mid-hello
          ::close(ph.fd);
          pending[i] = pending.back();
          pending.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (const auto& ph : pending) ::close(ph.fd);
    if (expected > 0) throw Error("tcp: mesh setup interrupted");
  }

  /// Deliver every queued self-message (handlers may enqueue more).
  void drain_local() {
    while (!local_.empty()) {
      auto [channel, msg] = std::move(local_.front());
      local_.pop_front();
      dispatch(self_, channel, *msg);
    }
  }

  void dispatch(NodeId from, std::uint32_t channel,
                const net::MessageBody& body) {
    try {
      protocol_->on_message(*this, from, channel, body);
      ++metrics_.msgs_delivered;
    } catch (const Error&) {
      ++metrics_.malformed_dropped;
    }
  }

  void note_termination() {
    if (!done.load(std::memory_order_relaxed) && protocol_->terminated()) {
      done.store(true, std::memory_order_release);
      done_wake_.signal();  // wait() blocks on this instead of a timer
    }
  }

  /// Event-driven main loop: write everything writable, then block in
  /// poll(2) — without a timeout — until socket activity or a wakeup
  /// signal. No sleep ticks anywhere.
  void event_loop(const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!held_.empty()) release_held(now_us());
      flush_pending();

      pollfds_.clear();
      owners_.clear();
      pollfds_.push_back({wake_.fd(), POLLIN, 0});
      owners_.push_back(self_);  // placeholder, index-aligned with pollfds_
      for (NodeId j = 0; j < opts_.n; ++j) {
        Peer& p = peers_[j];
        if (p.fd < 0) continue;
        short events = POLLIN;
        if (p.blocked && !p.outq.empty()) events |= POLLOUT;
        pollfds_.push_back({p.fd, events, 0});
        owners_.push_back(j);
      }
      // Indefinite block unless the shim holds frames: then wake for the
      // earliest release (the only timed wakeup in this loop).
      int timeout = -1;
      if (!held_.empty()) {
        const SimTime ms = (held_.top().release - now_us()) / 1000 + 1;
        timeout = static_cast<int>(std::clamp<SimTime>(ms, 0, 60'000));
      }
      if (::poll(pollfds_.data(), pollfds_.size(), timeout) < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll");
      }
      if (pollfds_[0].revents != 0) wake_.drain();  // stop re-checked above

      for (std::size_t i = 1; i < pollfds_.size(); ++i) {
        Peer& p = peers_[owners_[i]];
        if (p.fd < 0) continue;
        if (pollfds_[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          read_peer(owners_[i], p);
        }
        if (p.fd >= 0 && (pollfds_[i].revents & POLLOUT)) {
          p.blocked = false;
          flush_peer(p);
        }
        drain_local();
      }
      note_termination();
    }
  }

  /// Opportunistic write pass: one gathered writev per peer with pending
  /// frames (peers that already hit EAGAIN wait for POLLOUT instead).
  void flush_pending() {
    for (auto& p : peers_) {
      if (p.fd >= 0 && !p.blocked && !p.outq.empty()) flush_peer(p);
    }
  }

  void read_peer(NodeId from, Peer& p) {
    while (true) {
      const ssize_t k = ::read(p.fd, rbuf_.data(), rbuf_.size());
      if (k > 0) {
        p.parser.feed({rbuf_.data(), static_cast<std::size_t>(k)});
        pump_frames(from, p);
        if (p.fd < 0) return;  // stream poisoned during pump
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF or hard error: peer done sending; drop the link.
      close_link(p);
      return;
    }
  }

  void pump_frames(NodeId from, Peer& p) {
    while (true) {
      std::optional<FrameView> f;
      try {
        // Zero-copy: the view borrows the parser's buffer; the decoder
        // reads straight out of it, no per-frame payload vector.
        f = p.parser.next_view();
      } catch (const Error&) {
        // Framing/MAC broken: the byte stream is unrecoverable.
        ++metrics_.malformed_dropped;
        close_link(p);
        return;
      }
      if (!f) return;
      try {
        ByteReader r(f->payload);
        const net::MessagePtr msg = decoder_(f->channel, r);
        r.expect_exhausted();
        dispatch(from, f->channel, *msg);
      } catch (const Error&) {
        ++metrics_.malformed_dropped;  // bad payload only: link stays up
      }
      drain_local();
      note_termination();
    }
  }

  /// Gather queued frames (shared bodies + per-link tags) into iovecs and
  /// push them with as few writev(2) calls as the socket accepts.
  void flush_peer(Peer& p) {
    const std::size_t tag_len =
        p.mac.has_value() ? crypto::kMacTagSize : 0;
    while (!p.outq.empty()) {
      iov_.clear();
      stage_.clear();

      // The (possibly partially written) front frame goes out directly.
      auto it = p.outq.begin();
      {
        const auto& body = *it->body;
        std::size_t skip = p.front_written;
        if (skip < body.size()) {
          iov_.push_back({const_cast<std::uint8_t*>(body.data()) + skip,
                          body.size() - skip});
          skip = 0;
        } else {
          skip -= body.size();
        }
        if (tag_len > 0 && skip < tag_len) {
          iov_.push_back({const_cast<std::uint8_t*>(it->tag.data()) + skip,
                          tag_len - skip});
        }
        ++it;
      }

      // Fixed staging capacity: iovecs point into stage_, so it must not
      // reallocate while the gather is being built; the gather loop stops
      // before exceeding it.
      stage_.reserve(kStageByteBudget);

      // Gather the rest: small frames extend the current staged run (one
      // iovec per run), large bodies are referenced zero-copy.
      bool run_open = false;
      for (auto jt = it; jt != p.outq.end(); ++jt) {
        if (iov_.size() + 2 > kMaxIovs) break;
        const auto& body = *jt->body;
        const std::size_t total = body.size() + tag_len;
        if (total <= kStageFrameLimit) {
          if (stage_.size() + total > kStageByteBudget) break;
          const std::size_t off = stage_.size();
          stage_.insert(stage_.end(), body.begin(), body.end());
          if (tag_len > 0) {
            stage_.insert(stage_.end(), jt->tag.begin(),
                          jt->tag.begin() + tag_len);
          }
          if (run_open) {
            iov_.back().iov_len += total;
          } else {
            iov_.push_back({stage_.data() + off, total});
            run_open = true;
          }
        } else {
          iov_.push_back(
              {const_cast<std::uint8_t*>(body.data()), body.size()});
          if (tag_len > 0) {
            iov_.push_back(
                {const_cast<std::uint8_t*>(jt->tag.data()), tag_len});
          }
          run_open = false;
        }
      }
      const ssize_t k =
          ::writev(p.fd, iov_.data(), static_cast<int>(iov_.size()));
      if (k > 0) {
        advance_outq(p, static_cast<std::size_t>(k), tag_len);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        p.blocked = true;
        return;
      }
      close_link(p);
      return;
    }
  }

  /// Retire fully-written frames after a writev of `written` bytes.
  void advance_outq(Peer& p, std::size_t written, std::size_t tag_len) {
    p.front_written += written;
    while (!p.outq.empty()) {
      const std::size_t frame_total = p.outq.front().body->size() + tag_len;
      if (p.front_written < frame_total) break;
      p.front_written -= frame_total;
      p.outq.pop_front();
    }
  }

  void close_link(Peer& p) {
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
    p.outq.clear();
    p.front_written = 0;
    p.blocked = false;
  }

  NodeId self_;
  Options opts_;
  const crypto::KeyStore& keys_;
  std::vector<std::uint16_t> ports_;
  int listen_fd_;
  Clock::time_point epoch_;
  std::unique_ptr<net::Protocol> protocol_;
  Decoder decoder_;
  net::WakeupFd& done_wake_;
  net::WakeupFd wake_;
  Rng rng_;
  std::vector<Peer> peers_;
  std::priority_queue<HeldFrame, std::vector<HeldFrame>, HeldLater> held_;
  std::deque<std::pair<std::uint32_t, net::MessagePtr>> local_;
  /// Pooled scratch reused across the node's lifetime (no per-iteration or
  /// per-read allocations in the steady state).
  std::vector<std::uint8_t> rbuf_;
  std::vector<pollfd> pollfds_;
  std::vector<NodeId> owners_;
  std::vector<iovec> iov_;
  std::vector<std::uint8_t> stage_;
  TransportMetrics metrics_;
  std::string error_;
};

// ------------------------------------------------------------------ Cluster

TcpCluster::TcpCluster(Options opts)
    : opts_(opts), keys_(opts.seed, opts.n), ports_(opts.n, 0) {
  if (opts_.n < 1) throw ConfigError("TcpCluster: n must be >= 1");
}

TcpCluster::~TcpCluster() {
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpCluster::request_stop() {
  stop_.store(true);
  for (auto& node : nodes_) node->wake();
}

void TcpCluster::start(const ProtocolFactory& factory, Decoder decoder) {
  DELPHI_ASSERT(!started_, "TcpCluster: start() called twice");
  started_ = true;

  // Open all listen sockets first so every connect() finds a live backlog.
  std::vector<int> listen_fds(opts_.n, -1);
  for (NodeId i = 0; i < opts_.n; ++i) {
    listen_fds[i] = make_listen_socket(ports_[i]);
  }
  // One shared epoch so every node's shim schedules partition heals and
  // burst windows against the same t=0.
  const auto epoch = Clock::now();
  nodes_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, opts_, keys_, ports_,
                                            listen_fds[i], epoch, factory(i),
                                            decoder, done_wake_));
  }
  threads_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    threads_.emplace_back([this, i] { nodes_[i]->run(stop_); });
  }
}

bool TcpCluster::wait() {
  DELPHI_ASSERT(started_, "TcpCluster: wait() before start()");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
  // Block on the done wakeup-fd (nodes signal termination transitions and
  // thread exits) instead of polling flags on a timer.
  while (true) {
    bool all_done = true;
    bool dead_node = false;
    for (const auto& node : nodes_) {
      if (node->done.load(std::memory_order_acquire)) continue;
      all_done = false;
      // An exited-but-unterminated node (mesh failure, protocol exception)
      // can never become done, so the run's outcome is already a fixed
      // false — fail fast instead of sleeping out the deadline.
      if (node->exited.load(std::memory_order_acquire)) dead_node = true;
    }
    if (all_done || dead_node) break;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{done_wake_.fd(), POLLIN, 0};
    // Clamped so arbitrarily large timeouts can't overflow poll's int arg;
    // the loop re-checks the deadline after every wakeup anyway.
    ::poll(&pfd, 1,
           static_cast<int>(std::min<std::int64_t>(remaining.count(), 60'000)));
    done_wake_.drain();
  }
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  // With threads joined the flags are final: record who never terminated so
  // timeouts are diagnosable (which nodes, not just "false").
  unfinished_.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->done.load(std::memory_order_acquire)) {
      unfinished_.push_back(i);
    }
  }
  joined_ = true;
  // The joined flags are authoritative (a node may have terminated between
  // the last poll and the join).
  return unfinished_.empty();
}

const std::vector<NodeId>& TcpCluster::unfinished() const {
  DELPHI_ASSERT(joined_, "TcpCluster: unfinished() before wait()");
  return unfinished_;
}

net::Protocol& TcpCluster::protocol(NodeId id) {
  DELPHI_ASSERT(joined_, "TcpCluster: protocol() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->protocol();
}

const TransportMetrics& TcpCluster::metrics(NodeId id) const {
  DELPHI_ASSERT(joined_, "TcpCluster: metrics() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "TcpCluster: bad node id");
  return nodes_[id]->metrics();
}

std::uint16_t TcpCluster::port(NodeId id) const {
  DELPHI_ASSERT(id < ports_.size(), "TcpCluster: bad node id");
  return ports_[id];
}

}  // namespace delphi::transport
