#pragma once
/// \file udp.hpp
/// UDP datagram deployment of the protocol state machines — the lossy-network
/// counterpart of transport/tcp.hpp, sharing its framed wire format,
/// pairwise-HMAC authentication, and one-thread-per-node poll(2) event loops.
///
/// Design (one frame per datagram):
///   * Each node owns ONE UDP socket bound to 127.0.0.1:<os-assigned>; all
///     sockets are bound before any thread starts, so there is no mesh
///     bring-up phase — the source port identifies the sending node.
///   * A data datagram carries exactly one frame of the existing wire format
///     (u32 length | uvarint channel | payload | 32-byte HMAC tag), prefixed
///     by a kind byte and a per-directed-link u32 sequence number. The tag is
///     computed over seq || channel || payload (the HmacKey two-span MAC), so
///     a replayed, renumbered, or tampered datagram fails authentication —
///     slightly stronger than the TCP tag, which a stream cannot replay.
///   * Datagrams may be dropped, duplicated, or reordered (and the netem shim
///     does all three on purpose). A small selective-repeat ARQ layer makes
///     the transport reliable-enough for quorum protocols: the receiver's
///     SeqFilter accepts each seq once (duplicates are re-acked and dropped),
///     acks carry a cumulative floor plus recently-accepted seqs, and the
///     sender retransmits unacked frames on a fixed retransmission timeout.
///     Delivery is NOT FIFO — exactly the asynchronous-network contract the
///     protocols are built for (and the simulator's default).
///   * Accounting happens at the logical send, mirroring the simulator's
///     framed_size accounting: retransmissions, acks, and the seq/kind header
///     are transport overhead and excluded — which is what makes
///     sim ≡ udp honest-byte parity hold by construction
///     (tests/udp_substrate_test.cpp pins it).
///   * Every outgoing datagram (data and acks alike) passes the link's
///     netem::LinkShim; drops are recovered by the ARQ, delays are honoured
///     by a holdback queue — so the full `adversary=` plane plus loss and
///     bandwidth caps run on genuine kernel sockets.
///
/// The datagram codec below is exposed for tests (fuzz_decode_test feeds it
/// truncated/corrupt datagrams) and the bench; UdpMesh is the cluster.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "crypto/hmac.hpp"
#include "net/netem.hpp"
#include "net/protocol.hpp"
#include "net/wakeup.hpp"
#include "transport/frame.hpp"
#include "transport/tcp.hpp"  // Decoder, TransportMetrics

namespace delphi::transport {

/// Kind bytes: first byte of every datagram.
inline constexpr std::uint8_t kDatagramData = 0xD7;
inline constexpr std::uint8_t kDatagramAck = 0xA4;

/// Hard ceiling on one datagram (loopback UDP tops out at ~65507 payload
/// bytes); enqueueing a frame that cannot fit is an Error at send time.
inline constexpr std::size_t kMaxDatagramBytes = 65'000;

/// Most selective-ack entries accepted in one ack datagram (decode rejects
/// higher claims before allocating).
inline constexpr std::size_t kMaxAckSacks = 1024;

/// One decoded datagram. `payload` borrows the input buffer.
struct DatagramView {
  bool is_ack = false;
  /// Data: this frame's link sequence number. Ack: the cumulative floor
  /// (every seq below it is acknowledged).
  std::uint32_t seq = 0;
  /// Ack only: selectively-acknowledged seqs at/above the floor.
  std::vector<std::uint32_t> sacks;
  /// Data only.
  std::uint32_t channel = 0;
  std::span<const std::uint8_t> payload;
};

/// Encode one data datagram: kind | u32 seq | frame body | tag. `tag` must
/// be the seq-covering link tag (see udp_frame_tag) on authenticated links,
/// nullptr otherwise.
std::vector<std::uint8_t> encode_data_datagram(std::uint32_t seq,
                                               const std::vector<std::uint8_t>& body,
                                               const crypto::Digest* tag);

/// Encode one ack datagram: kind | u32 cum | uvarint count | seqs | tag
/// (tag over all preceding bytes when `key` is non-null).
std::vector<std::uint8_t> encode_ack_datagram(std::uint32_t cum,
                                              std::span<const std::uint32_t> sacks,
                                              const crypto::HmacKey* key);

/// Per-frame tag on an authenticated UDP link: HMAC over seq (u32 LE) ||
/// channel uvarint || payload — the frame body's post-length bytes plus the
/// sequence number, via the HmacKey two-span MAC (no concatenation buffer).
crypto::Digest udp_frame_tag(const crypto::HmacKey& key, std::uint32_t seq,
                             const std::vector<std::uint8_t>& body);

/// Decode and authenticate one datagram (`key` = nullptr for plaintext
/// links). Throws SerializationError on structural corruption and
/// ProtocolViolation on MAC failure; a datagram is all-or-nothing, so unlike
/// the TCP stream parser a failure poisons nothing — the caller just drops
/// the datagram.
DatagramView decode_datagram(std::span<const std::uint8_t> bytes,
                             const crypto::HmacKey* key);

/// Receive-side duplicate filter for one directed link: accepts each
/// sequence number exactly once, tracks the cumulative floor for acks.
class SeqFilter {
 public:
  /// True iff `seq` was never accepted before (marks it accepted).
  bool accept(std::uint32_t seq);

  /// Every seq strictly below this has been accepted.
  std::uint32_t cum() const noexcept { return cum_; }

  /// Accepted-but-ahead-of-the-floor backlog (diagnostics/tests).
  std::size_t pending() const noexcept { return ahead_.size(); }

 private:
  std::uint32_t cum_ = 0;
  std::set<std::uint32_t> ahead_;
};

/// A full-mesh UDP cluster of n nodes, one OS thread each, on 127.0.0.1 —
/// the same lifecycle and observer API as TcpCluster:
///
///   UdpMesh mesh(opts);
///   mesh.start(factory, decoder);
///   bool ok = mesh.wait();
///   auto& p = mesh.protocol(i);
class UdpMesh {
 public:
  struct Options {
    std::size_t n = 4;
    /// HMAC-authenticate every datagram (pairwise keys from `seed`).
    bool auth = true;
    /// Master secret / per-node RNG / netem schedule seed.
    std::uint64_t seed = 1;
    /// wait() gives up after this many milliseconds of wall time.
    std::int64_t timeout_ms = 30'000;
    /// Retransmission timeout for unacked frames (loopback RTT is tens of
    /// µs; this only bounds recovery latency after a drop). Retransmission
    /// attempts back off exponentially from this base (doubling per
    /// attempt, capped at 32x), so a long-dark peer costs O(log) resend
    /// work instead of a fixed-rate spray.
    std::int64_t rto_ms = 25;
    /// Per-directed-link cap on the selective-repeat unacked map (and its
    /// retransmit schedule). A send that would exceed it throws a typed
    /// ResourceExhausted — never a silent drop. The default is roomy
    /// enough that honest runs (including churn restarts) stay far below
    /// it; tiny values let tests exercise the exhaustion path.
    std::size_t max_unacked = 65'536;
    /// Network emulation applied per directed link (inert by default).
    net::netem::Config netem;
    /// Churn schedule (wall µs since cluster start): a dark node closes its
    /// socket (datagrams to it vanish) and rebinds the SAME port at up_us —
    /// the port is the node's identity, so peers' ARQ retransmissions find
    /// it again with no handshake. A RestartableProtocol is snapshotted at
    /// down and restored from bytes at up.
    std::vector<ChurnWindow> churn;
  };

  using ProtocolFactory = net::ProtocolFactory;

  explicit UdpMesh(Options opts);
  ~UdpMesh();

  UdpMesh(const UdpMesh&) = delete;
  UdpMesh& operator=(const UdpMesh&) = delete;

  /// Bind every node's socket, create protocols, spawn node threads, and
  /// start every protocol. Call exactly once.
  void start(const ProtocolFactory& factory, Decoder decoder);

  /// Block until every node's protocol terminated or the timeout expires,
  /// then stop and join all threads. Returns true iff all terminated.
  bool wait();

  /// Node ids whose protocols had not terminated when wait() gave up (empty
  /// iff wait() returned true). Only safe after wait() returned.
  const std::vector<NodeId>& unfinished() const;

  /// Nodes whose threads died with an error (exception text — e.g. the
  /// typed ResourceExhausted of an unacked-map overflow), in ascending id
  /// order. Only safe after wait() returned.
  const std::vector<NodeFailure>& failures() const;

  /// Node i's protocol. Only safe after wait() returned.
  net::Protocol& protocol(NodeId id);

  /// Node i's transport counters (logical sends only: retransmissions and
  /// acks are not traffic). Only safe after wait() returned.
  const TransportMetrics& metrics(NodeId id) const;

  /// Resolved UDP port of node i (set by start()).
  std::uint16_t port(NodeId id) const;

  const Options& options() const noexcept { return opts_; }

 private:
  class Node;

  void request_stop();

  Options opts_;
  crypto::KeyStore keys_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  std::vector<std::uint16_t> ports_;
  std::vector<NodeId> unfinished_;
  std::vector<NodeFailure> failures_;
  std::atomic<bool> stop_{false};
  net::WakeupFd done_wake_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace delphi::transport
