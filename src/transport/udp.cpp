#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace delphi::transport {

namespace {

using Clock = std::chrono::steady_clock;

/// Selective-ack entries advertised per ack datagram (the cumulative floor
/// carries the rest; a bounded list keeps acks one small datagram).
constexpr std::size_t kAckSackLimit = 256;

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Bind a UDP socket on 127.0.0.1 with an OS-assigned port; non-blocking,
/// with roomy buffers (a whole burst window may release at one instant).
int make_udp_socket(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) sys_fail("socket(udp)");
  sockaddr_in addr = loopback_addr(0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind(udp)");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    sys_fail("getsockname(udp)");
  }
  port_out = ntohs(addr.sin_port);
  const int bufsz = 1 << 20;  // best-effort: drops are recoverable anyway
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof(bufsz));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof(bufsz));
  set_nonblocking(fd);
  return fd;
}

/// Rebind a restarted node's socket on its original port — the port is the
/// node's published identity (port_to_peer_ on every peer), so a rejoin
/// must reclaim it exactly.
int make_udp_socket_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) sys_fail("socket(udp rebind)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind(udp rebind port " + std::to_string(port) + ")");
  }
  const int bufsz = 1 << 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bufsz, sizeof(bufsz));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bufsz, sizeof(bufsz));
  set_nonblocking(fd);
  return fd;
}

}  // namespace

// ------------------------------------------------------------------- codec

crypto::Digest udp_frame_tag(const crypto::HmacKey& key, std::uint32_t seq,
                             const std::vector<std::uint8_t>& body) {
  const std::uint8_t seq_le[4] = {
      static_cast<std::uint8_t>(seq), static_cast<std::uint8_t>(seq >> 8),
      static_cast<std::uint8_t>(seq >> 16),
      static_cast<std::uint8_t>(seq >> 24)};
  // The MAC covers seq || channel || payload; the body's 4-byte length
  // prefix is framing, not content (same rule as the TCP frame tag).
  return key.tag({seq_le, 4},
                 std::span<const std::uint8_t>(body).subspan(4));
}

std::vector<std::uint8_t> encode_data_datagram(
    std::uint32_t seq, const std::vector<std::uint8_t>& body,
    const crypto::Digest* tag) {
  ByteWriter w(1 + 4 + body.size() + (tag != nullptr ? crypto::kMacTagSize : 0));
  w.u8(kDatagramData);
  w.u32(seq);
  w.raw(body);
  if (tag != nullptr) w.raw(*tag);
  return w.take();
}

std::vector<std::uint8_t> encode_ack_datagram(
    std::uint32_t cum, std::span<const std::uint32_t> sacks,
    const crypto::HmacKey* key) {
  ByteWriter w(1 + 4 + 2 + 4 * sacks.size() +
               (key != nullptr ? crypto::kMacTagSize : 0));
  w.u8(kDatagramAck);
  w.u32(cum);
  w.uvarint(sacks.size());
  for (const auto s : sacks) w.u32(s);
  if (key != nullptr) w.raw(key->tag(w.data()));
  return w.take();
}

DatagramView decode_datagram(std::span<const std::uint8_t> bytes,
                             const crypto::HmacKey* key) {
  ByteReader r0(bytes);
  const std::uint8_t kind = r0.u8();
  const std::size_t tag_len = key != nullptr ? crypto::kMacTagSize : 0;
  DatagramView d;

  if (kind == kDatagramData) {
    d.seq = r0.u32();
    const std::uint32_t len = r0.u32();
    if (len > kMaxFrameBytes) {
      throw SerializationError("udp: oversized frame length");
    }
    // Exactly one frame per datagram: the frame's post-prefix length must
    // account for every remaining byte.
    if (len != r0.remaining()) {
      throw SerializationError("udp: datagram/frame length mismatch");
    }
    if (r0.remaining() < tag_len + 1) {
      throw SerializationError("udp: truncated frame");
    }
    const std::size_t content_len = len - tag_len;
    if (key != nullptr) {
      crypto::Digest got{};
      std::memcpy(got.data(), bytes.data() + 9 + content_len, got.size());
      const auto want =
          key->tag(bytes.subspan(1, 4), bytes.subspan(9, content_len));
      if (!crypto::digest_equal(want, got)) {
        throw ProtocolViolation("udp: datagram authentication failed");
      }
    }
    ByteReader r(bytes.subspan(9, content_len));
    const std::uint64_t channel = r.uvarint();
    if (channel > std::numeric_limits<std::uint32_t>::max()) {
      throw SerializationError("udp: channel id overflows u32");
    }
    d.channel = static_cast<std::uint32_t>(channel);
    d.payload = bytes.subspan(9 + (content_len - r.remaining()), r.remaining());
    return d;
  }

  if (kind == kDatagramAck) {
    if (bytes.size() < 1 + 4 + 1 + tag_len) {
      throw SerializationError("udp: truncated ack");
    }
    d.is_ack = true;
    const std::size_t content_len = bytes.size() - tag_len;
    if (key != nullptr) {
      crypto::Digest got{};
      std::memcpy(got.data(), bytes.data() + content_len, got.size());
      const auto want = key->tag(bytes.subspan(0, content_len));
      if (!crypto::digest_equal(want, got)) {
        throw ProtocolViolation("udp: ack authentication failed");
      }
    }
    ByteReader r(bytes.subspan(1, content_len - 1));
    d.seq = r.u32();
    const std::uint64_t count = r.uvarint();
    if (count > kMaxAckSacks) {
      throw SerializationError("udp: ack sack count too large");
    }
    if (count * 4 != r.remaining()) {
      throw SerializationError("udp: ack length mismatch");
    }
    d.sacks.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) d.sacks.push_back(r.u32());
    return d;
  }

  throw SerializationError("udp: unknown datagram kind");
}

bool SeqFilter::accept(std::uint32_t seq) {
  if (seq < cum_ || ahead_.contains(seq)) return false;
  ahead_.insert(seq);
  while (!ahead_.empty() && *ahead_.begin() == cum_) {
    ahead_.erase(ahead_.begin());
    ++cum_;
  }
  return true;
}

// --------------------------------------------------------------------- Node

class UdpMesh::Node final : public net::Context {
 public:
  Node(NodeId self, const Options& opts, const crypto::KeyStore& keys,
       const std::vector<std::uint16_t>& ports, int sock_fd,
       Clock::time_point epoch, std::unique_ptr<net::Protocol> protocol,
       std::function<std::unique_ptr<net::Protocol>()> rebuild,
       Decoder decoder, net::WakeupFd& done_wake)
      : self_(self),
        opts_(opts),
        sock_fd_(sock_fd),
        own_port_(ports[self]),
        epoch_(epoch),
        protocol_(std::move(protocol)),
        rebuild_(std::move(rebuild)),
        decoder_(std::move(decoder)),
        done_wake_(done_wake),
        rng_(opts.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))),
        rto_us_(std::max<std::int64_t>(opts.rto_ms, 1) * 1000) {
    peers_.resize(opts_.n);
    for (const auto& w : opts_.churn) {
      if (w.id == self_) windows_.push_back(w);
    }
    std::sort(windows_.begin(), windows_.end(),
              [](const ChurnWindow& a, const ChurnWindow& b) {
                return a.down_us < b.down_us;
              });
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) continue;
      Peer& p = peers_[j];
      p.addr = loopback_addr(ports[j]);
      if (opts_.auth) p.mac.emplace(keys.channel_key(self_, j));
      if (opts_.netem.active()) {
        p.shim = net::netem::LinkShim(opts_.netem, self_, j);
      }
      port_to_peer_.emplace(ports[j], j);
    }
    rbuf_.resize(64 * 1024);
  }

  ~Node() override {
    if (sock_fd_ >= 0) ::close(sock_fd_);
  }

  // ---- net::Context -------------------------------------------------------
  NodeId self() const override { return self_; }
  std::size_t n() const override { return opts_.n; }

  /// Microseconds since cluster start — the clock the netem shim schedules
  /// against (partition heal times are cluster-relative, like sim time).
  SimTime now() const override { return now_us(); }

  void send(NodeId to, std::uint32_t channel, net::MessagePtr msg) override {
    DELPHI_ASSERT(to < opts_.n, "udp send: bad destination");
    if (to == self_) {
      local_.emplace_back(channel, std::move(msg));
      return;
    }
    enqueue_frame(to, encode_frame_body(channel, *msg, opts_.auth));
  }

  void broadcast(std::uint32_t channel, net::MessagePtr msg) override {
    // One serialization for all destinations (the TCP data plane's shared
    // immutable body); per-link seq and tag are attached at enqueue.
    const SharedFrameBody body = encode_frame_body(channel, *msg, opts_.auth);
    for (NodeId j = 0; j < opts_.n; ++j) {
      if (j == self_) {
        local_.emplace_back(channel, msg);
      } else {
        enqueue_frame(j, body);
      }
    }
  }

  void charge_compute(SimTime) override {}  // real cycles are already spent
  Rng& rng() override { return rng_; }

  // ---- lifecycle ----------------------------------------------------------

  void run(const std::atomic<bool>& stop) {
    try {
      protocol_->on_start(*this);
      drain_local();
      note_termination();
      event_loop(stop);
    } catch (const std::exception& e) {
      error_ = e.what();
    }
    if (have_snapshot_) {
      // Stopped (or died) while dark: rebuild the protocol from its
      // snapshot so outputs stay harvestable after the join.
      try {
        restore_protocol();
      } catch (const std::exception& e) {
        if (error_.empty()) error_ = e.what();
      }
    }
    exited.store(true, std::memory_order_release);
    done_wake_.signal();
  }

  void wake() noexcept { wake_.signal(); }

  std::atomic<bool> done{false};
  std::atomic<bool> exited{false};

  net::Protocol& protocol() { return *protocol_; }
  const TransportMetrics& metrics() const { return metrics_; }
  const std::string& error() const { return error_; }

 private:
  /// One logically-sent, not-yet-acknowledged frame: the shared body, its
  /// seq-covering link tag, and the time of the next (re)transmission
  /// attempt.
  struct Unacked {
    SharedFrameBody body;
    crypto::Digest tag{};
    SimTime at = 0;
    /// Wire attempts so far: 0 = not yet sent. Drives the exponential RTO
    /// backoff and classifies re-sends as catch-up traffic.
    std::uint32_t attempts = 0;
  };

  struct Peer {
    sockaddr_in addr{};
    std::optional<crypto::HmacKey> mac;
    net::netem::LinkShim shim;
    // Send side (selective-repeat ARQ).
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, Unacked> unacked;
    /// (at, seq) attempt schedule; entries are lazily invalidated when a
    /// frame is acked or rescheduled.
    std::priority_queue<std::pair<SimTime, std::uint32_t>,
                        std::vector<std::pair<SimTime, std::uint32_t>>,
                        std::greater<>>
        events;
    // Receive side.
    SeqFilter filter;
    bool ack_due = false;
    std::vector<std::uint32_t> fresh_sacks;
  };

  /// A materialized datagram waiting for its netem release time (or due
  /// immediately on unshimmed links).
  struct WireItem {
    SimTime release = 0;
    std::uint64_t order = 0;
    NodeId to = 0;
    std::vector<std::uint8_t> bytes;
  };
  struct WireLater {
    bool operator()(const WireItem& a, const WireItem& b) const {
      return a.release != b.release ? a.release > b.release
                                    : a.order > b.order;
    }
  };

  SimTime now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  void enqueue_frame(NodeId to, const SharedFrameBody& body) {
    Peer& p = peers_[to];
    // Counted at the logical send only (matches sim's framed_size
    // accounting); retransmissions, acks, and the kind/seq header are
    // transport overhead, not protocol traffic.
    ++metrics_.msgs_sent;
    metrics_.bytes_sent += frame_wire_size(*body, p.mac.has_value());
    const std::size_t dgram =
        1 + 4 + body->size() + (p.mac.has_value() ? crypto::kMacTagSize : 0);
    if (dgram > kMaxDatagramBytes) {
      throw Error("udp: frame of " + std::to_string(dgram) +
                  " bytes exceeds the one-datagram limit");
    }
    if (p.unacked.size() >= opts_.max_unacked) {
      // Typed, loud, and attributable — never a silent drop. The node dies
      // with this message in NodeFailure / RunReport.node_errors.
      throw ResourceExhausted(
          "udp: unacked map for peer " + std::to_string(to) + " hit the cap (" +
          std::to_string(opts_.max_unacked) + " frames in flight)");
    }
    const std::uint32_t seq = p.next_seq++;
    const SimTime at = now_us();
    Unacked u;
    u.body = body;
    if (p.mac.has_value()) u.tag = udp_frame_tag(*p.mac, seq, *body);
    u.at = at;
    p.unacked.emplace(seq, std::move(u));
    p.events.emplace(at, seq);
  }

  void drain_local() {
    while (!local_.empty()) {
      auto [channel, msg] = std::move(local_.front());
      local_.pop_front();
      dispatch(self_, channel, *msg);
    }
  }

  void dispatch(NodeId from, std::uint32_t channel,
                const net::MessageBody& body) {
    try {
      protocol_->on_message(*this, from, channel, body);
      ++metrics_.msgs_delivered;
    } catch (const Error&) {
      ++metrics_.malformed_dropped;
    }
  }

  void note_termination() {
    if (protocol_ == nullptr) return;  // dark window of a snapshot restart
    if (!done.load(std::memory_order_relaxed) && protocol_->terminated()) {
      done.store(true, std::memory_order_release);
      done_wake_.signal();
    }
  }

  /// Run every due (re)transmission attempt: consult the link shim, park the
  /// materialized datagram on the wire queue until its release time, and
  /// re-arm the frame's retransmission timer.
  void process_out(SimTime now) {
    for (NodeId j = 0; j < opts_.n; ++j) {
      Peer& p = peers_[j];
      while (!p.events.empty()) {
        const auto [at, seq] = p.events.top();
        const auto it = p.unacked.find(seq);
        if (it == p.unacked.end() || it->second.at != at) {
          p.events.pop();  // acked or rescheduled since
          continue;
        }
        if (at > now) break;
        p.events.pop();
        const auto v = p.shim.on_send(
            now, frame_wire_size(*it->second.body, p.mac.has_value()));
        const SimTime xmit = std::max(now, v.release_us);
        if (!v.drop) {
          wireq_.push({xmit, v.order, j,
                       encode_data_datagram(
                           seq, *it->second.body,
                           p.mac.has_value() ? &it->second.tag : nullptr)});
          if (it->second.attempts > 0) {
            // A re-send is the ARQ catching a peer up (drop, dark window,
            // or lost ack) — recovery overhead, never honest traffic.
            ++metrics_.catchup_frames;
            metrics_.catchup_bytes +=
                frame_wire_size(*it->second.body, p.mac.has_value());
          }
        }
        // Retransmit after the (possibly shim-delayed) wire time plus an
        // exponentially backed-off RTO (doubling per attempt, capped at
        // 32x) — a long-dark peer is probed ever more gently; a
        // shim-dropped attempt simply retries on the same schedule.
        const std::uint32_t shift =
            std::min<std::uint32_t>(it->second.attempts, 5);
        ++it->second.attempts;
        it->second.at = xmit + (rto_us_ << shift);
        p.events.emplace(it->second.at, seq);
      }
    }
  }

  /// Send every datagram whose release time has arrived. Send failures
  /// (full buffers) are indistinguishable from network loss: the ARQ — or,
  /// for acks, the peer's duplicate-triggered re-ack — recovers.
  void flush_wire(SimTime now) {
    while (!wireq_.empty() && wireq_.top().release <= now) {
      const WireItem& w = wireq_.top();
      ::sendto(sock_fd_, w.bytes.data(), w.bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&peers_[w.to].addr),
               sizeof(sockaddr_in));
      wireq_.pop();
    }
  }

  /// Build one ack per peer that delivered data this round: cumulative
  /// floor + the freshly accepted seqs above it. Acks ride the shim too (a
  /// partition must block information in both layers).
  void flush_acks(SimTime now) {
    for (NodeId j = 0; j < opts_.n; ++j) {
      Peer& p = peers_[j];
      if (!p.ack_due) continue;
      p.ack_due = false;
      const std::uint32_t cum = p.filter.cum();
      sack_scratch_.clear();
      for (const auto s : p.fresh_sacks) {
        if (s >= cum && sack_scratch_.size() < kAckSackLimit) {
          sack_scratch_.push_back(s);
        }
      }
      p.fresh_sacks.clear();
      auto bytes = encode_ack_datagram(
          cum, sack_scratch_, p.mac.has_value() ? &*p.mac : nullptr);
      const auto v = p.shim.on_send(now, bytes.size());
      if (v.drop) continue;
      wireq_.push({std::max(now, v.release_us), v.order, j, std::move(bytes)});
    }
  }

  void drain_socket() {
    while (true) {
      sockaddr_in src{};
      socklen_t slen = sizeof(src);
      const ssize_t k =
          ::recvfrom(sock_fd_, rbuf_.data(), rbuf_.size(), 0,
                     reinterpret_cast<sockaddr*>(&src), &slen);
      if (k < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN: drained (other errnos: nothing to read either)
      }
      const auto it = port_to_peer_.find(ntohs(src.sin_port));
      if (it == port_to_peer_.end()) continue;  // stranger datagram
      handle_datagram(it->second,
                      {rbuf_.data(), static_cast<std::size_t>(k)});
    }
  }

  void handle_datagram(NodeId from, std::span<const std::uint8_t> bytes) {
    Peer& p = peers_[from];
    DatagramView d;
    try {
      d = decode_datagram(bytes, p.mac.has_value() ? &*p.mac : nullptr);
    } catch (const Error&) {
      // Truncated, tampered, or forged: a datagram is self-contained, so
      // dropping it poisons nothing (unlike a broken TCP stream).
      ++metrics_.malformed_dropped;
      return;
    }
    if (d.is_ack) {
      for (auto it = p.unacked.begin();
           it != p.unacked.end() && it->first < d.seq;) {
        it = p.unacked.erase(it);
      }
      for (const auto s : d.sacks) p.unacked.erase(s);
      return;
    }
    p.ack_due = true;
    if (!p.filter.accept(d.seq)) return;  // duplicate: re-ack, don't deliver
    p.fresh_sacks.push_back(d.seq);
    try {
      ByteReader r(d.payload);
      const net::MessagePtr msg = decoder_(d.channel, r);
      r.expect_exhausted();
      dispatch(from, d.channel, *msg);
    } catch (const Error&) {
      // Valid MAC, undecodable payload (a garbage-spraying peer): count and
      // drop, but keep the seq accepted so it is acked, like the TCP path
      // keeps the link up.
      ++metrics_.malformed_dropped;
    }
    drain_local();
    note_termination();
  }

  /// Earliest pending event across the wire queue and every peer's attempt
  /// schedule; -1 when fully idle (poll may block indefinitely).
  SimTime next_event() {
    SimTime next = wireq_.empty() ? -1 : wireq_.top().release;
    for (auto& p : peers_) {
      while (!p.events.empty()) {
        const auto [at, seq] = p.events.top();
        const auto it = p.unacked.find(seq);
        if (it == p.unacked.end() || it->second.at != at) {
          p.events.pop();
          continue;
        }
        if (next < 0 || at < next) next = at;
        break;
      }
    }
    return next;
  }

  void event_loop(const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!windows_.empty()) {
        churn_tick();
        if (down_) {
          park_dark();
          continue;
        }
      }
      const SimTime now = now_us();
      process_out(now);
      flush_wire(now);

      SimTime next = next_event();
      if (!down_ && next_window_ < windows_.size() &&
          (next < 0 || windows_[next_window_].down_us < next)) {
        next = windows_[next_window_].down_us;
      }
      int timeout = -1;
      if (next >= 0) {
        const SimTime ms = (next - now_us()) / 1000 + 1;
        timeout = static_cast<int>(std::clamp<SimTime>(ms, 0, 60'000));
      }
      pollfd fds[2] = {{wake_.fd(), POLLIN, 0}, {sock_fd_, POLLIN, 0}};
      if (::poll(fds, 2, timeout) < 0) {
        if (errno == EINTR) continue;
        sys_fail("poll(udp)");
      }
      if (fds[0].revents != 0) wake_.drain();  // stop re-checked above
      if (fds[1].revents & (POLLIN | POLLERR)) drain_socket();
      flush_acks(now_us());
    }
  }

  // ---- churn --------------------------------------------------------------

  /// Drive this node's own restart schedule.
  void churn_tick() {
    if (!down_ && next_window_ < windows_.size() &&
        now_us() >= windows_[next_window_].down_us) {
      go_down(windows_[next_window_].up_us);
      ++next_window_;
    }
    if (down_ && now_us() >= up_at_) come_up();
  }

  /// Dark: close the socket — datagrams to this node vanish (peers' ARQ
  /// keeps retransmitting) and nothing is sent. The ARQ/SeqFilter state
  /// lives in this object and survives; a RestartableProtocol is
  /// serialized and destroyed, proving the snapshot path end to end.
  void go_down(SimTime up_at) {
    down_ = true;
    up_at_ = up_at;
    down_since_ = now_us();
    if (sock_fd_ >= 0) {
      ::close(sock_fd_);
      sock_fd_ = -1;
    }
    if (rebuild_) {
      if (auto* rp =
              dynamic_cast<net::RestartableProtocol*>(protocol_.get())) {
        ByteWriter w(256);
        rp->snapshot(w);
        snapshot_ = w.take();
        have_snapshot_ = true;
        protocol_.reset();
      }
    }
  }

  /// Rejoin: rebind the SAME port (the node's identity on every peer's
  /// port_to_peer_ map), restore the protocol, and let the ARQ catch
  /// everyone up — our due retransmissions flow out, peers' reach the
  /// fresh socket.
  void come_up() {
    down_ = false;
    metrics_.downtime_us += static_cast<std::uint64_t>(now_us() - down_since_);
    sock_fd_ = make_udp_socket_on(own_port_);
    ++metrics_.reconnects;
    if (have_snapshot_) restore_protocol();
    drain_local();
    note_termination();
  }

  void restore_protocol() {
    protocol_ = rebuild_();
    auto* rp = dynamic_cast<net::RestartableProtocol*>(protocol_.get());
    DELPHI_ASSERT(rp != nullptr, "udp restart: factory lost snapshot support");
    ByteReader r(snapshot_);
    rp->restore(r);
    snapshot_.clear();
    have_snapshot_ = false;
  }

  /// The dark window: nothing to do but wait for the restart clock or the
  /// cluster stop signal (re-checked by the caller's loop on return).
  void park_dark() {
    const SimTime ms = (up_at_ - now_us()) / 1000 + 1;
    pollfd pf{wake_.fd(), POLLIN, 0};
    ::poll(&pf, 1, static_cast<int>(std::clamp<SimTime>(ms, 0, 60'000)));
    if (pf.revents != 0) wake_.drain();
  }

  NodeId self_;
  Options opts_;
  int sock_fd_;
  std::uint16_t own_port_;
  Clock::time_point epoch_;
  std::unique_ptr<net::Protocol> protocol_;
  /// Recreates this node's protocol (churn restarts feed it the snapshot).
  std::function<std::unique_ptr<net::Protocol>()> rebuild_;
  Decoder decoder_;
  net::WakeupFd& done_wake_;
  net::WakeupFd wake_;
  Rng rng_;
  SimTime rto_us_;
  /// This node's own restart schedule (sorted by down_us) and dark state.
  std::vector<ChurnWindow> windows_;
  std::size_t next_window_ = 0;
  bool down_ = false;
  SimTime up_at_ = 0;
  SimTime down_since_ = 0;
  std::vector<std::uint8_t> snapshot_;
  bool have_snapshot_ = false;
  std::vector<Peer> peers_;
  std::unordered_map<std::uint16_t, NodeId> port_to_peer_;
  std::priority_queue<WireItem, std::vector<WireItem>, WireLater> wireq_;
  std::deque<std::pair<std::uint32_t, net::MessagePtr>> local_;
  /// Pooled scratch (no steady-state allocations beyond datagram buffers).
  std::vector<std::uint8_t> rbuf_;
  std::vector<std::uint32_t> sack_scratch_;
  TransportMetrics metrics_;
  std::string error_;
};

// --------------------------------------------------------------------- Mesh

UdpMesh::UdpMesh(Options opts)
    : opts_(opts), keys_(opts.seed, opts.n), ports_(opts.n, 0) {
  if (opts_.n < 1) throw ConfigError("UdpMesh: n must be >= 1");
  if (opts_.max_unacked < 1) {
    throw ConfigError("UdpMesh: max_unacked must be >= 1");
  }
  for (const auto& w : opts_.churn) {
    if (w.id >= opts_.n) throw ConfigError("UdpMesh: churn id out of range");
    if (w.up_us <= w.down_us) {
      throw ConfigError("UdpMesh: churn window needs up_us > down_us");
    }
  }
}

UdpMesh::~UdpMesh() {
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void UdpMesh::request_stop() {
  stop_.store(true);
  for (auto& node : nodes_) node->wake();
}

void UdpMesh::start(const ProtocolFactory& factory, Decoder decoder) {
  DELPHI_ASSERT(!started_, "UdpMesh: start() called twice");
  started_ = true;

  // Bind every socket before any thread runs: the source port is the node
  // identity, and a datagram sent to an unbound port would just vanish.
  std::vector<int> socks(opts_.n, -1);
  for (NodeId i = 0; i < opts_.n; ++i) socks[i] = make_udp_socket(ports_[i]);

  // One shared epoch so every node's shim schedules partition heals and
  // burst windows against the same t=0 (like sim time).
  const auto epoch = Clock::now();
  nodes_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    std::function<std::unique_ptr<net::Protocol>()> rebuild;
    if (!opts_.churn.empty()) {
      rebuild = [factory, i] { return factory(i); };
    }
    nodes_.push_back(std::make_unique<Node>(i, opts_, keys_, ports_, socks[i],
                                            epoch, factory(i),
                                            std::move(rebuild), decoder,
                                            done_wake_));
  }
  threads_.reserve(opts_.n);
  for (NodeId i = 0; i < opts_.n; ++i) {
    threads_.emplace_back([this, i] { nodes_[i]->run(stop_); });
  }
}

bool UdpMesh::wait() {
  DELPHI_ASSERT(started_, "UdpMesh: wait() before start()");
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.timeout_ms);
  while (true) {
    bool all_done = true;
    bool dead_node = false;
    for (const auto& node : nodes_) {
      if (node->done.load(std::memory_order_acquire)) continue;
      all_done = false;
      if (node->exited.load(std::memory_order_acquire)) dead_node = true;
    }
    if (all_done || dead_node) break;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{done_wake_.fd(), POLLIN, 0};
    ::poll(&pfd, 1,
           static_cast<int>(
               std::min<std::int64_t>(remaining.count(), 60'000)));
    done_wake_.drain();
  }
  request_stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  unfinished_.clear();
  failures_.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->done.load(std::memory_order_acquire)) {
      unfinished_.push_back(i);
    }
    if (!nodes_[i]->error().empty()) {
      failures_.push_back({i, nodes_[i]->error()});
    }
  }
  joined_ = true;
  return unfinished_.empty();
}

const std::vector<NodeId>& UdpMesh::unfinished() const {
  DELPHI_ASSERT(joined_, "UdpMesh: unfinished() before wait()");
  return unfinished_;
}

const std::vector<NodeFailure>& UdpMesh::failures() const {
  DELPHI_ASSERT(joined_, "UdpMesh: failures() before wait()");
  return failures_;
}

net::Protocol& UdpMesh::protocol(NodeId id) {
  DELPHI_ASSERT(joined_, "UdpMesh: protocol() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "UdpMesh: bad node id");
  return nodes_[id]->protocol();
}

const TransportMetrics& UdpMesh::metrics(NodeId id) const {
  DELPHI_ASSERT(joined_, "UdpMesh: metrics() before wait()");
  DELPHI_ASSERT(id < nodes_.size(), "UdpMesh: bad node id");
  return nodes_[id]->metrics();
}

std::uint16_t UdpMesh::port(NodeId id) const {
  DELPHI_ASSERT(id < ports_.size(), "UdpMesh: bad node id");
  return ports_[id];
}

}  // namespace delphi::transport
