#pragma once
/// \file decoders.hpp
/// Standard payload decoders for running each protocol suite over the TCP
/// transport. The simulator passes typed message objects directly; TCP
/// recovers them from bytes, and these helpers encode the per-protocol
/// channel→message-type mapping in one place.

#include "abraham/abraham.hpp"
#include "aba/aba.hpp"
#include "benor/benor.hpp"
#include "binaa/message.hpp"
#include "delphi/message.hpp"
#include "dolev/dolev.hpp"
#include "oracle/dora.hpp"
#include "rbc/rbc.hpp"
#include "transport/tcp.hpp"

namespace delphi::transport::decoders {

/// Delphi (and VectorDelphi: every coordinate channel carries bundles).
inline Decoder delphi() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return protocol::DelphiBundle::decode(r);
  };
}

/// Standalone BinAA instances.
inline Decoder binaa() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return binaa::EchoMessage::decode(r);
  };
}

/// Bracha reliable broadcast.
inline Decoder rbc() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return rbc::RbcMessage::decode(r);
  };
}

/// MMR-style asynchronous binary agreement.
inline Decoder aba() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return aba::AbaMessage::decode(r);
  };
}

/// Dolev et al. multicast AA.
inline Decoder dolev() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return dolev::RoundValueMessage::decode(r);
  };
}

/// Abraham et al.: channel k*(n+1)+n carries WITNESS, the rest carry the
/// round's RBC traffic (the channel layout AbrahamProtocol defines).
inline Decoder abraham(std::size_t n) {
  return [n](std::uint32_t channel, ByteReader& r) -> net::MessagePtr {
    const auto per_round = static_cast<std::uint32_t>(n) + 1;
    if (channel % per_round == static_cast<std::uint32_t>(n)) {
      return abraham::WitnessMessage::decode(r);
    }
    return rbc::RbcMessage::decode(r);
  };
}

/// FIN-style ACS: channels 0..n-1 carry the n RBC children, n..2n-1 the n
/// ABA children (the channel layout AcsProtocol defines).
inline Decoder acs(std::size_t n) {
  return [n](std::uint32_t channel, ByteReader& r) -> net::MessagePtr {
    if (channel < static_cast<std::uint32_t>(n)) {
      return rbc::RbcMessage::decode(r);
    }
    return aba::AbaMessage::decode(r);
  };
}

/// Ben-Or local-coin binary agreement.
inline Decoder benor() {
  return [](std::uint32_t, ByteReader& r) -> net::MessagePtr {
    return benor::BenOrMessage::decode(r);
  };
}

/// DORA over Delphi: the attest channel carries shares, everything else is
/// Delphi bundles.
inline Decoder dora() {
  return [](std::uint32_t channel, ByteReader& r) -> net::MessagePtr {
    if (channel == oracle::DoraProtocol::kAttestChannel) {
      return oracle::AttestMessage::decode(r);
    }
    return protocol::DelphiBundle::decode(r);
  };
}

}  // namespace delphi::transport::decoders
