#pragma once
/// \file frame.hpp
/// Wire framing for the TCP transport — the byte-exact realization of the
/// format the simulator *accounts* (net::framed_size):
///
///   u32 length L (little-endian, bytes after the prefix)
///   uvarint channel id
///   payload (protocol message body)
///   32-byte HMAC-SHA256 tag (when the link is authenticated)
///
/// The tag covers channel + payload under the pairwise link key, so a frame
/// forged or tampered with by anyone without the key is rejected before the
/// payload reaches protocol code. Streams are parsed incrementally: feed TCP
/// bytes as they arrive, pop complete frames.
///
/// Hot-path structure (the one-serialization broadcast invariant): everything
/// up to the tag is destination-independent, so a broadcast encodes the
/// length prefix + channel + payload ONCE into an immutable SharedFrameBody
/// and shares that buffer across all n-1 links; only the 32-byte per-link
/// MAC differs, computed from a precomputed crypto::HmacKey midstate and
/// carried alongside the shared body (transport/tcp.cpp gathers body + tag
/// into one writev). The length prefix already includes the tag size, so the
/// shared bytes are final — framed_size accounting is unchanged.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "net/message.hpp"

namespace delphi::transport {

/// Upper bound on a single frame's post-prefix length; larger prefixes are
/// treated as a malicious/corrupt stream (memory-exhaustion guard).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

/// One parsed frame (owning copy of the payload).
struct Frame {
  std::uint32_t channel = 0;
  std::vector<std::uint8_t> payload;
};

/// Zero-copy view of a parsed frame. The payload span borrows the parser's
/// buffer: valid only until the next feed()/next()/next_view() call.
struct FrameView {
  std::uint32_t channel = 0;
  std::span<const std::uint8_t> payload;
};

/// The destination-independent prefix of a frame: u32 length (tag included
/// when authenticated) + channel uvarint + payload. Immutable and shared —
/// one encoding serves every destination of a broadcast.
using SharedFrameBody = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Encode a frame body once. With `authenticated` the length prefix reserves
/// room for the per-link tag that follows the body on the wire.
SharedFrameBody encode_frame_body(std::uint32_t channel,
                                  std::span<const std::uint8_t> payload,
                                  bool authenticated);

/// Serialize `msg` straight into the frame body (no intermediate payload
/// buffer) — the TCP data plane's send path.
SharedFrameBody encode_frame_body(std::uint32_t channel,
                                  const net::MessageBody& msg,
                                  bool authenticated);

/// Per-link MAC over a body's channel + payload bytes (everything after the
/// length prefix) — two compression finishes on the key's midstates.
crypto::Digest frame_tag(const crypto::HmacKey& key, const std::vector<std::uint8_t>& body);

/// Total on-wire bytes of body (+ its tag when authenticated).
inline std::size_t frame_wire_size(const std::vector<std::uint8_t>& body,
                                   bool authenticated) noexcept {
  return body.size() + (authenticated ? crypto::kMacTagSize : 0);
}

/// Encode a complete standalone frame (body + tag in one buffer). `key ==
/// nullptr` produces an unauthenticated frame (matching
/// framed_size(..., authenticated=false)).
std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::HmacKey* key);

/// Convenience overload deriving the HMAC midstates per call (tests and
/// one-shot callers; long-lived links should hold a crypto::HmacKey).
std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::Key* key);

/// Unauthenticated frame (disambiguates a literal nullptr key).
std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       std::nullptr_t);

/// Incremental frame decoder for one directed link.
///
/// Throws SerializationError on structurally corrupt streams and
/// ProtocolViolation on authentication failure; a TCP stream that fails
/// either way is unrecoverable (framing is lost), so the caller must close
/// the link.
class FrameParser {
 public:
  /// Unauthenticated link.
  FrameParser() = default;
  explicit FrameParser(std::nullptr_t) {}

  /// \param key  pairwise link key midstates, or nullptr for unauthenticated
  ///             links (copied — the parser owns its verification state).
  explicit FrameParser(const crypto::HmacKey* key) {
    if (key != nullptr) key_ = *key;
  }

  /// Convenience: derive the midstates from a raw key (tests).
  explicit FrameParser(const crypto::Key* key) {
    if (key != nullptr) key_.emplace(*key);
  }

  /// Append raw stream bytes (buffer is reserved ahead and reused across
  /// frames; the consumed prefix is compacted lazily).
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame as a borrowed view (no payload copy), or
  /// nullopt if more bytes are needed. The view dies at the next
  /// feed()/next()/next_view() call.
  std::optional<FrameView> next_view();

  /// Pop the next complete frame, copying the payload out.
  std::optional<Frame> next();

  /// Bytes currently buffered (tests / diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::optional<crypto::HmacKey> key_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace delphi::transport
