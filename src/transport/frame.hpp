#pragma once
/// \file frame.hpp
/// Wire framing for the TCP transport — the byte-exact realization of the
/// format the simulator *accounts* (net::framed_size):
///
///   u32 length L (little-endian, bytes after the prefix)
///   uvarint channel id
///   payload (protocol message body)
///   32-byte HMAC-SHA256 tag (when the link is authenticated)
///
/// The tag covers channel + payload under the pairwise link key, so a frame
/// forged or tampered with by anyone without the key is rejected before the
/// payload reaches protocol code. Streams are parsed incrementally: feed TCP
/// bytes as they arrive, pop complete frames.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace delphi::transport {

/// Upper bound on a single frame's post-prefix length; larger prefixes are
/// treated as a malicious/corrupt stream (memory-exhaustion guard).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

/// One parsed frame.
struct Frame {
  std::uint32_t channel = 0;
  std::vector<std::uint8_t> payload;
};

/// Encode a complete frame. `key == nullptr` produces an unauthenticated
/// frame (matching framed_size(..., authenticated=false)).
std::vector<std::uint8_t> encode_frame(std::uint32_t channel,
                                       std::span<const std::uint8_t> payload,
                                       const crypto::Key* key);

/// Incremental frame decoder for one directed link.
///
/// Throws SerializationError on structurally corrupt streams and
/// ProtocolViolation on authentication failure; a TCP stream that fails
/// either way is unrecoverable (framing is lost), so the caller must close
/// the link.
class FrameParser {
 public:
  /// \param key  pairwise link key, or nullptr for unauthenticated links.
  explicit FrameParser(const crypto::Key* key) : key_(key) {}

  /// Append raw stream bytes.
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes currently buffered (tests / diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  const crypto::Key* key_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace delphi::transport
