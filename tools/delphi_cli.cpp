/// delphi_cli — run any registered protocol on any substrate from the
/// command line, single runs or multi-core sweeps, and derive Delphi
/// parameters from a noise model via the EVT toolkit. The "I want one number
/// without writing a bench binary" tool, built on the scenario API
/// (src/scenario/): every invocation is a ScenarioSpec, and specs round-trip
/// through text for files/scripts (see SCENARIOS.md).
///
///   delphi_cli run    --protocol delphi --transport sim|tcp|udp --testbed aws
///                     --n 64 [--delta 20] [--center 40000] [--seed 1]
///                     [--crashes 0] [--t auto] [--rho0 10] [--eps 2]
///                     [--delta-max 2000] [--rounds 10] [--csv] [--verbose]
///                     [--adversary random-delay:50000] [--byzantine garbage:64:2]
///                     [--churn 1:200000:400000] [--churn-seed 7]
///                     (restart k nodes per window — dark at down_us, rejoined
///                     and caught up at up_us, on every substrate)
///                     (any protocol can be attacked: adversary= delays/reorders
///                     the simulated network, byzantine= wraps faulted nodes)
///                     [--instances 4] [--mux-mode concurrent|sequential]
///                     (k instances over one mesh via net::SessionMux;
///                     sequential = the one-report-per-minute pipeline)
///   delphi_cli run    --spec 'protocol=dolev n=8 rounds=6 ...'
///   delphi_cli sweep  same flags, --n taking a comma list: --n 16,64,112
///                     [--jobs J]   (J worker threads; 0 = all cores)
///   delphi_cli spec   same flags; prints the canonical spec text
///   delphi_cli protocols            lists every registered protocol
///   delphi_cli params --dist frechet --alpha 4.41 --scale 29.3 --n 160
///                     [--lambda 30]
///
/// Protocols: whatever the registry holds — delphi, binaa, abraham, dolev,
/// benor, aba, rbc, acs (alias fin), multidim, dora out of the box.
/// Testbeds: aws | cps | async | fast (sim substrate; tcp/udp are real I/O,
/// optionally shaped by the in-process netem shim: --loss / --loss-burst /
/// --rate-kbps / --rto-ms plus every --adversary form).

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "stats/evt.hpp"

using namespace delphi;
using scenario::ScenarioSpec;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(usage:
  delphi_cli run   --protocol NAME --transport sim|tcp|udp
                   --testbed aws|cps|async|fast --n N
                   [--delta D] [--center C] [--seed S] [--crashes K] [--t T]
                   [--adversary none|random-delay:<max_us>|targeted-lag:<k>:<lag_us>
                               |partition:<k>:<heal_us>|burst:<period_us>]
                   [--byzantine none|crash-after:<sends>:<k>|garbage:<size>:<k>]
                   [--churn k:<down_us>:<up_us>[,k:<down_us>:<up_us>...]]
                   [--churn-seed S]   (restart windows; see SCENARIOS.md)
                   [--loss P] [--loss-burst L] [--rate-kbps R] [--rto-ms MS]
                   (loss knobs need --transport udp; rate-kbps shapes tcp too)
                   [--instances K] [--mux-mode concurrent|sequential]
                   (K protocol instances multiplexed over one mesh)
                   [--rho0 R] [--eps E] [--delta-max DM] [--space-max SM]
                   [--rounds R] [--jobs J] [--csv] [--verbose]
  delphi_cli run   --spec 'protocol=... n=... key=value ...' [--csv]
  delphi_cli sweep  same flags; --n accepts a comma list (e.g. --n 16,64,112)
                   and --jobs J fans runs across J threads (0 = all cores)
  delphi_cli spec   same flags as run; prints the canonical spec text
  delphi_cli protocols
  delphi_cli params --dist normal|gamma|frechet|gumbel --n N [--lambda L]
                   [--mu M] [--sigma S] [--alpha A] [--scale SC] [--shape SH]

protocols are resolved via the scenario registry; `delphi_cli protocols`
lists what this build knows.
)");
  std::exit(2);
}

/// --key value flag map; validates that every flag is consumed.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
      key = key.substr(2);
      if (key == "csv" || key == "verbose") {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
      values_[key] = argv[++i];
    }
  }

  std::string str(const std::string& key, const std::string& dflt) {
    consumed_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  bool has(const std::string& key) const { return values_.contains(key); }

  double num(const std::string& key, double dflt) {
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      usage(("--" + key + " expects a number").c_str());
    }
    return v;
  }

  /// Non-negative integer flag: rejects signs and fractions up front so
  /// --n -3 errors instead of double→size_t wrapping (UB).
  std::uint64_t unum(const std::string& key, std::uint64_t dflt) {
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || !(s[0] >= '0' && s[0] <= '9') || end == s.c_str() ||
        *end != '\0' || errno == ERANGE) {
      usage(("--" + key + " expects a non-negative integer").c_str());
    }
    return static_cast<std::uint64_t>(v);
  }

  bool flag(const std::string& key) {
    consumed_.insert(key);
    return values_.contains(key);
  }

  /// Comma-separated size list.
  std::vector<std::size_t> sizes(const std::string& key) {
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) usage(("--" + key + " is required").c_str());
    std::vector<std::size_t> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v < 1) usage(("bad --" + key + " entry: " + tok).c_str());
      out.push_back(static_cast<std::size_t>(v));
    }
    if (out.empty()) usage(("--" + key + " is empty").c_str());
    return out;
  }

  void reject_unknown() const {
    for (const auto& [k, v] : values_) {
      if (!consumed_.contains(k)) usage(("unknown flag --" + k).c_str());
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

/// Build a ScenarioSpec from flags (n is filled per run/sweep entry).
/// Protocol-parameter defaults keep the historical per-testbed shapes: AWS
/// is the paper's USD price feed, CPS the drone-localization workload.
ScenarioSpec parse_spec(Flags& f) {
  ScenarioSpec spec;
  if (f.has("spec")) {
    spec = ScenarioSpec::from_text(f.str("spec", ""));
    return spec;
  }
  f.str("spec", "");  // mark consumed either way
  spec.protocol = f.str("protocol", "delphi");
  const std::string transport = f.str("transport", "sim");
  if (transport == "sim") {
    spec.substrate = scenario::Substrate::kSim;
  } else if (transport == "tcp") {
    spec.substrate = scenario::Substrate::kTcp;
  } else if (transport == "udp") {
    spec.substrate = scenario::Substrate::kUdp;
  } else {
    usage("--transport must be sim, tcp or udp");
  }
  const std::string tb = f.str("testbed", "aws");
  if (tb == "aws") {
    spec.testbed = scenario::TestbedKind::kAws;
  } else if (tb == "cps") {
    spec.testbed = scenario::TestbedKind::kCps;
  } else if (tb == "async") {
    spec.testbed = scenario::TestbedKind::kAsync;
  } else if (tb == "fast") {
    spec.testbed = scenario::TestbedKind::kFast;
  } else {
    usage("--testbed must be aws, cps, async or fast");
  }
  const bool aws = tb != "cps";
  spec.center = f.num("center", aws ? 40'000.0 : 1000.0);
  spec.delta = f.num("delta", aws ? 20.0 : 5.0);
  spec.seed = f.unum("seed", 1);
  spec.crashes = static_cast<std::size_t>(f.unum("crashes", 0));
  spec.instances = static_cast<std::size_t>(f.unum("instances", 1));
  const std::string mux = f.str("mux-mode", "concurrent");
  if (mux == "concurrent") {
    spec.mux_mode = scenario::MuxMode::kConcurrent;
  } else if (mux == "sequential") {
    spec.mux_mode = scenario::MuxMode::kSequential;
  } else {
    usage("--mux-mode must be concurrent or sequential");
  }
  spec.adversary = scenario::parse_adversary(f.str("adversary", "none"));
  spec.byzantine = scenario::parse_byzantine(f.str("byzantine", "none"));
  // --churn takes a comma list because the flag map is single-valued; each
  // entry uses the spec grammar k:down_us:up_us.
  const std::string churn = f.str("churn", "");
  if (!churn.empty()) {
    std::stringstream ss(churn);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      spec.churn.push_back(scenario::parse_churn(tok));
    }
  }
  spec.churn_seed = f.unum("churn-seed", 0);
  const std::string t = f.str("t", "auto");
  if (t != "auto") {
    char* end = nullptr;
    const unsigned long v = std::strtoul(t.c_str(), &end, 10);
    if (t.empty() || !(t[0] >= '0' && t[0] <= '9') || end == t.c_str() ||
        *end != '\0') {
      usage("--t expects auto or a count");
    }
    spec.t = static_cast<std::size_t>(v);
  }
  // The protocol's registry entry advertises which parameter keys it reads:
  // per-testbed defaults land only on protocols that read them, while
  // explicitly given flags always land (spec validation rejects typos with a
  // "did you mean" suggestion).
  const auto* info = scenario::ProtocolRegistry::global().find(spec.protocol);
  const auto knows = [&](const std::string& key) {
    return info != nullptr &&
           std::find(info->param_keys.begin(), info->param_keys.end(), key) !=
               info->param_keys.end();
  };
  const std::pair<const char*, double> defaulted[] = {
      {"space-min", 0.0},
      {"space-max", aws ? 200'000.0 : 2000.0},
      {"rho0", aws ? 10.0 : 0.5},
      {"eps", aws ? 2.0 : 0.5},
      {"delta-max", aws ? 2000.0 : 50.0},
      {"rounds", 10.0},
  };
  for (const auto& [key, dflt] : defaulted) {
    const double v = f.num(key, dflt);
    if (f.has(key) || knows(key)) spec.params[key] = v;
  }
  // Optional knobs land in params only when given (registry entries default
  // the rest per protocol).
  for (const char* key : {"r-max", "dims", "coin-us", "coin-seed", "max-rounds",
                          "timeout-ms", "auth", "fifo", "nodelay", "compact",
                          "broadcaster", "sign-us", "verify-us", "keys-seed",
                          "loss", "loss-burst", "rate-kbps", "rto-ms"}) {
    if (f.has(key)) spec.params[key] = f.num(key, 0.0);
  }
  return spec;
}

void print_report(const ScenarioSpec& spec, const scenario::RunReport& r,
                  bool csv, bool verbose, bool header) {
  double omin = 0.0, omax = 0.0;
  if (!r.outputs.empty()) {
    omin = *std::min_element(r.outputs.begin(), r.outputs.end());
    omax = *std::max_element(r.outputs.begin(), r.outputs.end());
  }
  if (csv) {
    if (header) {
      std::printf(
          "protocol,transport,testbed,n,delta,seed,ok,runtime_ms,MB,messages,"
          "output_min,output_max\n");
    }
    std::printf("%s,%s,%s,%zu,%g,%llu,%d,%.3f,%.6f,%llu,%.6f,%.6f\n",
                spec.protocol.c_str(), scenario::to_string(spec.substrate),
                scenario::to_string(spec.testbed), spec.n, spec.delta,
                static_cast<unsigned long long>(spec.seed), r.ok ? 1 : 0,
                r.runtime_ms, r.megabytes(),
                static_cast<unsigned long long>(r.honest_msgs), omin, omax);
    return;
  }
  std::printf("%-8s n=%-4zu %s/%s delta=%-8g ok=%s runtime=%.0f ms "
              "traffic=%.3f MB msgs=%llu\n",
              spec.protocol.c_str(), spec.n,
              scenario::to_string(spec.substrate),
              scenario::to_string(spec.testbed), spec.delta,
              r.ok ? "yes" : "NO", r.runtime_ms, r.megabytes(),
              static_cast<unsigned long long>(r.honest_msgs));
  if (!r.outputs.empty()) {
    std::printf("         outputs in [%.4f, %.4f] (spread %.4g)\n", omin, omax,
                omax - omin);
  }
  if (!r.unfinished.empty()) {
    std::printf("         unfinished nodes:");
    for (const NodeId id : r.unfinished) std::printf(" %u", id);
    std::printf("\n");
  }
  for (const auto& ne : r.node_errors) {
    std::printf("         node %u died: %s\n", ne.id, ne.message.c_str());
  }
  if (verbose) {
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const auto& nm = r.nodes[i];
      std::printf("         node %-3zu sent=%llu (%.1f KB) delivered=%llu "
                  "dropped=%llu\n",
                  i, static_cast<unsigned long long>(nm.msgs_sent),
                  static_cast<double>(nm.bytes_sent) / 1e3,
                  static_cast<unsigned long long>(nm.msgs_delivered),
                  static_cast<unsigned long long>(nm.malformed_dropped));
      if (nm.reconnects > 0 || nm.downtime_ms > 0 || nm.catchup_frames > 0) {
        std::printf("                  reconnects=%llu downtime=%llu ms "
                    "catchup=%llu frames (%.1f KB)\n",
                    static_cast<unsigned long long>(nm.reconnects),
                    static_cast<unsigned long long>(nm.downtime_ms),
                    static_cast<unsigned long long>(nm.catchup_frames),
                    static_cast<double>(nm.catchup_bytes) / 1e3);
      }
    }
  }
}

int cmd_run(Flags& f, bool sweep, bool print_spec_only) {
  auto spec = parse_spec(f);
  std::vector<std::size_t> sizes;
  if (f.has("n")) {
    sizes = sweep ? f.sizes("n")
                  : std::vector<std::size_t>{
                        static_cast<std::size_t>(f.unum("n", 16))};
  } else {
    f.unum("n", 0);  // consume
    sizes = {spec.n};
  }
  const auto jobs = static_cast<unsigned>(f.unum("jobs", 0));
  const bool csv = f.flag("csv");
  const bool verbose = f.flag("verbose");
  f.reject_unknown();

  std::vector<ScenarioSpec> specs;
  for (const std::size_t n : sizes) {
    spec.n = n;
    specs.push_back(spec);
  }
  if (print_spec_only) {
    for (const auto& s : specs) std::printf("%s\n", s.to_text().c_str());
    return 0;
  }
  const auto reports = scenario::SweepRunner(jobs).run(specs);
  bool all_ok = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    print_report(specs[i], reports[i], csv, verbose, i == 0);
    all_ok = all_ok && reports[i].ok;
  }
  return all_ok ? 0 : 1;
}

int cmd_protocols(Flags& f) {
  f.reject_unknown();
  for (const auto& name : scenario::ProtocolRegistry::global().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_params(Flags& f) {
  const std::string dist = f.str("dist", "normal");
  const auto n = static_cast<std::size_t>(f.num("n", 16.0));
  const double lambda = f.num("lambda", 30.0);
  std::shared_ptr<stats::Distribution> d;
  if (dist == "normal") {
    d = std::make_shared<stats::Normal>(f.num("mu", 0.0),
                                        f.num("sigma", 1.0));
  } else if (dist == "gamma") {
    d = std::make_shared<stats::Gamma>(f.num("shape", 2.0),
                                       f.num("scale", 1.0));
  } else if (dist == "frechet") {
    d = std::make_shared<stats::Frechet>(f.num("alpha", 4.41),
                                         f.num("scale", 29.3));
  } else if (dist == "gumbel") {
    d = std::make_shared<stats::Gumbel>(f.num("mu", 0.0),
                                        f.num("scale", 1.0));
  } else {
    usage("--dist must be normal, gamma, frechet or gumbel");
  }
  f.reject_unknown();
  const double bound = stats::range_bound(*d, n, lambda);
  std::printf("distribution : %s\n", d->name().c_str());
  std::printf("cohort size n: %zu\n", n);
  std::printf("security     : lambda = %g bits (P(delta > Delta) <= 2^-%g)\n",
              lambda, lambda);
  std::printf("Delta        : %.6g\n", bound);
  std::printf("suggestion   : params.delta_max = %.6g; params.rho0 = eps "
              "(minimum relaxation)\n",
              bound);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  Flags flags(argc, argv, 2);
  try {
    if (cmd == "run") return cmd_run(flags, /*sweep=*/false, false);
    if (cmd == "sweep") return cmd_run(flags, /*sweep=*/true, false);
    if (cmd == "spec") return cmd_run(flags, /*sweep=*/false, true);
    if (cmd == "protocols") return cmd_protocols(flags);
    if (cmd == "params") return cmd_params(flags);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}
