/// delphi_cli — run any protocol / testbed / workload combination from the
/// command line and get text or CSV results; derive Delphi parameters from a
/// noise model via the EVT toolkit. The "I want one number without writing a
/// bench binary" tool.
///
///   delphi_cli run    --protocol delphi --testbed aws --n 64 --delta 20
///                     [--center 40000] [--rho0 10] [--eps 2]
///                     [--delta-max 2000] [--seed 1] [--crashes 0] [--csv]
///   delphi_cli sweep  same flags, --n taking a comma list: --n 16,64,112
///   delphi_cli params --dist frechet --alpha 4.41 --scale 29.3 --n 160
///                     [--lambda 30]
///
/// Protocols: delphi | abraham | dolev | fin. Testbeds: aws | cps.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "sim/byzantine.hpp"
#include "stats/evt.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(usage:
  delphi_cli run   --protocol delphi|abraham|dolev|fin --testbed aws|cps
                   --n N [--delta D] [--center C] [--seed S] [--crashes K]
                   [--rho0 R] [--eps E] [--delta-max DM] [--rounds R] [--csv]
  delphi_cli sweep  same flags; --n accepts a comma list (e.g. --n 16,64,112)
  delphi_cli params --dist normal|gamma|frechet|gumbel --n N [--lambda L]
                   [--mu M] [--sigma S] [--alpha A] [--scale SC] [--shape SH]
)");
  std::exit(2);
}

/// --key value flag map; validates that every flag is consumed.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
      key = key.substr(2);
      if (key == "csv") {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
      values_[key] = argv[++i];
    }
  }

  std::string str(const std::string& key, const std::string& dflt) {
    consumed_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  double num(const std::string& key, double dflt) {
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      usage(("--" + key + " expects a number").c_str());
    }
    return v;
  }

  bool flag(const std::string& key) {
    consumed_.insert(key);
    return values_.contains(key);
  }

  /// Comma-separated size list.
  std::vector<std::size_t> sizes(const std::string& key) {
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) usage(("--" + key + " is required").c_str());
    std::vector<std::size_t> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v < 1) usage(("bad --" + key + " entry: " + tok).c_str());
      out.push_back(static_cast<std::size_t>(v));
    }
    if (out.empty()) usage(("--" + key + " is empty").c_str());
    return out;
  }

  void reject_unknown() const {
    for (const auto& [k, v] : values_) {
      if (!consumed_.contains(k)) usage(("unknown flag --" + k).c_str());
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

struct RunSpec {
  std::string protocol;
  Testbed testbed = Testbed::kAws;
  double center = 40'000.0;
  double delta = 20.0;
  std::uint64_t seed = 1;
  std::size_t crashes = 0;
  protocol::DelphiParams params;
  std::uint32_t rounds = 10;
  bool csv = false;
};

RunSpec parse_spec(Flags& f) {
  RunSpec s;
  s.protocol = f.str("protocol", "delphi");
  const std::string tb = f.str("testbed", "aws");
  if (tb == "aws") {
    s.testbed = Testbed::kAws;
  } else if (tb == "cps") {
    s.testbed = Testbed::kCps;
  } else {
    usage("--testbed must be aws or cps");
  }
  const bool aws = s.testbed == Testbed::kAws;
  s.center = f.num("center", aws ? 40'000.0 : 1000.0);
  s.delta = f.num("delta", aws ? 20.0 : 5.0);
  s.seed = static_cast<std::uint64_t>(f.num("seed", 1.0));
  s.crashes = static_cast<std::size_t>(f.num("crashes", 0.0));
  s.params.space_min = 0.0;
  s.params.space_max = f.num("space-max", aws ? 200'000.0 : 2000.0);
  s.params.rho0 = f.num("rho0", aws ? 10.0 : 0.5);
  s.params.eps = f.num("eps", aws ? 2.0 : 0.5);
  s.params.delta_max = f.num("delta-max", aws ? 2000.0 : 50.0);
  s.rounds = static_cast<std::uint32_t>(f.num("rounds", 10.0));
  s.csv = f.flag("csv");
  return s;
}

Result run_spec(const RunSpec& s, std::size_t n) {
  const auto inputs = clustered_inputs(n, s.center, s.delta, s.seed + n);
  if (s.crashes > 0) {
    // Crash faults need a custom factory (bench_util runners are all-honest).
    auto cfg = testbed_config(s.testbed, n, s.seed);
    std::set<NodeId> byz;
    for (std::size_t i = 0; i < s.crashes; ++i) {
      byz.insert(static_cast<NodeId>(n - 1 - i));
    }
    if (s.protocol != "delphi") usage("--crashes currently supports --protocol delphi");
    auto outcome = sim::run_nodes(
        cfg,
        [&](NodeId i) -> std::unique_ptr<net::Protocol> {
          if (byz.contains(i)) return std::make_unique<sim::SilentProtocol>();
          protocol::DelphiProtocol::Config c;
          c.n = n;
          c.t = max_faults(n);
          c.params = s.params;
          return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
        },
        byz);
    Result r;
    r.ok = outcome.all_honest_terminated;
    r.runtime_ms = static_cast<double>(outcome.metrics.honest_completion) / 1e3;
    r.megabytes = static_cast<double>(outcome.honest_bytes) / 1e6;
    r.messages = outcome.honest_msgs;
    r.outputs = outcome.honest_outputs;
    return r;
  }
  if (s.protocol == "delphi") {
    return run_delphi(s.testbed, n, s.seed, s.params, inputs);
  }
  if (s.protocol == "abraham") {
    return run_abraham(s.testbed, n, s.seed, s.rounds, s.params.space_min,
                       s.params.space_max, inputs);
  }
  if (s.protocol == "dolev") {
    return run_dolev(s.testbed, n, s.seed, s.rounds, s.params.space_min,
                     s.params.space_max, inputs);
  }
  if (s.protocol == "fin") return run_fin(s.testbed, n, s.seed, inputs);
  usage(("unknown --protocol " + s.protocol).c_str());
}

void print_result(const RunSpec& s, std::size_t n, const Result& r,
                  bool header) {
  if (s.csv) {
    if (header) {
      std::printf("protocol,testbed,n,delta,seed,ok,runtime_ms,MB,messages,"
                  "output_min,output_max\n");
    }
    double omin = 0.0, omax = 0.0;
    if (!r.outputs.empty()) {
      omin = *std::min_element(r.outputs.begin(), r.outputs.end());
      omax = *std::max_element(r.outputs.begin(), r.outputs.end());
    }
    std::printf("%s,%s,%zu,%g,%llu,%d,%.3f,%.6f,%llu,%.6f,%.6f\n",
                s.protocol.c_str(),
                s.testbed == Testbed::kAws ? "aws" : "cps", n, s.delta,
                static_cast<unsigned long long>(s.seed), r.ok ? 1 : 0,
                r.runtime_ms, r.megabytes,
                static_cast<unsigned long long>(r.messages), omin, omax);
    return;
  }
  std::printf("%-8s n=%-4zu %s delta=%-8g ok=%s runtime=%.0f ms traffic=%.3f "
              "MB msgs=%llu\n",
              s.protocol.c_str(), n,
              s.testbed == Testbed::kAws ? "aws" : "cps", s.delta,
              r.ok ? "yes" : "NO", r.runtime_ms, r.megabytes,
              static_cast<unsigned long long>(r.messages));
  if (!r.outputs.empty()) {
    const double omin = *std::min_element(r.outputs.begin(), r.outputs.end());
    const double omax = *std::max_element(r.outputs.begin(), r.outputs.end());
    std::printf("         outputs in [%.4f, %.4f] (spread %.4g)\n", omin, omax,
                omax - omin);
  }
}

int cmd_run(Flags& f, bool sweep) {
  auto spec = parse_spec(f);
  const auto sizes = sweep ? f.sizes("n")
                           : std::vector<std::size_t>{static_cast<std::size_t>(
                                 f.num("n", 16.0))};
  f.reject_unknown();
  bool first = true;
  bool all_ok = true;
  for (std::size_t n : sizes) {
    const auto r = run_spec(spec, n);
    print_result(spec, n, r, first);
    first = false;
    all_ok = all_ok && r.ok;
  }
  return all_ok ? 0 : 1;
}

int cmd_params(Flags& f) {
  const std::string dist = f.str("dist", "normal");
  const auto n = static_cast<std::size_t>(f.num("n", 16.0));
  const double lambda = f.num("lambda", 30.0);
  std::shared_ptr<stats::Distribution> d;
  if (dist == "normal") {
    d = std::make_shared<stats::Normal>(f.num("mu", 0.0),
                                        f.num("sigma", 1.0));
  } else if (dist == "gamma") {
    d = std::make_shared<stats::Gamma>(f.num("shape", 2.0),
                                       f.num("scale", 1.0));
  } else if (dist == "frechet") {
    d = std::make_shared<stats::Frechet>(f.num("alpha", 4.41),
                                         f.num("scale", 29.3));
  } else if (dist == "gumbel") {
    d = std::make_shared<stats::Gumbel>(f.num("mu", 0.0),
                                        f.num("scale", 1.0));
  } else {
    usage("--dist must be normal, gamma, frechet or gumbel");
  }
  f.reject_unknown();
  const double bound = stats::range_bound(*d, n, lambda);
  std::printf("distribution : %s\n", d->name().c_str());
  std::printf("cohort size n: %zu\n", n);
  std::printf("security     : lambda = %g bits (P(delta > Delta) <= 2^-%g)\n",
              lambda, lambda);
  std::printf("Delta        : %.6g\n", bound);
  std::printf("suggestion   : params.delta_max = %.6g; params.rho0 = eps "
              "(minimum relaxation)\n",
              bound);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  Flags flags(argc, argv, 2);
  try {
    if (cmd == "run") return cmd_run(flags, /*sweep=*/false);
    if (cmd == "sweep") return cmd_run(flags, /*sweep=*/true);
    if (cmd == "params") return cmd_params(flags);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}
