/// TCP cluster: run Delphi over *real* sockets on localhost — the deployment
/// path that mirrors the paper's tokio-based implementation, as opposed to
/// the deterministic simulator used by the other examples.
///
/// Every node is an OS thread with its own poll(2) event loop, talking TCP
/// to every other node through length-framed, HMAC-SHA256-authenticated
/// links. The protocol state machines are byte-for-byte the same code the
/// simulator runs; only the substrate changes — which is why the whole
/// deployment is three lines of scenario API: declare a ScenarioSpec with
/// substrate=tcp, run it, read the unified RunReport. Flip `substrate` to
/// kSim (or edit the printed spec text and feed it to `delphi_cli run
/// --spec '...'`) and the identical scenario runs simulated instead.
///
/// Build: cmake --build build && ./build/example_tcp_cluster

#include <cstdio>

#include "scenario/runtime.hpp"

using namespace delphi;

int main() {
  scenario::ScenarioSpec spec;
  spec.protocol = "delphi";
  spec.substrate = scenario::Substrate::kTcp;
  spec.n = 7;
  spec.seed = 7;  // master secret for pairwise HMAC keys + per-node RNGs
  // Each node's sensor reading of a USD price.
  spec.inputs = {40012.0, 40019.5, 40008.2, 40015.0,
                 40021.7, 40011.1, 40017.4};
  spec.params["space-min"] = 0.0;
  spec.params["space-max"] = 100'000.0;
  spec.params["rho0"] = 2.0;
  spec.params["eps"] = 2.0;
  spec.params["delta-max"] = 256.0;
  spec.params["timeout-ms"] = 30'000.0;

  std::printf("spec: %s\n\n", spec.to_text().c_str());
  const auto report = scenario::run_scenario(spec);

  std::printf("terminated: %s\n", report.ok ? "yes" : "no");
  if (!report.ok) {
    std::printf("unfinished nodes:");
    for (const NodeId id : report.unfinished) std::printf(" %u", id);
    std::printf("\n");
    return 1;
  }

  std::printf("node  output      sent        recv\n");
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const auto& m = report.nodes[i];
    std::printf("%4zu  %9.3f  %7.1f KB  %6llu msgs\n", i, report.outputs[i],
                static_cast<double>(m.bytes_sent) / 1e3,
                static_cast<unsigned long long>(m.msgs_delivered));
  }
  std::printf("cluster total: %.1f KB on the wire (framed + MAC'd) in "
              "%.0f ms wall\n",
              static_cast<double>(report.honest_bytes) / 1e3,
              report.runtime_ms);
  return 0;
}
