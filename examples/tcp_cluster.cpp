/// TCP cluster: run Delphi over *real* sockets on localhost — the deployment
/// path that mirrors the paper's tokio-based implementation, as opposed to
/// the deterministic simulator used by the other examples.
///
/// Every node is an OS thread with its own poll(2) event loop, talking TCP
/// to every other node through length-framed, HMAC-SHA256-authenticated
/// links. The protocol state machines are byte-for-byte the same code the
/// simulator runs; only the substrate changes.
///
/// Build: cmake --build build && ./build/examples/tcp_cluster

#include <cstdio>

#include "delphi/delphi.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"

using namespace delphi;

int main() {
  protocol::DelphiParams params;
  params.space_min = 0.0;
  params.space_max = 100000.0;  // a USD price space
  params.rho0 = 2.0;
  params.eps = 2.0;
  params.delta_max = 256.0;

  const std::size_t n = 7;
  const double readings[n] = {40012.0, 40019.5, 40008.2, 40015.0,
                              40021.7, 40011.1, 40017.4};

  transport::TcpCluster::Options opts;
  opts.n = n;
  opts.auth = true;      // HMAC every frame with pairwise keys
  opts.seed = 7;         // master secret + per-node RNG seeds
  opts.timeout_ms = 30'000;

  transport::TcpCluster cluster(opts);
  cluster.start(
      [&](NodeId i) {
        protocol::DelphiProtocol::Config cfg;
        cfg.n = n;
        cfg.t = max_faults(n);
        cfg.params = params;
        return std::make_unique<protocol::DelphiProtocol>(cfg, readings[i]);
      },
      transport::decoders::delphi());

  const bool ok = cluster.wait();
  std::printf("terminated: %s\n", ok ? "yes" : "no");
  if (!ok) return 1;

  std::printf("node  port   output      sent        recv\n");
  std::uint64_t total_bytes = 0;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p =
        dynamic_cast<const protocol::DelphiProtocol&>(cluster.protocol(i));
    const auto& m = cluster.metrics(i);
    total_bytes += m.bytes_sent;
    std::printf("%4u  %5u  %9.3f  %7.1f KB  %6llu msgs\n", i, cluster.port(i),
                p.output_value().value_or(-1.0), m.bytes_sent / 1e3,
                static_cast<unsigned long long>(m.msgs_delivered));
  }
  std::printf("cluster total: %.1f KB on the wire (framed + MAC'd)\n",
              total_bytes / 1e3);
  return 0;
}
